//! Property-based tests of the trace/POP invariants.

use proptest::prelude::*;
use sph_profiler::{pop_metrics, Phase, Trace, WorkerState};

fn useful_times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..100.0_f64, 1..32)
}

fn trace_of(times: &[f64]) -> Trace {
    let mut t = Trace::new(times.len());
    for (w, &d) in times.iter().enumerate() {
        t.append(w, Phase::Density, WorkerState::Useful, d);
    }
    t.close_step(Phase::Update);
    t
}

proptest! {
    #[test]
    fn pop_metrics_bounded(times in useful_times()) {
        let m = pop_metrics(&trace_of(&times), None);
        prop_assert!(m.load_balance > 0.0 && m.load_balance <= 1.0 + 1e-12);
        prop_assert!(m.communication_efficiency > 0.0 && m.communication_efficiency <= 1.0 + 1e-12);
        prop_assert!(m.parallel_efficiency <= m.load_balance + 1e-12);
        prop_assert!(m.parallel_efficiency <= m.communication_efficiency + 1e-12);
        prop_assert_eq!(m.computation_scalability, 1.0);
    }

    #[test]
    fn makespan_is_max_worker_time(times in useful_times()) {
        let t = trace_of(&times);
        let max = times.iter().cloned().fold(0.0, f64::max);
        prop_assert!((t.makespan() - max).abs() < 1e-12);
        // After close_step everyone ends together.
        for w in 0..t.n_workers() {
            prop_assert!((t.end_of(w) - max).abs() < 1e-12);
        }
    }

    #[test]
    fn idle_time_complements_useful(times in useful_times()) {
        let t = trace_of(&times);
        let makespan = t.makespan();
        for w in 0..t.n_workers() {
            let useful = t.useful_time(w);
            let idle = t.state_time(w, WorkerState::Idle);
            prop_assert!((useful + idle - makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_balance_iff_equal_times(base in 0.1..10.0_f64, n in 2usize..16) {
        let m = pop_metrics(&trace_of(&vec![base; n]), None);
        prop_assert!((m.load_balance - 1.0).abs() < 1e-12);
        prop_assert!((m.global_efficiency - 1.0).abs() < 1e-12);
        // Perturbing one worker breaks it.
        let mut times = vec![base; n];
        times[0] *= 2.0;
        let m2 = pop_metrics(&trace_of(&times), None);
        prop_assert!(m2.load_balance < 1.0 - 1e-9);
    }

    #[test]
    fn scaling_reference_divides_cleanly(times in useful_times(), scale in 0.5..2.0_f64) {
        let t = trace_of(&times);
        let total = t.total_useful();
        let m = pop_metrics(&t, Some(total * scale));
        prop_assert!((m.computation_scalability - scale).abs() < 1e-9);
        prop_assert!((m.global_efficiency - m.parallel_efficiency * scale).abs() < 1e-9);
    }

    #[test]
    fn csv_row_count_matches_spans(times in useful_times()) {
        let t = trace_of(&times);
        let csv = sph_profiler::trace_to_csv(&t);
        let expected: usize = (0..t.n_workers()).map(|w| t.spans(w).len()).sum();
        prop_assert_eq!(csv.lines().count(), expected + 1);
    }
}
