//! POP efficiency metrics.
//!
//! §5.2 of the paper: "efficiencies can be calculated from these metrics
//! to identify which characteristics of the code contribute to performance
//! inefficiencies. Load Balance is computed as the ratio between average
//! useful computation time (across all processes) and maximum useful
//! computation time (also across all processes)." The hierarchy used by
//! the POP Centre of Excellence (which audited the paper's data):
//!
//! ```text
//! Load balance      LB  = mean(useful) / max(useful)
//! Comm. efficiency  CE  = max(useful) / runtime
//! Parallel eff.     PE  = LB · CE = mean(useful) / runtime
//! Comp. scalability CS  = total_useful(reference) / total_useful(p)
//! Global efficiency GE  = PE · CS
//! ```

use crate::trace::Trace;

/// The POP efficiency hierarchy for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopMetrics {
    pub load_balance: f64,
    pub communication_efficiency: f64,
    pub parallel_efficiency: f64,
    /// 1.0 when no reference run is supplied.
    pub computation_scalability: f64,
    pub global_efficiency: f64,
    /// Mean useful time per worker (seconds).
    pub mean_useful: f64,
    /// Max useful time over workers (seconds).
    pub max_useful: f64,
    /// Modelled runtime (makespan, seconds).
    pub runtime: f64,
}

/// Compute the POP metrics of a trace. `reference_total_useful` is the
/// total useful time of the baseline (smallest-core-count) run; pass
/// `None` for the baseline itself.
pub fn pop_metrics(trace: &Trace, reference_total_useful: Option<f64>) -> PopMetrics {
    let n = trace.n_workers();
    let useful: Vec<f64> = (0..n).map(|w| trace.useful_time(w)).collect();
    let max_useful = useful.iter().cloned().fold(0.0, f64::max);
    let mean_useful = useful.iter().sum::<f64>() / n as f64;
    let runtime = trace.makespan();
    let load_balance = if max_useful > 0.0 { mean_useful / max_useful } else { f64::NAN };
    let communication_efficiency = if runtime > 0.0 { max_useful / runtime } else { f64::NAN };
    let parallel_efficiency = load_balance * communication_efficiency;
    let total: f64 = useful.iter().sum();
    let computation_scalability = match reference_total_useful {
        Some(reference) if total > 0.0 => reference / total,
        _ => 1.0,
    };
    PopMetrics {
        load_balance,
        communication_efficiency,
        parallel_efficiency,
        computation_scalability,
        global_efficiency: parallel_efficiency * computation_scalability,
        mean_useful,
        max_useful,
        runtime,
    }
}

impl std::fmt::Display for PopMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LB {:5.1}%  CommE {:5.1}%  ParE {:5.1}%  CompScal {:5.1}%  GlobalE {:5.1}%",
            self.load_balance * 100.0,
            self.communication_efficiency * 100.0,
            self.parallel_efficiency * 100.0,
            self.computation_scalability * 100.0,
            self.global_efficiency * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{Phase, WorkerState};

    fn trace_with_useful(times: &[f64]) -> Trace {
        let mut t = Trace::new(times.len());
        for (w, &d) in times.iter().enumerate() {
            t.append(w, Phase::Density, WorkerState::Useful, d);
        }
        t.close_step(Phase::Update);
        t
    }

    #[test]
    fn perfectly_balanced_run() {
        let t = trace_with_useful(&[2.0, 2.0, 2.0, 2.0]);
        let m = pop_metrics(&t, None);
        assert!((m.load_balance - 1.0).abs() < 1e-12);
        assert!((m.communication_efficiency - 1.0).abs() < 1e-12);
        assert!((m.global_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_shows_in_lb_not_ce() {
        // One straggler: LB = mean/max = (1+1+1+4)/4 / 4 = 0.4375.
        let t = trace_with_useful(&[1.0, 1.0, 1.0, 4.0]);
        let m = pop_metrics(&t, None);
        assert!((m.load_balance - 0.4375).abs() < 1e-12, "LB = {}", m.load_balance);
        // The straggler itself never waits, so CE stays 1.
        assert!((m.communication_efficiency - 1.0).abs() < 1e-12);
        assert!((m.parallel_efficiency - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn communication_shows_in_ce_not_lb() {
        // Balanced compute but everyone pays 1 s of communication.
        let mut t = Trace::new(2);
        for w in 0..2 {
            t.append(w, Phase::Density, WorkerState::Useful, 3.0);
            t.append(w, Phase::NeighborLists, WorkerState::Communication, 1.0);
        }
        let m = pop_metrics(&t, None);
        assert!((m.load_balance - 1.0).abs() < 1e-12);
        assert!((m.communication_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn computation_scalability_vs_reference() {
        // Strong scaling from 2 to 4 workers with 10% replicated work.
        let base = trace_with_useful(&[4.0, 4.0]);
        let scaled = trace_with_useful(&[2.2, 2.2, 2.2, 2.2]);
        let base_m = pop_metrics(&base, None);
        assert_eq!(base_m.computation_scalability, 1.0);
        let ref_total = base.total_useful(); // 8.0
        let m = pop_metrics(&scaled, Some(ref_total));
        assert!((m.computation_scalability - 8.0 / 8.8).abs() < 1e-12);
        assert!(m.global_efficiency < m.parallel_efficiency);
    }

    #[test]
    fn display_renders_percentages() {
        let t = trace_with_useful(&[1.0, 2.0]);
        let s = format!("{}", pop_metrics(&t, None));
        assert!(s.contains("LB"));
        assert!(s.contains("GlobalE"));
    }
}
