//! Per-worker span timelines — the reproduction's trace format.
//!
//! The cluster simulator emits one [`Span`] per (worker, phase, state)
//! interval in modelled seconds; the POP calculator and the Gantt renderer
//! consume the resulting [`Trace`]. Spans within one worker must be
//! non-overlapping and appended in time order (enforced).

use crate::phase::{Phase, WorkerState};

/// One contiguous interval of a worker's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    pub phase: Phase,
    pub state: WorkerState,
    /// Start time (modelled seconds).
    pub start: f64,
    /// End time (≥ start).
    pub end: f64,
}

impl Span {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A collection of per-worker timelines.
#[derive(Debug, Clone)]
pub struct Trace {
    workers: Vec<Vec<Span>>,
}

impl Trace {
    /// Create a trace with `n` empty worker timelines.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0);
        Trace { workers: vec![Vec::new(); n_workers] }
    }

    /// Append a span to `worker`'s timeline.
    ///
    /// Panics if it overlaps the previous span or has negative duration —
    /// a malformed trace would silently corrupt every downstream metric.
    pub fn push(&mut self, worker: usize, span: Span) {
        assert!(span.end >= span.start, "negative-duration span: {span:?}");
        let lane = &mut self.workers[worker];
        if let Some(last) = lane.last() {
            assert!(
                span.start >= last.end - 1e-12,
                "span {span:?} overlaps previous {last:?} on worker {worker}"
            );
        }
        lane.push(span);
    }

    /// Convenience: append a span starting where the worker's last span
    /// ended (or 0), with the given duration. Returns the new end time.
    pub fn append(
        &mut self,
        worker: usize,
        phase: Phase,
        state: WorkerState,
        duration: f64,
    ) -> f64 {
        let start = self.end_of(worker);
        let span = Span { phase, state, start, end: start + duration };
        self.push(worker, span);
        span.end
    }

    /// End time of a worker's timeline (0 when empty).
    pub fn end_of(&self, worker: usize) -> f64 {
        self.workers[worker].last().map_or(0.0, |s| s.end)
    }

    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    pub fn spans(&self, worker: usize) -> &[Span] {
        &self.workers[worker]
    }

    /// Latest end time over all workers (the modelled runtime).
    pub fn makespan(&self) -> f64 {
        (0..self.n_workers()).map(|w| self.end_of(w)).fold(0.0, f64::max)
    }

    /// Useful-computation time of one worker.
    pub fn useful_time(&self, worker: usize) -> f64 {
        self.workers[worker]
            .iter()
            .filter(|s| s.state == WorkerState::Useful)
            .map(Span::duration)
            .sum()
    }

    /// Time a worker spends in a given state.
    pub fn state_time(&self, worker: usize, state: WorkerState) -> f64 {
        self.workers[worker].iter().filter(|s| s.state == state).map(Span::duration).sum()
    }

    /// Total useful time across workers.
    pub fn total_useful(&self) -> f64 {
        (0..self.n_workers()).map(|w| self.useful_time(w)).sum()
    }

    /// Aggregate useful time per phase across all workers — the "where does
    /// the time go" summary Fig. 4 is read for.
    pub fn phase_breakdown(&self) -> Vec<(Phase, f64)> {
        Phase::all()
            .into_iter()
            .map(|p| {
                let t: f64 = self
                    .workers
                    .iter()
                    .flatten()
                    .filter(|s| s.phase == p && s.state == WorkerState::Useful)
                    .map(Span::duration)
                    .sum();
                (p, t)
            })
            .collect()
    }

    /// Pad every worker with Idle to the common makespan — workers that
    /// finish early wait at the step barrier, which is exactly the black
    /// idle region of Fig. 4.
    pub fn close_step(&mut self, phase: Phase) {
        let end = self.makespan();
        for w in 0..self.n_workers() {
            let t = self.end_of(w);
            if t < end {
                self.push(w, Span { phase, state: WorkerState::Idle, start: t, end });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_chains_spans() {
        let mut t = Trace::new(2);
        t.append(0, Phase::TreeBuild, WorkerState::Useful, 1.0);
        t.append(0, Phase::Density, WorkerState::Useful, 2.0);
        t.append(1, Phase::TreeBuild, WorkerState::Useful, 0.5);
        assert_eq!(t.end_of(0), 3.0);
        assert_eq!(t.end_of(1), 0.5);
        assert_eq!(t.makespan(), 3.0);
        assert_eq!(t.spans(0).len(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_overlap() {
        let mut t = Trace::new(1);
        t.push(0, Span { phase: Phase::Density, state: WorkerState::Useful, start: 0.0, end: 2.0 });
        t.push(0, Span { phase: Phase::Update, state: WorkerState::Useful, start: 1.0, end: 3.0 });
    }

    #[test]
    #[should_panic]
    fn rejects_negative_duration() {
        let mut t = Trace::new(1);
        t.push(0, Span { phase: Phase::Density, state: WorkerState::Useful, start: 2.0, end: 1.0 });
    }

    #[test]
    fn useful_and_state_times() {
        let mut t = Trace::new(1);
        t.append(0, Phase::TreeBuild, WorkerState::Useful, 1.0);
        t.append(0, Phase::NeighborLists, WorkerState::Communication, 0.5);
        t.append(0, Phase::Density, WorkerState::Useful, 2.0);
        t.append(0, Phase::Update, WorkerState::Idle, 0.25);
        assert_eq!(t.useful_time(0), 3.0);
        assert_eq!(t.state_time(0, WorkerState::Communication), 0.5);
        assert_eq!(t.state_time(0, WorkerState::Idle), 0.25);
        assert_eq!(t.total_useful(), 3.0);
    }

    #[test]
    fn phase_breakdown_aggregates_workers() {
        let mut t = Trace::new(2);
        t.append(0, Phase::Density, WorkerState::Useful, 1.0);
        t.append(1, Phase::Density, WorkerState::Useful, 2.0);
        t.append(1, Phase::Gravity, WorkerState::Useful, 4.0);
        let bd = t.phase_breakdown();
        let density = bd.iter().find(|(p, _)| *p == Phase::Density).unwrap().1;
        let gravity = bd.iter().find(|(p, _)| *p == Phase::Gravity).unwrap().1;
        assert_eq!(density, 3.0);
        assert_eq!(gravity, 4.0);
    }

    #[test]
    fn close_step_pads_stragglers() {
        let mut t = Trace::new(3);
        t.append(0, Phase::Density, WorkerState::Useful, 3.0);
        t.append(1, Phase::Density, WorkerState::Useful, 1.0);
        t.append(2, Phase::Density, WorkerState::Useful, 2.0);
        t.close_step(Phase::Update);
        for w in 0..3 {
            assert_eq!(t.end_of(w), 3.0);
        }
        assert_eq!(t.state_time(1, WorkerState::Idle), 2.0);
        assert_eq!(t.state_time(0, WorkerState::Idle), 0.0);
    }
}
