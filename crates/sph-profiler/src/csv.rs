//! CSV export of traces and metric tables — the machine-readable side of
//! the reproducibility requirement (§4 cites a reproducible-benchmarks
//! framework; plots in the paper were produced from exactly this kind of
//! dump).

use crate::phase::WorkerState;
use crate::pop::PopMetrics;
use crate::trace::Trace;

/// Spans as CSV: `worker,phase,state,start,end,duration`.
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("worker,phase,state,start,end,duration\n");
    for w in 0..trace.n_workers() {
        for s in trace.spans(w) {
            let state = match s.state {
                WorkerState::Useful => "useful",
                WorkerState::Communication => "comm",
                WorkerState::Synchronization => "sync",
                WorkerState::Idle => "idle",
            };
            out.push_str(&format!(
                "{w},{},{state},{:.9},{:.9},{:.9}\n",
                s.phase.letter(),
                s.start,
                s.end,
                s.duration()
            ));
        }
    }
    out
}

/// One POP row as CSV (append-friendly; `header` emits the column line).
pub fn pop_to_csv_row(cores: usize, m: &PopMetrics) -> String {
    format!(
        "{cores},{:.6},{:.6},{:.6},{:.6},{:.6},{:.9},{:.9}\n",
        m.load_balance,
        m.communication_efficiency,
        m.parallel_efficiency,
        m.computation_scalability,
        m.global_efficiency,
        m.runtime,
        m.mean_useful
    )
}

/// Header matching [`pop_to_csv_row`].
pub fn pop_csv_header() -> &'static str {
    "cores,load_balance,comm_efficiency,parallel_efficiency,comp_scalability,global_efficiency,runtime,mean_useful\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::pop::pop_metrics;

    fn sample() -> Trace {
        let mut t = Trace::new(2);
        t.append(0, Phase::Density, WorkerState::Useful, 2.0);
        t.append(1, Phase::Density, WorkerState::Useful, 1.0);
        t.append(1, Phase::NeighborLists, WorkerState::Communication, 0.5);
        t.close_step(Phase::Update);
        t
    }

    #[test]
    fn trace_csv_has_all_spans() {
        let t = sample();
        let csv = trace_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        // Header + 2 + (2 + idle pad on worker 1 only... worker1 ends at
        // 1.5 < 2.0 so gets an idle span): header + 4 spans.
        assert_eq!(lines[0], "worker,phase,state,start,end,duration");
        let total_spans: usize = (0..2).map(|w| t.spans(w).len()).sum();
        assert_eq!(lines.len(), 1 + total_spans);
        assert!(csv.contains("comm"));
        assert!(csv.contains("idle"));
        // Every data row has 6 fields.
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 6, "{l}");
        }
    }

    #[test]
    fn pop_csv_roundtrip_fields() {
        let t = sample();
        let m = pop_metrics(&t, None);
        let row = pop_to_csv_row(48, &m);
        assert!(row.starts_with("48,"));
        assert_eq!(
            row.trim_end().split(',').count(),
            pop_csv_header().trim_end().split(',').count()
        );
    }
}
