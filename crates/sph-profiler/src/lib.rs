//! Performance tracing and POP efficiency metrics — the reproduction's
//! stand-in for the Extrae/Paraver toolchain of §5.2 and Fig. 4.
//!
//! The paper's methodology: record, per worker, which *phase* of
//! Algorithm 1 it is executing and in which *state* (useful computation,
//! MPI communication, synchronisation, idle), then derive the POP
//! efficiency hierarchy (load balance, communication efficiency,
//! computation scalability, global efficiency) from those timelines. This
//! crate implements the same pipeline over modelled (or measured) spans:
//!
//! * [`Phase`] — the A…J phase letters of Fig. 4 / Algorithm 1;
//! * [`Trace`] — per-worker span timelines;
//! * [`pop`] — the POP metric calculator;
//! * [`gantt`] — an ASCII Paraver-style timeline renderer (Fig. 4
//!   analogue);
//! * [`timers`] — wall-clock phase timers for the Criterion benches.

pub mod csv;
pub mod gantt;
pub mod phase;
pub mod pop;
pub mod timers;
pub mod trace;

pub use csv::{pop_csv_header, pop_to_csv_row, trace_to_csv};
pub use gantt::render_gantt;
pub use phase::{Phase, WorkerState};
pub use pop::{pop_metrics, PopMetrics};
pub use trace::{Span, Trace};
