//! ASCII Gantt rendering of a [`Trace`] — the Fig. 4 analogue.
//!
//! Fig. 4 of the paper is a Paraver timeline: one row per worker, colour
//! per state, with the phase letters A–J annotated above. This renderer
//! produces the same picture in text: the phase letter where the worker is
//! doing useful work, `~` for communication, `+` for synchronisation and
//! `.` for idle — so the serial tree build (a lone row of `A` with
//! everyone else idle) and the idle tails the paper highlights are
//! directly visible in a terminal.

use crate::phase::WorkerState;
use crate::trace::Trace;

/// Render the trace as rows of `width` characters spanning `[0, makespan]`.
///
/// Each cell shows the state occupying the majority of its time bucket.
/// Returns a multi-line string including a time axis and a legend.
pub fn render_gantt(trace: &Trace, width: usize) -> String {
    assert!(width >= 10, "gantt width too small");
    let makespan = trace.makespan();
    let mut out = String::new();
    if makespan <= 0.0 {
        out.push_str("(empty trace)\n");
        return out;
    }
    let dt = makespan / width as f64;

    // Time axis header.
    out.push_str(&format!(
        "time → 0 {:…^width$} {:.4}s\n",
        "",
        makespan,
        width = width.saturating_sub(12)
    ));

    for w in 0..trace.n_workers() {
        let mut row = String::with_capacity(width + 16);
        row.push_str(&format!("w{w:03} |"));
        for b in 0..width {
            let t0 = b as f64 * dt;
            let t1 = t0 + dt;
            // Majority state/phase in the bucket.
            let mut best_char = ' ';
            let mut best_overlap = 0.0;
            for s in trace.spans(w) {
                let overlap = (s.end.min(t1) - s.start.max(t0)).max(0.0);
                if overlap > best_overlap {
                    best_overlap = overlap;
                    best_char = match s.state {
                        WorkerState::Useful => s.phase.letter(),
                        other => other.glyph(),
                    };
                }
            }
            row.push(best_char);
        }
        row.push('|');
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str(
        "legend: A-J useful phases (A tree, B-D neighbors, E-H SPH, I gravity, J update); \
         ~ comm, + sync, . idle\n",
    );
    out
}

/// One-line textual summary of where the time goes, phase by phase.
pub fn phase_summary(trace: &Trace) -> String {
    let total = trace.total_useful().max(1e-300);
    let mut out = String::from("phase breakdown (useful time): ");
    for (p, t) in trace.phase_breakdown() {
        if t > 0.0 {
            out.push_str(&format!("{}:{:.1}% ", p.letter(), t / total * 100.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{Phase, WorkerState};

    fn sample_trace() -> Trace {
        let mut t = Trace::new(3);
        // Worker 0 does a serial tree build while the others idle — the
        // Fig. 4 pathology.
        t.append(0, Phase::TreeBuild, WorkerState::Useful, 2.0);
        t.append(1, Phase::TreeBuild, WorkerState::Idle, 2.0);
        t.append(2, Phase::TreeBuild, WorkerState::Idle, 2.0);
        for w in 0..3 {
            t.append(w, Phase::Density, WorkerState::Useful, 4.0);
            t.append(w, Phase::NeighborLists, WorkerState::Communication, 1.0);
        }
        t.close_step(Phase::Update);
        t
    }

    #[test]
    fn renders_expected_shape() {
        let g = render_gantt(&sample_trace(), 70);
        let lines: Vec<&str> = g.lines().collect();
        // Header + 3 workers + legend.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("w000 |"));
        // Worker 0 shows tree build 'A'; workers 1-2 show idle dots there.
        assert!(lines[1].contains('A'));
        assert!(lines[2].contains('.'));
        // Everyone shows density 'E' and communication '~'.
        for l in &lines[1..4] {
            assert!(l.contains('E'), "{l}");
            assert!(l.contains('~'), "{l}");
        }
    }

    #[test]
    fn row_width_is_respected() {
        let g = render_gantt(&sample_trace(), 50);
        for l in g.lines().filter(|l| l.starts_with('w')) {
            // "w000 |" + 50 cells + "|"
            assert_eq!(l.chars().count(), 6 + 50 + 1);
        }
    }

    #[test]
    fn empty_trace_renders_notice() {
        let t = Trace::new(2);
        let g = render_gantt(&t, 40);
        assert!(g.contains("empty"));
    }

    #[test]
    fn phase_summary_lists_phases() {
        let s = phase_summary(&sample_trace());
        assert!(s.contains("A:"), "{s}");
        assert!(s.contains("E:"), "{s}");
        // Idle/comm time must not appear as useful phases.
        assert!(!s.contains("D:"), "{s}");
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_width() {
        let _ = render_gantt(&sample_trace(), 4);
    }
}
