//! The computational phases of Algorithm 1 and worker execution states.
//!
//! Fig. 4 of the paper labels one SPHYNX time-step with letters A–J:
//! "Phase A is the building of the octree. Phases B, C, and D concern the
//! finding of neighbors. Phases E to H are the SPH-related calculations
//! (density, momentum, and energy, among other needed quantities). Phase I
//! is the calculation of self-gravity. Finally, phase J, is the
//! computation of the new time-step and the update of particle positions."

/// One phase of the SPH time-step, with the Fig. 4 letter code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// A — build the octree.
    TreeBuild,
    /// B — tree walk for candidate neighbours.
    NeighborSearch,
    /// C — smoothing-length iteration.
    SmoothingLength,
    /// D — neighbour-list finalisation / halo exchange.
    NeighborLists,
    /// E — density summation.
    Density,
    /// F — gradients / IAD matrices / EOS.
    Gradients,
    /// G — momentum equation.
    Momentum,
    /// H — energy equation.
    Energy,
    /// I — self-gravity.
    Gravity,
    /// J — new time-step and particle update.
    Update,
}

impl Phase {
    /// The Fig. 4 letter.
    pub fn letter(self) -> char {
        match self {
            Phase::TreeBuild => 'A',
            Phase::NeighborSearch => 'B',
            Phase::SmoothingLength => 'C',
            Phase::NeighborLists => 'D',
            Phase::Density => 'E',
            Phase::Gradients => 'F',
            Phase::Momentum => 'G',
            Phase::Energy => 'H',
            Phase::Gravity => 'I',
            Phase::Update => 'J',
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TreeBuild => "tree build",
            Phase::NeighborSearch => "neighbor search",
            Phase::SmoothingLength => "smoothing length",
            Phase::NeighborLists => "neighbor lists",
            Phase::Density => "density",
            Phase::Gradients => "gradients/EOS",
            Phase::Momentum => "momentum",
            Phase::Energy => "energy",
            Phase::Gravity => "self-gravity",
            Phase::Update => "time-step & update",
        }
    }

    /// All phases in execution order.
    pub fn all() -> [Phase; 10] {
        [
            Phase::TreeBuild,
            Phase::NeighborSearch,
            Phase::SmoothingLength,
            Phase::NeighborLists,
            Phase::Density,
            Phase::Gradients,
            Phase::Momentum,
            Phase::Energy,
            Phase::Gravity,
            Phase::Update,
        ]
    }
}

/// Worker execution state, matching the Fig. 4 colour legend:
/// "computing phases (blue), MPI collective communication (orange),
/// thread synchronization (red), thread fork/join (yellow), and idle
/// threads (black)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerState {
    /// Useful computation (blue).
    Useful,
    /// Communication — point-to-point or collective (orange).
    Communication,
    /// Synchronisation / fork-join overhead (red/yellow).
    Synchronization,
    /// Idle, waiting for stragglers (black).
    Idle,
}

impl WorkerState {
    /// Single-character code used by the ASCII Gantt for non-useful time
    /// (useful time renders as the phase letter instead).
    pub fn glyph(self) -> char {
        match self {
            WorkerState::Useful => '*',
            WorkerState::Communication => '~',
            WorkerState::Synchronization => '+',
            WorkerState::Idle => '.',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_are_a_through_j() {
        let letters: Vec<char> = Phase::all().iter().map(|p| p.letter()).collect();
        assert_eq!(letters, vec!['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J']);
    }

    #[test]
    fn letters_unique_and_ordered() {
        let phases = Phase::all();
        for w in phases.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].letter() < w[1].letter());
        }
    }

    #[test]
    fn names_are_nonempty() {
        for p in Phase::all() {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn state_glyphs_distinct() {
        let glyphs = [
            WorkerState::Useful.glyph(),
            WorkerState::Communication.glyph(),
            WorkerState::Synchronization.glyph(),
            WorkerState::Idle.glyph(),
        ];
        let mut dedup = glyphs.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), glyphs.len());
    }
}
