//! Wall-clock phase timers.
//!
//! For the *measured* (as opposed to modelled) side of the reproduction:
//! the Criterion benches and the examples time the real Rust execution of
//! each Algorithm 1 phase on the host machine. Thread-safe so rayon
//! workers can report concurrently.

// sph-profiler is the sanctioned home of wall-clock reads (sph-lint R5).
#![allow(clippy::disallowed_methods)]

use crate::phase::Phase;
use parking_lot::Mutex;
use std::time::Instant;

/// Accumulated wall-clock time per phase.
#[derive(Debug, Default)]
pub struct PhaseTimers {
    acc: Mutex<[f64; 10]>,
}

impl PhaseTimers {
    pub fn new() -> Self {
        Self::default()
    }

    fn index(phase: Phase) -> usize {
        // `Phase::all()` lists variants in declaration order, so the
        // discriminant IS the slot (asserted by `index_matches_all_order`).
        phase as usize
    }

    /// Time `f` and charge its duration to `phase`. Returns `f`'s output.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        self.acc.lock()[Self::index(phase)] += dt;
        out
    }

    /// Add an externally measured duration.
    pub fn add(&self, phase: Phase, seconds: f64) {
        assert!(seconds >= 0.0);
        self.acc.lock()[Self::index(phase)] += seconds;
    }

    /// Accumulated seconds for a phase.
    pub fn get(&self, phase: Phase) -> f64 {
        self.acc.lock()[Self::index(phase)]
    }

    /// Total across phases.
    pub fn total(&self) -> f64 {
        // sph-lint: allow(reduce-taint) — timing diagnostic over a fixed
        // 8-slot phase array, never fed back into physics state; the call
        // graph reaches it only through the `total` name aliasing
        // KahanAccumulator::total.
        self.acc.lock().iter().sum()
    }

    /// (phase, seconds) pairs in execution order.
    pub fn snapshot(&self) -> Vec<(Phase, f64)> {
        let acc = self.acc.lock();
        Phase::all().iter().map(|&p| (p, acc[Self::index(p)])).collect()
    }

    /// Fold another timer's accumulators into this one — e.g. aggregating
    /// the per-rank timers of a distributed run into one global view.
    pub fn merge_from(&self, other: &PhaseTimers) {
        let theirs = *other.acc.lock();
        let mut acc = self.acc.lock();
        for (a, t) in acc.iter_mut().zip(theirs) {
            *a += t;
        }
    }

    /// Reset all accumulators.
    pub fn reset(&self) {
        *self.acc.lock() = [0.0; 10];
    }

    /// Render a one-step timing report.
    pub fn report(&self) -> String {
        let total = self.total().max(1e-300);
        let mut out = String::from("phase timings: ");
        for (p, t) in self.snapshot() {
            if t > 0.0 {
                out.push_str(&format!("{} {:.3}s ({:.0}%)  ", p.letter(), t, t / total * 100.0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_all_order() {
        // `PhaseTimers::index` uses the discriminant directly; that is only
        // sound while `Phase::all()` lists variants in declaration order.
        for (slot, p) in Phase::all().into_iter().enumerate() {
            assert_eq!(PhaseTimers::index(p), slot, "{p:?}");
        }
    }

    #[test]
    fn time_accumulates() {
        let timers = PhaseTimers::new();
        let v = timers.time(Phase::Density, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(timers.get(Phase::Density) >= 0.004);
        assert_eq!(timers.get(Phase::Gravity), 0.0);
    }

    #[test]
    fn add_and_total() {
        let timers = PhaseTimers::new();
        timers.add(Phase::TreeBuild, 1.5);
        timers.add(Phase::TreeBuild, 0.5);
        timers.add(Phase::Update, 1.0);
        assert_eq!(timers.get(Phase::TreeBuild), 2.0);
        assert_eq!(timers.total(), 3.0);
    }

    #[test]
    fn merge_from_folds_per_rank_timers() {
        let rank0 = PhaseTimers::new();
        rank0.add(Phase::Density, 1.0);
        rank0.add(Phase::Update, 0.25);
        let rank1 = PhaseTimers::new();
        rank1.add(Phase::Density, 2.0);
        rank1.add(Phase::Gravity, 0.5);
        let agg = PhaseTimers::new();
        agg.merge_from(&rank0);
        agg.merge_from(&rank1);
        assert_eq!(agg.get(Phase::Density), 3.0);
        assert_eq!(agg.get(Phase::Gravity), 0.5);
        assert_eq!(agg.get(Phase::Update), 0.25);
        assert_eq!(agg.total(), 3.75);
    }

    #[test]
    fn reset_clears() {
        let timers = PhaseTimers::new();
        timers.add(Phase::Momentum, 1.0);
        timers.reset();
        assert_eq!(timers.total(), 0.0);
    }

    #[test]
    fn report_mentions_phases() {
        let timers = PhaseTimers::new();
        timers.add(Phase::Gravity, 2.0);
        let r = timers.report();
        assert!(r.contains("I 2.000s"), "{r}");
    }

    #[test]
    fn concurrent_updates() {
        let timers = std::sync::Arc::new(PhaseTimers::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = timers.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.add(Phase::Energy, 0.001);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!((timers.get(Phase::Energy) - 0.8).abs() < 1e-9);
    }
}
