//! Property-based tests of the performance model: the modelled times must
//! obey the structural laws the scaling analysis relies on.

use proptest::prelude::*;
use sph_cluster::{
    model_step, piz_daint, CostModel, LoadBalancing, Partitioner, StepModelConfig, StepWorkload,
};
use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};

fn workload_inputs(n: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<Vec3>, Vec<f64>)> {
    (n, any::<u64>()).prop_map(|(count, seed)| {
        let mut rng = SplitMix64::new(seed);
        let pos: Vec<Vec3> =
            (0..count).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        let work: Vec<f64> = (0..count).map(|_| rng.uniform(10.0, 500.0)).collect();
        (pos, work)
    })
}

fn config(partitioner: Partitioner) -> StepModelConfig {
    StepModelConfig {
        partitioner,
        balancing: LoadBalancing::Static,
        machine: piz_daint(),
        cost: CostModel::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn modelled_times_are_finite_and_positive((pos, work) in workload_inputs(50..300), ranks in 1usize..33) {
        let zeros = vec![0.0; pos.len()];
        let w = StepWorkload {
            positions: &pos,
            sph_work: &work,
            gravity_work: &zeros,
            interaction_radius: 0.1,
            periodicity: Periodicity::open(Aabb::unit()),
            bounds: Aabb::unit(),
        };
        let t = model_step(&w, ranks, &config(Partitioner::Orb), None);
        prop_assert!(t.total().is_finite() && t.total() > 0.0);
        prop_assert_eq!(t.per_rank_compute.len(), ranks);
        prop_assert!(t.load_balance() > 0.0 && t.load_balance() <= 1.0 + 1e-12);
        prop_assert!(t.compute_mean() <= t.compute_max() + 1e-15);
    }

    #[test]
    fn total_compute_is_conserved_across_rank_counts((pos, work) in workload_inputs(100..300)) {
        // The sum of per-rank compute times equals the total work time
        // regardless of P (only its distribution changes) — modulo the
        // per-rank tree n·log n term, which grows sublinearly as ranks
        // shrink; allow its bounded slack.
        let zeros = vec![0.0; pos.len()];
        let w = StepWorkload {
            positions: &pos,
            sph_work: &work,
            gravity_work: &zeros,
            interaction_radius: 0.1,
            periodicity: Periodicity::open(Aabb::unit()),
            bounds: Aabb::unit(),
        };
        let cfg = config(Partitioner::Sfc(sph_domain::SfcKind::Hilbert));
        let t2 = model_step(&w, 2, &cfg, None);
        let t8 = model_step(&w, 8, &cfg, None);
        let sum2: f64 = t2.per_rank_compute.iter().sum();
        let sum8: f64 = t8.per_rank_compute.iter().sum();
        // Within 25% (the tree-term slack for these sizes).
        prop_assert!((sum2 - sum8).abs() < 0.25 * sum2.max(sum8), "{sum2} vs {sum8}");
    }

    #[test]
    fn dynamic_balancing_never_hurts_much((pos, mut work) in workload_inputs(150..400)) {
        // Make the load skewed so balancing has something to do.
        for (i, p) in pos.iter().enumerate() {
            if p.x < 0.3 {
                work[i] *= 10.0;
            }
        }
        let zeros = vec![0.0; pos.len()];
        let w = StepWorkload {
            positions: &pos,
            sph_work: &work,
            gravity_work: &zeros,
            interaction_radius: 0.1,
            periodicity: Periodicity::open(Aabb::unit()),
            bounds: Aabb::unit(),
        };
        let mut cfg = config(Partitioner::Sfc(sph_domain::SfcKind::Hilbert));
        let t_static = model_step(&w, 8, &cfg, Some(&work));
        cfg.balancing = LoadBalancing::Dynamic;
        let t_dyn = model_step(&w, 8, &cfg, Some(&work));
        prop_assert!(
            t_dyn.compute_max() <= t_static.compute_max() * 1.1,
            "dynamic {} vs static {}",
            t_dyn.compute_max(),
            t_static.compute_max()
        );
    }

    #[test]
    fn serial_term_is_rank_invariant((pos, work) in workload_inputs(50..150), r1 in 1usize..8, r2 in 8usize..64) {
        let zeros = vec![0.0; pos.len()];
        let w = StepWorkload {
            positions: &pos,
            sph_work: &work,
            gravity_work: &zeros,
            interaction_radius: 0.1,
            periodicity: Periodicity::open(Aabb::unit()),
            bounds: Aabb::unit(),
        };
        let cfg = config(Partitioner::Orb);
        let a = model_step(&w, r1, &cfg, None);
        let b = model_step(&w, r2, &cfg, None);
        prop_assert!((a.serial - b.serial).abs() < 1e-15);
    }

    #[test]
    fn network_times_monotone_in_bytes(bytes in 0.0..1e9_f64, extra in 1.0..1e6_f64) {
        let net = piz_daint().network;
        prop_assert!(net.message_time(bytes + extra) > net.message_time(bytes));
        prop_assert!(net.allreduce_time(8.0, 64) > net.allreduce_time(8.0, 2));
    }
}
