//! Online machine calibration: the serving-path entry point.
//!
//! [`calibrate_machine`] turns *one* measured step into a sustained
//! per-core GFLOP/s figure; a server admitting jobs wants a *running*
//! estimate that sharpens as completed jobs stream in and never panics
//! on degenerate measurements (a job so short no rank accumulated
//! measurable time). [`OnlineCalibrator`] wraps the one-shot helper with
//! a guarded running mean and a prediction entry point, so admission
//! pricing and calibration can never disagree on the cost arithmetic.

use crate::cost::CostModel;
use crate::machine::MachineModel;
use crate::step_model::{calibrate_machine, MeasuredStep};

/// A running calibration of one machine from completed measured steps.
#[derive(Debug, Clone)]
pub struct OnlineCalibrator {
    prior: MachineModel,
    cost: CostModel,
    /// Running mean of per-observation calibrated `core_gflops`.
    mean_gflops: f64,
    observations: u64,
}

impl OnlineCalibrator {
    /// Start from a prior machine model (used verbatim until the first
    /// observation lands).
    pub fn new(prior: MachineModel, cost: CostModel) -> OnlineCalibrator {
        OnlineCalibrator { mean_gflops: prior.core_gflops, prior, cost, observations: 0 }
    }

    /// Fold one completed measured step into the estimate. Returns
    /// `false` (and changes nothing) when the measurement is unusable:
    /// mismatched rank counts, or no rank with both positive work and
    /// positive wall-clock seconds — the preconditions
    /// [`calibrate_machine`] would otherwise assert on.
    pub fn observe(&mut self, measured: &MeasuredStep<'_>, per_rank_seconds: &[f64]) -> bool {
        let ranks = measured.decomposition.nparts;
        if per_rank_seconds.len() != ranks
            || measured.work.len() != measured.decomposition.assignment.len()
        {
            return false;
        }
        let mut rank_work = vec![0.0f64; ranks];
        for (i, w) in measured.work.iter().enumerate() {
            rank_work[measured.decomposition.assignment[i] as usize] += w;
        }
        let usable = (0..ranks).any(|r| rank_work[r] > 0.0 && per_rank_seconds[r] > 0.0);
        if !usable {
            return false;
        }
        let sample = calibrate_machine(self.prior, &self.cost, measured, per_rank_seconds);
        if !(sample.core_gflops.is_finite() && sample.core_gflops > 0.0) {
            return false;
        }
        self.observations += 1;
        let n = self.observations as f64;
        if self.observations == 1 {
            self.mean_gflops = sample.core_gflops;
        } else {
            self.mean_gflops += (sample.core_gflops - self.mean_gflops) / n;
        }
        true
    }

    /// The calibrated machine: the prior with `core_gflops` replaced by
    /// the running mean (the prior itself before any observation).
    pub fn machine(&self) -> MachineModel {
        let mut out = self.prior;
        out.core_gflops = self.mean_gflops;
        out
    }

    /// Number of observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Predicted single-rank compute seconds for a step doing
    /// `work_units` pair interactions over `n_particles` particles —
    /// the pricing arithmetic of `model_measured_step`, evaluated with
    /// the *current* calibrated machine.
    pub fn predict_step_seconds(&self, work_units: f64, n_particles: f64) -> f64 {
        let flops = self.cost.rank_flops(work_units, 0.0, n_particles)
            + self.cost.serial_flops(n_particles);
        self.machine().compute_time(flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::piz_daint;
    use sph_domain::{Decomposition, HaloExchange};

    fn single_rank_measured(work: &[f64]) -> (Decomposition, HaloExchange) {
        let decomposition = Decomposition::new(vec![0; work.len()], 1);
        let halos = HaloExchange { imports: vec![vec![]], pair_volume: vec![0], nparts: 1 };
        (decomposition, halos)
    }

    #[test]
    fn prior_until_first_observation() {
        let cal = OnlineCalibrator::new(piz_daint(), CostModel::default());
        assert_eq!(cal.machine().core_gflops, piz_daint().core_gflops);
        assert_eq!(cal.observations(), 0);
        assert!(cal.predict_step_seconds(1e6, 1e4) > 0.0);
    }

    #[test]
    fn degenerate_measurements_are_refused_not_panicked() {
        let mut cal = OnlineCalibrator::new(piz_daint(), CostModel::default());
        let work = [0.0, 0.0];
        let (d, h) = single_rank_measured(&work);
        let m = MeasuredStep { decomposition: &d, halos: &h, work: &work };
        // Zero work: unusable.
        assert!(!cal.observe(&m, &[1.0]));
        // Wrong rank count: unusable.
        let work2 = [10.0, 10.0];
        let (d2, h2) = single_rank_measured(&work2);
        let m2 = MeasuredStep { decomposition: &d2, halos: &h2, work: &work2 };
        assert!(!cal.observe(&m2, &[1.0, 2.0]));
        // Zero seconds: unusable.
        assert!(!cal.observe(&m2, &[0.0]));
        assert_eq!(cal.observations(), 0);
    }

    #[test]
    fn running_mean_tracks_observations() {
        let cost = CostModel::default();
        let mut cal = OnlineCalibrator::new(piz_daint(), cost);
        let work = [100.0, 300.0];
        let (d, h) = single_rank_measured(&work);
        let m = MeasuredStep { decomposition: &d, halos: &h, work: &work };
        assert!(cal.observe(&m, &[2.0]));
        let one = cal.machine().core_gflops;
        let expected1 = cost.rank_flops(400.0, 0.0, 2.0) / 2.0 / 1e9 / piz_daint().thread_speedup();
        assert!((one - expected1).abs() < 1e-12 * expected1);
        // A second observation at half the speed pulls the mean down to
        // the midpoint.
        assert!(cal.observe(&m, &[4.0]));
        let two = cal.machine().core_gflops;
        assert!((two - expected1 * 0.75).abs() < 1e-12 * expected1, "mean {two} vs {expected1}");
        assert_eq!(cal.observations(), 2);
        // A faster calibrated machine prices the same step cheaper.
        let fast = OnlineCalibrator::new(cal.machine(), cost);
        let mut half_speed = cal.machine();
        half_speed.core_gflops /= 2.0;
        let slow = OnlineCalibrator::new(half_speed, cost);
        assert!(fast.predict_step_seconds(1e6, 1e3) < slow.predict_step_seconds(1e6, 1e3));
    }
}
