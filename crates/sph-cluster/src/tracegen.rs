//! Render a modelled step into a per-worker trace — the Fig. 4 generator.
//!
//! Fig. 4 shows one SPHYNX time-step at 192 cores on the Evrard test:
//! a *serial* tree build (phase A) with every other worker idle, neighbour
//! phases B–D with idle tails, the SPH phases E–H, gravity I, and the
//! update J, separated by barriers where imbalance appears as black idle
//! regions. This module reconstructs that timeline from a modelled
//! [`StepTiming`]: per-rank useful durations are split across the phases
//! in proportion to the step's global work composition and every phase
//! ends at a barrier, so stragglers generate exactly the idle regions the
//! paper discusses.

use crate::step_model::StepTiming;
use sph_profiler::{Phase, Trace, WorkerState};

/// How the step's useful work divides across phases; fractions must sum
/// to ≤ 1 (the remainder is charged to phase J).
#[derive(Debug, Clone, Copy)]
pub struct PhaseProfile {
    /// Tree build fraction of per-rank compute (phase A).
    pub tree: f64,
    /// Neighbour phases B–D combined.
    pub neighbors: f64,
    /// SPH phases E–H combined.
    pub sph: f64,
    /// Gravity phase I (0 when gravity is off).
    pub gravity: f64,
    /// The tree build runs serially on one worker per node (SPHYNX 1.3.1
    /// behaviour highlighted by the paper) instead of in parallel.
    pub serial_tree: bool,
    /// Workers per node (the width of the serial-tree idle block; Piz
    /// Daint used 12 cores per node).
    pub node_width: usize,
}

impl PhaseProfile {
    /// SPHYNX-like profile for a gravity run (Evrard).
    pub fn sphynx_evrard() -> Self {
        PhaseProfile {
            tree: 0.08,
            neighbors: 0.22,
            sph: 0.40,
            gravity: 0.25,
            serial_tree: true,
            node_width: 12,
        }
    }

    /// Hydro-only profile (square patch).
    pub fn hydro_only(serial_tree: bool) -> Self {
        PhaseProfile {
            tree: 0.10,
            neighbors: 0.30,
            sph: 0.55,
            gravity: 0.0,
            serial_tree,
            node_width: 12,
        }
    }
}

/// Build a [`Trace`] of the modelled step.
pub fn step_trace(timing: &StepTiming, profile: &PhaseProfile) -> Trace {
    let p = timing.per_rank_compute.len();
    let mut trace = Trace::new(p);
    let frac_rest =
        (1.0 - profile.tree - profile.neighbors - profile.sph - profile.gravity).max(0.0);

    // Phase A: tree build. Serial variant: one worker per node builds the
    // node's tree (cost = sum of its node's shares) while its node mates
    // idle — the Fig. 4 pathology at thread level. Parallel variant: each
    // rank builds its own.
    if profile.serial_tree {
        let width = profile.node_width.max(1);
        for (g, chunk) in timing.per_rank_compute.chunks(width).enumerate() {
            let node_tree: f64 = chunk.iter().map(|t| t * profile.tree).sum();
            trace.append(g * width, Phase::TreeBuild, WorkerState::Useful, node_tree);
        }
        trace.close_step(Phase::TreeBuild);
    } else {
        for (w, &t) in timing.per_rank_compute.iter().enumerate() {
            trace.append(w, Phase::TreeBuild, WorkerState::Useful, t * profile.tree);
        }
        trace.close_step(Phase::TreeBuild);
    }

    // Phases B–D: neighbour work, barrier-terminated (idle tails).
    for (sub, frac) in
        [(Phase::NeighborSearch, 0.5), (Phase::SmoothingLength, 0.3), (Phase::NeighborLists, 0.2)]
    {
        for (w, &t) in timing.per_rank_compute.iter().enumerate() {
            trace.append(w, sub, WorkerState::Useful, t * profile.neighbors * frac);
        }
        trace.close_step(sub);
    }

    // Halo exchange (communication) after neighbour discovery.
    if timing.comm > 0.0 {
        for w in 0..p {
            trace.append(w, Phase::NeighborLists, WorkerState::Communication, timing.comm);
        }
    }

    // Phases E–H: SPH kernels.
    for (sub, frac) in [
        (Phase::Density, 0.35),
        (Phase::Gradients, 0.15),
        (Phase::Momentum, 0.30),
        (Phase::Energy, 0.20),
    ] {
        for (w, &t) in timing.per_rank_compute.iter().enumerate() {
            trace.append(w, sub, WorkerState::Useful, t * profile.sph * frac);
        }
        trace.close_step(sub);
    }

    // Phase I: gravity.
    if profile.gravity > 0.0 {
        for (w, &t) in timing.per_rank_compute.iter().enumerate() {
            trace.append(w, Phase::Gravity, WorkerState::Useful, t * profile.gravity);
        }
        trace.close_step(Phase::Gravity);
    }

    // Phase J: Δt allreduce (sync), the serial per-step section (on one
    // worker while the rest idle — this is an imbalance/idle loss in the
    // POP decomposition, exactly how the paper classifies it), and the
    // particle update.
    for w in 0..p {
        trace.append(w, Phase::Update, WorkerState::Synchronization, timing.collective);
    }
    trace.append(0, Phase::Update, WorkerState::Useful, timing.serial);
    trace.close_step(Phase::Update);
    for (w, &t) in timing.per_rank_compute.iter().enumerate() {
        trace.append(w, Phase::Update, WorkerState::Useful, t * frac_rest);
    }
    trace.close_step(Phase::Update);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_domain::Decomposition;
    use sph_profiler::pop_metrics;

    fn timing(per_rank: Vec<f64>) -> StepTiming {
        let n = per_rank.len();
        StepTiming {
            ranks: n,
            per_rank_compute: per_rank,
            serial: 0.2,
            comm: 0.1,
            collective: 0.05,
            halo_volume: 100,
            decomposition: Decomposition::new(vec![0; 4], n),
        }
    }

    #[test]
    fn serial_tree_idles_other_workers() {
        let t = timing(vec![1.0, 1.0, 1.0, 1.0]);
        let trace = step_trace(&t, &PhaseProfile::sphynx_evrard());
        // Worker 0 has tree-build useful time; workers 1–3 idle during A.
        let a0: f64 = trace
            .spans(0)
            .iter()
            .filter(|s| s.phase == Phase::TreeBuild && s.state == WorkerState::Useful)
            .map(|s| s.duration())
            .sum();
        assert!(a0 > 0.3, "serial tree should aggregate all ranks' share: {a0}");
        for w in 1..4 {
            let a: f64 = trace
                .spans(w)
                .iter()
                .filter(|s| s.phase == Phase::TreeBuild && s.state == WorkerState::Useful)
                .map(|s| s.duration())
                .sum();
            assert_eq!(a, 0.0);
            assert!(trace.state_time(w, WorkerState::Idle) > 0.0);
        }
    }

    #[test]
    fn parallel_tree_spreads_the_work() {
        let t = timing(vec![1.0; 4]);
        let trace = step_trace(&t, &PhaseProfile::hydro_only(false));
        for w in 0..4 {
            let a: f64 = trace
                .spans(w)
                .iter()
                .filter(|s| s.phase == Phase::TreeBuild && s.state == WorkerState::Useful)
                .map(|s| s.duration())
                .sum();
            assert!((a - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn imbalance_appears_as_idle_and_in_pop_lb() {
        // Rank 3 does 2× the work: POP LB from the generated trace must
        // reflect it.
        let t = timing(vec![1.0, 1.0, 1.0, 2.0]);
        let trace = step_trace(&t, &PhaseProfile::hydro_only(false));
        let m = pop_metrics(&trace, None);
        assert!(m.load_balance < 0.95, "LB {} should show the straggler", m.load_balance);
        assert!(trace.state_time(0, WorkerState::Idle) > 0.0);
        assert!(trace.state_time(3, WorkerState::Idle) < trace.state_time(0, WorkerState::Idle));
    }

    #[test]
    fn gravity_phase_present_only_when_configured() {
        let t = timing(vec![1.0; 2]);
        let with = step_trace(&t, &PhaseProfile::sphynx_evrard());
        let without = step_trace(&t, &PhaseProfile::hydro_only(true));
        let grav_time = |tr: &Trace| {
            (0..tr.n_workers())
                .flat_map(|w| tr.spans(w).to_vec())
                .filter(|s| s.phase == Phase::Gravity)
                .map(|s| s.duration())
                .sum::<f64>()
        };
        assert!(grav_time(&with) > 0.0);
        assert_eq!(grav_time(&without), 0.0);
    }

    #[test]
    fn communication_and_sync_recorded() {
        let t = timing(vec![1.0; 3]);
        let trace = step_trace(&t, &PhaseProfile::hydro_only(false));
        for w in 0..3 {
            assert!((trace.state_time(w, WorkerState::Communication) - 0.1).abs() < 1e-12);
            assert!((trace.state_time(w, WorkerState::Synchronization) - 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn all_workers_end_at_the_same_time() {
        let t = timing(vec![0.5, 1.5, 1.0]);
        let trace = step_trace(&t, &PhaseProfile::sphynx_evrard());
        let end = trace.makespan();
        for w in 0..3 {
            assert!((trace.end_of(w) - end).abs() < 1e-12);
        }
    }
}
