//! Per-code cost models: counted work units → modelled FLOPs.
//!
//! Each parent code burns a different number of effective FLOPs per
//! counted interaction (SPHYNX evaluates sinc kernels and 3×3 inverses per
//! pair; ChaNGa pays Charm++ object scheduling on top of every kernel;
//! SPH-flow runs a lean Wendland loop). Each also carries a different
//! *serial* per-step section — the term that caps its strong scaling
//! (SPHYNX 1.3.1's serial tree build was the headline finding of the
//! paper's Fig. 4 analysis). The concrete constants live in
//! `sph-parents`; this module defines the model and the arithmetic.

/// Cost model of one code on one machine-independent basis (FLOPs and
/// bytes; the machine model converts to seconds).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// FLOPs per SPH pair interaction (density + force loops combined).
    pub sph_flops_per_interaction: f64,
    /// FLOPs per gravity interaction (particle–particle or
    /// particle–multipole; ChaNGa's 16-pole expansions are folded into
    /// this constant — see DESIGN.md substitution table).
    pub gravity_flops_per_interaction: f64,
    /// FLOPs per particle per tree level for the (parallelizable) tree
    /// build and neighbour bookkeeping.
    pub tree_flops_per_particle: f64,
    /// FLOPs per particle of *serial* (unparallelizable) per-step work —
    /// replicated sequential sections, domain bookkeeping, I/O stubs.
    /// This is the Amdahl term that flattens the scaling curves.
    pub serial_flops_per_particle: f64,
    /// Payload bytes exchanged per halo particle (positions, velocities,
    /// thermodynamics — SPH needs more than gravity-only codes).
    pub bytes_per_halo_particle: f64,
    /// Fixed per-step runtime overhead in FLOP-equivalents per rank
    /// (scheduler turns, message dispatch) — multiplied by the rank count
    /// in the collective term.
    pub runtime_flops_per_rank: f64,
}

impl CostModel {
    /// Modelled FLOPs for a rank owning `n_local` particles with the given
    /// counted work.
    pub fn rank_flops(
        &self,
        sph_interactions: f64,
        gravity_interactions: f64,
        n_local: f64,
    ) -> f64 {
        assert!(sph_interactions >= 0.0 && gravity_interactions >= 0.0 && n_local >= 0.0);
        let tree = self.tree_flops_per_particle * n_local * (n_local.max(2.0)).log2();
        self.sph_flops_per_interaction * sph_interactions
            + self.gravity_flops_per_interaction * gravity_interactions
            + tree
    }

    /// Serial per-step FLOPs for a problem of `n_total` particles.
    pub fn serial_flops(&self, n_total: f64) -> f64 {
        self.serial_flops_per_particle * n_total
    }

    /// Halo exchange payload for `particles` ghosts.
    pub fn halo_bytes(&self, particles: f64) -> f64 {
        self.bytes_per_halo_particle * particles
    }
}

impl Default for CostModel {
    /// A generic lean SPH code (used by tests; the calibrated per-parent
    /// models live in `sph-parents`).
    fn default() -> Self {
        CostModel {
            sph_flops_per_interaction: 400.0,
            gravity_flops_per_interaction: 60.0,
            tree_flops_per_particle: 40.0,
            serial_flops_per_particle: 500.0,
            bytes_per_halo_particle: 96.0,
            runtime_flops_per_rank: 1e5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_flops_composition() {
        let c = CostModel {
            sph_flops_per_interaction: 100.0,
            gravity_flops_per_interaction: 10.0,
            tree_flops_per_particle: 1.0,
            serial_flops_per_particle: 0.0,
            bytes_per_halo_particle: 64.0,
            runtime_flops_per_rank: 0.0,
        };
        // 1000 sph, 500 gravity, 256 particles (tree: 256·log2(256)=2048).
        let f = c.rank_flops(1000.0, 500.0, 256.0);
        assert!((f - (100_000.0 + 5_000.0 + 2048.0)).abs() < 1e-9);
    }

    #[test]
    fn serial_term_scales_with_problem_size() {
        let c = CostModel::default();
        assert!((c.serial_flops(2e6) / c.serial_flops(1e6) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn halo_bytes_linear() {
        let c = CostModel::default();
        assert_eq!(c.halo_bytes(100.0), 9600.0);
    }

    #[test]
    fn empty_rank_costs_nothing_variable() {
        let c = CostModel::default();
        assert_eq!(c.rank_flops(0.0, 0.0, 0.0), 0.0);
    }
}
