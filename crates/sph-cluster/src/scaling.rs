//! The strong-scaling experiment driver (§5.2 "Analysis of strong
//! scalability").
//!
//! "This work employs a set of strong-scaling experiments to assess the
//! performance at scale with fixed number of particles for each test."
//! The physics evolution is independent of the rank count, so one
//! simulation is evolved once and each step is modelled at every core
//! count of the sweep — exactly a fixed-problem (strong-scaling) study.

use crate::step_model::{model_step, StepModelConfig, StepTiming, StepWorkload};
use sph_core::config::TimeStepping;
use sph_core::timestep::TimeStepError;
use sph_exa::Simulation;
use sph_math::OnlineStats;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Core counts to model (paper: 12, 24, 48, …, 1536).
    pub core_counts: Vec<usize>,
    /// Time-steps to run and average over (paper: 20).
    pub steps: usize,
}

impl ScalingConfig {
    /// The paper's Piz Daint sweep: 12 × 2^k up to `max`.
    pub fn paper_sweep(max: usize) -> Self {
        let mut core_counts = Vec::new();
        let mut c = 12;
        while c <= max {
            core_counts.push(c);
            c *= 2;
        }
        ScalingConfig { core_counts, steps: 20 }
    }
}

/// One row of a strong-scaling figure: core count → time per step.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    pub cores: usize,
    /// Mean modelled time per time-step (the y-axis of Figs. 1–3).
    pub mean_step_time: f64,
    pub min_step_time: f64,
    pub max_step_time: f64,
    /// Mean POP load balance of the compute phase.
    pub mean_load_balance: f64,
    /// Mean fraction of the step spent communicating.
    pub mean_comm_fraction: f64,
    /// Particles per core (the paper's stall indicator: ~10⁴).
    pub particles_per_core: f64,
}

/// Evolve `sim` for `config.steps` macro steps and model every step at
/// every core count. Returns one [`ScalingRow`] per core count plus the
/// per-step timings (outer index = core count) for deeper analysis.
/// Fails if the underlying physics step fails (e.g. time step collapse).
pub fn scaling_experiment(
    sim: &mut Simulation,
    model: &StepModelConfig,
    config: &ScalingConfig,
) -> Result<(Vec<ScalingRow>, Vec<Vec<StepTiming>>), TimeStepError> {
    assert!(!config.core_counts.is_empty() && config.steps > 0);
    let n = sim.sys.len();
    let mut stats: Vec<OnlineStats> = vec![OnlineStats::new(); config.core_counts.len()];
    let mut lb: Vec<OnlineStats> = vec![OnlineStats::new(); config.core_counts.len()];
    let mut commfrac: Vec<OnlineStats> = vec![OnlineStats::new(); config.core_counts.len()];
    let mut per_step: Vec<Vec<StepTiming>> = vec![Vec::new(); config.core_counts.len()];
    // Work measured on the previous step — what a dynamic balancer has.
    let mut prev_work: Option<Vec<f64>> = None;

    for _ in 0..config.steps {
        let report = sim.step()?;
        // Per-particle work for this step. Under individual time-stepping a
        // particle on rung r was evaluated 2^r times per macro step.
        let rung_factor: Vec<f64> = match sim.config.time_stepping {
            TimeStepping::Individual { .. } => {
                sim.sys.rung.iter().map(|&r| (1u64 << r) as f64).collect()
            }
            _ => vec![1.0; n],
        };
        let work = sim.per_particle_work();
        let sph_work: Vec<f64> = (0..n).map(|i| work[i] * rung_factor[i]).collect();
        // Gravity share: per-particle gravity counts are folded into
        // `per_particle_work`; split by the global ratio measured this step.
        let total_gravity = report.stats.gravity.total_interactions() as f64;
        let total_all: f64 = sph_work.iter().sum();
        let gravity_ratio =
            if total_all > 0.0 { (total_gravity / total_all).min(1.0) } else { 0.0 };
        let gravity_work: Vec<f64> = sph_work.iter().map(|w| w * gravity_ratio).collect();
        let hydro_work: Vec<f64> =
            sph_work.iter().zip(&gravity_work).map(|(&w, &g)| (w - g).max(0.0)).collect();

        let workload = StepWorkload {
            positions: &sim.sys.x,
            sph_work: &hydro_work,
            gravity_work: &gravity_work,
            interaction_radius: 2.0 * sim.sys.max_h(),
            periodicity: sim.sys.periodicity,
            bounds: sim.sys.bounds(),
        };
        for (k, &cores) in config.core_counts.iter().enumerate() {
            let timing = model_step(&workload, cores, model, prev_work.as_deref());
            stats[k].push(timing.total());
            lb[k].push(timing.load_balance());
            commfrac[k].push((timing.comm + timing.collective) / timing.total().max(1e-300));
            per_step[k].push(timing);
        }
        prev_work = Some(sph_work);
    }

    let rows = config
        .core_counts
        .iter()
        .enumerate()
        .map(|(k, &cores)| ScalingRow {
            cores,
            mean_step_time: stats[k].mean(),
            min_step_time: stats[k].min(),
            max_step_time: stats[k].max(),
            mean_load_balance: lb[k].mean(),
            mean_comm_fraction: commfrac[k].mean(),
            particles_per_core: n as f64 / cores as f64,
        })
        .collect();
    Ok((rows, per_step))
}

/// One row of a weak-scaling experiment: cores grow with the problem so
/// particles/core stays fixed — "usually the regime in which they operate
/// in production runs" (§5.2), named there as unexplored future work.
#[derive(Debug, Clone)]
pub struct WeakScalingRow {
    pub cores: usize,
    pub particles: usize,
    /// Mean modelled time per step; flat = ideal weak scaling.
    pub mean_step_time: f64,
    /// Weak-scaling efficiency t(1 node)/t(p).
    pub efficiency: f64,
    pub mean_load_balance: f64,
    pub mean_comm_fraction: f64,
}

/// Run a weak-scaling experiment: `build` constructs a simulation of the
/// requested particle count; each (cores, particles) pair keeps
/// `particles_per_core` fixed. Each point evolves its own simulation for
/// `steps` steps (the problem itself changes size, unlike strong scaling).
/// Fails if any physics step fails (e.g. time step collapse).
pub fn weak_scaling_experiment(
    mut build: impl FnMut(usize) -> Simulation,
    model: &StepModelConfig,
    core_counts: &[usize],
    particles_per_core: usize,
    steps: usize,
) -> Result<Vec<WeakScalingRow>, TimeStepError> {
    assert!(!core_counts.is_empty() && steps > 0 && particles_per_core > 0);
    let mut rows = Vec::new();
    let mut base_time = None;
    for &cores in core_counts {
        let target = cores * particles_per_core;
        let mut sim = build(target);
        let n = sim.sys.len();
        let mut time_stats = OnlineStats::new();
        let mut lb_stats = OnlineStats::new();
        let mut comm_stats = OnlineStats::new();
        let mut prev_work: Option<Vec<f64>> = None;
        for _ in 0..steps {
            sim.step()?;
            let work = sim.per_particle_work().to_vec();
            let zeros = vec![0.0; n];
            let workload = StepWorkload {
                positions: &sim.sys.x,
                sph_work: &work,
                gravity_work: &zeros,
                interaction_radius: 2.0 * sim.sys.max_h(),
                periodicity: sim.sys.periodicity,
                bounds: sim.sys.bounds(),
            };
            let t = model_step(&workload, cores, model, prev_work.as_deref());
            time_stats.push(t.total());
            lb_stats.push(t.load_balance());
            comm_stats.push((t.comm + t.collective) / t.total().max(1e-300));
            prev_work = Some(work);
        }
        let mean = time_stats.mean();
        let base = *base_time.get_or_insert(mean);
        rows.push(WeakScalingRow {
            cores,
            particles: n,
            mean_step_time: mean,
            efficiency: base / mean,
            mean_load_balance: lb_stats.mean(),
            mean_comm_fraction: comm_stats.mean(),
        });
    }
    Ok(rows)
}

/// Render weak-scaling rows as text.
pub fn render_weak_scaling_table(title: &str, rows: &[WeakScalingRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str("  cores  particles  time/step(s)  weak-eff  LB     comm%\n");
    for r in rows {
        out.push_str(&format!(
            "  {:5}  {:9}  {:12.3}  {:8.2}  {:.3}  {:5.1}\n",
            r.cores,
            r.particles,
            r.mean_step_time,
            r.efficiency,
            r.mean_load_balance,
            r.mean_comm_fraction * 100.0
        ));
    }
    out
}

/// Render rows as the text analogue of a Figs. 1–3 panel.
pub fn render_scaling_table(title: &str, rows: &[ScalingRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str("  cores  time/step(s)  speedup  efficiency  LB     comm%  part/core\n");
    let Some((c0, t0)) = rows.first().map(|r| (r.cores, r.mean_step_time)) else {
        return out;
    };
    for r in rows {
        let speedup = t0 / r.mean_step_time;
        let eff = speedup / (r.cores as f64 / c0 as f64);
        out.push_str(&format!(
            "  {:5}  {:12.3}  {:7.2}  {:10.2}  {:.3}  {:5.1}  {:9.0}\n",
            r.cores,
            r.mean_step_time,
            speedup,
            eff,
            r.mean_load_balance,
            r.mean_comm_fraction * 100.0,
            r.particles_per_core
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::machine::piz_daint;
    use crate::step_model::{LoadBalancing, Partitioner};
    use sph_core::config::SphConfig;
    use sph_core::particles::ParticleSystem;
    use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};

    fn small_sim() -> Simulation {
        let mut rng = SplitMix64::new(11);
        let n = 800;
        let mut x = Vec::new();
        while x.len() < n {
            let p = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            x.push(p);
        }
        let sys = ParticleSystem::new(
            x,
            vec![Vec3::ZERO; n],
            vec![1.0 / n as f64; n],
            vec![0.5; n],
            0.15,
            Periodicity::open(Aabb::unit()),
        );
        let cfg = SphConfig { target_neighbors: 40, max_h_iterations: 4, ..Default::default() };
        Simulation::new(sys, cfg).unwrap()
    }

    fn model() -> StepModelConfig {
        StepModelConfig {
            partitioner: Partitioner::Orb,
            balancing: LoadBalancing::Static,
            machine: piz_daint(),
            cost: CostModel::default(),
        }
    }

    #[test]
    fn paper_sweep_layout() {
        let s = ScalingConfig::paper_sweep(1536);
        assert_eq!(s.core_counts, vec![12, 24, 48, 96, 192, 384, 768, 1536]);
        assert_eq!(s.steps, 20);
    }

    #[test]
    fn scaling_rows_show_speedup_then_saturation() {
        let mut sim = small_sim();
        let cfg = ScalingConfig { core_counts: vec![1, 4, 16, 256], steps: 2 };
        let (rows, per_step) = scaling_experiment(&mut sim, &model(), &cfg).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(per_step[0].len(), 2);
        // Monotone decrease in time per step at small counts...
        assert!(rows[1].mean_step_time < rows[0].mean_step_time);
        assert!(rows[2].mean_step_time < rows[1].mean_step_time);
        // ...but efficiency at 256 ranks of an 800-particle problem has
        // collapsed (3 particles/core!).
        let eff_16 = rows[0].mean_step_time / rows[2].mean_step_time / 16.0;
        let eff_256 = rows[0].mean_step_time / rows[3].mean_step_time / 256.0;
        assert!(eff_256 < eff_16 * 0.5, "eff16 {eff_16} eff256 {eff_256}");
        assert_eq!(rows[3].particles_per_core, 800.0 / 256.0);
    }

    #[test]
    fn weak_scaling_holds_particles_per_core() {
        let cfg = model();
        let rows = weak_scaling_experiment(
            |n| {
                let mut rng = SplitMix64::new(n as u64);
                let x: Vec<Vec3> = (0..n)
                    .map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64()))
                    .collect();
                let sys = ParticleSystem::new(
                    x,
                    vec![Vec3::ZERO; n],
                    vec![1.0 / n as f64; n],
                    vec![0.5; n],
                    0.3 / (n as f64).cbrt() * 4.0,
                    Periodicity::open(Aabb::unit()),
                );
                Simulation::new(
                    sys,
                    SphConfig { target_neighbors: 30, max_h_iterations: 3, ..Default::default() },
                )
                .unwrap()
            },
            &cfg,
            &[2, 4, 8],
            200,
            1,
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        for (r, &cores) in rows.iter().zip(&[2usize, 4, 8]) {
            assert_eq!(r.cores, cores);
            assert_eq!(r.particles, cores * 200);
            assert!(r.mean_step_time > 0.0);
        }
        // First row is the reference: efficiency 1 by construction.
        assert!((rows[0].efficiency - 1.0).abs() < 1e-12);
        // Weak scaling cannot be super-linear in this model beyond noise.
        assert!(rows[2].efficiency < 1.3, "weak-eff {}", rows[2].efficiency);
        let table = render_weak_scaling_table("weak", &rows);
        assert!(table.contains("weak-eff"));
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn render_table_contains_rows() {
        let mut sim = small_sim();
        let cfg = ScalingConfig { core_counts: vec![2, 8], steps: 1 };
        let (rows, _) = scaling_experiment(&mut sim, &model(), &cfg).unwrap();
        let s = render_scaling_table("Square test", &rows);
        assert!(s.contains("Square test"));
        assert!(s.contains("speedup"));
        assert_eq!(s.lines().count(), 4);
    }
}
