//! Distributed-memory cluster simulator.
//!
//! The paper's evaluation ran on Piz Daint (Cray XC50, Aries dragonfly,
//! 12 cores/node used) and MareNostrum 4 (Lenovo, Intel Omni-Path,
//! 48 cores/node) up to 1 536 cores. Reproducing the strong-scaling
//! figures (Figs. 1–3) without that hardware requires a performance model
//! with the right *structure*; this crate provides it:
//!
//! * [`machine`] — machine models of the two platforms (per-core
//!   sustained FLOP rate, cores/node, α–β network parameters);
//! * [`cost`] — per-code cost models translating *counted* work units
//!   (SPH pair interactions, gravity cell/particle interactions, tree
//!   build, serial per-step sections) into modelled seconds;
//! * [`step_model`] — models one time-step at a given rank count from the
//!   real per-particle work measured by `sph-exa`, using a real domain
//!   decomposition (`sph-domain`) and real halo volumes;
//! * [`scaling`] — the strong-scaling experiment driver (one simulation
//!   evolution, modelled at every core count — exactly the fixed-problem
//!   sweep of §5.2);
//! * [`tracegen`] — renders a modelled step into a `sph-profiler` trace
//!   (the Fig. 4 analogue) including serial-tree idling and barrier waits.
//!
//! What is *not* modelled is as important: the model never invents load
//! imbalance or halo volume — both come from the actual particle
//! distribution of the actual simulation; only the unit costs
//! (FLOP/interaction, latency, bandwidth) are calibrated constants
//! (documented in EXPERIMENTS.md).

pub mod calibrate;
pub mod cost;
pub mod machine;
pub mod scaling;
pub mod step_model;
pub mod tracegen;

pub use calibrate::OnlineCalibrator;
pub use cost::CostModel;
pub use machine::{marenostrum4, piz_daint, MachineModel, NetworkModel};
pub use scaling::{scaling_experiment, ScalingConfig, ScalingRow};
pub use step_model::{
    calibrate_machine, model_measured_step, model_step, LoadBalancing, MeasuredStep, Partitioner,
    StepModelConfig, StepTiming, StepWorkload,
};
