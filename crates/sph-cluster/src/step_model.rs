//! Model one time-step at a given rank count.
//!
//! Inputs are **measured**, not assumed: the positions and per-particle
//! work come from the real SPH evaluation in `sph-exa`; the decomposition
//! and halo volumes are computed by the real `sph-domain` algorithms. The
//! model then charges:
//!
//! ```text
//! T_step = max_r T_compute(r)            (imbalance appears here)
//!        + T_serial                      (Amdahl term, replicated work)
//!        + max_r T_halo(r)               (α–β per neighbour message)
//!        + T_allreduce(dt, P)            (the step-5 collective)
//! ```

use crate::cost::CostModel;
use crate::machine::MachineModel;
use sph_domain::{halo_sets, orb_partition, sfc_partition, slab_partition, Decomposition, SfcKind};
use sph_math::{Aabb, Periodicity, Vec3};

/// Which decomposition algorithm a code uses (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Static equal-width slabs along an axis (SPHYNX "straightforward").
    Slab { axis: usize },
    /// Space-filling curve (ChaNGa).
    Sfc(SfcKind),
    /// Orthogonal recursive bisection (SPH-flow).
    Orb,
}

/// Load-balancing policy (Table 3 "Load Balancing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalancing {
    /// Decompose by particle count only (SPHYNX: "None (static)").
    Static,
    /// Re-decompose each step with measured per-particle costs as weights
    /// (ChaNGa "Dynamic"; SPH-flow "Local-Inner-Outer" is approximated by
    /// the same mechanism — see DESIGN.md).
    Dynamic,
}

/// One step's workload, measured from the real simulation.
pub struct StepWorkload<'a> {
    /// Particle positions at this step.
    pub positions: &'a [Vec3],
    /// Per-particle SPH interaction counts (macro-step totals).
    pub sph_work: &'a [f64],
    /// Per-particle gravity interaction counts (zero when gravity off).
    pub gravity_work: &'a [f64],
    /// Interaction radius (2·max h) defining the halo width.
    pub interaction_radius: f64,
    /// Boundary metric.
    pub periodicity: Periodicity,
    /// Domain bounds for the slab/SFC partitioners.
    pub bounds: Aabb,
}

/// Modelled timing of one step at one rank count.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Ranks (cores) modelled.
    pub ranks: usize,
    /// Per-rank compute seconds (imbalance visible directly).
    pub per_rank_compute: Vec<f64>,
    /// Serial (replicated) section, seconds.
    pub serial: f64,
    /// Max per-rank halo-exchange time, seconds.
    pub comm: f64,
    /// Collective (allreduce) time, seconds.
    pub collective: f64,
    /// Total imported halo particles.
    pub halo_volume: usize,
    /// The decomposition used (kept for tracing / metrics).
    pub decomposition: Decomposition,
}

impl StepTiming {
    pub fn compute_max(&self) -> f64 {
        self.per_rank_compute.iter().cloned().fold(0.0, f64::max)
    }

    pub fn compute_mean(&self) -> f64 {
        self.per_rank_compute.iter().sum::<f64>() / self.per_rank_compute.len() as f64
    }

    /// Load balance efficiency of the compute part (mean/max — the POP LB).
    pub fn load_balance(&self) -> f64 {
        let max = self.compute_max();
        if max > 0.0 {
            self.compute_mean() / max
        } else {
            1.0
        }
    }

    /// Total modelled step time.
    pub fn total(&self) -> f64 {
        self.compute_max() + self.serial + self.comm + self.collective
    }
}

/// Model configuration: which code on which machine.
#[derive(Debug, Clone, Copy)]
pub struct StepModelConfig {
    pub partitioner: Partitioner,
    pub balancing: LoadBalancing,
    pub machine: MachineModel,
    pub cost: CostModel,
}

/// Model one step of `workload` on `ranks` cores.
///
/// `prev_work` supplies the measured per-particle costs the *dynamic*
/// balancer would have from the previous step; `None` forces a static
/// (count-based) decomposition even under `LoadBalancing::Dynamic`
/// (the first step of a run).
pub fn model_step(
    workload: &StepWorkload<'_>,
    ranks: usize,
    config: &StepModelConfig,
    prev_work: Option<&[f64]>,
) -> StepTiming {
    assert!(ranks > 0);
    let n = workload.positions.len();
    assert_eq!(workload.sph_work.len(), n);
    assert_eq!(workload.gravity_work.len(), n);

    // 1. Decompose — with measured weights when dynamically balanced.
    let weights: Vec<f64> = match (config.balancing, prev_work) {
        (LoadBalancing::Dynamic, Some(w)) => {
            assert_eq!(w.len(), n);
            w.to_vec()
        }
        _ => Vec::new(),
    };
    let decomposition = match config.partitioner {
        Partitioner::Slab { axis } => {
            slab_partition(workload.positions, &workload.bounds, ranks, axis)
        }
        Partitioner::Sfc(kind) => {
            sfc_partition(workload.positions, &workload.bounds, ranks, kind, &weights)
        }
        Partitioner::Orb => orb_partition(workload.positions, ranks, &weights),
    };

    // 2. Per-rank counted work → modelled compute seconds.
    let mut sph_per_rank = vec![0.0f64; ranks];
    let mut grav_per_rank = vec![0.0f64; ranks];
    let mut count_per_rank = vec![0.0f64; ranks];
    for i in 0..n {
        let r = decomposition.assignment[i] as usize;
        sph_per_rank[r] += workload.sph_work[i];
        grav_per_rank[r] += workload.gravity_work[i];
        count_per_rank[r] += 1.0;
    }
    let per_rank_compute: Vec<f64> = (0..ranks)
        .map(|r| {
            let flops =
                config.cost.rank_flops(sph_per_rank[r], grav_per_rank[r], count_per_rank[r]);
            config.machine.compute_time(flops)
        })
        .collect();

    // 3. Serial (replicated) section.
    let serial = config.machine.compute_time(config.cost.serial_flops(n as f64));

    // 4. Halo exchange: per rank, one message per partner plus payload.
    let halos = halo_sets(
        workload.positions,
        &decomposition,
        workload.interaction_radius,
        &workload.periodicity,
    );
    let comm = (0..ranks as u32)
        .map(|r| {
            let imported = halos.imports[r as usize].len() as f64;
            if imported == 0.0 {
                return 0.0;
            }
            let partners = (0..ranks as u32)
                .filter(|&s| s != r && halos.volume_between(s, r) > 0)
                .count() as f64;
            partners * config.machine.network.latency
                + config.machine.network.message_time(config.cost.halo_bytes(imported))
        })
        .fold(0.0, f64::max);

    // 5. Collectives: the new-Δt allreduce plus per-rank runtime overhead.
    let collective = config.machine.network.allreduce_time(8.0, ranks)
        + config.machine.compute_time(config.cost.runtime_flops_per_rank)
            * (ranks as f64).log2().max(1.0);

    StepTiming {
        ranks,
        per_rank_compute,
        serial,
        comm,
        collective,
        halo_volume: halos.total_volume(),
        decomposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::piz_daint;
    use sph_math::SplitMix64;

    fn uniform_workload(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let pos: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        let sph = vec![100.0; n];
        let grav = vec![0.0; n];
        (pos, sph, grav)
    }

    fn workload<'a>(pos: &'a [Vec3], sph: &'a [f64], grav: &'a [f64]) -> StepWorkload<'a> {
        StepWorkload {
            positions: pos,
            sph_work: sph,
            gravity_work: grav,
            interaction_radius: 0.08,
            periodicity: Periodicity::open(Aabb::unit()),
            bounds: Aabb::unit(),
        }
    }

    fn config(partitioner: Partitioner, balancing: LoadBalancing) -> StepModelConfig {
        StepModelConfig { partitioner, balancing, machine: piz_daint(), cost: CostModel::default() }
    }

    #[test]
    fn compute_time_shrinks_with_ranks() {
        let (pos, sph, grav) = uniform_workload(4000, 1);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t2 = model_step(&w, 2, &cfg, None);
        let t16 = model_step(&w, 16, &cfg, None);
        assert!(t16.compute_max() < t2.compute_max() / 4.0);
        // But the serial term is rank-independent.
        assert!((t16.serial - t2.serial).abs() < 1e-15);
    }

    #[test]
    fn total_time_eventually_stalls() {
        // Strong-scaling saturation: beyond some rank count the serial +
        // comm terms dominate and the speedup collapses — the §5.2 stall.
        let (pos, sph, grav) = uniform_workload(4000, 2);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t1 = model_step(&w, 1, &cfg, None).total();
        let t64 = model_step(&w, 64, &cfg, None).total();
        let t512 = model_step(&w, 512, &cfg, None).total();
        let speedup_64 = t1 / t64;
        let speedup_512 = t1 / t512;
        assert!(speedup_64 > 10.0, "64-rank speedup {speedup_64}");
        // Efficiency at 512 must be clearly below at 64 (stall begins).
        assert!(
            speedup_512 / 512.0 < speedup_64 / 64.0,
            "no saturation: {speedup_64}@64 vs {speedup_512}@512"
        );
    }

    #[test]
    fn skewed_work_imbalances_static_but_not_dynamic() {
        let (pos, mut sph, grav) = uniform_workload(4000, 3);
        // Left half of the box does 20× the work (an Evrard-like core).
        for (i, p) in pos.iter().enumerate() {
            if p.x < 0.3 {
                sph[i] = 2000.0;
            }
        }
        let w = workload(&pos, &sph, &grav);
        let static_cfg = config(Partitioner::Sfc(SfcKind::Hilbert), LoadBalancing::Static);
        let t_static = model_step(&w, 8, &static_cfg, Some(&sph));
        let dyn_cfg = config(Partitioner::Sfc(SfcKind::Hilbert), LoadBalancing::Dynamic);
        let t_dyn = model_step(&w, 8, &dyn_cfg, Some(&sph));
        assert!(
            t_static.load_balance() < 0.75,
            "static LB {} should be poor",
            t_static.load_balance()
        );
        assert!(t_dyn.load_balance() > 0.9, "dynamic LB {} should be good", t_dyn.load_balance());
        assert!(t_dyn.total() < t_static.total());
    }

    #[test]
    fn dynamic_without_history_falls_back_to_static() {
        let (pos, sph, grav) = uniform_workload(1000, 4);
        let w = workload(&pos, &sph, &grav);
        let dyn_cfg = config(Partitioner::Orb, LoadBalancing::Dynamic);
        let a = model_step(&w, 4, &dyn_cfg, None);
        let static_cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let b = model_step(&w, 4, &static_cfg, None);
        assert_eq!(a.decomposition.assignment, b.decomposition.assignment);
    }

    #[test]
    fn halo_volume_grows_with_ranks() {
        let (pos, sph, grav) = uniform_workload(3000, 5);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t4 = model_step(&w, 4, &cfg, None);
        let t32 = model_step(&w, 32, &cfg, None);
        assert!(t32.halo_volume > t4.halo_volume);
        assert!(t32.comm > 0.0);
    }

    #[test]
    fn single_rank_has_no_comm() {
        let (pos, sph, grav) = uniform_workload(500, 6);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Slab { axis: 0 }, LoadBalancing::Static);
        let t = model_step(&w, 1, &cfg, None);
        assert_eq!(t.halo_volume, 0);
        assert!(t.collective.is_finite() && t.collective < 1e-3);
        assert!(t.comm < 1e-9);
        assert!((t.load_balance() - 1.0).abs() < 1e-12);
    }
}
