//! Model one time-step at a given rank count.
//!
//! Inputs are **measured**, not assumed: the positions and per-particle
//! work come from the real SPH evaluation in `sph-exa`; the decomposition
//! and halo volumes are computed by the real `sph-domain` algorithms. The
//! model then charges:
//!
//! ```text
//! T_step = max_r T_compute(r)            (imbalance appears here)
//!        + T_serial                      (Amdahl term, replicated work)
//!        + max_r T_halo(r)               (α–β per neighbour message)
//!        + T_allreduce(dt, P)            (the step-5 collective)
//! ```

use crate::cost::CostModel;
use crate::machine::MachineModel;
use sph_domain::{
    halo_sets, orb_partition, sfc_partition, slab_partition, Decomposition, HaloExchange, SfcKind,
};
use sph_math::{Aabb, Periodicity, Vec3};

/// Which decomposition algorithm a code uses (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Static equal-width slabs along an axis (SPHYNX "straightforward").
    Slab { axis: usize },
    /// Space-filling curve (ChaNGa).
    Sfc(SfcKind),
    /// Orthogonal recursive bisection (SPH-flow).
    Orb,
}

/// Load-balancing policy (Table 3 "Load Balancing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalancing {
    /// Decompose by particle count only (SPHYNX: "None (static)").
    Static,
    /// Re-decompose each step with measured per-particle costs as weights
    /// (ChaNGa "Dynamic"; SPH-flow "Local-Inner-Outer" is approximated by
    /// the same mechanism — see DESIGN.md).
    Dynamic,
}

/// One step's workload, measured from the real simulation.
pub struct StepWorkload<'a> {
    /// Particle positions at this step.
    pub positions: &'a [Vec3],
    /// Per-particle SPH interaction counts (macro-step totals).
    pub sph_work: &'a [f64],
    /// Per-particle gravity interaction counts (zero when gravity off).
    pub gravity_work: &'a [f64],
    /// Interaction radius (2·max h) defining the halo width.
    pub interaction_radius: f64,
    /// Boundary metric.
    pub periodicity: Periodicity,
    /// Domain bounds for the slab/SFC partitioners.
    pub bounds: Aabb,
}

/// Modelled timing of one step at one rank count.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Ranks (cores) modelled.
    pub ranks: usize,
    /// Per-rank compute seconds (imbalance visible directly).
    pub per_rank_compute: Vec<f64>,
    /// Serial (replicated) section, seconds.
    pub serial: f64,
    /// Max per-rank halo-exchange time, seconds.
    pub comm: f64,
    /// Collective (allreduce) time, seconds.
    pub collective: f64,
    /// Total imported halo particles.
    pub halo_volume: usize,
    /// The decomposition used (kept for tracing / metrics).
    pub decomposition: Decomposition,
}

impl StepTiming {
    pub fn compute_max(&self) -> f64 {
        self.per_rank_compute.iter().cloned().fold(0.0, f64::max)
    }

    pub fn compute_mean(&self) -> f64 {
        self.per_rank_compute.iter().sum::<f64>() / self.per_rank_compute.len() as f64
    }

    /// Load balance efficiency of the compute part (mean/max — the POP LB).
    pub fn load_balance(&self) -> f64 {
        let max = self.compute_max();
        if max > 0.0 {
            self.compute_mean() / max
        } else {
            1.0
        }
    }

    /// Total modelled step time.
    pub fn total(&self) -> f64 {
        self.compute_max() + self.serial + self.comm + self.collective
    }
}

/// Model configuration: which code on which machine.
#[derive(Debug, Clone, Copy)]
pub struct StepModelConfig {
    pub partitioner: Partitioner,
    pub balancing: LoadBalancing,
    pub machine: MachineModel,
    pub cost: CostModel,
}

/// A step measured by the real distributed driver
/// (`sph_exa::DistributedSimulation`): the decomposition it actually used,
/// the halo exchange it actually performed, and the per-particle work it
/// actually counted. Feeding this into [`model_measured_step`] calibrates
/// the machine model with *measured* exchanges — the model no longer has
/// to re-derive a hypothetical decomposition and halo pattern.
pub struct MeasuredStep<'a> {
    /// The driver's ownership assignment at this step.
    pub decomposition: &'a Decomposition,
    /// The halo exchange the driver performed (verified coverage — the
    /// renegotiated pattern, not the first guess).
    pub halos: &'a HaloExchange,
    /// Per-particle SPH + gravity work units from the driver's
    /// `per_particle_work()`.
    pub work: &'a [f64],
}

/// Per-rank (work, particle-count) totals of a measured step — the
/// attribution shared by [`model_measured_step`] and [`calibrate_machine`]
/// so the model and its calibration can never silently disagree.
fn per_rank_work(measured: &MeasuredStep<'_>) -> (Vec<f64>, Vec<f64>) {
    let ranks = measured.decomposition.nparts;
    let n = measured.decomposition.assignment.len();
    assert_eq!(measured.work.len(), n);
    let mut work_per_rank = vec![0.0f64; ranks];
    let mut count_per_rank = vec![0.0f64; ranks];
    for i in 0..n {
        let r = measured.decomposition.assignment[i] as usize;
        work_per_rank[r] += measured.work[i];
        count_per_rank[r] += 1.0;
    }
    (work_per_rank, count_per_rank)
}

/// Model one step from **measured** distributed-driver data: same cost
/// arithmetic as [`model_step`], but the decomposition and halo volumes
/// are the ones a real multi-rank run produced instead of estimates.
pub fn model_measured_step(measured: &MeasuredStep<'_>, config: &StepModelConfig) -> StepTiming {
    let decomposition = measured.decomposition.clone();
    let ranks = decomposition.nparts;
    let n = decomposition.assignment.len();
    assert_eq!(measured.halos.nparts, ranks);

    // Per-rank measured work → modelled compute seconds. The driver folds
    // gravity interactions into the same work counter, so they are charged
    // at the SPH rate; the calibration helper below absorbs the difference.
    let (work_per_rank, count_per_rank) = per_rank_work(measured);
    let per_rank_compute: Vec<f64> = (0..ranks)
        .map(|r| {
            let flops = config.cost.rank_flops(work_per_rank[r], 0.0, count_per_rank[r]);
            config.machine.compute_time(flops)
        })
        .collect();

    let serial = config.machine.compute_time(config.cost.serial_flops(n as f64));

    // Halo exchange from the *measured* pattern.
    let comm = (0..ranks as u32)
        .map(|r| {
            let imported = measured.halos.imports[r as usize].len() as f64;
            if imported == 0.0 {
                return 0.0;
            }
            let partners = (0..ranks as u32)
                .filter(|&s| s != r && measured.halos.volume_between(s, r) > 0)
                .count() as f64;
            partners * config.machine.network.latency
                + config.machine.network.message_time(config.cost.halo_bytes(imported))
        })
        .fold(0.0, f64::max);

    let collective = config.machine.network.allreduce_time(8.0, ranks)
        + config.machine.compute_time(config.cost.runtime_flops_per_rank)
            * (ranks as f64).log2().max(1.0);

    StepTiming {
        ranks,
        per_rank_compute,
        serial,
        comm,
        collective,
        halo_volume: measured.halos.total_volume(),
        decomposition,
    }
}

/// Calibrate a machine's sustained per-core GFLOP/s from measured per-rank
/// wall-clock seconds (e.g. each rank's `PhaseTimers::total()` for one
/// step): the modelled per-rank FLOPs divided by the measured seconds,
/// averaged over the ranks that did work. This replaces the hand-tuned
/// `core_gflops` constant with one observed on the host actually running
/// the mini-app.
pub fn calibrate_machine(
    machine: MachineModel,
    cost: &CostModel,
    measured: &MeasuredStep<'_>,
    per_rank_seconds: &[f64],
) -> MachineModel {
    let ranks = measured.decomposition.nparts;
    assert_eq!(per_rank_seconds.len(), ranks);
    let (work_per_rank, count_per_rank) = per_rank_work(measured);
    let mut sum = 0.0;
    let mut samples = 0usize;
    for r in 0..ranks {
        if per_rank_seconds[r] <= 0.0 || work_per_rank[r] <= 0.0 {
            continue;
        }
        let flops = cost.rank_flops(work_per_rank[r], 0.0, count_per_rank[r]);
        sum += flops / per_rank_seconds[r] / 1e9 / machine.thread_speedup();
        samples += 1;
    }
    assert!(samples > 0, "calibration needs at least one rank with measured time and work");
    let mut out = machine;
    out.core_gflops = sum / samples as f64;
    out
}

/// Model one step of `workload` on `ranks` cores.
///
/// `prev_work` supplies the measured per-particle costs the *dynamic*
/// balancer would have from the previous step; `None` forces a static
/// (count-based) decomposition even under `LoadBalancing::Dynamic`
/// (the first step of a run).
pub fn model_step(
    workload: &StepWorkload<'_>,
    ranks: usize,
    config: &StepModelConfig,
    prev_work: Option<&[f64]>,
) -> StepTiming {
    assert!(ranks > 0);
    let n = workload.positions.len();
    assert_eq!(workload.sph_work.len(), n);
    assert_eq!(workload.gravity_work.len(), n);

    // 1. Decompose — with measured weights when dynamically balanced.
    let weights: Vec<f64> = match (config.balancing, prev_work) {
        (LoadBalancing::Dynamic, Some(w)) => {
            assert_eq!(w.len(), n);
            w.to_vec()
        }
        _ => Vec::new(),
    };
    let decomposition = match config.partitioner {
        Partitioner::Slab { axis } => {
            slab_partition(workload.positions, &workload.bounds, ranks, axis)
        }
        Partitioner::Sfc(kind) => {
            sfc_partition(workload.positions, &workload.bounds, ranks, kind, &weights)
        }
        Partitioner::Orb => orb_partition(workload.positions, ranks, &weights),
    };

    // 2. Per-rank counted work → modelled compute seconds.
    let mut sph_per_rank = vec![0.0f64; ranks];
    let mut grav_per_rank = vec![0.0f64; ranks];
    let mut count_per_rank = vec![0.0f64; ranks];
    for i in 0..n {
        let r = decomposition.assignment[i] as usize;
        sph_per_rank[r] += workload.sph_work[i];
        grav_per_rank[r] += workload.gravity_work[i];
        count_per_rank[r] += 1.0;
    }
    let per_rank_compute: Vec<f64> = (0..ranks)
        .map(|r| {
            let flops =
                config.cost.rank_flops(sph_per_rank[r], grav_per_rank[r], count_per_rank[r]);
            config.machine.compute_time(flops)
        })
        .collect();

    // 3. Serial (replicated) section.
    let serial = config.machine.compute_time(config.cost.serial_flops(n as f64));

    // 4. Halo exchange: per rank, one message per partner plus payload.
    let halos = halo_sets(
        workload.positions,
        &decomposition,
        workload.interaction_radius,
        &workload.periodicity,
    );
    let comm = (0..ranks as u32)
        .map(|r| {
            let imported = halos.imports[r as usize].len() as f64;
            if imported == 0.0 {
                return 0.0;
            }
            let partners = (0..ranks as u32)
                .filter(|&s| s != r && halos.volume_between(s, r) > 0)
                .count() as f64;
            partners * config.machine.network.latency
                + config.machine.network.message_time(config.cost.halo_bytes(imported))
        })
        .fold(0.0, f64::max);

    // 5. Collectives: the new-Δt allreduce plus per-rank runtime overhead.
    let collective = config.machine.network.allreduce_time(8.0, ranks)
        + config.machine.compute_time(config.cost.runtime_flops_per_rank)
            * (ranks as f64).log2().max(1.0);

    StepTiming {
        ranks,
        per_rank_compute,
        serial,
        comm,
        collective,
        halo_volume: halos.total_volume(),
        decomposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::piz_daint;
    use sph_math::SplitMix64;

    fn uniform_workload(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let pos: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        let sph = vec![100.0; n];
        let grav = vec![0.0; n];
        (pos, sph, grav)
    }

    fn workload<'a>(pos: &'a [Vec3], sph: &'a [f64], grav: &'a [f64]) -> StepWorkload<'a> {
        StepWorkload {
            positions: pos,
            sph_work: sph,
            gravity_work: grav,
            interaction_radius: 0.08,
            periodicity: Periodicity::open(Aabb::unit()),
            bounds: Aabb::unit(),
        }
    }

    fn config(partitioner: Partitioner, balancing: LoadBalancing) -> StepModelConfig {
        StepModelConfig { partitioner, balancing, machine: piz_daint(), cost: CostModel::default() }
    }

    #[test]
    fn compute_time_shrinks_with_ranks() {
        let (pos, sph, grav) = uniform_workload(4000, 1);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t2 = model_step(&w, 2, &cfg, None);
        let t16 = model_step(&w, 16, &cfg, None);
        assert!(t16.compute_max() < t2.compute_max() / 4.0);
        // But the serial term is rank-independent.
        assert!((t16.serial - t2.serial).abs() < 1e-15);
    }

    #[test]
    fn total_time_eventually_stalls() {
        // Strong-scaling saturation: beyond some rank count the serial +
        // comm terms dominate and the speedup collapses — the §5.2 stall.
        let (pos, sph, grav) = uniform_workload(4000, 2);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t1 = model_step(&w, 1, &cfg, None).total();
        let t64 = model_step(&w, 64, &cfg, None).total();
        let t512 = model_step(&w, 512, &cfg, None).total();
        let speedup_64 = t1 / t64;
        let speedup_512 = t1 / t512;
        assert!(speedup_64 > 10.0, "64-rank speedup {speedup_64}");
        // Efficiency at 512 must be clearly below at 64 (stall begins).
        assert!(
            speedup_512 / 512.0 < speedup_64 / 64.0,
            "no saturation: {speedup_64}@64 vs {speedup_512}@512"
        );
    }

    #[test]
    fn skewed_work_imbalances_static_but_not_dynamic() {
        let (pos, mut sph, grav) = uniform_workload(4000, 3);
        // Left half of the box does 20× the work (an Evrard-like core).
        for (i, p) in pos.iter().enumerate() {
            if p.x < 0.3 {
                sph[i] = 2000.0;
            }
        }
        let w = workload(&pos, &sph, &grav);
        let static_cfg = config(Partitioner::Sfc(SfcKind::Hilbert), LoadBalancing::Static);
        let t_static = model_step(&w, 8, &static_cfg, Some(&sph));
        let dyn_cfg = config(Partitioner::Sfc(SfcKind::Hilbert), LoadBalancing::Dynamic);
        let t_dyn = model_step(&w, 8, &dyn_cfg, Some(&sph));
        assert!(
            t_static.load_balance() < 0.75,
            "static LB {} should be poor",
            t_static.load_balance()
        );
        assert!(t_dyn.load_balance() > 0.9, "dynamic LB {} should be good", t_dyn.load_balance());
        assert!(t_dyn.total() < t_static.total());
    }

    #[test]
    fn dynamic_without_history_falls_back_to_static() {
        let (pos, sph, grav) = uniform_workload(1000, 4);
        let w = workload(&pos, &sph, &grav);
        let dyn_cfg = config(Partitioner::Orb, LoadBalancing::Dynamic);
        let a = model_step(&w, 4, &dyn_cfg, None);
        let static_cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let b = model_step(&w, 4, &static_cfg, None);
        assert_eq!(a.decomposition.assignment, b.decomposition.assignment);
    }

    #[test]
    fn halo_volume_grows_with_ranks() {
        let (pos, sph, grav) = uniform_workload(3000, 5);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t4 = model_step(&w, 4, &cfg, None);
        let t32 = model_step(&w, 32, &cfg, None);
        assert!(t32.halo_volume > t4.halo_volume);
        assert!(t32.comm > 0.0);
    }

    #[test]
    fn measured_step_uses_the_driver_exchange_verbatim() {
        // Drive a real 4-rank distributed simulation for a step and feed
        // its measured decomposition + halo pattern into the model: the
        // modelled halo volume must be *exactly* the measured one, and the
        // timing structure must be complete.
        use sph_core::config::SphConfig;
        use sph_exa::{DistributedBuilder, DistributedConfig};
        use sph_math::{Aabb, Periodicity};

        let mut rng = SplitMix64::new(17);
        let n = 600;
        let x: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        let sys = sph_core::particles::ParticleSystem::new(
            x,
            vec![Vec3::ZERO; n],
            vec![1.0 / n as f64; n],
            vec![0.5; n],
            0.1,
            Periodicity::open(Aabb::unit()),
        );
        let sph = SphConfig { target_neighbors: 40, max_h_iterations: 5, ..Default::default() };
        let mut sim = DistributedBuilder::new(sys)
            .config(sph)
            .distributed(DistributedConfig { nranks: 4, ..Default::default() })
            .build()
            .unwrap();
        // Warm up (the first step pays a double derivative evaluation),
        // then time exactly one macro-step — calibrate_machine's contract.
        sim.step().unwrap();
        for t in sim.timers() {
            t.reset();
        }
        sim.step().unwrap();

        let halos = sim.last_exchange().expect("4 ranks exchange halos").clone();
        let measured = MeasuredStep {
            decomposition: sim.decomposition(),
            halos: &halos,
            work: sim.per_particle_work(),
        };
        let cfg = config(Partitioner::Orb, LoadBalancing::Static);
        let t = model_measured_step(&measured, &cfg);
        assert_eq!(t.ranks, 4);
        assert_eq!(t.halo_volume, halos.total_volume());
        assert!(t.comm > 0.0, "measured ghosts must charge communication time");
        assert!(t.compute_max() > 0.0);
        assert!(t.load_balance() > 0.0 && t.load_balance() <= 1.0);

        // Calibration: per-rank wall-clock seconds from the driver's
        // timers produce a finite, positive sustained-GFLOP/s estimate.
        let per_rank_seconds: Vec<f64> = sim.timers().iter().map(|t| t.total()).collect();
        let calibrated = calibrate_machine(piz_daint(), &cfg.cost, &measured, &per_rank_seconds);
        assert!(calibrated.core_gflops.is_finite() && calibrated.core_gflops > 0.0);
        let t2 = model_measured_step(&measured, &StepModelConfig { machine: calibrated, ..cfg });
        assert!(t2.compute_max() > 0.0);
    }

    #[test]
    fn calibration_is_the_mean_per_rank_flops_over_seconds() {
        // Synthetic, fully determined inputs: rank 0 does 100 work units
        // in 1 s, rank 1 does 400 in 2 s. The calibrated rate must be the
        // mean of the two per-rank FLOPs/second figures — not the default
        // constant, and not a whole-run average.
        let decomposition = Decomposition::new(vec![0, 1, 1], 2);
        let halos = HaloExchange {
            imports: vec![vec![1], vec![0]],
            pair_volume: vec![0, 1, 1, 0],
            nparts: 2,
        };
        let work = [100.0, 150.0, 250.0];
        let measured = MeasuredStep { decomposition: &decomposition, halos: &halos, work: &work };
        let cost = CostModel::default();
        let machine = piz_daint();
        let calibrated = calibrate_machine(machine, &cost, &measured, &[1.0, 2.0]);
        let f0 = cost.rank_flops(100.0, 0.0, 1.0);
        let f1 = cost.rank_flops(400.0, 0.0, 2.0);
        let expected = (f0 / 1.0 + f1 / 2.0) / 2.0 / 1e9 / machine.thread_speedup();
        assert!(
            (calibrated.core_gflops - expected).abs() < 1e-12 * expected,
            "calibrated {} vs expected {expected}",
            calibrated.core_gflops
        );
        assert_ne!(calibrated.core_gflops, machine.core_gflops);
    }

    #[test]
    fn single_rank_has_no_comm() {
        let (pos, sph, grav) = uniform_workload(500, 6);
        let w = workload(&pos, &sph, &grav);
        let cfg = config(Partitioner::Slab { axis: 0 }, LoadBalancing::Static);
        let t = model_step(&w, 1, &cfg, None);
        assert_eq!(t.halo_volume, 0);
        assert!(t.collective.is_finite() && t.collective < 1e-3);
        assert!(t.comm < 1e-9);
        assert!((t.load_balance() - 1.0).abs() < 1e-12);
    }
}
