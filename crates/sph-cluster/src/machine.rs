//! Machine models of the two evaluation platforms (§5.2 "System
//! overview").
//!
//! Numbers are public specifications plus one calibrated constant each
//! (sustained per-core GFLOP/s for memory-bound SPH kernels — far below
//! peak, as usual). The network is an α–β model: a message of `b` bytes
//! costs `α + b/β`; collectives pay `⌈log₂ P⌉` rounds.

/// α–β interconnect model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    pub name: &'static str,
    /// Per-message latency α (seconds).
    pub latency: f64,
    /// Per-rank effective bandwidth β (bytes/second).
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Time to move one message of `bytes`.
    pub fn message_time(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        self.latency + bytes / self.bandwidth
    }

    /// Allreduce of `bytes` across `p` ranks (recursive doubling).
    pub fn allreduce_time(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * self.message_time(bytes)
    }
}

/// One of the two evaluation platforms.
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    pub name: &'static str,
    /// Cores per node actually used (paper x-axis annotation:
    /// "Piz Daint=12c/cn, MareNostrum=48c/cn").
    pub cores_per_node: usize,
    /// Sustained per-core GFLOP/s on SPH-like kernels (calibrated).
    pub core_gflops: f64,
    /// Worker threads each rank runs (hybrid MPI+threads). 1 = the paper's
    /// flat one-rank-per-core configuration.
    pub threads_per_rank: usize,
    /// Parallel efficiency of the in-rank thread pool at `threads_per_rank`
    /// (0, 1]: calibrated from the measured `sph_step_threads` bench in
    /// sph-bench, so the modelled speedup matches the shim's real one.
    pub thread_efficiency: f64,
    pub network: NetworkModel,
}

impl MachineModel {
    /// Effective speedup of one rank's compute from in-rank threading:
    /// `1 + e·(t − 1)` — exactly 1 for a single thread regardless of `e`.
    pub fn thread_speedup(&self) -> f64 {
        1.0 + self.thread_efficiency * (self.threads_per_rank as f64 - 1.0)
    }

    /// Seconds to execute `flops` on one rank (its threads included).
    pub fn compute_time(&self, flops: f64) -> f64 {
        assert!(flops >= 0.0);
        flops / (self.core_gflops * 1e9 * self.thread_speedup())
    }

    /// Hybrid variant of this machine: `threads` workers per rank at the
    /// measured `efficiency`. Feed it the speedup from the sph-bench
    /// `sph_step_threads` bench (`efficiency = (S − 1)/(t − 1)`). Measured
    /// values may legitimately exceed 1 (cache-footprint superlinearity) or
    /// dip below 0 (threading overhead on starved hardware); only a
    /// non-positive resulting speedup is rejected.
    pub fn with_threads(mut self, threads: usize, efficiency: f64) -> Self {
        assert!(threads >= 1, "ranks need at least one thread");
        assert!(efficiency.is_finite(), "efficiency must be finite");
        self.threads_per_rank = threads;
        self.thread_efficiency = efficiency;
        assert!(
            self.thread_speedup() > 0.0,
            "efficiency {efficiency} at {threads} threads models a non-positive speedup"
        );
        self
    }

    /// Nodes needed for `cores`.
    pub fn nodes_for(&self, cores: usize) -> usize {
        cores.div_ceil(self.cores_per_node)
    }
}

/// Piz Daint hybrid partition: Cray XC50, Intel E5-2690 v3 (Haswell),
/// Aries dragonfly. One MPI rank per core, 12 cores/node as in the paper.
pub fn piz_daint() -> MachineModel {
    MachineModel {
        name: "Piz Daint (XC50, Aries dragonfly)",
        cores_per_node: 12,
        core_gflops: 4.0,
        threads_per_rank: 1,
        thread_efficiency: 1.0,
        network: NetworkModel { name: "Aries dragonfly", latency: 1.3e-6, bandwidth: 10.0e9 },
    }
}

/// MareNostrum 4: Lenovo, Intel Xeon Platinum 8160 (Skylake), 100 Gb
/// Omni-Path full fat tree, 48 cores/node.
pub fn marenostrum4() -> MachineModel {
    MachineModel {
        name: "MareNostrum 4 (Skylake, Omni-Path fat tree)",
        cores_per_node: 48,
        core_gflops: 4.8,
        threads_per_rank: 1,
        thread_efficiency: 1.0,
        network: NetworkModel { name: "Omni-Path fat tree", latency: 1.5e-6, bandwidth: 12.5e9 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine() {
        let n = piz_daint().network;
        let t0 = n.message_time(0.0);
        let t1 = n.message_time(1e6);
        assert!((t0 - n.latency).abs() < 1e-18);
        assert!((t1 - (n.latency + 1e6 / n.bandwidth)).abs() < 1e-15);
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let n = marenostrum4().network;
        assert_eq!(n.allreduce_time(8.0, 1), 0.0);
        let t2 = n.allreduce_time(8.0, 2);
        let t1024 = n.allreduce_time(8.0, 1024);
        assert!((t1024 / t2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn compute_time_inverse_to_rate() {
        let m = piz_daint();
        let t = m.compute_time(4e9);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_round_up() {
        let m = piz_daint();
        assert_eq!(m.nodes_for(12), 1);
        assert_eq!(m.nodes_for(13), 2);
        assert_eq!(m.nodes_for(384), 32);
        let mn = marenostrum4();
        assert_eq!(mn.nodes_for(48), 1);
        assert_eq!(mn.nodes_for(1536), 32);
    }

    #[test]
    fn hybrid_threads_speed_up_compute_only() {
        // The measured 4-thread speedup of the rayon shim (bench
        // sph_step_threads) feeds in as efficiency; compute shrinks by the
        // modelled speedup while the network model is untouched.
        let flat = piz_daint();
        let hybrid = piz_daint().with_threads(4, 0.8);
        assert!((hybrid.thread_speedup() - 3.4).abs() < 1e-12);
        let flops = 4e9;
        assert!((flat.compute_time(flops) / hybrid.compute_time(flops) - 3.4).abs() < 1e-9);
        assert_eq!(flat.network.message_time(1e6), hybrid.network.message_time(1e6));
        // One thread is a no-op regardless of efficiency.
        assert_eq!(piz_daint().with_threads(1, 0.5).thread_speedup(), 1.0);
    }

    #[test]
    fn paper_core_counts() {
        // The x-axes of Figs. 1–3 run 12…1536 in powers of two ×12.
        assert_eq!(piz_daint().cores_per_node, 12);
        assert_eq!(marenostrum4().cores_per_node, 48);
    }
}
