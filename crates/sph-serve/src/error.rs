//! Typed errors for every failure the server can surface over HTTP.
//!
//! The request path never unwraps: each fallible step maps into a
//! [`ServeError`], and the connection handler renders it as a structured
//! JSON body with the matching status code. The variants partition into
//! client errors (bad request, unknown scenario, lost job), admission
//! rejections (over budget, queue full — retryable 429s), and server
//! faults (job execution failure, I/O).

use sph_json::Value;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The HTTP request itself could not be parsed (bad request line,
    /// oversized headers/body, non-UTF-8 payload).
    MalformedRequest(String),
    /// The request body was not valid JSON.
    MalformedJson(String),
    /// The JSON parsed but a parameter is missing, mistyped, or out of
    /// the accepted range.
    InvalidParam(String),
    /// The requested scenario name is not in the registry.
    UnknownScenario(String),
    /// No job with that id exists on this server.
    JobNotFound(String),
    /// No route matches the request path.
    RouteNotFound(String),
    /// The route exists but not for this method.
    MethodNotAllowed { method: String, path: String },
    /// Admission control priced the job above the per-job ceiling.
    OverBudget { price_seconds: f64, max_job_seconds: f64 },
    /// The pending queue is at capacity; retry later.
    QueueFull { depth: usize },
    /// The job ran but failed (scenario panic-free error path).
    JobFailed(String),
    /// Filesystem or socket trouble on the server side.
    Io(String),
}

impl ServeError {
    pub fn status(&self) -> u16 {
        match self {
            ServeError::MalformedRequest(_)
            | ServeError::MalformedJson(_)
            | ServeError::InvalidParam(_) => 400,
            ServeError::UnknownScenario(_)
            | ServeError::JobNotFound(_)
            | ServeError::RouteNotFound(_) => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::OverBudget { .. } | ServeError::QueueFull { .. } => 429,
            ServeError::JobFailed(_) | ServeError::Io(_) => 500,
        }
    }

    /// Stable machine-readable slug for clients to branch on.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::MalformedRequest(_) => "malformed_request",
            ServeError::MalformedJson(_) => "malformed_json",
            ServeError::InvalidParam(_) => "invalid_param",
            ServeError::UnknownScenario(_) => "unknown_scenario",
            ServeError::JobNotFound(_) => "job_not_found",
            ServeError::RouteNotFound(_) => "route_not_found",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::OverBudget { .. } => "over_budget",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::JobFailed(_) => "job_failed",
            ServeError::Io(_) => "io",
        }
    }

    /// Structured JSON error body: `{"error":{"code":...,"message":...}}`
    /// plus variant-specific detail fields.
    pub fn to_body(&self) -> String {
        let mut fields =
            vec![("code", Value::str(self.code())), ("message", Value::Str(self.to_string()))];
        match self {
            ServeError::OverBudget { price_seconds, max_job_seconds } => {
                fields.push(("price_seconds", Value::Num(*price_seconds)));
                fields.push(("max_job_seconds", Value::Num(*max_job_seconds)));
            }
            ServeError::QueueFull { depth } => {
                fields.push(("queue_depth", Value::Num(*depth as f64)));
            }
            _ => {}
        }
        Value::obj(vec![("error", Value::obj(fields))]).render()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MalformedRequest(m) => write!(f, "malformed HTTP request: {m}"),
            ServeError::MalformedJson(m) => write!(f, "request body is not valid JSON: {m}"),
            ServeError::InvalidParam(m) => write!(f, "invalid parameter: {m}"),
            ServeError::UnknownScenario(name) => {
                write!(f, "unknown scenario {name:?}; see GET /scenarios")
            }
            ServeError::JobNotFound(id) => write!(f, "no job with id {id:?}"),
            ServeError::RouteNotFound(path) => write!(f, "no route for {path:?}"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} not allowed on {path:?}")
            }
            ServeError::OverBudget { price_seconds, max_job_seconds } => write!(
                f,
                "job priced at {price_seconds:.3e} modelled seconds exceeds the \
                 per-job ceiling of {max_job_seconds:.3e}; reduce steps or resolution"
            ),
            ServeError::QueueFull { depth } => {
                write!(f, "admission queue is full ({depth} pending); retry later")
            }
            ServeError::JobFailed(m) => write!(f, "job execution failed: {m}"),
            ServeError::Io(m) => write!(f, "server I/O error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_partition_by_fault_owner() {
        assert_eq!(ServeError::MalformedJson("x".into()).status(), 400);
        assert_eq!(ServeError::UnknownScenario("x".into()).status(), 404);
        assert_eq!(
            ServeError::MethodNotAllowed { method: "PUT".into(), path: "/jobs".into() }.status(),
            405
        );
        assert_eq!(
            ServeError::OverBudget { price_seconds: 2.0, max_job_seconds: 1.0 }.status(),
            429
        );
        assert_eq!(ServeError::Io("x".into()).status(), 500);
    }

    #[test]
    fn body_is_parseable_json_with_code_and_detail() {
        let err = ServeError::OverBudget { price_seconds: 2.5, max_job_seconds: 1.0 };
        let doc = sph_json::parse(&err.to_body()).unwrap();
        let inner = doc.get("error").unwrap();
        assert_eq!(inner.get("code").unwrap().as_str(), Some("over_budget"));
        assert_eq!(inner.get("price_seconds").unwrap().as_f64(), Some(2.5));
        assert!(inner.get("message").unwrap().as_str().unwrap().contains("ceiling"));
    }

    #[test]
    fn body_escapes_untrusted_detail() {
        // Hostile scenario names (quotes, newlines) must still yield a
        // parseable body; Display debug-escapes them, quoted() escapes
        // the rest.
        let err = ServeError::UnknownScenario("a\"b\nc".into());
        let doc = sph_json::parse(&err.to_body()).unwrap();
        let msg = doc.get("error").unwrap().get("message").unwrap();
        assert!(msg.as_str().unwrap().contains("a\\\"b\\nc"));
    }
}
