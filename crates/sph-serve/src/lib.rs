//! Simulation-as-a-service over the scenario registry.
//!
//! `sph-serve` turns the workspace's validation scenarios into a small
//! job API: `POST /jobs` submits `(scenario, resolution, steps, seed)`,
//! `GET /jobs/:id` reports status and the finished
//! [`ValidationReport`](sph_scenarios::ValidationReport), and
//! `GET /metrics` exposes queue, cache, and calibration telemetry. Three
//! properties of the underlying stack make the server more than a thin
//! wrapper:
//!
//! * **bit-determinism** — equal specs produce byte-identical results,
//!   so the LRU result cache and in-flight dedup are provably sound
//!   ([`cache`]);
//! * **the cluster cost model** — jobs are priced in modelled seconds
//!   and admitted against a budget, with the machine model calibrated
//!   online from completed jobs ([`admission`]);
//! * **checkpoint/rollback fault tolerance** — running jobs checkpoint
//!   on a cadence and resume across server restarts ([`jobs`]).
//!
//! Everything is hand-rolled on `std` (no crates.io), matching the rest
//! of the workspace.

pub mod admission;
pub mod api;
pub mod cache;
pub mod error;
pub mod http;
pub mod jobs;
pub mod server;

pub use admission::{Admission, AdmissionConfig};
pub use api::JobSpec;
pub use cache::ResultCache;
pub use error::ServeError;
pub use http::{http_call, Request, Response};
pub use server::{Server, ServerConfig, ServerHandle};
