//! Durable job execution: one submitted spec → one deterministic result
//! document, checkpointed on a cadence and resumable across restarts.
//!
//! A job runs the requested scenario through [`ResilientSimulation`]
//! (single in-process rank, empty fault plan) with a fixed checkpoint
//! cadence, inside a per-job [`NamespacedStore`] namespace keyed by the
//! job id. Alongside the physics checkpoints the runner journals a small
//! "progress" blob — the post-first-step conservation baseline and the
//! tracked-metric samples so far, both encoded with shortest-roundtrip
//! decimals, which parse back bit-exactly — so a restarted server can
//! resume from the newest restorable generation and still assemble a
//! result document *byte-identical* to an uninterrupted run's. That
//! byte-identity is asserted by the loadtest's kill/restart drill.
//!
//! Sampling happens at checkpoint-slice boundaries (absolute multiples
//! of the cadence), never at wall-clock-dependent points, so the sample
//! set is a pure function of the spec and the server's cadence config.

use crate::admission::CalibrationSample;
use crate::api::JobSpec;
use crate::error::ServeError;
use sph_core::diagnostics::{state_fingerprint, Conservation};
use sph_domain::HaloExchange;
use sph_exa::{
    DistributedBuilder, DistributedConfig, DistributedSimulation, ResilientConfig,
    ResilientSimulation, SchedulerMode,
};
use sph_ft::{CheckpointStore, DiskStore, FaultPlan, MemoryStore, NamespacedStore};
use sph_json::Value;
use sph_math::Vec3;
use sph_scenarios::{MetricSample, Resolution, Scenario, ScenarioRegistry, ScenarioRun};
use std::path::PathBuf;
use std::sync::Arc;

/// How a job's life is reported over the API.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    Queued,
    Running { completed_steps: u64 },
    Done,
    Failed { error: String },
}

impl JobStatus {
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running { .. } => "running",
            JobStatus::Done => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }
}

/// Server-side record of one job.
#[derive(Clone)]
pub struct JobRecord {
    pub spec: JobSpec,
    pub status: JobStatus,
    pub price_seconds: f64,
    /// The deterministic result document (byte-compared by clients).
    pub result: Option<Arc<String>>,
    /// Volatile per-execution telemetry (timings, recovery counters) —
    /// deliberately *outside* the result document so caching stays sound.
    pub telemetry: Option<Value>,
}

/// Execution knobs shared by every job on a server.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Checkpoint (and sample) every this many macro-steps.
    pub checkpoint_every: u64,
    /// Directory for durable per-job checkpoints; `None` = in-memory
    /// stores (no resume across restarts).
    pub checkpoints_dir: Option<PathBuf>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig { checkpoint_every: 4, checkpoints_dir: None }
    }
}

/// Everything a finished job hands back to the server loop.
#[derive(Debug)]
pub struct CompletedJob {
    pub result_doc: String,
    pub telemetry: Value,
    pub calibration: Option<CalibrationSample>,
    pub resumed: bool,
}

// ---------------------------------------------------------------------
// Progress journal
// ---------------------------------------------------------------------

/// The resumable bookkeeping that is not part of any physics checkpoint.
#[derive(Default)]
struct Journal {
    initial: Option<Conservation>,
    samples: Vec<MetricSample>,
}

const JOURNAL_LABEL: &str = "progress";

fn vec3_value(v: Vec3) -> Value {
    Value::Arr(vec![Value::Num(v.x), Value::Num(v.y), Value::Num(v.z)])
}

fn vec3_from(v: &Value) -> Option<Vec3> {
    let a = v.as_arr()?;
    if a.len() != 3 {
        return None;
    }
    Some(Vec3 { x: a[0].as_f64()?, y: a[1].as_f64()?, z: a[2].as_f64()? })
}

fn conservation_value(c: &Conservation) -> Value {
    Value::obj(vec![
        ("total_mass", Value::Num(c.total_mass)),
        ("momentum", vec3_value(c.momentum)),
        ("angular_momentum", vec3_value(c.angular_momentum)),
        ("kinetic_energy", Value::Num(c.kinetic_energy)),
        ("internal_energy", Value::Num(c.internal_energy)),
        ("gravitational_energy", Value::Num(c.gravitational_energy)),
    ])
}

fn conservation_from(v: &Value) -> Option<Conservation> {
    Some(Conservation {
        total_mass: v.get("total_mass")?.as_f64()?,
        momentum: vec3_from(v.get("momentum")?)?,
        angular_momentum: vec3_from(v.get("angular_momentum")?)?,
        kinetic_energy: v.get("kinetic_energy")?.as_f64()?,
        internal_energy: v.get("internal_energy")?.as_f64()?,
        gravitational_energy: v.get("gravitational_energy")?.as_f64()?,
    })
}

impl Journal {
    fn render(&self) -> String {
        let initial = match &self.initial {
            Some(c) => conservation_value(c),
            None => Value::Null,
        };
        let samples = self
            .samples
            .iter()
            .map(|s| Value::Arr(vec![Value::Num(s.time), Value::Num(s.value)]))
            .collect();
        Value::obj(vec![("initial", initial), ("samples", Value::Arr(samples))]).render()
    }

    fn parse(text: &str) -> Option<Journal> {
        let doc = sph_json::parse(text).ok()?;
        let initial = match doc.get("initial")? {
            Value::Null => None,
            other => Some(conservation_from(other)?),
        };
        let mut samples = Vec::new();
        for entry in doc.get("samples")?.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            samples.push(MetricSample { time: pair[0].as_f64()?, value: pair[1].as_f64()? });
        }
        Some(Journal { initial, samples })
    }

    fn save(&self, store: &mut dyn CheckpointStore) {
        // Journal persistence is best-effort: a lost journal only costs a
        // restart-from-scratch, never a wrong answer (resume refuses to
        // continue without it).
        let _ = store.save_blob(JOURNAL_LABEL, self.render().as_bytes());
    }

    fn load(store: &dyn CheckpointStore) -> Option<Journal> {
        let bytes = store.restore_blob(JOURNAL_LABEL).ok()?;
        Journal::parse(std::str::from_utf8(&bytes).ok()?)
    }
}

// ---------------------------------------------------------------------
// Checkpoint namespace helpers
// ---------------------------------------------------------------------

fn gen_label(generation: u64) -> String {
    // Must match ResilientSimulation's internal label scheme.
    format!("resilient-gen{generation}")
}

/// Generations restorable in this namespace, inferred from the stored
/// per-rank snapshot labels. `DiskStore` reports labels *sanitised*
/// (`.rank0` → `_rank0`), so parse both spellings.
fn stored_generations(store: &dyn CheckpointStore) -> Vec<u64> {
    let mut gens: Vec<u64> = store
        .labels()
        .iter()
        .filter_map(|l| {
            let rest = l.strip_prefix("resilient-gen")?;
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse::<u64>().ok()
        })
        .collect();
    gens.sort_unstable();
    gens.dedup();
    gens
}

/// Remove every checkpoint artifact of this namespace: snapshots, the
/// manifest blobs that accompany them, and the progress journal.
fn wipe_namespace(store: &mut dyn CheckpointStore) {
    let gens = stored_generations(store);
    store.invalidate_all();
    for g in gens {
        // The manifest blob lives under the bare generation label, which
        // has no same-named snapshot, so invalidate_all missed it.
        store.invalidate(&gen_label(g));
    }
    store.invalidate(JOURNAL_LABEL);
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

fn single_rank_config() -> DistributedConfig {
    DistributedConfig { nranks: 1, ..Default::default() }
}

fn build_fresh(sc: &dyn Scenario, spec: &JobSpec) -> Result<DistributedSimulation, ServeError> {
    let setup = sc.init(Resolution { scale: spec.scale });
    let mut b =
        DistributedBuilder::new(setup.sys).config(setup.config).distributed(single_rank_config());
    if let Some(g) = setup.gravity {
        b = b.gravity(g);
    }
    b.build().map_err(|e| ServeError::JobFailed(e.to_string()))
}

/// Try to resume from the newest restorable generation; returns the
/// restored simulation and the journal it left behind.
fn try_resume(
    sc: &dyn Scenario,
    spec: &JobSpec,
    store: &NamespacedStore<DiskStore>,
) -> Option<(DistributedSimulation, Journal)> {
    let gens = stored_generations(store);
    let setup = sc.init(Resolution { scale: spec.scale });
    let restored = gens.iter().rev().find_map(|&g| {
        DistributedSimulation::restore(
            store,
            &gen_label(g),
            setup.config,
            setup.gravity,
            single_rank_config(),
        )
        .ok()
    })?;
    if restored.sys.step_count == 0 {
        // Nothing beyond the construction-time checkpoint happened; a
        // fresh build is bit-identical and needs no journal.
        return None;
    }
    // Past step 0 the conservation baseline only exists in the journal;
    // without it the run must restart rather than guess.
    let journal = Journal::load(store)?;
    journal.initial.as_ref()?;
    Some((restored, journal))
}

/// Execute one job to completion, reporting progress after every slice.
///
/// `progress` receives the completed macro-step count; the server uses
/// it to publish `Running { completed_steps }` (and the loadtest's
/// restart drill uses that to time its kill).
pub fn run_job(
    registry: &ScenarioRegistry,
    spec: &JobSpec,
    runner: &RunnerConfig,
    progress: &dyn Fn(u64),
) -> Result<CompletedJob, ServeError> {
    let sc = registry
        .get(&spec.scenario)
        .ok_or_else(|| ServeError::UnknownScenario(spec.scenario.clone()))?;
    let slice = runner.checkpoint_every.max(1);
    let id = spec.job_id();

    // Per-job namespaced store, plus an independent handle to the same
    // namespace for the journal (the ResilientSimulation owns the first).
    type StoresAndResume = (
        Box<dyn CheckpointStore>,
        Option<NamespacedStore<DiskStore>>,
        Option<(DistributedSimulation, Journal)>,
    );
    let (mut sim_store, mut journal_store, start): StoresAndResume = match &runner.checkpoints_dir {
        Some(dir) => {
            let open = || -> Result<NamespacedStore<DiskStore>, ServeError> {
                Ok(NamespacedStore::new(
                    &id,
                    DiskStore::new(dir).map_err(|e| {
                        ServeError::Io(format!("checkpoint dir {}: {e}", dir.display()))
                    })?,
                ))
            };
            let mut ns = open()?;
            let start = try_resume(sc, spec, &ns);
            if start.is_none() {
                // Stale or unusable leftovers would shadow the new run's
                // generation labels — clear the namespace first.
                wipe_namespace(&mut ns);
            }
            (Box::new(ns), Some(open()?), start)
        }
        None => (Box::new(NamespacedStore::new(&id, MemoryStore::new())), None, None),
    };

    let resumed = start.is_some();
    let (sim, mut journal) = match start {
        Some((sim, journal)) => (sim, journal),
        None => (build_fresh(sc, spec)?, Journal::default()),
    };

    let plan = FaultPlan::new(spec.seed);
    let rcfg = ResilientConfig {
        scheduler: SchedulerMode::FixedSteps(slice),
        ..ResilientConfig::default()
    };
    // Construction writes a fresh generation-0 checkpoint at the current
    // step — on a resume that replaces the generation we restored from.
    if resumed {
        wipe_namespace(sim_store.as_mut());
        if let Some(js) = journal_store.as_mut() {
            journal.save(js);
        }
    }
    let mut rs = ResilientSimulation::new(sim, sim_store, &plan, rcfg)
        .map_err(|e| ServeError::JobFailed(e.to_string()))?;

    let push_sample = |sys: &sph_core::particles::ParticleSystem,
                       samples: &mut Vec<MetricSample>| {
        if let Some(v) = sc.track(sys) {
            if samples.last().map(|s| s.time) != Some(sys.time) {
                samples.push(MetricSample { time: sys.time, value: v });
            }
        }
    };

    if resumed {
        // Heal the boundary sample the previous process may have died
        // before journaling (the restored state *is* that boundary).
        journal.samples.retain(|s| s.time <= rs.sys().time);
        push_sample(rs.sys(), &mut journal.samples);
    } else {
        push_sample(rs.sys(), &mut journal.samples);
    }

    let target = spec.steps;
    while rs.sys().step_count < target {
        let cur = rs.sys().step_count;
        let chunk = if journal.initial.is_none() {
            // The conservation baseline is taken after the *first* step
            // (the first derivative evaluation populates pressures), the
            // same convention as the scenario engine's drive loop.
            1
        } else {
            let next_boundary = (cur / slice + 1) * slice;
            next_boundary.min(target) - cur
        };
        rs.run(chunk).map_err(|e| ServeError::JobFailed(e.to_string()))?;
        if journal.initial.is_none() {
            journal.initial = Some(rs.inner().conservation());
        }
        let now = rs.sys().step_count;
        progress(now);
        if now.is_multiple_of(slice) || now == target {
            push_sample(rs.sys(), &mut journal.samples);
            if let Some(js) = journal_store.as_mut() {
                journal.save(js);
            }
        }
    }

    // Assemble the deterministic result document.
    let stats = rs.stats().clone();
    let sim = rs.into_inner();
    let steps_here = stats.steps_executed.max(1);
    let per_rank_seconds: Vec<f64> =
        sim.timers().iter().map(|t| t.total() / steps_here as f64).collect();
    let phase_seconds = sim.aggregate_timers().snapshot();
    let calibration = Some(CalibrationSample {
        assignment: sim.decomposition().assignment.clone(),
        nranks: sim.decomposition().nparts,
        halos: sim.last_exchange().cloned().unwrap_or(HaloExchange {
            imports: vec![vec![]],
            pair_volume: vec![0],
            nparts: 1,
        }),
        work: sim.per_particle_work().to_vec(),
        per_rank_seconds,
        n_particles: sim.sys.len(),
        scale: spec.scale,
        scenario: spec.scenario.clone(),
    });
    let final_conservation = sim.conservation();
    let initial = journal.initial.unwrap_or(final_conservation);
    let run = ScenarioRun {
        phi: sim.phi.clone(),
        initial,
        final_conservation,
        steps: sim.sys.step_count,
        samples: journal.samples.clone(),
        sys: sim.sys,
    };
    let report = sc.validate(&run);
    let fingerprint = state_fingerprint(&run.sys);
    let result_doc = Value::obj(vec![
        ("spec", spec.to_value()),
        ("n_particles", Value::Num(run.sys.len() as f64)),
        ("steps", Value::Num(run.steps as f64)),
        ("end_time", Value::Num(run.sys.time)),
        ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
        ("validation", report.to_value()),
    ])
    .render();

    let telemetry = Value::obj(vec![
        ("resumed", Value::Bool(resumed)),
        ("steps_executed_here", Value::Num(stats.steps_executed as f64)),
        ("checkpoints_written", Value::Num(stats.checkpoints_written as f64)),
        ("checkpoint_bytes", Value::Num(stats.checkpoint_bytes as f64)),
        ("rollbacks", Value::Num(f64::from(stats.rollbacks))),
        (
            "phase_seconds",
            Value::Obj(
                phase_seconds.iter().map(|(p, s)| (p.name().to_string(), Value::Num(*s))).collect(),
            ),
        ),
    ]);

    // The job is complete; its checkpoints have served their purpose.
    if let Some(js) = journal_store.as_mut() {
        wipe_namespace(js);
    }

    Ok(CompletedJob { result_doc, telemetry, calibration, resumed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(steps: u64) -> JobSpec {
        JobSpec { scenario: "sod".into(), scale: 0.2, steps, seed: 0 }
    }

    fn registry() -> ScenarioRegistry {
        ScenarioRegistry::builtin()
    }

    #[test]
    fn journal_round_trips_bit_exactly() {
        let journal = Journal {
            initial: Some(Conservation {
                total_mass: 1.0 / 3.0,
                momentum: Vec3 { x: 0.1, y: -2.5e-17, z: 3.0 },
                angular_momentum: Vec3::ZERO,
                kinetic_energy: 0.123_456_789_012_345_68,
                internal_energy: 2.5,
                gravitational_energy: -1.0e-300,
            }),
            samples: vec![
                MetricSample { time: 0.0, value: 0.1 + 0.2 },
                MetricSample { time: 1.0 / 7.0, value: f64::MIN_POSITIVE },
            ],
        };
        let back = Journal::parse(&journal.render()).unwrap();
        let (a, b) = (journal.initial.unwrap(), back.initial.unwrap());
        assert_eq!(a.total_mass.to_bits(), b.total_mass.to_bits());
        assert_eq!(a.momentum.y.to_bits(), b.momentum.y.to_bits());
        assert_eq!(a.gravitational_energy.to_bits(), b.gravitational_energy.to_bits());
        assert_eq!(journal.samples.len(), back.samples.len());
        for (x, y) in journal.samples.iter().zip(&back.samples) {
            assert_eq!(x.time.to_bits(), y.time.to_bits());
            assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
    }

    #[test]
    fn equal_specs_produce_byte_identical_results() {
        let reg = registry();
        let runner = RunnerConfig::default();
        let a = run_job(&reg, &spec(3), &runner, &|_| {}).unwrap();
        let b = run_job(&reg, &spec(3), &runner, &|_| {}).unwrap();
        assert_eq!(a.result_doc, b.result_doc);
        assert!(!a.resumed && !b.resumed);
        let doc = sph_json::parse(&a.result_doc).unwrap();
        assert_eq!(doc.get("steps").unwrap().as_u64(), Some(3));
        assert!(doc.get("validation").unwrap().get("passed").is_some());
    }

    #[test]
    fn unknown_scenario_is_a_typed_error() {
        let reg = registry();
        let bad = JobSpec { scenario: "no-such".into(), scale: 1.0, steps: 1, seed: 0 };
        let err = run_job(&reg, &bad, &RunnerConfig::default(), &|_| {}).unwrap_err();
        assert_eq!(err.status(), 404);
    }

    #[test]
    fn disk_backed_jobs_clean_their_namespace_and_match_memory_runs() {
        let dir = std::env::temp_dir().join(format!("sph-serve-jobs-{}", std::process::id()));
        let runner = RunnerConfig { checkpoint_every: 2, checkpoints_dir: Some(dir.clone()) };
        let reg = registry();
        let disk = run_job(&reg, &spec(3), &runner, &|_| {}).unwrap();
        let memory = run_job(&reg, &spec(3), &RunnerConfig::default(), &|_| {}).unwrap();
        assert_eq!(disk.result_doc, memory.result_doc);
        // Namespace fully cleaned after completion.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.file_name()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "stale checkpoint files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
