//! Job specification: the cache/dedup key of the whole service.
//!
//! A job is fully determined by `(scenario, resolution, steps, seed)`.
//! Because the simulation pipeline is bit-deterministic (fixed-chunk map,
//! ordered reduce — see DETERMINISM.md), two jobs with equal specs produce
//! byte-identical result documents, which is what makes result caching and
//! in-flight deduplication *correct* rather than merely convenient.
//!
//! The job id is the FNV-1a hash of the canonical rendering, so ids are
//! stable across server restarts and across servers.

use crate::error::ServeError;
use sph_json::Value;

/// Bounds accepted at parse time; admission control applies the tighter,
/// cost-model-driven limits on top of these syntactic ones.
const MAX_SCALE: f64 = 16.0;
const MAX_STEPS: u64 = 100_000;

#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub scenario: String,
    /// Resolution multiplier passed to `Resolution { scale }`.
    pub scale: f64,
    /// Macro-steps to evolve.
    pub steps: u64,
    /// Opaque key component; seeds the (empty) fault plan and keeps
    /// otherwise-identical submissions distinct in the cache.
    pub seed: u64,
}

impl JobSpec {
    /// Parse a `POST /jobs` body. `scenario` and `steps` are required;
    /// `resolution` defaults to 1.0 and `seed` to 0.
    pub fn from_json(body: &str) -> Result<JobSpec, ServeError> {
        let doc = sph_json::parse(body).map_err(ServeError::MalformedJson)?;
        if doc.as_obj().is_none() {
            return Err(ServeError::InvalidParam("body must be a JSON object".into()));
        }
        let scenario = doc
            .get("scenario")
            .and_then(|v| v.as_str())
            .ok_or_else(|| ServeError::InvalidParam("\"scenario\" (string) is required".into()))?
            .to_string();
        let scale = match doc.get("resolution") {
            None => 1.0,
            Some(v) => v.as_f64().ok_or_else(|| {
                ServeError::InvalidParam("\"resolution\" must be a number".into())
            })?,
        };
        if !scale.is_finite() || scale <= 0.0 || scale > MAX_SCALE {
            return Err(ServeError::InvalidParam(format!(
                "\"resolution\" must be in (0, {MAX_SCALE}], got {scale}"
            )));
        }
        let steps = doc.get("steps").and_then(|v| v.as_u64()).ok_or_else(|| {
            ServeError::InvalidParam("\"steps\" (positive integer) is required".into())
        })?;
        if steps == 0 || steps > MAX_STEPS {
            return Err(ServeError::InvalidParam(format!(
                "\"steps\" must be in [1, {MAX_STEPS}], got {steps}"
            )));
        }
        let seed = match doc.get("seed") {
            None => 0,
            Some(v) => v.as_u64().ok_or_else(|| {
                ServeError::InvalidParam("\"seed\" must be a non-negative integer".into())
            })?,
        };
        Ok(JobSpec { scenario, scale, steps, seed })
    }

    /// Fixed-field-order JSON value; `render()` of this is the canonical
    /// form hashed into the job id.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("scenario", Value::str(&self.scenario)),
            ("resolution", Value::Num(self.scale)),
            ("steps", Value::Num(self.steps as f64)),
            ("seed", Value::Num(self.seed as f64)),
        ])
    }

    pub fn canonical(&self) -> String {
        self.to_value().render()
    }

    /// Stable 16-hex-digit job id: FNV-1a over the canonical rendering.
    pub fn job_id(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_defaulted_specs() {
        let full = JobSpec::from_json(r#"{"scenario":"sod","resolution":1.5,"steps":20,"seed":7}"#)
            .unwrap();
        assert_eq!(full, JobSpec { scenario: "sod".into(), scale: 1.5, steps: 20, seed: 7 });
        let minimal = JobSpec::from_json(r#"{"scenario":"sedov","steps":5}"#).unwrap();
        assert_eq!(minimal.scale, 1.0);
        assert_eq!(minimal.seed, 0);
    }

    #[test]
    fn rejects_bad_specs_with_400s() {
        for body in [
            "not json",
            "[1,2]",
            r#"{"steps":5}"#,
            r#"{"scenario":"sod"}"#,
            r#"{"scenario":"sod","steps":0}"#,
            r#"{"scenario":"sod","steps":5,"resolution":-1}"#,
            r#"{"scenario":"sod","steps":5,"resolution":1e9}"#,
            r#"{"scenario":"sod","steps":5,"seed":-3}"#,
            r#"{"scenario":"sod","steps":2.5}"#,
        ] {
            let err = JobSpec::from_json(body).unwrap_err();
            assert_eq!(err.status(), 400, "body {body:?} gave {err:?}");
        }
    }

    #[test]
    fn job_id_is_stable_and_seed_sensitive() {
        let a = JobSpec { scenario: "sod".into(), scale: 1.0, steps: 10, seed: 1 };
        let b = JobSpec { scenario: "sod".into(), scale: 1.0, steps: 10, seed: 1 };
        let c = JobSpec { scenario: "sod".into(), scale: 1.0, steps: 10, seed: 2 };
        assert_eq!(a.job_id(), b.job_id());
        assert_ne!(a.job_id(), c.job_id());
        assert_eq!(a.job_id().len(), 16);
        // Canonical form round-trips through the parser.
        let back = JobSpec::from_json(&a.canonical()).unwrap();
        assert_eq!(back, a);
    }
}
