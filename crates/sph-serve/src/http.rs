//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Hand-rolled on purpose: the workspace is dependency-free, and the API
//! surface is small enough (three routes, JSON bodies, `Connection: close`)
//! that a strict subset parser is simpler and safer than a general one.
//! Limits are hard: 16 KiB of headers, 1 MiB of body — anything larger is
//! a [`ServeError::MalformedRequest`], never an allocation hazard.
//!
//! The parser is generic over [`Read`]/[`Write`] so unit tests exercise it
//! on in-memory buffers without sockets.

use crate::error::ServeError;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Maximum bytes of request line + headers we will buffer.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body size.
const MAX_BODY: usize = 1024 * 1024;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Read one HTTP request from a blocking stream.
///
/// Accepts the subset we serve: a request line, optional headers (only
/// `Content-Length` is honoured), CRLF or bare-LF line endings, and an
/// optional body of exactly `Content-Length` bytes.
pub fn read_request(stream: &mut impl Read) -> Result<Request, ServeError> {
    // Read byte-by-byte until the blank line so we never consume body
    // bytes into the header buffer. Requests are small; this is not the
    // hot path of the service (the simulations are).
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream
            .read(&mut byte)
            .map_err(|e| ServeError::MalformedRequest(format!("read: {e}")))?;
        if n == 0 {
            if head.is_empty() {
                return Err(ServeError::MalformedRequest("empty request".into()));
            }
            break;
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD {
            return Err(ServeError::MalformedRequest(format!("headers exceed {MAX_HEAD} bytes")));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }

    let head = String::from_utf8(head)
        .map_err(|_| ServeError::MalformedRequest("headers are not UTF-8".into()))?;
    let mut lines = head.lines();
    let request_line =
        lines.next().ok_or_else(|| ServeError::MalformedRequest("missing request line".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::MalformedRequest("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::MalformedRequest("missing path".into()))?
        .to_string();
    if !path.starts_with('/') {
        return Err(ServeError::MalformedRequest(format!("path {path:?} is not absolute")));
    }

    let mut content_length = 0usize;
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    ServeError::MalformedRequest(format!("bad Content-Length {value:?}"))
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ServeError::MalformedRequest(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        )));
    }

    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| ServeError::MalformedRequest(format!("short body: {e}")))?;
    let body = String::from_utf8(body)
        .map_err(|_| ServeError::MalformedRequest("body is not UTF-8".into()))?;

    Ok(Request { method, path, body })
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response { status, body }
    }

    pub fn from_error(err: &ServeError) -> Response {
        Response { status: err.status(), body: err.to_body() }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialise the response; every reply is JSON and closes the
    /// connection (the closed-loop clients reconnect per request).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Blocking one-shot HTTP client: connect, send, read the full reply.
///
/// Shared by the integration tests and `sph_loadtest` so both speak the
/// exact wire format the server emits. Returns `(status, body)`.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), ServeError> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| ServeError::Io(format!("resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| ServeError::Io(format!("no address for {addr}")))?;
    let mut stream = TcpStream::connect(sock_addr)
        .map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| ServeError::Io(format!("send: {e}")))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| ServeError::Io(format!("recv: {e}")))?;
    let text =
        String::from_utf8(raw).map_err(|_| ServeError::Io("response is not UTF-8".into()))?;
    parse_response(&text)
}

fn parse_response(text: &str) -> Result<(u16, String), ServeError> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| ServeError::Io("response missing header terminator".into()))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::Io(format!("bad status line {status_line:?}")))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\":1}..";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"a\":1}..");
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(read_request(&mut &b""[..]).is_err());
        assert!(read_request(&mut &b"NOT-HTTP\r\n\r\n"[..]).is_err());
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let err = read_request(&mut &raw[..]).unwrap_err();
        assert_eq!(err.status(), 400);
        let mut big = Vec::from(&b"GET /x HTTP/1.1\r\n"[..]);
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD + 10));
        assert!(read_request(&mut &big[..]).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut &raw[..]).is_err());
    }

    #[test]
    fn response_round_trips_through_parser() {
        let resp = Response::json(202, "{\"id\":\"abc\"}".to_string());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let (status, body) = parse_response(std::str::from_utf8(&wire).unwrap()).unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, "{\"id\":\"abc\"}");
    }
}
