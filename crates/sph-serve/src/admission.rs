//! Cost-model admission control.
//!
//! Every submitted job is priced in *modelled seconds* with
//! `sph-cluster`'s step model before it is allowed to queue: predicted
//! per-step compute time (calibrated machine × counted work) times the
//! requested step count. Pricing serves two gates:
//!
//! * a per-job ceiling (`max_job_seconds`) rejects jobs that would
//!   monopolise the server outright (HTTP 429, with the price in the
//!   error body so clients can resize);
//! * a concurrency budget (`budget_seconds`) bounds the *sum* of prices
//!   of running jobs — dispatch holds queued jobs back until capacity
//!   frees up, so one expensive job cannot starve the cheap ones behind
//!   it (the dispatcher skip-scans the FIFO).
//!
//! The calibrator starts from the Piz Daint prior and sharpens online:
//! each completed job contributes its measured per-rank seconds and
//! counted work as a calibration observation, so prices converge to this
//! host's actual throughput instead of the paper machine's.

use crate::api::JobSpec;
use crate::error::ServeError;
use sph_cluster::step_model::MeasuredStep;
use sph_cluster::{piz_daint, CostModel, OnlineCalibrator};
use sph_domain::{Decomposition, HaloExchange};
use std::collections::BTreeMap;

/// Reference lateral particle count used to estimate problem size from a
/// resolution scale before the first job of a scenario completes
/// (scenario lattices are O((lateral·scale)³) in 3-D).
const REF_LATERAL: f64 = 10.0;
/// Assumed pair-interaction count per particle per step for pricing.
const NEIGHBORS_PER_PARTICLE: f64 = 100.0;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sum of prices of concurrently *running* jobs may not exceed this.
    pub budget_seconds: f64,
    /// A single job priced above this is rejected outright.
    pub max_job_seconds: f64,
    /// Maximum queued (admitted but not yet running) jobs.
    pub max_queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { budget_seconds: 600.0, max_job_seconds: 120.0, max_queue_depth: 1024 }
    }
}

/// One completed job's measurements, owned so the worker thread can hand
/// them across the state mutex for calibration.
#[derive(Debug, Clone)]
pub struct CalibrationSample {
    pub assignment: Vec<u32>,
    pub nranks: usize,
    pub halos: HaloExchange,
    /// Per-particle work units accumulated over the whole run.
    pub work: Vec<f64>,
    /// Per-rank busy seconds averaged to one step.
    pub per_rank_seconds: Vec<f64>,
    pub n_particles: usize,
    pub scale: f64,
    pub scenario: String,
}

pub struct Admission {
    cfg: AdmissionConfig,
    calibrator: OnlineCalibrator,
    /// Modelled seconds of currently running jobs.
    outstanding_seconds: f64,
    /// Observed particles per unit scale³, per scenario — replaces the
    /// `REF_LATERAL` guess once a job of that scenario has completed.
    particle_density: BTreeMap<String, f64>,
    rejected_over_budget: u64,
    rejected_queue_full: u64,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            calibrator: OnlineCalibrator::new(piz_daint(), CostModel::default()),
            outstanding_seconds: 0.0,
            particle_density: BTreeMap::new(),
            rejected_over_budget: 0,
            rejected_queue_full: 0,
        }
    }

    fn estimate_particles(&self, spec: &JobSpec) -> f64 {
        let volume_scale = spec.scale.powi(3);
        match self.particle_density.get(&spec.scenario) {
            Some(density) => (density * volume_scale).max(1.0),
            None => (REF_LATERAL * spec.scale).powi(3).max(1.0),
        }
    }

    /// Price a spec in modelled seconds with the current calibration.
    pub fn price(&self, spec: &JobSpec) -> f64 {
        let n = self.estimate_particles(spec);
        let per_step = self.calibrator.predict_step_seconds(n * NEIGHBORS_PER_PARTICLE, n);
        per_step * spec.steps as f64
    }

    /// Gate a submission: returns the price on success, or a 429-class
    /// error. Queue-depth and per-job-ceiling checks happen here; the
    /// *budget* gate is applied at dispatch time (see [`Self::can_start`])
    /// so queued jobs wait rather than bounce.
    pub fn try_admit(&mut self, spec: &JobSpec, queue_depth: usize) -> Result<f64, ServeError> {
        let price = self.price(spec);
        if price > self.cfg.max_job_seconds {
            self.rejected_over_budget += 1;
            return Err(ServeError::OverBudget {
                price_seconds: price,
                max_job_seconds: self.cfg.max_job_seconds,
            });
        }
        if queue_depth >= self.cfg.max_queue_depth {
            self.rejected_queue_full += 1;
            return Err(ServeError::QueueFull { depth: queue_depth });
        }
        Ok(price)
    }

    /// May a job of this price start now? Always true when nothing is
    /// running (a single job over budget would otherwise deadlock).
    pub fn can_start(&self, price: f64) -> bool {
        self.outstanding_seconds == 0.0
            || self.outstanding_seconds + price <= self.cfg.budget_seconds
    }

    pub fn on_start(&mut self, price: f64) {
        self.outstanding_seconds += price;
    }

    /// Release a finished job's budget share and fold its measurements
    /// into the calibration (when the run produced usable ones).
    pub fn on_finish(&mut self, price: f64, sample: Option<&CalibrationSample>) {
        self.outstanding_seconds = (self.outstanding_seconds - price).max(0.0);
        let Some(s) = sample else { return };
        let volume_scale = s.scale.powi(3).max(f64::MIN_POSITIVE);
        self.particle_density.insert(s.scenario.clone(), s.n_particles as f64 / volume_scale);
        let decomposition = Decomposition::new(s.assignment.clone(), s.nranks);
        let measured =
            MeasuredStep { decomposition: &decomposition, halos: &s.halos, work: &s.work };
        self.calibrator.observe(&measured, &s.per_rank_seconds);
    }

    pub fn outstanding_seconds(&self) -> f64 {
        self.outstanding_seconds
    }

    pub fn observations(&self) -> u64 {
        self.calibrator.observations()
    }

    pub fn core_gflops(&self) -> f64 {
        self.calibrator.machine().core_gflops
    }

    pub fn rejections(&self) -> (u64, u64) {
        (self.rejected_over_budget, self.rejected_queue_full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(steps: u64, scale: f64) -> JobSpec {
        JobSpec { scenario: "sod".into(), scale, steps, seed: 0 }
    }

    #[test]
    fn price_scales_with_steps_and_resolution() {
        let adm = Admission::new(AdmissionConfig::default());
        let base = adm.price(&spec(10, 1.0));
        assert!(base > 0.0 && base.is_finite());
        let doubled_steps = adm.price(&spec(20, 1.0));
        assert!((doubled_steps / base - 2.0).abs() < 1e-9);
        assert!(adm.price(&spec(10, 2.0)) > base);
    }

    #[test]
    fn per_job_ceiling_rejects_with_price_attached() {
        let mut adm = Admission::new(AdmissionConfig {
            max_job_seconds: 1e-12,
            ..AdmissionConfig::default()
        });
        let err = adm.try_admit(&spec(1000, 2.0), 0).unwrap_err();
        match err {
            ServeError::OverBudget { price_seconds, max_job_seconds } => {
                assert!(price_seconds > max_job_seconds);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        assert_eq!(adm.rejections().0, 1);
    }

    #[test]
    fn queue_depth_gate() {
        let mut adm =
            Admission::new(AdmissionConfig { max_queue_depth: 2, ..AdmissionConfig::default() });
        assert!(adm.try_admit(&spec(1, 1.0), 1).is_ok());
        let err = adm.try_admit(&spec(1, 1.0), 2).unwrap_err();
        assert_eq!(err.status(), 429);
        assert_eq!(adm.rejections().1, 1);
    }

    #[test]
    fn budget_gates_dispatch_but_never_deadlocks() {
        let mut adm =
            Admission::new(AdmissionConfig { budget_seconds: 1.0, ..AdmissionConfig::default() });
        // Idle server: even an over-budget price may start.
        assert!(adm.can_start(5.0));
        adm.on_start(0.8);
        assert!(!adm.can_start(0.5));
        assert!(adm.can_start(0.2));
        adm.on_finish(0.8, None);
        assert_eq!(adm.outstanding_seconds(), 0.0);
        assert!(adm.can_start(5.0));
    }

    #[test]
    fn completed_jobs_refine_scenario_density() {
        let mut adm = Admission::new(AdmissionConfig::default());
        let guess = adm.price(&spec(10, 1.0));
        // Report that "sod" at scale 1 actually has 8000 particles
        // (vs the REF_LATERAL³ = 1000 guess): price must rise.
        let sample = CalibrationSample {
            assignment: vec![0; 8],
            nranks: 1,
            halos: HaloExchange { imports: vec![vec![]], pair_volume: vec![0], nparts: 1 },
            work: vec![0.0; 8],
            per_rank_seconds: vec![0.0],
            n_particles: 8000,
            scale: 1.0,
            scenario: "sod".into(),
        };
        adm.on_finish(0.0, Some(&sample));
        assert!(adm.price(&spec(10, 1.0)) > guess);
        // Degenerate measurements refine density but add no calibration
        // observation (zero work/seconds are refused, not panicked on).
        assert_eq!(adm.observations(), 0);
    }
}
