//! The HTTP server: acceptors, job workers, and the route table.
//!
//! Concurrency layout: `acceptors` threads share one `TcpListener` clone
//! each and answer requests inline (every route is cheap — simulation
//! work never happens on a connection thread); `workers` threads drain
//! the admission queue and execute jobs via [`run_job`]. All shared
//! state lives behind one `Mutex<State>` plus a condvar; worker wakeups
//! use a timeout so a missed notify can only delay, never deadlock.
//!
//! Durability: with a `state_dir` configured, accepted specs are written
//! to `jobs/<id>.json` and finished result documents to
//! `results/<id>.json` (write-then-rename, so a crash never leaves a
//! torn result). On startup the scan reloads finished jobs into the
//! table and cache, and re-queues accepted-but-unfinished ones — those
//! resume from their own checkpoints inside [`run_job`].

use crate::admission::{Admission, AdmissionConfig};
use crate::api::JobSpec;
use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::http::{read_request, Request, Response};
use crate::jobs::{run_job, JobRecord, JobStatus, RunnerConfig};
use sph_json::Value;
use sph_scenarios::ScenarioRegistry;
use std::collections::{BTreeMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Root of durable state (`jobs/`, `results/`, `checkpoints/`);
    /// `None` = fully in-memory server.
    pub state_dir: Option<PathBuf>,
    /// Job-executing threads. Zero is allowed (jobs queue forever —
    /// useful for testing the queue-full path).
    pub workers: usize,
    /// Connection-accepting threads.
    pub acceptors: usize,
    pub cache_capacity: usize,
    pub admission: AdmissionConfig,
    /// Checkpoint/sample cadence of every job, in macro-steps.
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: None,
            workers: 2,
            acceptors: 2,
            cache_capacity: 256,
            admission: AdmissionConfig::default(),
            checkpoint_every: 4,
        }
    }
}

struct State {
    jobs: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    cache: ResultCache,
    admission: Admission,
    /// Aggregated per-phase busy seconds of all completed jobs.
    phase_seconds: BTreeMap<String, f64>,
}

struct Inner {
    registry: ScenarioRegistry,
    cfg: ServerConfig,
    runner: RunnerConfig,
    state: Mutex<State>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    requests: AtomicU64,
    responses_5xx: AtomicU64,
    /// Jobs actually executed (dispatched to a worker) — stays below the
    /// request count whenever dedup or the cache absorbed a submission.
    executions: AtomicU64,
    // Uptime telemetry only; never enters a trajectory (R5 is blessed
    // for this crate; the `Instant::now` call site carries the clippy
    // allow).
    started: std::time::Instant,
}

/// Poison-immune lock: a worker that panicked mid-update cannot take the
/// whole server down with it (the request path must never unwrap).
fn lock_state<'a>(inner: &'a Inner) -> MutexGuard<'a, State> {
    inner.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub struct Server;

pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: String,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, scan durable state, and spawn the acceptor + worker pool.
    pub fn start(cfg: ServerConfig) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?
            .to_string();

        let runner = RunnerConfig {
            checkpoint_every: cfg.checkpoint_every,
            checkpoints_dir: cfg.state_dir.as_ref().map(|d| d.join("checkpoints")),
        };
        if let Some(dir) = &cfg.state_dir {
            for sub in ["jobs", "results", "checkpoints"] {
                std::fs::create_dir_all(dir.join(sub))
                    .map_err(|e| ServeError::Io(format!("mkdir {sub}: {e}")))?;
            }
        }

        let mut state = State {
            jobs: BTreeMap::new(),
            queue: VecDeque::with_capacity(64),
            cache: ResultCache::new(cfg.cache_capacity),
            admission: Admission::new(cfg.admission),
            phase_seconds: BTreeMap::new(),
        };
        if let Some(dir) = &cfg.state_dir {
            scan_durable_state(dir, &mut state);
        }

        #[allow(clippy::disallowed_methods)]
        // Uptime telemetry only (see the field comment).
        let started = std::time::Instant::now();
        let inner = Arc::new(Inner {
            registry: ScenarioRegistry::builtin(),
            cfg,
            runner,
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            started,
        });

        let mut threads = Vec::new();
        for i in 0..inner.cfg.acceptors.max(1) {
            let listener =
                listener.try_clone().map_err(|e| ServeError::Io(format!("clone listener: {e}")))?;
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("accept-{i}"))
                    .spawn(move || accept_loop(&inner, &listener))
                    .map_err(|e| ServeError::Io(format!("spawn acceptor: {e}")))?,
            );
        }
        for i in 0..inner.cfg.workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(|e| ServeError::Io(format!("spawn worker: {e}")))?,
            );
        }
        Ok(ServerHandle { inner, addr, threads })
    }
}

impl ServerHandle {
    /// The actually-bound address (port resolved when the config said 0).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting, wake every thread, and join them. Workers finish
    /// their in-flight job first; queued jobs stay durable on disk.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        // Unblock acceptors stuck in accept() with one dummy connection
        // each; failures are fine (the thread may already be exiting).
        for _ in 0..self.inner.cfg.acceptors.max(1) {
            let _ = TcpStream::connect(&self.addr);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------
// Durable state
// ---------------------------------------------------------------------

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| ServeError::Io(format!("write {}: {e}", path.display())))
}

/// Reload accepted specs and finished results left by a previous
/// process: finished jobs come back `Done` (and warm the cache),
/// unfinished ones re-queue and resume from their checkpoints.
fn scan_durable_state(dir: &Path, state: &mut State) {
    let Ok(entries) = std::fs::read_dir(dir.join("jobs")) else { return };
    let mut ids: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_suffix(".json").map(str::to_string)
        })
        .collect();
    ids.sort();
    for id in ids {
        let Ok(text) = std::fs::read_to_string(dir.join("jobs").join(format!("{id}.json"))) else {
            continue;
        };
        let Ok(spec) = JobSpec::from_json(&text) else { continue };
        if spec.job_id() != id {
            continue; // foreign or tampered file; ignore it
        }
        let price = state.admission.price(&spec);
        let result_path = dir.join("results").join(format!("{id}.json"));
        match std::fs::read_to_string(&result_path) {
            Ok(doc) => {
                let doc = Arc::new(doc);
                state.cache.insert(&id, Arc::clone(&doc));
                state.jobs.insert(
                    id,
                    JobRecord {
                        spec,
                        status: JobStatus::Done,
                        price_seconds: price,
                        result: Some(doc),
                        telemetry: None,
                    },
                );
            }
            Err(_) => {
                state.jobs.insert(
                    id.clone(),
                    JobRecord {
                        spec,
                        status: JobStatus::Queued,
                        price_seconds: price,
                        result: None,
                        telemetry: None,
                    },
                );
                state.queue.push_back(id);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(inner: &Inner) {
    loop {
        let picked = {
            let mut st = lock_state(inner);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Skip-scan: the first queued job whose price fits the
                // remaining budget runs; an expensive job at the head
                // must not starve cheap ones behind it.
                let pos = st.queue.iter().position(|id| {
                    st.jobs.get(id).is_some_and(|r| st.admission.can_start(r.price_seconds))
                });
                if let Some(pos) = pos {
                    let id = st.queue.remove(pos).unwrap_or_default();
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.status = JobStatus::Running { completed_steps: 0 };
                        let price = rec.price_seconds;
                        let spec = rec.spec.clone();
                        st.admission.on_start(price);
                        break Some((id, spec, price));
                    }
                    continue; // record vanished; drop the stale queue entry
                }
                let (guard, _) = inner
                    .work_ready
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                st = guard;
            }
        };
        let Some((id, spec, price)) = picked else { return };

        inner.executions.fetch_add(1, Ordering::SeqCst);
        let progress = |completed: u64| {
            let mut st = lock_state(inner);
            if let Some(rec) = st.jobs.get_mut(&id) {
                rec.status = JobStatus::Running { completed_steps: completed };
            }
        };
        let outcome = run_job(&inner.registry, &spec, &inner.runner, &progress);

        let mut st = lock_state(inner);
        match outcome {
            Ok(done) => {
                st.admission.on_finish(price, done.calibration.as_ref());
                if let Some(obj) = done.telemetry.get("phase_seconds").and_then(Value::as_obj) {
                    for (name, secs) in obj {
                        if let Some(s) = secs.as_f64() {
                            *st.phase_seconds.entry(name.clone()).or_insert(0.0) += s;
                        }
                    }
                }
                let doc = Arc::new(done.result_doc);
                st.cache.insert(&id, Arc::clone(&doc));
                if let Some(dir) = &inner.cfg.state_dir {
                    let path = dir.join("results").join(format!("{id}.json"));
                    let _ = write_atomic(&path, doc.as_bytes());
                }
                if let Some(rec) = st.jobs.get_mut(&id) {
                    rec.status = JobStatus::Done;
                    rec.result = Some(doc);
                    rec.telemetry = Some(done.telemetry);
                }
            }
            Err(err) => {
                st.admission.on_finish(price, None);
                if let Some(rec) = st.jobs.get_mut(&id) {
                    rec.status = JobStatus::Failed { error: err.to_string() };
                }
            }
        }
        drop(st);
        inner.work_ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------

fn accept_loop(inner: &Inner, listener: &TcpListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                handle_connection(inner, stream);
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    inner.requests.fetch_add(1, Ordering::SeqCst);
    let response = match read_request(&mut stream) {
        Ok(req) => route_request(inner, &req),
        Err(err) => Response::from_error(&err),
    };
    if response.status >= 500 {
        inner.responses_5xx.fetch_add(1, Ordering::SeqCst);
    }
    let _ = response.write_to(&mut stream);
}

fn route_request(inner: &Inner, req: &Request) -> Response {
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            Ok(Response::json(200, Value::obj(vec![("ok", Value::Bool(true))]).render()))
        }
        ("GET", "/metrics") => Ok(Response::json(200, metrics_body(inner))),
        ("GET", "/scenarios") => Ok(Response::json(
            200,
            Value::obj(vec![(
                "scenarios",
                Value::Arr(inner.registry.names().iter().map(|n| Value::str(n)).collect()),
            )])
            .render(),
        )),
        ("POST", "/jobs") => submit_job(inner, &req.body),
        ("GET", path) if path.starts_with("/jobs/") => {
            job_status(inner, path.trim_start_matches("/jobs/"))
        }
        (_, "/healthz") | (_, "/metrics") | (_, "/scenarios") | (_, "/jobs") => {
            Err(ServeError::MethodNotAllowed { method: req.method.clone(), path: req.path.clone() })
        }
        (_, path) if path.starts_with("/jobs/") => {
            Err(ServeError::MethodNotAllowed { method: req.method.clone(), path: req.path.clone() })
        }
        (_, path) => Err(ServeError::RouteNotFound(path.to_string())),
    };
    result.unwrap_or_else(|err| Response::from_error(&err))
}

fn submit_job(inner: &Inner, body: &str) -> Result<Response, ServeError> {
    let spec = JobSpec::from_json(body)?;
    if inner.registry.get(&spec.scenario).is_none() {
        return Err(ServeError::UnknownScenario(spec.scenario.clone()));
    }
    let id = spec.job_id();
    let mut st = lock_state(inner);

    // Result cache: a finished identical spec answers immediately (and
    // the determinism contract makes that answer exact, not stale).
    if st.cache.get(&id).is_some() {
        let price = st.jobs.get(&id).map_or(0.0, |r| r.price_seconds);
        return Ok(Response::json(
            200,
            submit_body(&id, "done", price, &[("cached", Value::Bool(true))]),
        ));
    }
    // In-flight dedup: an identical spec already queued or running is
    // *not* re-executed; the client polls the same job id.
    if let Some(rec) = st.jobs.get(&id) {
        if !matches!(rec.status, JobStatus::Failed { .. }) {
            return Ok(Response::json(
                202,
                submit_body(
                    &id,
                    rec.status.label(),
                    rec.price_seconds,
                    &[("deduped", Value::Bool(true))],
                ),
            ));
        }
    }

    let depth = st.queue.len();
    let price = st.admission.try_admit(&spec, depth)?;
    if let Some(dir) = &inner.cfg.state_dir {
        let path = dir.join("jobs").join(format!("{id}.json"));
        write_atomic(&path, spec.canonical().as_bytes())?;
    }
    st.jobs.insert(
        id.clone(),
        JobRecord {
            spec,
            status: JobStatus::Queued,
            price_seconds: price,
            result: None,
            telemetry: None,
        },
    );
    st.queue.push_back(id.clone());
    drop(st);
    inner.work_ready.notify_all();
    Ok(Response::json(202, submit_body(&id, "queued", price, &[])))
}

fn submit_body(id: &str, status: &str, price: f64, extra: &[(&str, Value)]) -> String {
    let mut fields = vec![
        ("id", Value::str(id)),
        ("status", Value::str(status)),
        ("price_seconds", Value::Num(price)),
    ];
    for (k, v) in extra {
        fields.push((*k, v.clone()));
    }
    Value::obj(fields).render()
}

fn job_status(inner: &Inner, id: &str) -> Result<Response, ServeError> {
    let st = lock_state(inner);
    let rec = st.jobs.get(id).ok_or_else(|| ServeError::JobNotFound(id.to_string()))?;
    let mut fields = vec![
        ("id", Value::str(id)),
        ("status", Value::str(rec.status.label())),
        ("spec", rec.spec.to_value()),
        ("price_seconds", Value::Num(rec.price_seconds)),
    ];
    match &rec.status {
        JobStatus::Running { completed_steps } => {
            fields.push(("completed_steps", Value::Num(*completed_steps as f64)));
        }
        JobStatus::Failed { error } => {
            fields.push(("error", Value::Str(error.clone())));
        }
        JobStatus::Done => {
            if let Some(doc) = &rec.result {
                // Our own renderer's output: parse → embed → re-render is
                // byte-identical (insertion-order keys, shortest-roundtrip
                // numbers), so clients may byte-compare the result field.
                let parsed = sph_json::parse(doc)
                    .map_err(|e| ServeError::Io(format!("stored result corrupt: {e}")))?;
                fields.push(("result", parsed));
            }
            if let Some(t) = &rec.telemetry {
                fields.push(("telemetry", t.clone()));
            }
        }
        JobStatus::Queued => {}
    }
    Ok(Response::json(200, Value::obj(fields).render()))
}

fn metrics_body(inner: &Inner) -> String {
    let st = lock_state(inner);
    let cache = st.cache.stats();
    let lookups = cache.hits + cache.misses;
    let hit_rate = if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
    let running =
        st.jobs.values().filter(|r| matches!(r.status, JobStatus::Running { .. })).count();
    let (over_budget, queue_full) = st.admission.rejections();
    let phases =
        st.phase_seconds.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect::<Vec<_>>();
    Value::obj(vec![
        ("uptime_seconds", Value::Num(inner.started.elapsed().as_secs_f64())),
        ("requests", Value::Num(inner.requests.load(Ordering::SeqCst) as f64)),
        ("responses_5xx", Value::Num(inner.responses_5xx.load(Ordering::SeqCst) as f64)),
        ("executions", Value::Num(inner.executions.load(Ordering::SeqCst) as f64)),
        ("queue_depth", Value::Num(st.queue.len() as f64)),
        ("running", Value::Num(running as f64)),
        ("jobs_total", Value::Num(st.jobs.len() as f64)),
        (
            "cache",
            Value::obj(vec![
                ("hits", Value::Num(cache.hits as f64)),
                ("misses", Value::Num(cache.misses as f64)),
                ("evictions", Value::Num(cache.evictions as f64)),
                ("entries", Value::Num(cache.entries as f64)),
                ("hit_rate", Value::Num(hit_rate)),
            ]),
        ),
        (
            "admission",
            Value::obj(vec![
                ("outstanding_seconds", Value::Num(st.admission.outstanding_seconds())),
                ("calibration_observations", Value::Num(st.admission.observations() as f64)),
                ("core_gflops", Value::Num(st.admission.core_gflops())),
                ("rejected_over_budget", Value::Num(over_budget as f64)),
                ("rejected_queue_full", Value::Num(queue_full as f64)),
            ]),
        ),
        ("phase_seconds", Value::Obj(phases)),
    ])
    .render()
}
