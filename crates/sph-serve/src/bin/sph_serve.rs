//! The simulation-as-a-service daemon.
//!
//! ```text
//! sph_serve [--addr HOST:PORT] [--state-dir PATH] [--workers N]
//!           [--acceptors N] [--cache-capacity N] [--checkpoint-every N]
//!           [--budget-seconds F] [--max-job-seconds F]
//!           [--max-queue-depth N]
//! ```
//!
//! * `--addr`             bind address (default `127.0.0.1:0`; port 0 =
//!   OS-assigned — the resolved address is printed on startup)
//! * `--state-dir`        durable root: accepted specs, finished results
//!   and per-job checkpoints live here, and a restarted server resumes
//!   from them (default: in-memory only)
//! * `--workers`          job-executing threads (default 2)
//! * `--acceptors`        connection-accepting threads (default 2)
//! * `--cache-capacity`   LRU result-cache entries (default 256)
//! * `--checkpoint-every` job checkpoint/sample cadence in macro-steps
//!   (default 4)
//! * `--budget-seconds`   concurrent modelled-seconds budget (default 600)
//! * `--max-job-seconds`  per-job modelled-seconds ceiling (default 120)
//! * `--max-queue-depth`  queued-job cap (default 1024)
//!
//! Prints exactly one line `sph-serve listening on HOST:PORT` once the
//! socket is bound — `sph_loadtest --server-cmd` parses it.

use sph_serve::{AdmissionConfig, Server, ServerConfig};
use std::io::Write;

fn main() {
    let mut cfg = ServerConfig::default();
    let mut admission = AdmissionConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--state-dir" => cfg.state_dir = Some(value("--state-dir").into()),
            "--workers" => cfg.workers = parse(&value("--workers"), "--workers"),
            "--acceptors" => cfg.acceptors = parse(&value("--acceptors"), "--acceptors"),
            "--cache-capacity" => {
                cfg.cache_capacity = parse(&value("--cache-capacity"), "--cache-capacity")
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every = parse(&value("--checkpoint-every"), "--checkpoint-every")
            }
            "--budget-seconds" => {
                admission.budget_seconds = parse(&value("--budget-seconds"), "--budget-seconds")
            }
            "--max-job-seconds" => {
                admission.max_job_seconds = parse(&value("--max-job-seconds"), "--max-job-seconds")
            }
            "--max-queue-depth" => {
                admission.max_queue_depth = parse(&value("--max-queue-depth"), "--max-queue-depth")
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    cfg.admission = admission;

    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => die(&format!("startup failed: {e}")),
    };
    println!("sph-serve listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    // Serve until killed; the acceptor/worker threads do all the work.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| die(&format!("{flag}: cannot parse {text:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("sph_serve: {msg}");
    std::process::exit(2);
}
