//! Closed-loop load, determinism, and resilience driver for `sph_serve`.
//!
//! ```text
//! sph_loadtest --server-cmd PATH [--state-root DIR] [--requests N]
//!              [--clients C] [--json PATH]
//! sph_loadtest --addr HOST:PORT [--requests N] [--clients C] [--json PATH]
//! ```
//!
//! In `--server-cmd` mode (PATH = the `sph_serve` binary) the drill is
//! complete:
//!
//! 1. **fresh-vs-fresh determinism** — two servers with separate state
//!    dirs run the same specs; result documents must be byte-identical;
//! 2. **kill/restart resilience** — a long job is killed (SIGKILL)
//!    mid-flight, the server restarts on the same state dir, the job
//!    resumes from its checkpoints and must still produce bytes
//!    identical to the uninterrupted reference run;
//! 3. **closed-loop throughput** — `--clients` threads issue at least
//!    `--requests` requests over ≥3 scenarios, byte-verifying every
//!    cache hit against the first fresh result of its tuple, gating on
//!    zero 5xx, and writing p50/p99/throughput to `--json`
//!    (default `BENCH_serve.json`).
//!
//! In `--addr` mode only phase 3 runs, against an externally managed
//! server (the restart drill needs process control).
//!
//! Exit code 0 only if every check passed.
// Bench surface: wall-clock reads time requests only; nothing feeds a
// simulation trajectory.
#![allow(clippy::disallowed_methods)]

use sph_json::Value;
use sph_serve::http_call;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Tuple {
    scenario: &'static str,
    resolution: f64,
    steps: u64,
    seed: u64,
}

impl Tuple {
    fn body(&self) -> String {
        Value::obj(vec![
            ("scenario", Value::str(self.scenario)),
            ("resolution", Value::Num(self.resolution)),
            ("steps", Value::Num(self.steps as f64)),
            ("seed", Value::Num(self.seed as f64)),
        ])
        .render()
    }
}

fn main() {
    let mut server_cmd: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut state_root: Option<PathBuf> = None;
    let mut min_requests: u64 = 1000;
    let mut clients: usize = 8;
    let mut json_path = PathBuf::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("sph_loadtest: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--server-cmd" => server_cmd = Some(value("--server-cmd")),
            "--addr" => addr = Some(value("--addr")),
            "--state-root" => state_root = Some(value("--state-root").into()),
            "--requests" => min_requests = value("--requests").parse().expect("--requests"),
            "--clients" => clients = value("--clients").parse().expect("--clients"),
            "--json" => json_path = value("--json").into(),
            other => {
                eprintln!("sph_loadtest: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if server_cmd.is_none() && addr.is_none() {
        eprintln!("sph_loadtest: need --server-cmd PATH or --addr HOST:PORT");
        std::process::exit(2);
    }

    let counters = Counters::default();
    let mut determinism_pairs = 0u64;
    let mut restart = None;

    let target_addr = match server_cmd {
        Some(cmd) => {
            let root = state_root.unwrap_or_else(|| {
                std::env::temp_dir().join(format!("sph-loadtest-{}", std::process::id()))
            });
            let _ = std::fs::remove_dir_all(&root);

            // Phase 1: fresh-vs-fresh determinism across two servers.
            let mut server_b = spawn_server(&cmd, &root.join("b"));
            let mut server_a = spawn_server(&cmd, &root.join("a"));
            let drill = Tuple { scenario: "sod", resolution: 0.4, steps: 120, seed: 424242 };
            let mut reference = BTreeLike::new();
            for t in probe_tuples() {
                let ra = run_to_done(&server_a.addr, &t, &counters);
                let rb = run_to_done(&server_b.addr, &t, &counters);
                assert_eq!(ra, rb, "fresh servers disagree on {}", t.body());
                reference.insert(t.body(), ra);
                determinism_pairs += 1;
            }
            let drill_reference = run_to_done(&server_b.addr, &drill, &counters);
            server_b.child.kill().ok();
            server_b.child.wait().ok();
            println!("phase 1 ok: {determinism_pairs} fresh-vs-fresh pairs byte-identical");

            // Phase 2: kill mid-job, restart on the same state dir.
            let id = submit(&server_a.addr, &drill, &counters);
            wait_for_progress(&server_a.addr, &id, 2, &counters);
            server_a.child.kill().expect("kill server");
            server_a.child.wait().ok();
            let server_a = spawn_server(&cmd, &root.join("a"));
            let record = poll_done(&server_a.addr, &id, Duration::from_secs(600), &counters);
            let resumed = record
                .get("telemetry")
                .and_then(|t| t.get("resumed"))
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let bytes = record.get("result").expect("drill result").render();
            assert!(resumed, "restarted job did not report resumed=true");
            assert_eq!(bytes, drill_reference, "post-restart result differs from reference");
            restart = Some((resumed, bytes == drill_reference));
            println!("phase 2 ok: killed mid-job, resumed from checkpoint, bytes identical");

            counters.guard_children(server_a);
            counters.reference.lock().unwrap().extend(reference.0);
            counters.addr_of_child()
        }
        None => addr.unwrap(),
    };

    // Phase 3: closed-loop throughput with byte-verified cache hits.
    let t0 = Instant::now();
    let made_before = counters.requests.load(Ordering::SeqCst);
    let tuples: Arc<Vec<Tuple>> = Arc::new(probe_tuples());
    // Ensure every tuple has a reference (external mode starts empty).
    for t in tuples.iter() {
        let key = t.body();
        let have = counters.reference.lock().unwrap().iter().any(|(k, _)| *k == key);
        if !have {
            let bytes = run_to_done(&target_addr, t, &counters);
            counters.reference.lock().unwrap().push((key, bytes));
        }
    }
    let mut handles = Vec::new();
    for c in 0..clients.max(1) {
        let counters = counters.clone();
        let tuples = Arc::clone(&tuples);
        let addr = target_addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = c;
            while counters.requests.load(Ordering::SeqCst) < made_before + min_requests {
                let t = &tuples[i % tuples.len()];
                i += 1;
                // Resubmit (a cache hit) then fetch and byte-verify.
                let (status, body) = timed_call(&addr, "POST", "/jobs", &t.body(), &counters);
                assert!(status < 500, "5xx on POST: {body}");
                let doc = sph_json::parse(&body).expect("submit reply");
                let id = doc.get("id").and_then(Value::as_str).expect("id").to_string();
                let (status, body) =
                    timed_call(&addr, "GET", &format!("/jobs/{id}"), "", &counters);
                assert!(status < 500, "5xx on GET: {body}");
                let doc = sph_json::parse(&body).expect("status reply");
                if doc.get("status").and_then(Value::as_str) == Some("done") {
                    let bytes = doc.get("result").expect("result").render();
                    let key = t.body();
                    let reference = counters.reference.lock().unwrap();
                    let expected =
                        reference.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone());
                    if let Some(expected) = expected {
                        assert_eq!(bytes, expected, "cache hit differs from fresh run: {key}");
                    }
                }
                if i % 50 == 0 {
                    let (status, _) = timed_call(&addr, "GET", "/metrics", "", &counters);
                    assert!(status < 500);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let phase3_requests = counters.requests.load(Ordering::SeqCst) - made_before;

    // Final metrics snapshot: the zero-5xx gate and the dedup proof.
    let (status, metrics_text) = http_call(&target_addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let metrics = sph_json::parse(&metrics_text).expect("metrics json");
    let server_5xx = metrics.get("responses_5xx").and_then(Value::as_f64).unwrap_or(-1.0);
    let executions = metrics.get("executions").and_then(Value::as_f64).unwrap_or(-1.0);
    let server_requests = metrics.get("requests").and_then(Value::as_f64).unwrap_or(0.0);
    assert_eq!(server_5xx, 0.0, "server reported 5xx responses");
    assert_eq!(counters.client_5xx.load(Ordering::SeqCst), 0, "client saw 5xx responses");
    assert!(
        executions >= 0.0 && executions < server_requests,
        "cache/dedup had no effect: {executions} executions for {server_requests} requests"
    );

    let mut lats = counters.latencies.lock().unwrap().clone();
    lats.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        lats[((lats.len() - 1) as f64 * q).round() as usize]
    };
    let total_requests = counters.requests.load(Ordering::SeqCst);
    let throughput = if elapsed > 0.0 { phase3_requests as f64 / elapsed } else { 0.0 };
    let scenario_names: Vec<Value> = {
        let mut names: Vec<&str> = probe_tuples().iter().map(|t| t.scenario).collect();
        names.dedup();
        names.into_iter().map(Value::str).collect()
    };
    let cache = metrics.get("cache").cloned().unwrap_or(Value::Null);
    let report = Value::obj(vec![
        ("requests_total", Value::Num(total_requests as f64)),
        ("requests_measured", Value::Num(phase3_requests as f64)),
        ("clients", Value::Num(clients as f64)),
        ("elapsed_seconds", Value::Num(elapsed)),
        ("throughput_rps", Value::Num(throughput)),
        (
            "latency_seconds",
            Value::obj(vec![("p50", Value::Num(pct(0.50))), ("p99", Value::Num(pct(0.99)))]),
        ),
        ("cache", cache),
        ("executions", Value::Num(executions)),
        ("zero_5xx", Value::Bool(true)),
        ("scenarios", Value::Arr(scenario_names)),
        (
            "determinism",
            Value::obj(vec![
                ("fresh_pairs_checked", Value::Num(determinism_pairs as f64)),
                ("mismatches", Value::Num(0.0)),
            ]),
        ),
        (
            "restart_drill",
            match restart {
                Some((resumed, identical)) => Value::obj(vec![
                    ("ran", Value::Bool(true)),
                    ("resumed", Value::Bool(resumed)),
                    ("byte_identical", Value::Bool(identical)),
                ]),
                None => Value::obj(vec![("ran", Value::Bool(false))]),
            },
        ),
    ]);
    std::fs::write(&json_path, report.render()).expect("write bench json");
    println!(
        "phase 3 ok: {phase3_requests} requests, {throughput:.0} req/s, \
         p50 {:.1} ms, p99 {:.1} ms -> {}",
        pct(0.50) * 1e3,
        pct(0.99) * 1e3,
        json_path.display()
    );
    counters.kill_children();
}

/// The throughput workload: 3 scenarios x 8 seeds, tiny and fast.
fn probe_tuples() -> Vec<Tuple> {
    let mut out = Vec::new();
    for scenario in ["sod", "sedov", "square-patch"] {
        for seed in 0..8 {
            out.push(Tuple { scenario, resolution: 0.2, steps: 2, seed });
        }
    }
    out
}

// -------------------------------------------------------------------
// Server process management
// -------------------------------------------------------------------

struct Spawned {
    child: Child,
    addr: String,
}

fn spawn_server(cmd: &str, state_dir: &std::path::Path) -> Spawned {
    let mut child = Command::new(cmd)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--checkpoint-every")
        .arg("2")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn sph_serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read addr line");
    let addr = line
        .trim()
        .strip_prefix("sph-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_string();
    Spawned { child, addr }
}

// -------------------------------------------------------------------
// Shared client plumbing
// -------------------------------------------------------------------

#[derive(Clone, Default)]
struct Counters {
    requests: Arc<AtomicU64>,
    client_5xx: Arc<AtomicU64>,
    latencies: Arc<Mutex<Vec<f64>>>,
    reference: Arc<Mutex<Vec<(String, String)>>>,
    children: Arc<Mutex<Vec<Spawned>>>,
}

impl Counters {
    fn guard_children(&self, s: Spawned) {
        self.children.lock().unwrap().push(s);
    }
    fn addr_of_child(&self) -> String {
        self.children.lock().unwrap().last().expect("spawned server").addr.clone()
    }
    fn kill_children(&self) {
        for s in self.children.lock().unwrap().iter_mut() {
            let _ = s.child.kill();
            let _ = s.child.wait();
        }
    }
}

/// Sorted-vec map stand-in (tiny key sets; keeps the binary dependency-free).
struct BTreeLike(Vec<(String, String)>);
impl BTreeLike {
    fn new() -> Self {
        BTreeLike(Vec::new())
    }
    fn insert(&mut self, k: String, v: String) {
        self.0.push((k, v));
    }
}

fn timed_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    counters: &Counters,
) -> (u16, String) {
    let t0 = Instant::now();
    let (status, text) = http_call(addr, method, path, body)
        .unwrap_or_else(|e| panic!("{method} {path} failed: {e}"));
    counters.latencies.lock().unwrap().push(t0.elapsed().as_secs_f64());
    counters.requests.fetch_add(1, Ordering::SeqCst);
    if status >= 500 {
        counters.client_5xx.fetch_add(1, Ordering::SeqCst);
    }
    (status, text)
}

fn submit(addr: &str, t: &Tuple, counters: &Counters) -> String {
    let (status, body) = timed_call(addr, "POST", "/jobs", &t.body(), counters);
    assert!(status == 200 || status == 202, "submit rejected ({status}): {body}");
    sph_json::parse(&body)
        .ok()
        .and_then(|d| d.get("id").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_else(|| panic!("submit reply unparseable: {body}"))
}

fn poll_done(addr: &str, id: &str, timeout: Duration, counters: &Counters) -> Value {
    let t0 = Instant::now();
    loop {
        let (status, body) = timed_call(addr, "GET", &format!("/jobs/{id}"), "", counters);
        assert!(status < 500, "status poll 5xx: {body}");
        if status == 200 {
            let doc = sph_json::parse(&body).expect("status json");
            match doc.get("status").and_then(Value::as_str) {
                Some("done") => return doc,
                Some("failed") => panic!("job {id} failed: {body}"),
                _ => {}
            }
        }
        assert!(t0.elapsed() < timeout, "job {id} not done after {timeout:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Submit and wait, returning the rendered result document bytes.
fn run_to_done(addr: &str, t: &Tuple, counters: &Counters) -> String {
    let id = submit(addr, t, counters);
    let record = poll_done(addr, id.as_str(), Duration::from_secs(600), counters);
    record.get("result").expect("result in done record").render()
}

/// Wait until the job reports at least `steps` completed steps (or is
/// already past — done also counts, though the drill sizes jobs so the
/// kill lands mid-flight).
fn wait_for_progress(addr: &str, id: &str, steps: u64, counters: &Counters) {
    let t0 = Instant::now();
    loop {
        let (status, body) = timed_call(addr, "GET", &format!("/jobs/{id}"), "", counters);
        assert!(status < 500);
        if status == 200 {
            let doc = sph_json::parse(&body).expect("status json");
            let completed = doc.get("completed_steps").and_then(Value::as_u64).unwrap_or(0);
            let state = doc.get("status").and_then(Value::as_str).unwrap_or("");
            if completed >= steps || state == "done" {
                return;
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(600), "no progress on {id}");
        std::thread::sleep(Duration::from_millis(2));
    }
}
