//! LRU cache of completed result documents, keyed by job id.
//!
//! Caching full result bodies is *correct* here, not heuristic: the
//! simulation pipeline is bit-deterministic, so re-running a spec can only
//! reproduce the same bytes (the integration suite asserts this by
//! comparing a cache hit against a fresh run byte for byte). The cache
//! therefore needs no invalidation story beyond capacity eviction.
//!
//! `BTreeMap` keeps iteration deterministic (the workspace bans `HashMap`
//! for that reason); recency is a monotonic tick rather than wall time so
//! eviction order is reproducible too.

use std::collections::BTreeMap;
use std::sync::Arc;

struct Entry {
    last_used: u64,
    doc: Arc<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
}

pub struct ResultCache {
    entries: BTreeMap<String, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a result document, bumping its recency on a hit.
    pub fn get(&mut self, id: &str) -> Option<Arc<String>> {
        self.tick += 1;
        match self.entries.get_mut(id) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.doc))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a completed result, evicting the least-recently-used entry
    /// when over capacity.
    pub fn insert(&mut self, id: &str, doc: Arc<String>) {
        self.tick += 1;
        self.entries.insert(id.to_string(), Entry { last_used: self.tick, doc });
        while self.entries.len() > self.capacity {
            let oldest =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone());
            match oldest {
                Some(key) => {
                    self.entries.remove(&key);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hit_returns_same_bytes_and_counts() {
        let mut cache = ResultCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a", doc("{\"x\":1}"));
        let hit = cache.get("a").unwrap();
        assert_eq!(hit.as_str(), "{\"x\":1}");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert("a", doc("A"));
        cache.insert("b", doc("B"));
        assert!(cache.get("a").is_some()); // "b" is now the LRU entry.
        cache.insert("c", doc("C"));
        assert!(cache.get("b").is_none(), "LRU entry should be evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_is_clamped_not_panicking() {
        let mut cache = ResultCache::new(0);
        cache.insert("a", doc("A"));
        assert!(cache.get("a").is_some());
        cache.insert("b", doc("B"));
        assert!(cache.get("a").is_none());
    }
}
