//! End-to-end API tests against in-process servers on loopback sockets.
//!
//! Each test starts its own [`Server`] (port 0 → isolated), talks to it
//! with the same [`http_call`] client the loadtest uses, and shuts it
//! down. Jobs use tiny resolutions so the suite stays debug-build fast.

// Test harness, not library code: wall-clock reads only bound the
// polling loops, they never influence results.
#![allow(clippy::disallowed_methods)]

use sph_json::Value;
use sph_serve::{http_call, AdmissionConfig, Server, ServerConfig};
use std::time::{Duration, Instant};

fn test_config() -> ServerConfig {
    ServerConfig { workers: 1, acceptors: 1, ..ServerConfig::default() }
}

fn body(scenario: &str, steps: u64, seed: u64) -> String {
    format!(r#"{{"scenario":"{scenario}","resolution":0.2,"steps":{steps},"seed":{seed}}}"#)
}

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, Value) {
    let (status, text) = http_call(addr, method, path, body).expect("http call");
    let value = if text.is_empty() {
        Value::Null
    } else {
        sph_json::parse(&text).unwrap_or_else(|e| panic!("unparseable reply {text:?}: {e}"))
    };
    (status, value)
}

fn submit(addr: &str, payload: &str) -> (u16, Value) {
    call(addr, "POST", "/jobs", payload)
}

fn wait_done(addr: &str, id: &str) -> Value {
    let t0 = Instant::now();
    loop {
        let (status, doc) = call(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{doc:?}");
        match doc.get("status").and_then(Value::as_str) {
            Some("done") => return doc,
            Some("failed") => panic!("job failed: {doc:?}"),
            _ => {}
        }
        assert!(t0.elapsed() < Duration::from_secs(300), "timeout waiting for {id}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn executions(addr: &str) -> f64 {
    let (status, doc) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    doc.get("executions").and_then(Value::as_f64).expect("executions metric")
}

#[test]
fn healthz_and_scenarios() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr().to_string();
    let (status, doc) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
    let (status, doc) = call(&addr, "GET", "/scenarios", "");
    assert_eq!(status, 200);
    let names: Vec<&str> = doc
        .get("scenarios")
        .and_then(Value::as_arr)
        .expect("scenarios array")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert!(names.contains(&"sod") && names.contains(&"sedov"));
    server.shutdown();
}

#[test]
fn cache_hit_is_byte_identical_and_skips_execution() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr().to_string();

    let (status, first) = submit(&addr, &body("sod", 2, 1));
    assert_eq!(status, 202, "{first:?}");
    let id = first.get("id").and_then(Value::as_str).expect("id").to_string();
    let fresh = wait_done(&addr, &id);
    let fresh_bytes = fresh.get("result").expect("result").render();
    let executed = executions(&addr);
    assert_eq!(executed, 1.0);

    // Identical resubmission: answered from the cache, no new execution.
    let (status, hit) = submit(&addr, &body("sod", 2, 1));
    assert_eq!(status, 200, "{hit:?}");
    assert_eq!(hit.get("cached").and_then(Value::as_bool), Some(true));
    let again = wait_done(&addr, &id);
    assert_eq!(again.get("result").expect("result").render(), fresh_bytes);
    assert_eq!(executions(&addr), executed, "cache hit must not re-execute");

    // Different seed: a genuinely new job.
    let (status, miss) = submit(&addr, &body("sod", 2, 2));
    assert_eq!(status, 202, "{miss:?}");
    let id2 = miss.get("id").and_then(Value::as_str).expect("id").to_string();
    assert_ne!(id2, id);
    wait_done(&addr, &id2);
    assert_eq!(executions(&addr), executed + 1.0);
    let (_, metrics) = call(&addr, "GET", "/metrics", "");
    let cache = metrics.get("cache").expect("cache stats");
    assert!(cache.get("hits").and_then(Value::as_f64).unwrap() >= 1.0);
    assert!(cache.get("misses").and_then(Value::as_f64).unwrap() >= 2.0);
    server.shutdown();
}

#[test]
fn concurrent_duplicate_submissions_execute_once() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr().to_string();
    let payload = body("sedov", 2, 7);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let payload = payload.clone();
            std::thread::spawn(move || {
                let (status, doc) = submit(&addr, &payload);
                assert!(status == 200 || status == 202, "{doc:?}");
                doc.get("id").and_then(Value::as_str).expect("id").to_string()
            })
        })
        .collect();
    let ids: Vec<String> = threads.into_iter().map(|t| t.join().expect("thread")).collect();
    assert!(ids.windows(2).all(|w| w[0] == w[1]), "ids diverged: {ids:?}");

    wait_done(&addr, &ids[0]);
    assert_eq!(executions(&addr), 1.0, "duplicates must collapse to one execution");
    server.shutdown();
}

#[test]
fn error_paths_return_typed_bodies() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr().to_string();
    let code_of = |doc: &Value| {
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .map(str::to_string)
            .expect("error.code")
    };

    let (status, doc) = submit(&addr, "this is not json");
    assert_eq!(status, 400);
    assert_eq!(code_of(&doc), "malformed_json");

    let (status, doc) = submit(&addr, r#"{"scenario":"sod"}"#);
    assert_eq!(status, 400);
    assert_eq!(code_of(&doc), "invalid_param");

    let (status, doc) = submit(&addr, r#"{"scenario":"warp-core","steps":2}"#);
    assert_eq!(status, 404);
    assert_eq!(code_of(&doc), "unknown_scenario");

    let (status, doc) = call(&addr, "GET", "/jobs/deadbeefdeadbeef", "");
    assert_eq!(status, 404);
    assert_eq!(code_of(&doc), "job_not_found");

    let (status, doc) = call(&addr, "DELETE", "/jobs", "");
    assert_eq!(status, 405);
    assert_eq!(code_of(&doc), "method_not_allowed");

    let (status, doc) = call(&addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    assert_eq!(code_of(&doc), "route_not_found");
    server.shutdown();
}

#[test]
fn over_budget_submissions_are_priced_and_rejected() {
    let cfg = ServerConfig {
        admission: AdmissionConfig { max_job_seconds: 1e-12, ..AdmissionConfig::default() },
        ..test_config()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr().to_string();
    let (status, doc) = submit(&addr, &body("sod", 1000, 0));
    assert_eq!(status, 429, "{doc:?}");
    let err = doc.get("error").expect("error body");
    assert_eq!(err.get("code").and_then(Value::as_str), Some("over_budget"));
    assert!(err.get("price_seconds").and_then(Value::as_f64).unwrap() > 1e-12);
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429() {
    let cfg = ServerConfig {
        workers: 0, // nothing drains the queue
        admission: AdmissionConfig { max_queue_depth: 1, ..AdmissionConfig::default() },
        ..test_config()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr().to_string();
    let (status, _) = submit(&addr, &body("sod", 2, 0));
    assert_eq!(status, 202);
    let (status, doc) = submit(&addr, &body("sod", 2, 1));
    assert_eq!(status, 429, "{doc:?}");
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("queue_full")
    );
    server.shutdown();
}

#[test]
fn durable_results_survive_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("sph-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServerConfig { state_dir: Some(dir.clone()), ..test_config() };

    let server = Server::start(cfg()).expect("start");
    let addr = server.addr().to_string();
    let (status, doc) = submit(&addr, &body("square-patch", 2, 3));
    assert_eq!(status, 202, "{doc:?}");
    let id = doc.get("id").and_then(Value::as_str).expect("id").to_string();
    let done = wait_done(&addr, &id);
    let bytes = done.get("result").expect("result").render();
    server.shutdown();

    // A new process (modelled by a new in-process server) on the same
    // state dir serves the finished job without re-running it.
    let server = Server::start(cfg()).expect("restart");
    let addr = server.addr().to_string();
    let reloaded = wait_done(&addr, &id);
    assert_eq!(reloaded.get("result").expect("result").render(), bytes);
    assert_eq!(executions(&addr), 0.0, "restart must reload, not re-run");
    let (status, hit) = submit(&addr, &body("square-patch", 2, 3));
    assert_eq!(status, 200);
    assert_eq!(hit.get("cached").and_then(Value::as_bool), Some(true));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
