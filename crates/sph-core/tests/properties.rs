//! Property-based tests of the SPH core invariants.

use proptest::prelude::*;
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::eos::IdealGas;
use sph_core::particles::ParticleSystem;
use sph_core::timestep::{
    assign_rungs, block_step_work_ratio, global_dt, per_particle_dt, rung_is_active,
};
use sph_core::viscosity::{balsara_factor, pair_viscosity};
use sph_math::{Aabb, Periodicity, Vec3};

/// Distance in representable doubles between two finite, same-sign
/// values (0 = bit-identical).
fn ulp_distance(a: f64, b: f64) -> u64 {
    assert!(a.is_finite() && b.is_finite() && a.is_sign_positive() == b.is_sign_positive());
    a.to_bits().abs_diff(b.to_bits())
}

proptest! {
    #[test]
    fn energy_from_pressure_inverts_pressure_to_one_ulp(
        gamma in 1.1..6.9_f64,
        rho in 1e-6..1e6_f64,
        p in 1e-6..1e6_f64,
    ) {
        // Both directions divide/multiply by the *same* rounded factor
        // fl((γ−1)·ρ), so the round trip accumulates exactly two
        // rounding errors ≤ ½ulp each — the result can differ from the
        // input by at most one representable double. This is what makes
        // pressure-specified initial conditions (Sod, Gresho, KH,
        // square patch) reproduce their pressure fields faithfully.
        let eos = IdealGas::new(gamma);
        let u = eos.energy_from_pressure(rho, p);
        let p2 = eos.pressure(rho, u);
        let d = ulp_distance(p, p2);
        prop_assert!(d <= 1, "p = {p} round-trips to {p2} ({d} ulps) at γ = {gamma}, ρ = {rho}");
    }

    #[test]
    fn eos_pressure_energy_roundtrip(gamma in 1.1..6.9_f64, rho in 0.01..100.0_f64, u in 0.0..100.0_f64) {
        let eos = IdealGas::new(gamma);
        let p = eos.pressure(rho, u);
        prop_assert!(p >= 0.0);
        let u_back = eos.energy_from_pressure(rho, p);
        prop_assert!((u_back - u).abs() < 1e-9 * (1.0 + u));
        // Sound speed finite and monotone in u.
        let cs = eos.sound_speed(rho, u);
        prop_assert!(cs.is_finite() && cs >= 0.0);
        prop_assert!(eos.sound_speed(rho, u + 1.0) >= cs);
    }

    #[test]
    fn viscosity_never_negative_and_symmetric(
        d in (-1.0..1.0_f64, -1.0..1.0_f64, -1.0..1.0_f64),
        dv in (-5.0..5.0_f64, -5.0..5.0_f64, -5.0..5.0_f64),
        h in (0.01..0.5_f64, 0.01..0.5_f64),
        cs in (0.1..10.0_f64, 0.1..10.0_f64),
        rho in (0.1..10.0_f64, 0.1..10.0_f64)
    ) {
        let cfg = ViscosityConfig::default();
        let d = Vec3::new(d.0, d.1, d.2);
        let dv = Vec3::new(dv.0, dv.1, dv.2);
        prop_assume!(d.norm() > 1e-6);
        let pi = pair_viscosity(&cfg, d, dv, h.0, h.1, cs.0, cs.1, rho.0, rho.1, 1.0, 1.0);
        prop_assert!(pi >= 0.0, "viscosity must dissipate, Π = {pi}");
        // i↔j exchange symmetry.
        let pj = pair_viscosity(&cfg, -d, -dv, h.1, h.0, cs.1, cs.0, rho.1, rho.0, 1.0, 1.0);
        prop_assert!((pi - pj).abs() < 1e-12 * (1.0 + pi));
    }

    #[test]
    fn balsara_factor_in_unit_interval(div in -100.0..100.0_f64, curl in 0.0..100.0_f64, cs in 0.0..10.0_f64, h in 0.001..1.0_f64) {
        let f = balsara_factor(div, curl, cs, h);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn global_dt_is_the_minimum(dts in prop::collection::vec(0.001..10.0_f64, 1..50)) {
        let dt = global_dt(&dts).unwrap();
        let min = dts.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(dt, min);
    }

    #[test]
    fn rung_assignment_respects_stability(dts in prop::collection::vec(0.001..10.0_f64, 1..50), max_rungs in 1u8..12) {
        let dt_max = dts.iter().cloned().fold(0.0_f64, f64::max);
        prop_assume!(dt_max > 0.0);
        let rungs = assign_rungs(&dts, dt_max, max_rungs);
        for (&dt, &r) in dts.iter().zip(&rungs) {
            prop_assert!(r <= max_rungs);
            let rung_dt = dt_max / (1u64 << r) as f64;
            // Stable unless capped at the deepest rung — exactly, not to a
            // tolerance: the assignment is post-verified in exact
            // power-of-two arithmetic.
            if r < max_rungs {
                prop_assert!(rung_dt <= dt, "rung {r} step {rung_dt} > {dt}");
            }
        }
    }

    #[test]
    fn rung_activation_counts_are_powers_of_two(rung in 0u8..6, deepest in 0u8..6) {
        let rung = rung.min(deepest);
        let substeps = 1u64 << deepest;
        let active = (0..substeps).filter(|&s| rung_is_active(rung, s, deepest)).count() as u64;
        prop_assert_eq!(active, 1u64 << rung);
    }

    #[test]
    fn block_work_ratio_bounded(rungs in prop::collection::vec(0u8..5, 1..200)) {
        let deepest = *rungs.iter().max().unwrap();
        let ratio = block_step_work_ratio(&rungs, deepest);
        // Between the all-coarse lower bound and the global-stepping 1.0.
        let lower = 1.0 / (1u64 << deepest) as f64;
        prop_assert!(ratio >= lower - 1e-12);
        prop_assert!(ratio <= 1.0 + 1e-12);
    }

    #[test]
    fn per_particle_dt_monotone_in_sound_speed(cs in 0.1..10.0_f64, factor in 1.1..10.0_f64) {
        let mut sys = ParticleSystem::new(
            vec![Vec3::ZERO, Vec3::X],
            vec![Vec3::ZERO; 2],
            vec![1.0; 2],
            vec![1.0; 2],
            0.1,
            Periodicity::open(Aabb::unit()),
        );
        let cfg = SphConfig::default();
        sys.cs = vec![cs, cs * factor];
        let dts = per_particle_dt(&sys, &cfg);
        prop_assert!(dts[1] < dts[0], "hotter particle must have smaller dt");
    }

    #[test]
    fn subset_preserves_fields(indices in prop::collection::vec(0u32..20, 1..20)) {
        let n = 20;
        let sys = ParticleSystem::new(
            (0..n).map(|i| Vec3::splat(i as f64 * 0.01)).collect(),
            (0..n).map(|i| Vec3::splat(-(i as f64))).collect(),
            (1..=n).map(|i| i as f64).collect(),
            (0..n).map(|i| i as f64 * 0.5).collect(),
            0.1,
            Periodicity::open(Aabb::unit()),
        );
        let sub = sys.subset(&indices);
        prop_assert_eq!(sub.len(), indices.len());
        for (k, &i) in indices.iter().enumerate() {
            prop_assert_eq!(sub.x[k], sys.x[i as usize]);
            prop_assert_eq!(sub.m[k], sys.m[i as usize]);
            prop_assert_eq!(sub.u[k], sys.u[i as usize]);
        }
    }
}
