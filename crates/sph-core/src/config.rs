//! Mini-app configuration: the knobs of Tables 1 and 2.
//!
//! Each parent code in Table 1 is one point in this configuration space;
//! `sph-parents` instantiates those three points. The mini-app exposes the
//! whole space, which is precisely what Table 2 ("Outlook on the scientific
//! characteristics of the future SPH-EXA mini-app") prescribes.

use sph_kernels::KernelKind;

/// How spatial gradients entering the momentum/energy equations are
/// estimated (Table 1, "Gradients Calculation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientScheme {
    /// Plain analytic kernel derivatives (ChaNGa, SPH-flow).
    KernelDerivative,
    /// Integral Approach to Derivatives (García-Senz et al. 2012; SPHYNX).
    /// Exact for linear fields regardless of particle disorder; costs one
    /// 3×3 inverse per particle and one extra neighbour loop.
    Iad,
}

/// Volume-element definition (Table 1, "Volume Elements").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VolumeElements {
    /// `V_i = m_i / ρ_i` (ChaNGa, SPH-flow).
    Standard,
    /// Generalized volume elements (SPHYNX, Cabezón et al. 2017):
    /// `V_i = X_i / κ_i`, `κ_i = Σ_j X_j W_ij`, with estimator
    /// `X_i = (m_i/ρ_i)^p`; `p = 0` recovers `X = 1` (number density),
    /// larger `p` weights mass-loaded regions.
    Generalized {
        /// Estimator exponent `p` (SPHYNX default 0.7).
        p: f64,
    },
}

/// Time-stepping policy (Table 1, "Time-Stepping").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeStepping {
    /// One global Δt = min over particles (SPHYNX, SPH-flow).
    Global,
    /// Individual power-of-two block time-steps (ChaNGa): particles are
    /// binned onto rungs `Δt_max / 2^r`, only active rungs compute forces.
    Individual {
        /// Maximum number of rungs below the top level.
        max_rungs: u8,
    },
    /// Adaptive global step: recomputed each step from the CFL *and*
    /// acceleration criteria with a growth limiter (SPH-flow).
    Adaptive {
        /// Max fractional growth per step (e.g. 1.1 = +10 %).
        growth_limit: f64,
    },
}

/// Artificial-viscosity parameters (Monaghan 1992 + Balsara 1995 switch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViscosityConfig {
    /// Linear (bulk) coefficient α.
    pub alpha: f64,
    /// Quadratic (von Neumann–Richtmyer) coefficient β.
    pub beta: f64,
    /// Softening of the pair viscosity denominator, in units of h̄².
    pub eta2: f64,
    /// Apply the Balsara shear-flow limiter.
    pub balsara: bool,
}

impl Default for ViscosityConfig {
    fn default() -> Self {
        ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: false }
    }
}

/// Full SPH configuration.
#[derive(Debug, Clone, Copy)]
pub struct SphConfig {
    /// Interpolation kernel.
    pub kernel: KernelKind,
    /// Gradient estimator.
    pub gradients: GradientScheme,
    /// Volume-element scheme.
    pub volume_elements: VolumeElements,
    /// Time-stepping policy.
    pub time_stepping: TimeStepping,
    /// Target neighbour count for the smoothing-length iteration
    /// (the paper quotes ~10² neighbours per particle in 3-D).
    pub target_neighbors: usize,
    /// Relative tolerance on the neighbour count before the h iteration
    /// stops (e.g. 0.05 = ±5 %).
    pub neighbor_tolerance: f64,
    /// Maximum h iterations per particle per step.
    pub max_h_iterations: usize,
    /// Adiabatic index γ of the ideal-gas EOS.
    pub gamma: f64,
    /// Artificial viscosity.
    pub viscosity: ViscosityConfig,
    /// CFL safety factor for the signal-velocity time-step criterion.
    pub cfl: f64,
    /// Use grad-h (Ω) correction terms.
    pub grad_h: bool,
}

impl Default for SphConfig {
    fn default() -> Self {
        SphConfig {
            kernel: KernelKind::CubicSplineM4,
            gradients: GradientScheme::KernelDerivative,
            volume_elements: VolumeElements::Standard,
            time_stepping: TimeStepping::Global,
            target_neighbors: 100,
            neighbor_tolerance: 0.05,
            max_h_iterations: 10,
            gamma: 5.0 / 3.0,
            viscosity: ViscosityConfig::default(),
            cfl: 0.3,
            grad_h: true,
        }
    }
}

impl SphConfig {
    /// Sanity-check the configuration; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_neighbors < 4 {
            return Err(format!(
                "target_neighbors {} too small for 3-D SPH",
                self.target_neighbors
            ));
        }
        // Up to γ = 7: the stiff Tait-like exponent weakly-compressible
        // CFD codes (SPH-flow) use for water analogues.
        if self.gamma <= 1.0 || self.gamma > 7.0 {
            return Err(format!("gamma {} outside the supported range (1, 7]", self.gamma));
        }
        if self.cfl <= 0.0 || self.cfl > 1.0 {
            return Err(format!("CFL factor {} must be in (0, 1]", self.cfl));
        }
        if self.neighbor_tolerance <= 0.0 {
            return Err("neighbor_tolerance must be positive".into());
        }
        if let VolumeElements::Generalized { p } = self.volume_elements {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("generalized VE exponent {p} must be in [0, 1]"));
            }
        }
        if let TimeStepping::Individual { max_rungs } = self.time_stepping {
            if max_rungs == 0 || max_rungs > 16 {
                return Err(format!("max_rungs {max_rungs} must be in [1, 16]"));
            }
        }
        if let TimeStepping::Adaptive { growth_limit } = self.time_stepping {
            if growth_limit <= 1.0 {
                return Err(format!("growth_limit {growth_limit} must exceed 1"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SphConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_gamma() {
        let cfg = SphConfig { gamma: 0.5, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_cfl() {
        let cfg = SphConfig { cfl: 0.0, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = SphConfig { cfl: 1.5, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_ve_exponent() {
        let cfg = SphConfig {
            volume_elements: VolumeElements::Generalized { p: 1.5 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_rungs() {
        let cfg = SphConfig {
            time_stepping: TimeStepping::Individual { max_rungs: 0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_tiny_neighbor_target() {
        let cfg = SphConfig { target_neighbors: 2, ..Default::default() };
        assert!(cfg.validate().is_err());
    }
}
