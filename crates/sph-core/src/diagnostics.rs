//! Conservation diagnostics.
//!
//! §5 of the paper: "It is much more important to limit the deviations in
//! under-resolved regimes by enforcing fundamental conservation laws."
//! These sums are the acceptance criteria of both test cases and feed the
//! conservation-drift SDC detector in `sph-ft`. All reductions use
//! Kahan–Babuška–Neumaier summation so drift measurements are not round-off
//! artefacts, and run as chunked parallel folds over fixed `REDUCE_CHUNK`
//! boundaries merged in chunk order — the totals are bit-identical for any
//! `SPH_THREADS`, which is the property that lets the SDC detector compare
//! them across restarts and replicas.

use crate::particles::ParticleSystem;
use rayon::prelude::*;
use sph_math::{KahanAccumulator, Vec3, REDUCE_CHUNK};

/// Snapshot of the conserved quantities of a particle system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conservation {
    pub total_mass: f64,
    pub momentum: Vec3,
    pub angular_momentum: Vec3,
    pub kinetic_energy: f64,
    pub internal_energy: f64,
    /// Gravitational energy; zero unless potentials are supplied.
    pub gravitational_energy: f64,
}

/// The ten compensated partial sums of one `REDUCE_CHUNK` of particles.
#[derive(Debug, Clone, Copy, Default)]
struct ConservationAccum {
    mass: KahanAccumulator,
    px: KahanAccumulator,
    py: KahanAccumulator,
    pz: KahanAccumulator,
    lx: KahanAccumulator,
    ly: KahanAccumulator,
    lz: KahanAccumulator,
    ke: KahanAccumulator,
    ie: KahanAccumulator,
    ge: KahanAccumulator,
}

impl ConservationAccum {
    fn merge(&mut self, o: &ConservationAccum) {
        self.mass.merge(&o.mass);
        self.px.merge(&o.px);
        self.py.merge(&o.py);
        self.pz.merge(&o.pz);
        self.lx.merge(&o.lx);
        self.ly.merge(&o.ly);
        self.lz.merge(&o.lz);
        self.ke.merge(&o.ke);
        self.ie.merge(&o.ie);
        self.ge.merge(&o.ge);
    }
}

impl Conservation {
    /// Measure a system. `potentials` (per-particle φ) enables the
    /// gravitational term `½ Σ m φ`.
    ///
    /// Chunked map + ordered reduce: each fixed `REDUCE_CHUNK` of particles
    /// folds into its own compensated accumulators on the thread pool, and
    /// the chunk accumulators merge in chunk order via the
    /// Kahan–Babuška–Neumaier [`KahanAccumulator::merge`].
    pub fn measure(sys: &ParticleSystem, potentials: Option<&[f64]>) -> Conservation {
        let chunks: Vec<ConservationAccum> = sys
            .m
            .par_chunks(REDUCE_CHUNK)
            .enumerate()
            .map(|(c, masses)| {
                let base = c * REDUCE_CHUNK;
                let mut acc = ConservationAccum::default();
                for (off, &m) in masses.iter().enumerate() {
                    let i = base + off;
                    let v = sys.v[i];
                    let x = sys.x[i];
                    acc.mass.add(m);
                    acc.px.add(m * v.x);
                    acc.py.add(m * v.y);
                    acc.pz.add(m * v.z);
                    let l = x.cross(v) * m;
                    acc.lx.add(l.x);
                    acc.ly.add(l.y);
                    acc.lz.add(l.z);
                    acc.ke.add(0.5 * m * v.norm_sq());
                    acc.ie.add(m * sys.u[i]);
                    if let Some(phi) = potentials {
                        acc.ge.add(0.5 * m * phi[i]);
                    }
                }
                acc
            })
            .collect();
        let mut total = ConservationAccum::default();
        for acc in &chunks {
            total.merge(acc);
        }
        Conservation {
            total_mass: total.mass.total(),
            momentum: Vec3::new(total.px.total(), total.py.total(), total.pz.total()),
            angular_momentum: Vec3::new(total.lx.total(), total.ly.total(), total.lz.total()),
            kinetic_energy: total.ke.total(),
            internal_energy: total.ie.total(),
            gravitational_energy: total.ge.total(),
        }
    }

    /// Total energy (kinetic + internal + gravitational).
    pub fn total_energy(&self) -> f64 {
        self.kinetic_energy + self.internal_energy + self.gravitational_energy
    }

    /// Relative drift of the total energy versus a reference snapshot.
    pub fn energy_drift(&self, reference: &Conservation) -> f64 {
        let e0 = reference.total_energy();
        if e0.abs() < 1e-300 {
            return (self.total_energy() - e0).abs();
        }
        ((self.total_energy() - e0) / e0).abs()
    }

    /// Relative drift of linear momentum magnitude, normalized by a
    /// characteristic momentum scale `Σ m |v|` of the reference.
    pub fn momentum_drift(&self, reference: &Conservation, momentum_scale: f64) -> f64 {
        (self.momentum - reference.momentum).norm() / momentum_scale.max(1e-300)
    }
}

/// Characteristic momentum scale `Σ m|v|` used to normalize drift.
pub fn momentum_scale(sys: &ParticleSystem) -> f64 {
    let mut acc = KahanAccumulator::new();
    for i in 0..sys.len() {
        acc.add(sys.m[i] * sys.v[i].norm());
    }
    acc.total()
}

/// Order-dependent FNV-1a over every particle's full dynamic state
/// (x, v, a, ρ, h, u, u̇) plus the simulation clock, at the *bit* level —
/// so −0.0/NaN mismatches and tolerance creep cannot hide. This is the
/// one fingerprint the determinism and distributed-equivalence suites
/// compare: two runs agree iff every bit of physics agrees.
pub fn state_fingerprint(sys: &ParticleSystem) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    let mut mix = |x: f64| {
        hash ^= x.to_bits();
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for i in 0..sys.len() {
        for v in [sys.x[i], sys.v[i], sys.a[i]] {
            mix(v.x);
            mix(v.y);
            mix(v.z);
        }
        mix(sys.rho[i]);
        mix(sys.h[i]);
        mix(sys.u[i]);
        mix(sys.du_dt[i]);
    }
    mix(sys.time);
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity};

    fn spinning_pair() -> ParticleSystem {
        // Two equal masses orbiting the origin in the xy plane.
        ParticleSystem::new(
            vec![Vec3::X, -Vec3::X],
            vec![Vec3::Y, -Vec3::Y],
            vec![2.0, 2.0],
            vec![0.5, 0.5],
            0.1,
            Periodicity::open(Aabb::cube(Vec3::ZERO, 2.0)),
        )
    }

    #[test]
    fn measures_known_values() {
        let sys = spinning_pair();
        let c = Conservation::measure(&sys, None);
        assert_eq!(c.total_mass, 4.0);
        assert!(c.momentum.norm() < 1e-15); // equal and opposite
                                            // L = 2·(x × v)·m = 2 × (X × Y)·2 = 4 ẑ per particle → 4+4.
        assert!((c.angular_momentum.z - 4.0).abs() < 1e-15);
        assert!((c.kinetic_energy - 2.0).abs() < 1e-15); // 2 × ½·2·1
        assert!((c.internal_energy - 2.0).abs() < 1e-15); // 2 × 2·0.5
        assert_eq!(c.gravitational_energy, 0.0);
        assert!((c.total_energy() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn gravitational_term_from_potentials() {
        let sys = spinning_pair();
        let phi = vec![-3.0, -3.0];
        let c = Conservation::measure(&sys, Some(&phi));
        assert!((c.gravitational_energy + 6.0).abs() < 1e-15); // ½(2·−3 + 2·−3)
        assert!((c.total_energy() - (4.0 - 6.0)).abs() < 1e-15);
    }

    #[test]
    fn drift_measures_relative_change() {
        let sys = spinning_pair();
        let ref_c = Conservation::measure(&sys, None);
        let mut sys2 = sys.clone();
        sys2.u[0] *= 1.01; // +1% on one particle's u → +0.25% of total E
        let c2 = Conservation::measure(&sys2, None);
        let drift = c2.energy_drift(&ref_c);
        assert!((drift - 0.01 * 1.0 / 4.0).abs() < 1e-12, "drift = {drift}");
        assert_eq!(ref_c.energy_drift(&ref_c), 0.0);
    }

    #[test]
    fn momentum_drift_normalized() {
        let sys = spinning_pair();
        let ref_c = Conservation::measure(&sys, None);
        let scale = momentum_scale(&sys);
        assert!((scale - 4.0).abs() < 1e-15); // 2·|v|·m × 2
        let mut sys2 = sys.clone();
        sys2.v[0].x += 0.1;
        let c2 = Conservation::measure(&sys2, None);
        let d = c2.momentum_drift(&ref_c, scale);
        assert!((d - 0.2 / 4.0).abs() < 1e-12, "d = {d}");
    }
}
