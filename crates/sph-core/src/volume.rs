//! Volume elements: standard and generalized (Table 1, "Volume Elements").
//!
//! ChaNGa and SPH-flow use the standard `V_i = m_i/ρ_i`. SPHYNX uses
//! *generalized* volume elements (Cabezón, García-Senz & Figueira 2017):
//! an estimator `X_i = (m_i/ρ_i)^p` defines a partition of unity
//! `κ_i = Σ_j X_j W_ij(h_i)` and the volume `V_i = X_i / κ_i`; the density
//! is then *re-derived* from the volume as `ρ_i = m_i / V_i`. For `p = 0`
//! this reduces to the inverse number density, and the scheme reduces
//! kernel-support errors at density discontinuities.

use crate::config::{SphConfig, VolumeElements};
use crate::density::NeighborLists;
use crate::particles::ParticleSystem;
use rayon::prelude::*;
use sph_kernels::Kernel;
use sph_math::REDUCE_CHUNK;

/// Compute volume elements for the active particles, and — for the
/// generalized scheme — update their densities to `m/V`.
///
/// Requires `sys.rho` from the standard density sum (the estimator `X`
/// uses it). `lists` must be the neighbour lists produced for `active`.
pub fn compute_volume_elements(
    sys: &mut ParticleSystem,
    lists: &NeighborLists,
    kernel: &dyn Kernel,
    cfg: &SphConfig,
    active: &[u32],
) {
    assert_eq!(lists.query_count(), active.len());
    match cfg.volume_elements {
        VolumeElements::Standard => {
            for &ai in active {
                let i = ai as usize;
                debug_assert!(sys.rho[i] > 0.0, "volume elements need density first");
                sys.vol[i] = sys.m[i] / sys.rho[i];
            }
        }
        VolumeElements::Generalized { p } => {
            // X from the *pre-update* density for every particle (neighbour
            // X values are needed, so evaluate globally — cheap, O(n)).
            // Pre-sized: one deliberate allocation, no grow cycle.
            let mut x_est: Vec<f64> = Vec::with_capacity(sys.m.len());
            x_est.extend(sys.m.iter().zip(&sys.rho).map(|(&m, &rho)| {
                if rho > 0.0 {
                    (m / rho).powf(p)
                } else {
                    1.0
                }
            }));
            let chunks: Vec<Vec<f64>> = active
                .par_chunks(REDUCE_CHUNK)
                .enumerate()
                .map(|(c, chunk)| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(off, &ai)| {
                            let k = c * REDUCE_CHUNK + off;
                            let i = ai as usize;
                            let xi = sys.x[i];
                            let h = sys.h[i];
                            let mut kappa = 0.0;
                            for &j in lists.neighbors(k) {
                                let j = j as usize;
                                let r = sys.periodicity.distance(xi, sys.x[j]);
                                // sph-lint: allow(raw-accumulation) — FROZEN sum:
                                // the volume-element normalisation in
                                // sorted-neighbour order is part of the
                                // bit-identity contract.
                                kappa += x_est[j] * kernel.w(r, h);
                            }
                            if kappa > 0.0 {
                                x_est[i] / kappa
                            } else {
                                sys.m[i] / sys.rho[i].max(1e-300)
                            }
                        })
                        .collect()
                })
                .collect();
            for (&ai, v) in active.iter().zip(chunks.into_iter().flatten()) {
                let i = ai as usize;
                sys.vol[i] = v;
                sys.rho[i] = sys.m[i] / v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SphConfig;
    use crate::density::compute_density;
    use sph_kernels::SUPPORT_RADIUS;
    use sph_math::{Aabb, Periodicity, Vec3};
    use sph_tree::CellGrid;

    fn lattice(n: usize) -> ParticleSystem {
        let spacing = 1.0 / n as f64;
        let mut x = Vec::new();
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    x.push(Vec3::new(
                        (ix as f64 + 0.5) * spacing,
                        (iy as f64 + 0.5) * spacing,
                        (iz as f64 + 0.5) * spacing,
                    ));
                }
            }
        }
        let c = x.len();
        ParticleSystem::new(
            x,
            vec![Vec3::ZERO; c],
            vec![1.0 / c as f64; c],
            vec![1.0; c],
            2.0 * spacing,
            Periodicity::open(Aabb::unit()),
        )
    }

    fn run(cfg: &SphConfig, sys: &mut ParticleSystem) {
        let grid = CellGrid::build(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        let (lists, _) = compute_density(sys, &grid, kernel.as_ref(), cfg, &active);
        compute_volume_elements(sys, &lists, kernel.as_ref(), cfg, &active);
    }

    #[test]
    fn standard_volume_is_mass_over_density() {
        let mut sys = lattice(8);
        let cfg = SphConfig { target_neighbors: 50, ..Default::default() };
        run(&cfg, &mut sys);
        for i in 0..sys.len() {
            assert!((sys.vol[i] - sys.m[i] / sys.rho[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn generalized_volumes_tile_the_bulk() {
        // In a uniform lattice the generalized volumes must equal the cell
        // volume (1/n³ each) in the interior — the partition-of-unity
        // property.
        let n = 10;
        let mut sys = lattice(n);
        let cfg = SphConfig {
            volume_elements: VolumeElements::Generalized { p: 0.7 },
            target_neighbors: 60,
            ..Default::default()
        };
        run(&cfg, &mut sys);
        let cell = 1.0 / (n * n * n) as f64;
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.3;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                assert!(
                    (sys.vol[i] - cell).abs() < 0.05 * cell,
                    "V = {} vs cell {cell}",
                    sys.vol[i]
                );
            }
        }
    }

    #[test]
    fn generalized_density_consistent_with_volume() {
        let mut sys = lattice(8);
        let cfg = SphConfig {
            volume_elements: VolumeElements::Generalized { p: 0.5 },
            target_neighbors: 50,
            ..Default::default()
        };
        run(&cfg, &mut sys);
        for i in 0..sys.len() {
            assert!((sys.rho[i] - sys.m[i] / sys.vol[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn p_zero_gives_number_density_volumes() {
        // With p = 0 every X_i = 1 and V_i = 1/Σ_j W_ij, independent of
        // mass; verify by giving particles wildly different masses and
        // checking volumes stay equal on the uniform lattice interior.
        let n = 10;
        let mut sys = lattice(n);
        for i in 0..sys.len() {
            sys.m[i] = if i % 2 == 0 { 1e-3 } else { 2e-3 };
        }
        let cfg = SphConfig {
            volume_elements: VolumeElements::Generalized { p: 0.0 },
            target_neighbors: 60,
            ..Default::default()
        };
        run(&cfg, &mut sys);
        let ids: Vec<usize> = (0..sys.len())
            .filter(|&i| {
                let p = sys.x[i];
                p.x > 0.3 && p.x < 0.7 && p.y > 0.3 && p.y < 0.7 && p.z > 0.3 && p.z < 0.7
            })
            .collect();
        let v0 = sys.vol[ids[0]];
        for &i in &ids {
            assert!(
                (sys.vol[i] - v0).abs() < 0.05 * v0,
                "p=0 volumes should ignore mass: {} vs {v0}",
                sys.vol[i]
            );
        }
    }
}
