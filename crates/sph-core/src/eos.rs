//! Equations of state.
//!
//! Both test cases in Table 5 use an ideal gas: the Evrard collapse
//! explicitly with γ = 5/3 (§5.1) and the square patch as the standard
//! weakly-compressible treatment of the originally incompressible problem.

/// Ideal-gas EOS: `P = (γ − 1) ρ u`, `c_s = √(γ P / ρ)`.
#[derive(Debug, Clone, Copy)]
pub struct IdealGas {
    pub gamma: f64,
}

impl IdealGas {
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "ideal gas needs γ > 1, got {gamma}");
        IdealGas { gamma }
    }

    /// Pressure from density and specific internal energy.
    #[inline]
    pub fn pressure(&self, rho: f64, u: f64) -> f64 {
        (self.gamma - 1.0) * rho * u
    }

    /// Sound speed; clamped at zero for cold gas.
    #[inline]
    pub fn sound_speed(&self, rho: f64, u: f64) -> f64 {
        let p = self.pressure(rho, u).max(0.0);
        if rho > 0.0 {
            (self.gamma * p / rho).sqrt()
        } else {
            0.0
        }
    }

    /// Specific internal energy that yields pressure `p` at density `rho`.
    #[inline]
    pub fn energy_from_pressure(&self, rho: f64, p: f64) -> f64 {
        if rho > 0.0 {
            p / ((self.gamma - 1.0) * rho)
        } else {
            0.0
        }
    }

    /// Apply the EOS to whole field arrays, writing `p` and `cs`.
    pub fn apply(&self, rho: &[f64], u: &[f64], p: &mut [f64], cs: &mut [f64]) {
        assert!(rho.len() == u.len() && u.len() == p.len() && p.len() == cs.len());
        for i in 0..rho.len() {
            p[i] = self.pressure(rho[i], u[i]);
            cs[i] = self.sound_speed(rho[i], u[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monatomic_gas_values() {
        let eos = IdealGas::new(5.0 / 3.0);
        let p = eos.pressure(2.0, 3.0);
        assert!((p - 4.0).abs() < 1e-14); // (5/3−1)·2·3 = 4
        let cs = eos.sound_speed(2.0, 3.0);
        assert!((cs - (5.0 / 3.0 * 4.0 / 2.0_f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn energy_pressure_roundtrip() {
        let eos = IdealGas::new(1.4);
        let u = eos.energy_from_pressure(1.2, 3.4);
        assert!((eos.pressure(1.2, u) - 3.4).abs() < 1e-12);
    }

    #[test]
    fn cold_gas_is_silent() {
        let eos = IdealGas::new(5.0 / 3.0);
        assert_eq!(eos.sound_speed(1.0, 0.0), 0.0);
        assert_eq!(eos.pressure(1.0, 0.0), 0.0);
        // Zero internal energy must also survive the inverse map.
        assert_eq!(eos.energy_from_pressure(1.0, 0.0), 0.0);
    }

    #[test]
    fn vacuum_density_yields_zero_not_nan() {
        // The 0/0 edge a naive P/ρ would hit: a particle whose density
        // collapsed to zero (e.g. the evacuated Sedov centre at the
        // resolution floor) must read silent, not poisoned.
        let eos = IdealGas::new(5.0 / 3.0);
        assert_eq!(eos.sound_speed(0.0, 1.0), 0.0);
        assert_eq!(eos.energy_from_pressure(0.0, 1.0), 0.0);
    }

    #[test]
    fn shock_strength_energies_stay_finite_and_consistent() {
        // A Sedov deposition puts u ~ 10¹⁰ × background into a handful
        // of particles; pressure, sound speed and the round trip must
        // stay finite and consistent across that whole dynamic range.
        let eos = IdealGas::new(5.0 / 3.0);
        for exp in [-10, -5, 0, 5, 10] {
            let u = 10f64.powi(exp);
            let p = eos.pressure(1.0, u);
            let cs = eos.sound_speed(1.0, u);
            assert!(p.is_finite() && p > 0.0);
            assert!(cs.is_finite() && cs > 0.0);
            // cs² = γ(γ−1)u exactly in exact arithmetic; to a few ulps here.
            let want = (5.0 / 3.0 * (5.0 / 3.0 - 1.0) * u).sqrt();
            assert!((cs - want).abs() <= 1e-14 * want, "cs {cs} vs {want} at u = {u}");
            let u_back = eos.energy_from_pressure(1.0, p);
            assert!((u_back - u).abs() <= 1e-14 * u);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_gamma_one() {
        let _ = IdealGas::new(1.0);
    }

    #[test]
    fn apply_fills_arrays() {
        let eos = IdealGas::new(5.0 / 3.0);
        let rho = [1.0, 2.0];
        let u = [0.5, 0.25];
        let mut p = [0.0; 2];
        let mut cs = [0.0; 2];
        eos.apply(&rho, &u, &mut p, &mut cs);
        assert!(p.iter().all(|&x| x > 0.0));
        assert!(cs.iter().all(|&x| x > 0.0));
    }
}
