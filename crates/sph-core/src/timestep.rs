//! Time-step control (Algorithm 1, step 5; Table 1 "Time-Stepping").
//!
//! Three policies, one per parent code:
//! * **Global** (SPHYNX): one Δt = min over all particles of the local
//!   criterion — simple, synchronous, and the source of the load-imbalance
//!   the paper measures when particle costs differ;
//! * **Individual** (ChaNGa): power-of-two block rungs so cheap particles
//!   step rarely — the "multi-time-stepping" performance factor §1 calls
//!   out, and why ChaNGa wins on the centrally-condensed Evrard test;
//! * **Adaptive** (SPH-flow): a global step recomputed each step with a
//!   growth limiter.
//!
//! The local criterion combines the CFL/signal-velocity bound
//! `h / (c + 1.2(αc + βh max(0, −∇·v)))` (Monaghan 1992) with the force
//! bound `√(h/|a|)`.

use crate::config::SphConfig;
use crate::particles::ParticleSystem;

/// A pathological time-step state, detected instead of aborting the
/// process. A distributed run must be able to surface this through the
/// step driver (and, in a real deployment, trigger a checkpoint-restore)
/// rather than `abort()`ing every rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeStepError {
    /// A per-particle bound was NaN — e.g. a NaN-poisoned acceleration or
    /// sound speed flowed into the criterion.
    NonFinite {
        /// Index of the first offending particle.
        particle: usize,
    },
    /// A per-particle bound was zero or negative — e.g. an infinite sound
    /// speed collapsed the CFL criterion to zero.
    NonPositive {
        /// Index of the first offending particle.
        particle: usize,
        /// The offending value.
        dt: f64,
    },
}

impl std::fmt::Display for TimeStepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeStepError::NonFinite { particle } => {
                write!(f, "particle {particle}: NaN time-step bound (poisoned state)")
            }
            TimeStepError::NonPositive { particle, dt } => {
                write!(f, "particle {particle}: non-positive time-step bound {dt}")
            }
        }
    }
}

impl std::error::Error for TimeStepError {}

/// Per-particle stable time-step from the CFL and force criteria.
/// Requires `cs`, `div_v` and `a` to be current.
///
/// NaN inputs (a poisoned acceleration or sound speed) propagate to a NaN
/// bound instead of being silently dropped by IEEE `min`, so [`global_dt`]
/// can report the corruption.
pub fn per_particle_dt(sys: &ParticleSystem, cfg: &SphConfig) -> Vec<f64> {
    let alpha = cfg.viscosity.alpha;
    let beta = cfg.viscosity.beta;
    (0..sys.len())
        .map(|i| {
            let h = sys.h[i];
            let compress = (-sys.div_v[i]).max(0.0);
            let v_sig = sys.cs[i] + 1.2 * (alpha * sys.cs[i] + beta * h * compress);
            let dt_cfl = if v_sig.is_nan() {
                f64::NAN
            } else if v_sig > 0.0 {
                h / v_sig
            } else {
                f64::INFINITY
            };
            let a = sys.a[i].norm();
            let dt_force = if a.is_nan() {
                f64::NAN
            } else if a > 0.0 {
                (h / a).sqrt()
            } else {
                f64::INFINITY
            };
            let bound =
                if dt_cfl.is_nan() || dt_force.is_nan() { f64::NAN } else { dt_cfl.min(dt_force) };
            cfg.cfl * bound
        })
        .collect()
}

/// Global time-step: the minimum of the per-particle bounds.
///
/// A NaN or non-positive bound is reported as a [`TimeStepError`] naming
/// the offending particle (the pre-fix `assert!` aborted the whole
/// process, taking every rank of a distributed run with it). The
/// reduction is exact (`min` is order-independent), so distributed
/// drivers may reduce per-rank minima in any order and still agree
/// bit-for-bit with the single-rank result.
pub fn global_dt(dts: &[f64]) -> Result<f64, TimeStepError> {
    validate_dts(dts)?;
    Ok(finalize_global_dt(reduce_min_dt(dts)))
}

/// Validate every per-particle bound without reducing: NaN or
/// non-positive entries surface as a [`TimeStepError`] naming the first
/// offending particle. Split out so a distributed driver can validate on
/// the owners and reduce through its exchange carrier while keeping the
/// exact error semantics of [`global_dt`].
pub fn validate_dts(dts: &[f64]) -> Result<(), TimeStepError> {
    for (particle, &d) in dts.iter().enumerate() {
        if d.is_nan() {
            return Err(TimeStepError::NonFinite { particle });
        }
        if d <= 0.0 {
            return Err(TimeStepError::NonPositive { particle, dt: d });
        }
    }
    Ok(())
}

/// Exact order-independent `min` over validated bounds (`INFINITY` when
/// empty — the reduction identity a distributed min-reduce also uses).
pub fn reduce_min_dt(dts: &[f64]) -> f64 {
    dts.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Turn a reduced minimum into the Global-policy step.
pub fn finalize_global_dt(reduced_min: f64) -> f64 {
    if reduced_min.is_finite() {
        reduced_min
    } else {
        // Cold, static, force-free gas: any step is stable; pick unity.
        1.0
    }
}

/// Turn a reduced minimum into the Adaptive-policy step: the Global step
/// limited to `growth_limit × previous` so the step cannot explode after
/// a transient.
pub fn finalize_adaptive_dt(reduced_min: f64, previous: f64, growth_limit: f64) -> f64 {
    let raw = finalize_global_dt(reduced_min);
    if previous > 0.0 {
        raw.min(previous * growth_limit)
    } else {
        raw
    }
}

/// Adaptive step (SPH-flow): new global bound, limited to
/// `growth_limit × previous` so the step cannot explode after a transient.
pub fn adaptive_dt(dts: &[f64], previous: f64, growth_limit: f64) -> Result<f64, TimeStepError> {
    validate_dts(dts)?;
    Ok(finalize_adaptive_dt(reduce_min_dt(dts), previous, growth_limit))
}

/// Block-time-step rung assignment (ChaNGa).
///
/// Rung `r` steps with `Δt_max / 2^r`; a particle needing `dt_i` lands on
/// the smallest rung whose step does not exceed `dt_i`, capped at
/// `max_rungs`.
///
/// The `log2().ceil()` guess is only a seed: floating-point rounding at
/// exact power-of-two ratios can land it one rung off in either direction
/// (needlessly halving the step, or — worse — stepping past the stability
/// bound). The assignment is therefore post-verified in exact arithmetic:
/// `Δt_max / 2^r ≤ dt_i < Δt_max / 2^(r−1)` holds for every returned rung
/// below the cap (power-of-two divisions of a finite f64 are exact).
pub fn assign_rungs(dts: &[f64], dt_max: f64, max_rungs: u8) -> Vec<u8> {
    assert!(dt_max > 0.0);
    // 2^r via powi: exact for every u8 rung (2^255 is representable),
    // where `1u64 << r` would overflow from rung 64 on.
    let rung_dt = |r: u32| dt_max / 2f64.powi(r as i32);
    dts.iter()
        .map(|&dt| {
            if !dt.is_finite() || dt >= dt_max {
                return 0;
            }
            let mut r = ((dt_max / dt).log2().ceil().max(0.0) as u32).min(max_rungs as u32);
            // Stability: deepen while the rung step exceeds the bound.
            while r < max_rungs as u32 && rung_dt(r) > dt {
                r += 1;
            }
            // Minimality: climb while the rung above is also stable.
            while r > 0 && rung_dt(r - 1) <= dt {
                r -= 1;
            }
            r as u8
        })
        .collect()
}

/// Which rungs are active at a given substep of the macro-step.
///
/// A macro-step of `Δt_max` is divided into `2^deepest` substeps; the
/// particles on rung `r` are kicked on substeps that are multiples of
/// `2^(deepest − r)`. Substep 0 activates everyone.
pub fn rung_is_active(rung: u8, substep: u64, deepest: u8) -> bool {
    debug_assert!(rung <= deepest);
    let period = 1u64 << (deepest - rung);
    substep.is_multiple_of(period)
}

/// Indices of particles active at `substep` under the given rungs.
pub fn active_at_substep(rungs: &[u8], substep: u64, deepest: u8) -> Vec<u32> {
    rungs
        .iter()
        .enumerate()
        .filter(|&(_, &r)| rung_is_active(r.min(deepest), substep, deepest))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Total force evaluations of one macro-step with block rungs, relative to
/// the `n · 2^deepest` a global scheme would need. The paper's §1 names
/// multi-time-stepping a major performance factor; this ratio quantifies
/// it for the cost model.
pub fn block_step_work_ratio(rungs: &[u8], deepest: u8) -> f64 {
    let substeps = 1u64 << deepest;
    let mut work = 0u64;
    for s in 0..substeps {
        for &r in rungs {
            if rung_is_active(r.min(deepest), s, deepest) {
                work += 1;
            }
        }
    }
    work as f64 / (rungs.len() as u64 * substeps) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn static_system(n: usize) -> ParticleSystem {
        ParticleSystem::new(
            (0..n).map(|i| Vec3::splat(i as f64 * 0.01)).collect(),
            vec![Vec3::ZERO; n],
            vec![1.0; n],
            vec![1.0; n],
            0.1,
            Periodicity::open(Aabb::unit()),
        )
    }

    #[test]
    fn hot_gas_limits_the_step() {
        let mut sys = static_system(4);
        sys.cs = vec![1.0, 1.0, 10.0, 1.0]; // one hot particle
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[2] < dts[0]);
        assert!((global_dt(&dts).unwrap() - dts[2]).abs() < 1e-15);
    }

    #[test]
    fn force_criterion_engages() {
        let mut sys = static_system(2);
        sys.cs = vec![0.0; 2]; // silent gas: CFL unbounded
        sys.a[1] = Vec3::new(100.0, 0.0, 0.0);
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[0].is_infinite());
        let expected = cfg.cfl * (sys.h[1] / 100.0_f64).sqrt();
        assert!((dts[1] - expected).abs() < 1e-12);
    }

    #[test]
    fn compression_tightens_cfl() {
        let mut sys = static_system(2);
        sys.cs = vec![1.0; 2];
        sys.div_v = vec![0.0, -50.0]; // strongly converging at particle 1
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[1] < dts[0]);
        // Expansion must NOT tighten the step.
        sys.div_v = vec![0.0, 50.0];
        let dts2 = per_particle_dt(&sys, &cfg);
        assert!((dts2[1] - dts2[0]).abs() < 1e-15);
    }

    #[test]
    fn cold_static_gas_gets_unit_step() {
        let dts = vec![f64::INFINITY; 3];
        assert_eq!(global_dt(&dts).unwrap(), 1.0);
    }

    #[test]
    fn non_positive_dt_is_an_error_not_an_abort() {
        // An infinite sound speed collapses the CFL bound to zero; the
        // pre-fix assert! aborted the process here.
        let err = global_dt(&[0.5, 0.0, 0.2]).unwrap_err();
        assert_eq!(err, TimeStepError::NonPositive { particle: 1, dt: 0.0 });
        let err = global_dt(&[-1.0]).unwrap_err();
        assert!(matches!(err, TimeStepError::NonPositive { particle: 0, .. }));
        assert!(err.to_string().contains("non-positive"));
    }

    #[test]
    fn nan_poisoned_acceleration_surfaces_as_error() {
        // Regression: a single NaN acceleration used to vanish through
        // IEEE min (NaN > 0.0 is false → infinite force bound) and the
        // poisoned state stepped on silently.
        let mut sys = static_system(3);
        sys.cs = vec![1.0; 3];
        sys.a[1] = Vec3::new(f64::NAN, 0.0, 0.0);
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[1].is_nan(), "NaN acceleration must poison the bound");
        let err = global_dt(&dts).unwrap_err();
        assert_eq!(err, TimeStepError::NonFinite { particle: 1 });
    }

    #[test]
    fn nan_sound_speed_surfaces_as_error() {
        let mut sys = static_system(2);
        sys.cs = vec![1.0, f64::NAN];
        let dts = per_particle_dt(&sys, &SphConfig::default());
        assert!(matches!(global_dt(&dts), Err(TimeStepError::NonFinite { particle: 1 })));
    }

    #[test]
    fn adaptive_growth_is_limited() {
        let dts = vec![10.0];
        let dt = adaptive_dt(&dts, 1.0, 1.1).unwrap();
        assert!((dt - 1.1).abs() < 1e-15, "growth must be capped: {dt}");
        // Shrinking is immediate.
        let dt = adaptive_dt(&[0.1], 1.0, 1.1).unwrap();
        assert!((dt - 0.1).abs() < 1e-15);
        // Errors pass through the limiter.
        assert!(adaptive_dt(&[f64::NAN], 1.0, 1.1).is_err());
    }

    #[test]
    fn rung_assignment_powers_of_two() {
        let dt_max = 1.0;
        let rungs = assign_rungs(&[1.0, 0.6, 0.3, 0.12, 1e-6], dt_max, 8);
        assert_eq!(rungs, vec![0, 1, 2, 4, 8]); // last capped at max_rungs
    }

    #[test]
    fn rung_step_never_exceeds_particle_dt() {
        let dt_max = 2.0;
        let dts = [1.7, 0.9, 0.4, 0.26];
        let rungs = assign_rungs(&dts, dt_max, 10);
        for (&dt, &r) in dts.iter().zip(&rungs) {
            let rung_dt = dt_max / (1u64 << r) as f64;
            assert!(rung_dt <= dt, "rung {r} step {rung_dt} > allowed {dt}");
        }
    }

    #[test]
    fn exact_power_of_two_ratios_land_on_the_exact_rung() {
        // Regression: FP rounding in log2().ceil() could push a particle
        // whose dt is *exactly* Δt_max/2^k one rung deeper (halving its
        // step for nothing). Power-of-two divisions are exact, so the
        // assignment must hit k precisely.
        for dt_max in [1.0, 3.0, 0.7, 1e-3] {
            for k in 0..12u32 {
                let dt = dt_max / (1u64 << k) as f64;
                let rungs = assign_rungs(&[dt], dt_max, 16);
                assert_eq!(rungs[0] as u32, k, "dt_max={dt_max} k={k}: rung {}", rungs[0]);
            }
        }
    }

    #[test]
    fn deep_rungs_beyond_64_do_not_overflow() {
        // Regression: rung_dt used `1u64 << r`, which overflows (panics in
        // debug) once the seed rung reaches 64 — reachable with a large
        // max_rungs cap and an extreme dt ratio.
        let dt_max = 1.0;
        let dt = dt_max / 2f64.powi(100);
        let rungs = assign_rungs(&[dt, dt * 1.5, f64::INFINITY], dt_max, 200);
        assert_eq!(rungs[0], 100, "exact 2^-100 ratio must land on rung 100");
        assert_eq!(rungs[1], 100, "1.5×2^-100 still fits rung 100");
        assert_eq!(rungs[2], 0);
    }

    #[test]
    fn rungs_are_stable_and_minimal_under_adversarial_ratios() {
        // Sweep dt just above / just below power-of-two boundaries, where
        // the log2 guess rounds either way; the post-verification must
        // keep both invariants: Δt_max/2^r ≤ dt (stability) and
        // Δt_max/2^(r−1) > dt (no needless halving), below the cap.
        let mut rng = sph_math::SplitMix64::new(42);
        let max_rungs = 12u8;
        for _ in 0..2000 {
            let dt_max = rng.uniform(1e-6, 1e3);
            let k = (rng.next_f64() * 11.0) as u32;
            let eps = 1.0 + (rng.uniform(-8.0, 8.0)) * f64::EPSILON;
            let dt = (dt_max / (1u64 << k) as f64) * eps;
            if dt <= 0.0 || !dt.is_finite() {
                continue;
            }
            let r = assign_rungs(&[dt], dt_max, max_rungs)[0];
            let step = dt_max / (1u64 << r) as f64;
            if r < max_rungs {
                assert!(step <= dt, "stability: rung {r} step {step} > dt {dt}");
            }
            if r > 0 {
                let above = dt_max / (1u64 << (r - 1)) as f64;
                assert!(above > dt, "minimality: rung {}'s step {above} also fits dt {dt}", r - 1);
            }
        }
    }

    #[test]
    fn substep_activation_pattern() {
        // deepest = 2 ⇒ 4 substeps. Rung 0 actives at 0; rung 1 at 0, 2;
        // rung 2 at every substep.
        assert!(rung_is_active(0, 0, 2));
        assert!(!rung_is_active(0, 1, 2));
        assert!(!rung_is_active(0, 2, 2));
        assert!(rung_is_active(1, 0, 2));
        assert!(rung_is_active(1, 2, 2));
        assert!(!rung_is_active(1, 1, 2));
        for s in 0..4 {
            assert!(rung_is_active(2, s, 2));
        }
    }

    #[test]
    fn active_lists_match_pattern() {
        let rungs = vec![0, 1, 2, 2];
        assert_eq!(active_at_substep(&rungs, 0, 2), vec![0, 1, 2, 3]);
        assert_eq!(active_at_substep(&rungs, 1, 2), vec![2, 3]);
        assert_eq!(active_at_substep(&rungs, 2, 2), vec![1, 2, 3]);
        assert_eq!(active_at_substep(&rungs, 3, 2), vec![2, 3]);
    }

    #[test]
    fn block_stepping_saves_work_on_condensed_systems() {
        // 90% of particles on rung 0, 10% on rung 4 (an Evrard-like core):
        // work ratio must be far below 1 (the global-stepping cost).
        let mut rungs = vec![0u8; 900];
        rungs.extend(vec![4u8; 100]);
        let ratio = block_step_work_ratio(&rungs, 4);
        assert!(ratio < 0.2, "work ratio {ratio}");
        // All particles on the deepest rung = no savings.
        let ratio = block_step_work_ratio(&[3u8; 100], 3);
        assert!((ratio - 1.0).abs() < 1e-12);
    }
}
