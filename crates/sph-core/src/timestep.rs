//! Time-step control (Algorithm 1, step 5; Table 1 "Time-Stepping").
//!
//! Three policies, one per parent code:
//! * **Global** (SPHYNX): one Δt = min over all particles of the local
//!   criterion — simple, synchronous, and the source of the load-imbalance
//!   the paper measures when particle costs differ;
//! * **Individual** (ChaNGa): power-of-two block rungs so cheap particles
//!   step rarely — the "multi-time-stepping" performance factor §1 calls
//!   out, and why ChaNGa wins on the centrally-condensed Evrard test;
//! * **Adaptive** (SPH-flow): a global step recomputed each step with a
//!   growth limiter.
//!
//! The local criterion combines the CFL/signal-velocity bound
//! `h / (c + 1.2(αc + βh max(0, −∇·v)))` (Monaghan 1992) with the force
//! bound `√(h/|a|)`.

use crate::config::SphConfig;
use crate::particles::ParticleSystem;

/// Per-particle stable time-step from the CFL and force criteria.
/// Requires `cs`, `div_v` and `a` to be current.
pub fn per_particle_dt(sys: &ParticleSystem, cfg: &SphConfig) -> Vec<f64> {
    let alpha = cfg.viscosity.alpha;
    let beta = cfg.viscosity.beta;
    (0..sys.len())
        .map(|i| {
            let h = sys.h[i];
            let compress = (-sys.div_v[i]).max(0.0);
            let v_sig = sys.cs[i] + 1.2 * (alpha * sys.cs[i] + beta * h * compress);
            let dt_cfl = if v_sig > 0.0 { h / v_sig } else { f64::INFINITY };
            let a = sys.a[i].norm();
            let dt_force = if a > 0.0 { (h / a).sqrt() } else { f64::INFINITY };
            cfg.cfl * dt_cfl.min(dt_force)
        })
        .collect()
}

/// Global time-step: the minimum of the per-particle bounds, clamped to a
/// hard floor to survive pathological states.
pub fn global_dt(dts: &[f64]) -> f64 {
    let dt = dts.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(dt > 0.0, "non-positive time-step");
    if dt.is_finite() {
        dt
    } else {
        // Cold, static, force-free gas: any step is stable; pick unity.
        1.0
    }
}

/// Adaptive step (SPH-flow): new global bound, limited to
/// `growth_limit × previous` so the step cannot explode after a transient.
pub fn adaptive_dt(dts: &[f64], previous: f64, growth_limit: f64) -> f64 {
    let raw = global_dt(dts);
    if previous > 0.0 {
        raw.min(previous * growth_limit)
    } else {
        raw
    }
}

/// Block-time-step rung assignment (ChaNGa).
///
/// Rung `r` steps with `Δt_max / 2^r`; a particle needing `dt_i` lands on
/// the smallest rung whose step does not exceed `dt_i`, capped at
/// `max_rungs`.
pub fn assign_rungs(dts: &[f64], dt_max: f64, max_rungs: u8) -> Vec<u8> {
    assert!(dt_max > 0.0);
    dts.iter()
        .map(|&dt| {
            if !dt.is_finite() || dt >= dt_max {
                return 0;
            }
            let r = (dt_max / dt).log2().ceil().max(0.0) as u32;
            r.min(max_rungs as u32) as u8
        })
        .collect()
}

/// Which rungs are active at a given substep of the macro-step.
///
/// A macro-step of `Δt_max` is divided into `2^deepest` substeps; the
/// particles on rung `r` are kicked on substeps that are multiples of
/// `2^(deepest − r)`. Substep 0 activates everyone.
pub fn rung_is_active(rung: u8, substep: u64, deepest: u8) -> bool {
    debug_assert!(rung <= deepest);
    let period = 1u64 << (deepest - rung);
    substep.is_multiple_of(period)
}

/// Indices of particles active at `substep` under the given rungs.
pub fn active_at_substep(rungs: &[u8], substep: u64, deepest: u8) -> Vec<u32> {
    rungs
        .iter()
        .enumerate()
        .filter(|&(_, &r)| rung_is_active(r.min(deepest), substep, deepest))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Total force evaluations of one macro-step with block rungs, relative to
/// the `n · 2^deepest` a global scheme would need. The paper's §1 names
/// multi-time-stepping a major performance factor; this ratio quantifies
/// it for the cost model.
pub fn block_step_work_ratio(rungs: &[u8], deepest: u8) -> f64 {
    let substeps = 1u64 << deepest;
    let mut work = 0u64;
    for s in 0..substeps {
        for &r in rungs {
            if rung_is_active(r.min(deepest), s, deepest) {
                work += 1;
            }
        }
    }
    work as f64 / (rungs.len() as u64 * substeps) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn static_system(n: usize) -> ParticleSystem {
        ParticleSystem::new(
            (0..n).map(|i| Vec3::splat(i as f64 * 0.01)).collect(),
            vec![Vec3::ZERO; n],
            vec![1.0; n],
            vec![1.0; n],
            0.1,
            Periodicity::open(Aabb::unit()),
        )
    }

    #[test]
    fn hot_gas_limits_the_step() {
        let mut sys = static_system(4);
        sys.cs = vec![1.0, 1.0, 10.0, 1.0]; // one hot particle
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[2] < dts[0]);
        assert!((global_dt(&dts) - dts[2]).abs() < 1e-15);
    }

    #[test]
    fn force_criterion_engages() {
        let mut sys = static_system(2);
        sys.cs = vec![0.0; 2]; // silent gas: CFL unbounded
        sys.a[1] = Vec3::new(100.0, 0.0, 0.0);
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[0].is_infinite());
        let expected = cfg.cfl * (sys.h[1] / 100.0_f64).sqrt();
        assert!((dts[1] - expected).abs() < 1e-12);
    }

    #[test]
    fn compression_tightens_cfl() {
        let mut sys = static_system(2);
        sys.cs = vec![1.0; 2];
        sys.div_v = vec![0.0, -50.0]; // strongly converging at particle 1
        let cfg = SphConfig::default();
        let dts = per_particle_dt(&sys, &cfg);
        assert!(dts[1] < dts[0]);
        // Expansion must NOT tighten the step.
        sys.div_v = vec![0.0, 50.0];
        let dts2 = per_particle_dt(&sys, &cfg);
        assert!((dts2[1] - dts2[0]).abs() < 1e-15);
    }

    #[test]
    fn cold_static_gas_gets_unit_step() {
        let dts = vec![f64::INFINITY; 3];
        assert_eq!(global_dt(&dts), 1.0);
    }

    #[test]
    fn adaptive_growth_is_limited() {
        let dts = vec![10.0];
        let dt = adaptive_dt(&dts, 1.0, 1.1);
        assert!((dt - 1.1).abs() < 1e-15, "growth must be capped: {dt}");
        // Shrinking is immediate.
        let dt = adaptive_dt(&[0.1], 1.0, 1.1);
        assert!((dt - 0.1).abs() < 1e-15);
    }

    #[test]
    fn rung_assignment_powers_of_two() {
        let dt_max = 1.0;
        let rungs = assign_rungs(&[1.0, 0.6, 0.3, 0.12, 1e-6], dt_max, 8);
        assert_eq!(rungs, vec![0, 1, 2, 4, 8]); // last capped at max_rungs
    }

    #[test]
    fn rung_step_never_exceeds_particle_dt() {
        let dt_max = 2.0;
        let dts = [1.7, 0.9, 0.4, 0.26];
        let rungs = assign_rungs(&dts, dt_max, 10);
        for (&dt, &r) in dts.iter().zip(&rungs) {
            let rung_dt = dt_max / (1u64 << r) as f64;
            assert!(rung_dt <= dt + 1e-12, "rung {r} step {rung_dt} > allowed {dt}");
        }
    }

    #[test]
    fn substep_activation_pattern() {
        // deepest = 2 ⇒ 4 substeps. Rung 0 actives at 0; rung 1 at 0, 2;
        // rung 2 at every substep.
        assert!(rung_is_active(0, 0, 2));
        assert!(!rung_is_active(0, 1, 2));
        assert!(!rung_is_active(0, 2, 2));
        assert!(rung_is_active(1, 0, 2));
        assert!(rung_is_active(1, 2, 2));
        assert!(!rung_is_active(1, 1, 2));
        for s in 0..4 {
            assert!(rung_is_active(2, s, 2));
        }
    }

    #[test]
    fn active_lists_match_pattern() {
        let rungs = vec![0, 1, 2, 2];
        assert_eq!(active_at_substep(&rungs, 0, 2), vec![0, 1, 2, 3]);
        assert_eq!(active_at_substep(&rungs, 1, 2), vec![2, 3]);
        assert_eq!(active_at_substep(&rungs, 2, 2), vec![1, 2, 3]);
        assert_eq!(active_at_substep(&rungs, 3, 2), vec![2, 3]);
    }

    #[test]
    fn block_stepping_saves_work_on_condensed_systems() {
        // 90% of particles on rung 0, 10% on rung 4 (an Evrard-like core):
        // work ratio must be far below 1 (the global-stepping cost).
        let mut rungs = vec![0u8; 900];
        rungs.extend(vec![4u8; 100]);
        let ratio = block_step_work_ratio(&rungs, 4);
        assert!(ratio < 0.2, "work ratio {ratio}");
        // All particles on the deepest rung = no savings.
        let ratio = block_step_work_ratio(&[3u8; 100], 3);
        assert!((ratio - 1.0).abs() < 1e-12);
    }
}
