//! Momentum and energy equations (Algorithm 1, step 3, phases E–H of the
//! Fig. 4 trace).
//!
//! With `α_i = P_i / (Ω_i ρ_i²)` and the *effective* kernel gradient
//! `g_ij` of the configured scheme (analytic derivative or IAD):
//!
//! ```text
//! dv_i/dt = − Σ_j m_j [ α_i g_ij(h_i, C_i) + α_j g_ij(h_j, C_j) + Π_ij ḡ_ij ]
//! du_i/dt =   α_i Σ_j m_j v_ij · g_ij(h_i, C_i)
//!           + ½ Σ_j m_j Π_ij v_ij · ḡ_ij
//! ```
//!
//! where `v_ij = v_i − v_j` and `ḡ = (g(h_i) + g(h_j))/2`. The pair terms
//! are exactly antisymmetric under `i ↔ j` for the analytic gradient, so
//! linear momentum and total energy are conserved to round-off — the
//! conservation-law constraint §5 of the paper calls "much more important"
//! than pointwise convergence. IAD trades exact antisymmetry for linear
//! exactness; its conservation error is bounded by the matrix asymmetry
//! and is verified small in the tests.

use crate::config::SphConfig;
use crate::density::NeighborLists;
use crate::gradients::effective_gradient;
use crate::particles::ParticleSystem;
use crate::viscosity::{balsara_factor, pair_viscosity};
use rayon::prelude::*;
use sph_kernels::Kernel;
use sph_math::{Vec3, REDUCE_CHUNK};

/// Evaluate hydrodynamic accelerations and energy derivatives for the
/// active particles. Requires density, volume elements, Ω, EOS outputs
/// (`p`, `cs`), velocity gradients (`div_v`, `curl_v`) and — for IAD —
/// the `c_iad` matrices to be current. Returns the number of pair
/// interactions evaluated.
pub fn compute_forces(
    sys: &mut ParticleSystem,
    lists: &NeighborLists,
    kernel: &dyn Kernel,
    cfg: &SphConfig,
    active: &[u32],
) -> u64 {
    assert_eq!(lists.query_count(), active.len());
    let scheme = cfg.gradients;
    let visc = cfg.viscosity;

    // Chunked map + ordered reduce: rows per chunk plus one chunk-folded
    // pair counter, over fixed REDUCE_CHUNK boundaries (thread-count
    // independent, so accelerations are bit-identical for any SPH_THREADS).
    let chunks: Vec<(Vec<(Vec3, f64)>, u64)> = active
        .par_chunks(REDUCE_CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            let mut chunk_pairs = 0u64;
            let rows = chunk
                .iter()
                .enumerate()
                .map(|(off, &ai)| {
                    let k = c * REDUCE_CHUNK + off;
                    let i = ai as usize;
                    let xi = sys.x[i];
                    let vi = sys.v[i];
                    let hi = sys.h[i];
                    let rho_i = sys.rho[i];
                    let p_i = sys.p[i];
                    let cs_i = sys.cs[i];
                    let ci = sys.c_iad[i];
                    let alpha_i = p_i / (sys.omega[i] * rho_i * rho_i);
                    let f_bal_i = if visc.balsara {
                        balsara_factor(sys.div_v[i], sys.curl_v[i], cs_i, hi)
                    } else {
                        1.0
                    };

                    let mut acc = Vec3::ZERO;
                    let mut dudt = 0.0;
                    for &j in lists.neighbors(k) {
                        let j = j as usize;
                        if j == i {
                            continue;
                        }
                        chunk_pairs += 1;
                        let d = sys.periodicity.displacement(xi, sys.x[j]);
                        let r = d.norm();
                        let dv = vi - sys.v[j];

                        let g_i = effective_gradient(scheme, kernel, &ci, d, r, hi);
                        let g_j = effective_gradient(scheme, kernel, &sys.c_iad[j], d, r, sys.h[j]);
                        let g_bar = (g_i + g_j) * 0.5;

                        let rho_j = sys.rho[j];
                        let alpha_j = sys.p[j] / (sys.omega[j] * rho_j * rho_j);

                        let f_bal_j = if visc.balsara {
                            balsara_factor(sys.div_v[j], sys.curl_v[j], sys.cs[j], sys.h[j])
                        } else {
                            1.0
                        };
                        let pi_ij = pair_viscosity(
                            &visc, d, dv, hi, sys.h[j], cs_i, sys.cs[j], rho_i, rho_j, f_bal_i,
                            f_bal_j,
                        );

                        let mj = sys.m[j];
                        acc -= (g_i * alpha_i + g_j * alpha_j + g_bar * pi_ij) * mj;
                        // sph-lint: allow(raw-accumulation) — FROZEN: the
                        // pairwise energy-rate sum in sorted-neighbour
                        // order is part of the bit-identity contract;
                        // compensation would change every trajectory.
                        dudt += mj * (alpha_i * dv.dot(g_i) + 0.5 * pi_ij * dv.dot(g_bar));
                    }
                    (acc, dudt)
                })
                .collect();
            (rows, chunk_pairs)
        })
        .collect();

    // Ordered reduce: write rows back in `active` order, fold pair counts.
    let mut total_pairs = 0;
    let mut ids = active.iter();
    for (rows, chunk_pairs) in chunks {
        // sph-lint: allow(raw-accumulation) — u64 interaction counter;
        // integer addition is exact, no FP order to freeze.
        total_pairs += chunk_pairs;
        for (acc, dudt) in rows {
            // sph-lint: allow(panic-path) — local invariant: the chunks
            // are a partition of `active`, so the id iterator yields
            // exactly one id per row; exhaustion here is a code bug.
            let i = *ids.next().expect("chunk rows outnumber active ids") as usize;
            sys.a[i] = acc;
            sys.du_dt[i] = dudt;
        }
    }
    total_pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GradientScheme, SphConfig};
    use crate::density::compute_density;
    use crate::eos::IdealGas;
    use crate::gradients::{compute_iad_matrices, compute_velocity_gradients};
    use crate::volume::compute_volume_elements;
    use sph_kernels::SUPPORT_RADIUS;
    use sph_math::{Aabb, Periodicity, SplitMix64};
    use sph_tree::CellGrid;

    fn jittered(n: usize, jitter: f64, seed: u64) -> ParticleSystem {
        let mut rng = SplitMix64::new(seed);
        let spacing = 1.0 / n as f64;
        let mut x = Vec::new();
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    x.push(Vec3::new(
                        (ix as f64 + 0.5 + rng.uniform(-jitter, jitter)) * spacing,
                        (iy as f64 + 0.5 + rng.uniform(-jitter, jitter)) * spacing,
                        (iz as f64 + 0.5 + rng.uniform(-jitter, jitter)) * spacing,
                    ));
                }
            }
        }
        let c = x.len();
        ParticleSystem::new(
            x,
            vec![Vec3::ZERO; c],
            vec![1.0 / c as f64; c],
            vec![1.0; c],
            2.0 * spacing,
            Periodicity::open(Aabb::unit()),
        )
    }

    /// Full derivative evaluation pipeline for the tests. The force pass
    /// uses the symmetric closure of the gather lists so every pair is seen
    /// from both sides (conservation requires it).
    fn evaluate(sys: &mut ParticleSystem, cfg: &SphConfig) {
        let grid = CellGrid::build(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        let (lists, _) = compute_density(sys, &grid, kernel.as_ref(), cfg, &active);
        compute_volume_elements(sys, &lists, kernel.as_ref(), cfg, &active);
        if cfg.gradients == GradientScheme::Iad {
            compute_iad_matrices(sys, &lists, kernel.as_ref(), &active);
        }
        let eos = IdealGas::new(cfg.gamma);
        eos.apply(&sys.rho, &sys.u, &mut sys.p, &mut sys.cs);
        compute_velocity_gradients(sys, &lists, kernel.as_ref(), cfg.gradients, &active);
        let sym = lists.symmetrized();
        compute_forces(sys, &sym, kernel.as_ref(), cfg, &active);
    }

    fn interior(sys: &ParticleSystem, margin: f64) -> Vec<usize> {
        (0..sys.len())
            .filter(|&i| {
                let p = sys.x[i];
                p.x > margin
                    && p.x < 1.0 - margin
                    && p.y > margin
                    && p.y < 1.0 - margin
                    && p.z > margin
                    && p.z < 1.0 - margin
            })
            .collect()
    }

    #[test]
    fn uniform_pressure_gives_no_force_in_periodic_lattice() {
        // A fully periodic uniform lattice has exact translation symmetry:
        // every particle's net hydro force must vanish to round-off.
        // n = 8 makes the spacing (1/8) exactly representable, so all
        // particles see bit-identical neighbour geometry and the symmetry
        // holds exactly, not just statistically.
        let mut sys = jittered(8, 0.0, 1); // perfect lattice
        sys.periodicity = Periodicity::fully_periodic(Aabb::unit());
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        evaluate(&mut sys, &cfg);
        // Scale: P/(ρ h) is the natural acceleration unit here.
        let scale = sys.p[0] / (sys.rho[0] * sys.h[0]);
        for i in 0..sys.len() {
            assert!(sys.a[i].norm() < 1e-9 * scale, "accel {:?} at {i} (scale {scale})", sys.a[i]);
        }
    }

    #[test]
    fn pressure_gradient_accelerates_correctly() {
        // u(x) linear in x ⇒ P = (γ−1)ρu linear ⇒ a ≈ −∇P/ρ pointing down-x.
        let mut sys = jittered(12, 0.0, 2);
        let slope = 0.5;
        for i in 0..sys.len() {
            sys.u[i] = 1.0 + slope * sys.x[i].x;
        }
        let cfg = SphConfig {
            gradients: GradientScheme::Iad,
            target_neighbors: 60,
            ..Default::default()
        };
        evaluate(&mut sys, &cfg);
        let gamma = cfg.gamma;
        // ρ ≈ 1 interior ⇒ expected a_x = −(γ−1)·slope.
        let expected = -(gamma - 1.0) * slope;
        for i in interior(&sys, 0.3) {
            let rel = (sys.a[i].x - expected).abs() / expected.abs();
            assert!(rel < 0.15, "a_x = {} vs expected {expected} at particle {i}", sys.a[i].x);
            assert!(sys.a[i].y.abs() < 0.1 * expected.abs());
            assert!(sys.a[i].z.abs() < 0.1 * expected.abs());
        }
    }

    #[test]
    fn momentum_conserved_to_roundoff_with_kernel_derivatives() {
        let mut sys = jittered(8, 0.3, 5);
        // Random hot spots to drive strong forces.
        let mut rng = SplitMix64::new(10);
        for i in 0..sys.len() {
            sys.u[i] = rng.uniform(0.5, 2.0);
            sys.v[i] = Vec3::new(rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1), 0.0);
        }
        let cfg = SphConfig { target_neighbors: 50, ..Default::default() };
        evaluate(&mut sys, &cfg);
        let net: Vec3 = sys.a.iter().zip(&sys.m).map(|(&a, &m)| a * m).sum();
        let typical: f64 =
            sys.a.iter().zip(&sys.m).map(|(&a, &m)| (a * m).norm()).sum::<f64>() / sys.len() as f64;
        assert!(
            net.norm() < 1e-10 * typical * sys.len() as f64,
            "net momentum rate {net:?}, typical |ma| {typical}"
        );
    }

    #[test]
    fn energy_conserved_to_roundoff_with_kernel_derivatives() {
        // The discrete identity Σ m (v·a + du/dt) = 0 must hold pairwise.
        let mut sys = jittered(8, 0.3, 6);
        let mut rng = SplitMix64::new(11);
        for i in 0..sys.len() {
            sys.u[i] = rng.uniform(0.5, 2.0);
            sys.v[i] =
                Vec3::new(rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2));
        }
        let cfg = SphConfig { target_neighbors: 50, ..Default::default() };
        evaluate(&mut sys, &cfg);
        let de: f64 =
            (0..sys.len()).map(|i| sys.m[i] * (sys.v[i].dot(sys.a[i]) + sys.du_dt[i])).sum();
        let scale: f64 = (0..sys.len())
            .map(|i| sys.m[i] * (sys.v[i].dot(sys.a[i]).abs() + sys.du_dt[i].abs()))
            .sum();
        assert!(de.abs() < 1e-10 * scale.max(1e-30), "dE/dt = {de}, scale {scale}");
    }

    #[test]
    fn iad_momentum_error_is_small() {
        let mut sys = jittered(8, 0.3, 7);
        let mut rng = SplitMix64::new(12);
        for i in 0..sys.len() {
            sys.u[i] = rng.uniform(0.5, 2.0);
        }
        let cfg = SphConfig {
            gradients: GradientScheme::Iad,
            target_neighbors: 50,
            ..Default::default()
        };
        evaluate(&mut sys, &cfg);
        let net: Vec3 = sys.a.iter().zip(&sys.m).map(|(&a, &m)| a * m).sum();
        let total_abs: f64 = sys.a.iter().zip(&sys.m).map(|(&a, &m)| (a * m).norm()).sum();
        // IAD is not exactly antisymmetric; require the violation to stay
        // below 1% of the total force magnitude.
        assert!(
            net.norm() < 0.01 * total_abs,
            "IAD momentum violation {} vs total {total_abs}",
            net.norm()
        );
    }

    #[test]
    fn compression_heats_gas() {
        // Two columns approaching: du/dt must be positive where they meet.
        let mut sys = jittered(10, 0.0, 8);
        for i in 0..sys.len() {
            // Converging flow toward the x = 0.5 plane.
            sys.v[i] = Vec3::new(if sys.x[i].x < 0.5 { 0.5 } else { -0.5 }, 0.0, 0.0);
        }
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        evaluate(&mut sys, &cfg);
        let mid: Vec<usize> =
            interior(&sys, 0.2).into_iter().filter(|&i| (sys.x[i].x - 0.5).abs() < 0.1).collect();
        assert!(!mid.is_empty());
        let heating: f64 = mid.iter().map(|&i| sys.du_dt[i]).sum::<f64>() / mid.len() as f64;
        assert!(heating > 0.0, "mean du/dt at the interface = {heating}");
    }

    #[test]
    fn viscosity_off_means_no_heating_in_uniform_flow() {
        // Uniform translation: no du/dt anywhere (Galilean invariance).
        let mut sys = jittered(8, 0.2, 9);
        for i in 0..sys.len() {
            sys.v[i] = Vec3::new(1.0, 2.0, 3.0);
        }
        let cfg = SphConfig { target_neighbors: 50, ..Default::default() };
        evaluate(&mut sys, &cfg);
        for i in 0..sys.len() {
            assert!(
                sys.du_dt[i].abs() < 1e-10,
                "du/dt = {} under uniform translation",
                sys.du_dt[i]
            );
        }
    }
}
