//! Monaghan artificial viscosity with optional Balsara switch.
//!
//! The standard pairwise term (Monaghan 1992) that all three parent codes
//! carry in one form or another:
//!
//! ```text
//! μ_ij = h̄_ij (v_ij · r_ij) / (r_ij² + η² h̄_ij²)     if v_ij · r_ij < 0
//! Π_ij = (−α c̄_ij μ_ij + β μ_ij²) / ρ̄_ij             (else 0)
//! ```
//!
//! The Balsara (1995) limiter suppresses Π in shear-dominated flows —
//! essential for the rotating square patch, which is pure shear and would
//! otherwise be artificially braked.

use crate::config::ViscosityConfig;
use sph_math::Vec3;

/// Balsara shear limiter `f = |∇·v| / (|∇·v| + |∇×v| + 10⁻⁴ c/h)`.
#[inline]
pub fn balsara_factor(div_v: f64, curl_v: f64, cs: f64, h: f64) -> f64 {
    let d = div_v.abs();
    let denom = d + curl_v + 1e-4 * cs / h.max(1e-300);
    if denom > 0.0 {
        d / denom
    } else {
        1.0
    }
}

/// Pairwise viscous pressure term Π_ij.
///
/// * `d` — minimum-image displacement `r_i − r_j`;
/// * `dv` — velocity difference `v_i − v_j`;
/// * `f_i`, `f_j` — Balsara factors (pass 1.0 when the switch is off).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pair_viscosity(
    cfg: &ViscosityConfig,
    d: Vec3,
    dv: Vec3,
    h_i: f64,
    h_j: f64,
    cs_i: f64,
    cs_j: f64,
    rho_i: f64,
    rho_j: f64,
    f_i: f64,
    f_j: f64,
) -> f64 {
    let vr = dv.dot(d);
    if vr >= 0.0 {
        // Receding pair: no viscosity.
        return 0.0;
    }
    let h_bar = 0.5 * (h_i + h_j);
    let r2 = d.norm_sq();
    let mu = h_bar * vr / (r2 + cfg.eta2 * h_bar * h_bar);
    let c_bar = 0.5 * (cs_i + cs_j);
    let rho_bar = 0.5 * (rho_i + rho_j);
    let f_bar = if cfg.balsara { 0.5 * (f_i + f_j) } else { 1.0 };
    f_bar * (-cfg.alpha * c_bar * mu + cfg.beta * mu * mu) / rho_bar
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ViscosityConfig {
        ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: false }
    }

    #[test]
    fn receding_pair_has_no_viscosity() {
        // j behind i, i moving away from j: v_ij · r_ij > 0.
        let d = Vec3::new(1.0, 0.0, 0.0);
        let dv = Vec3::new(0.5, 0.0, 0.0);
        let pi = pair_viscosity(&cfg(), d, dv, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
        assert_eq!(pi, 0.0);
    }

    #[test]
    fn approaching_pair_is_damped() {
        let d = Vec3::new(1.0, 0.0, 0.0);
        let dv = Vec3::new(-0.5, 0.0, 0.0); // approaching
        let pi = pair_viscosity(&cfg(), d, dv, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
        assert!(pi > 0.0, "Π = {pi}");
    }

    #[test]
    fn viscosity_grows_with_approach_speed() {
        let d = Vec3::new(1.0, 0.0, 0.0);
        let slow = pair_viscosity(
            &cfg(),
            d,
            Vec3::new(-0.1, 0.0, 0.0),
            0.1,
            0.1,
            1.0,
            1.0,
            1.0,
            1.0,
            1.0,
            1.0,
        );
        let fast = pair_viscosity(
            &cfg(),
            d,
            Vec3::new(-1.0, 0.0, 0.0),
            0.1,
            0.1,
            1.0,
            1.0,
            1.0,
            1.0,
            1.0,
            1.0,
        );
        assert!(fast > slow);
    }

    #[test]
    fn transverse_motion_is_inviscid() {
        // Pure shear: dv ⟂ d ⇒ v·r = 0 ⇒ Π = 0 even without Balsara.
        let d = Vec3::new(1.0, 0.0, 0.0);
        let dv = Vec3::new(0.0, 3.0, 0.0);
        let pi = pair_viscosity(&cfg(), d, dv, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
        assert_eq!(pi, 0.0);
    }

    #[test]
    fn balsara_kills_pure_shear() {
        // |∇×v| ≫ |∇·v| ⇒ f → 0.
        let f = balsara_factor(1e-8, 10.0, 1.0, 0.1);
        assert!(f < 1e-6, "f = {f}");
    }

    #[test]
    fn balsara_passes_pure_compression() {
        // |∇·v| ≫ |∇×v| ⇒ f → 1.
        let f = balsara_factor(10.0, 1e-8, 1.0, 0.1);
        assert!(f > 0.999, "f = {f}");
    }

    #[test]
    fn balsara_factor_bounded() {
        for (d, c) in [(0.0, 0.0), (1.0, 1.0), (5.0, 0.1), (0.1, 5.0)] {
            let f = balsara_factor(d, c, 1.0, 0.1);
            assert!((0.0..=1.0).contains(&f), "f = {f}");
        }
    }

    #[test]
    fn balsara_switch_applied_in_pair_term() {
        let mut c = cfg();
        c.balsara = true;
        let d = Vec3::new(1.0, 0.0, 0.0);
        let dv = Vec3::new(-0.5, 0.0, 0.0);
        let full = pair_viscosity(&c, d, dv, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
        let damped = pair_viscosity(&c, d, dv, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0);
        assert_eq!(damped, 0.0);
        assert!(full > 0.0);
    }

    #[test]
    fn shock_strength_approach_is_quadratic_in_mach() {
        // For |v·r| ≫ c the β μ² (von Neumann–Richtmyer) term dominates:
        // doubling a shock-strength approach speed must quadruple Π.
        // This is the term that carries the Sedov/Sod shock capture.
        let d = Vec3::new(1.0, 0.0, 0.0);
        let cs = 0.01; // nearly cold pre-shock gas
        let pi = |speed: f64| {
            pair_viscosity(
                &cfg(),
                d,
                Vec3::new(-speed, 0.0, 0.0),
                0.1,
                0.1,
                cs,
                cs,
                1.0,
                1.0,
                1.0,
                1.0,
            )
        };
        let ratio = pi(20.0) / pi(10.0);
        assert!((ratio - 4.0).abs() < 0.05, "Π(2v)/Π(v) = {ratio}, want ≈ 4");
        assert!(pi(1000.0).is_finite());
    }

    #[test]
    fn cold_static_gas_has_unit_balsara_factor() {
        // cs = 0, ∇·v = 0, ∇×v = 0 makes the denominator exactly zero —
        // the guard must return the no-suppression value, not NaN.
        let f = balsara_factor(0.0, 0.0, 0.0, 0.1);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn balsara_factor_survives_degenerate_smoothing_length() {
        // h = 0 would divide by zero in the noise floor term; the clamp
        // keeps the factor finite (and fully suppressed, since the
        // noise floor then dominates the denominator).
        let f = balsara_factor(1.0, 1.0, 1.0, 0.0);
        assert!(f.is_finite() && (0.0..=1.0).contains(&f), "f = {f}");
    }

    #[test]
    fn viscosity_finite_at_near_contact_separation() {
        // r → 0 with an approaching pair: the η²h̄² softening must keep
        // μ — and Π — finite.
        let d = Vec3::new(1e-12, 0.0, 0.0);
        let dv = Vec3::new(-1.0, 0.0, 0.0);
        let pi = pair_viscosity(&cfg(), d, dv, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
        assert!(pi.is_finite() && pi >= 0.0, "Π = {pi}");
    }

    #[test]
    fn symmetric_in_pair_exchange() {
        // Π_ij must equal Π_ji: swap i↔j flips both d and dv.
        let d = Vec3::new(0.3, -0.2, 0.1);
        let dv = Vec3::new(-0.4, 0.1, 0.05);
        let a = pair_viscosity(&cfg(), d, dv, 0.1, 0.2, 1.0, 1.5, 1.0, 2.0, 1.0, 1.0);
        let b = pair_viscosity(&cfg(), -d, -dv, 0.2, 0.1, 1.5, 1.0, 2.0, 1.0, 1.0, 1.0);
        assert!((a - b).abs() < 1e-15);
    }
}
