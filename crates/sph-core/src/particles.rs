//! Structure-of-arrays particle storage.
//!
//! SPH is bandwidth-bound; SoA keeps each per-particle field contiguous so
//! the density/force loops stream through memory and auto-vectorise (see
//! the domain guides on data layout). The layout also makes checkpointing
//! (`sph-ft`) and halo packing (`sph-cluster`) simple slice copies.

use sph_math::{Aabb, Mat3, Periodicity, Vec3};

/// All per-particle state of a simulation.
#[derive(Debug, Clone)]
pub struct ParticleSystem {
    /// Positions.
    pub x: Vec<Vec3>,
    /// Velocities.
    pub v: Vec<Vec3>,
    /// Masses (Table 1 "Mass of Particles": equal or variable — both are
    /// just values here).
    pub m: Vec<f64>,
    /// Smoothing lengths.
    pub h: Vec<f64>,
    /// Densities.
    pub rho: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
    /// Pressures (EOS output).
    pub p: Vec<f64>,
    /// Sound speeds (EOS output).
    pub cs: Vec<f64>,
    /// Accelerations (hydro + gravity).
    pub a: Vec<Vec3>,
    /// Rates of change of internal energy.
    pub du_dt: Vec<f64>,
    /// Grad-h correction terms Ω.
    pub omega: Vec<f64>,
    /// Volume elements V.
    pub vol: Vec<f64>,
    /// Velocity divergence (for the Balsara switch and diagnostics).
    pub div_v: Vec<f64>,
    /// Velocity curl magnitude (Balsara switch).
    pub curl_v: Vec<f64>,
    /// IAD inverse shape matrices C (valid when gradients == Iad).
    pub c_iad: Vec<Mat3>,
    /// Individual-time-step rung (0 = largest step).
    pub rung: Vec<u8>,
    /// Boundary metric for neighbour search and displacements.
    pub periodicity: Periodicity,
    /// Current simulation time.
    pub time: f64,
    /// Completed step count.
    pub step_count: u64,
}

impl ParticleSystem {
    /// Create a system from positions, velocities, masses, internal
    /// energies and an initial smoothing length guess.
    pub fn new(
        x: Vec<Vec3>,
        v: Vec<Vec3>,
        m: Vec<f64>,
        u: Vec<f64>,
        h0: f64,
        periodicity: Periodicity,
    ) -> Self {
        let n = x.len();
        assert!(n > 0, "empty particle system");
        assert_eq!(v.len(), n);
        assert_eq!(m.len(), n);
        assert_eq!(u.len(), n);
        assert!(h0 > 0.0 && h0.is_finite());
        assert!(m.iter().all(|&mi| mi > 0.0), "non-positive particle mass");
        ParticleSystem {
            x,
            v,
            m,
            h: vec![h0; n],
            rho: vec![0.0; n],
            u,
            p: vec![0.0; n],
            cs: vec![0.0; n],
            a: vec![Vec3::ZERO; n],
            du_dt: vec![0.0; n],
            omega: vec![1.0; n],
            vol: vec![0.0; n],
            div_v: vec![0.0; n],
            curl_v: vec![0.0; n],
            c_iad: vec![Mat3::ZERO; n],
            rung: vec![0; n],
            periodicity,
            time: 0.0,
            step_count: 0,
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Tight bounding box of current positions.
    ///
    /// # Panics
    ///
    /// Panics on an empty system — there is no meaningful box to return.
    pub fn bounds(&self) -> Aabb {
        // sph-lint: allow(panic-path) — documented contract: every driver
        // rejects empty systems at build time, and a Result here would
        // thread an unreachable error arm through all the kernel passes.
        Aabb::from_points(self.x.iter()).expect("non-empty system")
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        sph_math::kahan_sum(&self.m)
    }

    /// Largest smoothing length (sets the halo width in `sph-cluster`).
    pub fn max_h(&self) -> f64 {
        self.h.iter().cloned().fold(0.0, f64::max)
    }

    /// Minimum-image displacement `x_i − x_j` under the system metric.
    #[inline]
    pub fn displacement(&self, i: usize, j: usize) -> Vec3 {
        self.periodicity.displacement(self.x[i], self.x[j])
    }

    /// Extract the subset of particles with the given indices — the
    /// building block of domain decomposition (each rank owns a subset).
    pub fn subset(&self, indices: &[u32]) -> ParticleSystem {
        let pick_v3 = |src: &Vec<Vec3>| indices.iter().map(|&i| src[i as usize]).collect();
        let pick_f = |src: &Vec<f64>| indices.iter().map(|&i| src[i as usize]).collect::<Vec<_>>();
        ParticleSystem {
            x: pick_v3(&self.x),
            v: pick_v3(&self.v),
            m: pick_f(&self.m),
            h: pick_f(&self.h),
            rho: pick_f(&self.rho),
            u: pick_f(&self.u),
            p: pick_f(&self.p),
            cs: pick_f(&self.cs),
            a: pick_v3(&self.a),
            du_dt: pick_f(&self.du_dt),
            omega: pick_f(&self.omega),
            vol: pick_f(&self.vol),
            div_v: pick_f(&self.div_v),
            curl_v: pick_f(&self.curl_v),
            c_iad: indices.iter().map(|&i| self.c_iad[i as usize]).collect(),
            rung: indices.iter().map(|&i| self.rung[i as usize]).collect(),
            periodicity: self.periodicity,
            time: self.time,
            step_count: self.step_count,
        }
    }

    /// Verify basic physical sanity; returns the first violation found.
    /// This is also one of the `sph-ft` silent-data-corruption detectors.
    pub fn sanity_check(&self) -> Result<(), String> {
        for (i, p) in self.x.iter().enumerate() {
            if !p.is_finite() {
                return Err(format!("particle {i}: non-finite position {p:?}"));
            }
        }
        for (i, v) in self.v.iter().enumerate() {
            if !v.is_finite() {
                return Err(format!("particle {i}: non-finite velocity {v:?}"));
            }
        }
        for (i, &m) in self.m.iter().enumerate() {
            if m <= 0.0 || !m.is_finite() {
                return Err(format!("particle {i}: bad mass {m}"));
            }
        }
        for (i, &h) in self.h.iter().enumerate() {
            if h <= 0.0 || !h.is_finite() {
                return Err(format!("particle {i}: bad smoothing length {h}"));
            }
        }
        for (i, &u) in self.u.iter().enumerate() {
            if u < 0.0 || !u.is_finite() {
                return Err(format!("particle {i}: bad internal energy {u}"));
            }
        }
        for (i, &rho) in self.rho.iter().enumerate() {
            if rho < 0.0 || !rho.is_finite() {
                return Err(format!("particle {i}: bad density {rho}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_system() -> ParticleSystem {
        let x = vec![Vec3::ZERO, Vec3::X, Vec3::Y];
        let v = vec![Vec3::ZERO; 3];
        let m = vec![1.0, 2.0, 3.0];
        let u = vec![0.5; 3];
        ParticleSystem::new(x, v, m, u, 0.1, Periodicity::open(Aabb::unit()))
    }

    #[test]
    fn construction() {
        let s = tiny_system();
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_mass(), 6.0);
        assert_eq!(s.max_h(), 0.1);
        assert_eq!(s.time, 0.0);
        assert!(s.sanity_check().is_ok());
    }

    #[test]
    #[should_panic]
    fn rejects_negative_mass() {
        let _ = ParticleSystem::new(
            vec![Vec3::ZERO],
            vec![Vec3::ZERO],
            vec![-1.0],
            vec![0.0],
            0.1,
            Periodicity::open(Aabb::unit()),
        );
    }

    #[test]
    #[should_panic]
    fn rejects_length_mismatch() {
        let _ = ParticleSystem::new(
            vec![Vec3::ZERO, Vec3::X],
            vec![Vec3::ZERO],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            0.1,
            Periodicity::open(Aabb::unit()),
        );
    }

    #[test]
    fn bounds_are_tight() {
        let s = tiny_system();
        let b = s.bounds();
        assert_eq!(b.lo, Vec3::ZERO);
        assert_eq!(b.hi, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn subset_picks_rows() {
        let mut s = tiny_system();
        s.rho = vec![1.0, 2.0, 3.0];
        let sub = s.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.m, vec![3.0, 1.0]);
        assert_eq!(sub.rho, vec![3.0, 1.0]);
        assert_eq!(sub.x[0], Vec3::Y);
    }

    #[test]
    fn sanity_check_catches_nan() {
        let mut s = tiny_system();
        s.x[1].y = f64::NAN;
        assert!(s.sanity_check().is_err());
        let mut s = tiny_system();
        s.u[0] = -1.0;
        assert!(s.sanity_check().is_err());
        let mut s = tiny_system();
        s.h[2] = 0.0;
        assert!(s.sanity_check().is_err());
    }

    #[test]
    fn displacement_uses_metric() {
        let mut s = tiny_system();
        s.periodicity = Periodicity::fully_periodic(Aabb::unit());
        s.x[0] = Vec3::new(0.05, 0.0, 0.0);
        s.x[1] = Vec3::new(0.95, 0.0, 0.0);
        let d = s.displacement(0, 1);
        assert!((d.x - 0.1).abs() < 1e-12);
    }
}
