//! Gradient estimators: analytic kernel derivatives and the Integral
//! Approach to Derivatives (IAD).
//!
//! Table 1 distinguishes SPHYNX ("IAD") from ChaNGa/SPH-flow ("kernel
//! derivatives"); Table 2 requires the mini-app to offer both. IAD
//! (García-Senz, Cabezón & Escartín 2012) replaces the analytic kernel
//! gradient by
//!
//! `A_ij = C_i · (r_j − r_i) W_ij(h_i)`,  `C_i = τ_i⁻¹`,
//! `τ_i = Σ_j V_j (r_j − r_i) ⊗ (r_j − r_i) W_ij(h_i)`,
//!
//! which makes the gradient estimate `⟨∇f⟩_i = Σ_j V_j (f_j − f_i) A_ij`
//! **exact for linear fields on any particle arrangement** — the property
//! the tests below verify and the reason SPHYNX uses it for shock-dominated
//! astrophysics. If τ is numerically singular (degenerate neighbour
//! geometry) the particle falls back to the analytic gradient, mirroring
//! SPHYNX's behaviour.

use crate::config::GradientScheme;
use crate::density::NeighborLists;
use crate::particles::ParticleSystem;
use rayon::prelude::*;
use sph_kernels::Kernel;
use sph_math::{Mat3, Vec3, REDUCE_CHUNK};

/// Compute the IAD matrices `C_i` for all `active` particles.
///
/// Requires densities and volume elements (`sys.vol`) to be current.
/// Particles whose shape matrix is singular get `C = 0`, which makes
/// [`effective_gradient`] fall back to the analytic kernel derivative.
pub fn compute_iad_matrices(
    sys: &mut ParticleSystem,
    lists: &NeighborLists,
    kernel: &dyn Kernel,
    active: &[u32],
) {
    assert_eq!(lists.query_count(), active.len());
    // Chunked map over fixed REDUCE_CHUNK boundaries; the ordered flatten
    // below reproduces `active` order exactly for any thread count.
    let chunks: Vec<Vec<Mat3>> = active
        .par_chunks(REDUCE_CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(off, &ai)| {
                    let k = c * REDUCE_CHUNK + off;
                    let i = ai as usize;
                    let xi = sys.x[i];
                    let h = sys.h[i];
                    let mut tau = Mat3::ZERO;
                    for &j in lists.neighbors(k) {
                        let j = j as usize;
                        // r_j − r_i under the periodic metric.
                        let dji = -sys.periodicity.displacement(xi, sys.x[j]);
                        let w = kernel.w(dji.norm(), h);
                        tau.add_scaled_outer(dji, sys.vol[j] * w);
                    }
                    tau.inverse().unwrap_or(Mat3::ZERO)
                })
                .collect()
        })
        .collect();
    for (&ai, m) in active.iter().zip(chunks.into_iter().flatten()) {
        sys.c_iad[ai as usize] = m;
    }
}

/// The "effective kernel gradient" `g_ij` used uniformly by the momentum,
/// energy and velocity-gradient loops:
///
/// * `KernelDerivative` → `∇_i W_ij = (dW/dr) · d/r` (analytic);
/// * `Iad` → `A_ij = C_i (r_j − r_i) W_ij`, falling back to the analytic
///   form when `C_i` is the zero (singular) marker.
///
/// `d = r_i − r_j` (minimum image), `r = |d|`.
#[inline]
pub fn effective_gradient(
    scheme: GradientScheme,
    kernel: &dyn Kernel,
    c_i: &Mat3,
    d: Vec3,
    r: f64,
    h: f64,
) -> Vec3 {
    match scheme {
        GradientScheme::KernelDerivative => {
            if r <= 0.0 {
                Vec3::ZERO
            } else {
                d * (kernel.dw_dr(r, h) / r)
            }
        }
        GradientScheme::Iad => {
            if *c_i == Mat3::ZERO {
                // Singular fallback.
                if r <= 0.0 {
                    Vec3::ZERO
                } else {
                    d * (kernel.dw_dr(r, h) / r)
                }
            } else {
                c_i.mul_vec(-d) * kernel.w(r, h)
            }
        }
    }
}

/// Estimate `⟨∇f⟩_i` of a scalar field from neighbour values:
/// `Σ_j V_j (f_j − f_i) g_ij`. Exact for linear `f` under IAD.
pub fn scalar_gradient(
    sys: &ParticleSystem,
    lists: &NeighborLists,
    kernel: &dyn Kernel,
    scheme: GradientScheme,
    active: &[u32],
    f: &[f64],
) -> Vec<Vec3> {
    assert_eq!(f.len(), sys.len());
    let chunks: Vec<Vec<Vec3>> = active
        .par_chunks(REDUCE_CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(off, &ai)| {
                    let k = c * REDUCE_CHUNK + off;
                    let i = ai as usize;
                    let xi = sys.x[i];
                    let h = sys.h[i];
                    let ci = &sys.c_iad[i];
                    let mut grad = Vec3::ZERO;
                    for &j in lists.neighbors(k) {
                        let j = j as usize;
                        if j == i {
                            continue;
                        }
                        let d = sys.periodicity.displacement(xi, sys.x[j]);
                        let g = effective_gradient(scheme, kernel, ci, d, d.norm(), h);
                        // sph-lint: allow(raw-accumulation) — FROZEN: the
                        // per-particle gradient sum in sorted-neighbour
                        // order is part of the bit-identity contract.
                        grad += g * (sys.vol[j] * (f[j] - f[i]));
                    }
                    grad
                })
                .collect()
        })
        .collect();
    chunks.into_iter().flatten().collect()
}

/// Compute `∇·v` and `|∇×v|` for the active particles, writing them into
/// `sys.div_v` / `sys.curl_v` (consumed by the Balsara switch and by the
/// conservation diagnostics).
pub fn compute_velocity_gradients(
    sys: &mut ParticleSystem,
    lists: &NeighborLists,
    kernel: &dyn Kernel,
    scheme: GradientScheme,
    active: &[u32],
) {
    let chunks: Vec<Vec<(f64, f64)>> = active
        .par_chunks(REDUCE_CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(off, &ai)| {
                    let k = c * REDUCE_CHUNK + off;
                    let i = ai as usize;
                    let xi = sys.x[i];
                    let vi = sys.v[i];
                    let h = sys.h[i];
                    let ci = &sys.c_iad[i];
                    let mut div = 0.0;
                    let mut curl = Vec3::ZERO;
                    for &j in lists.neighbors(k) {
                        let j = j as usize;
                        if j == i {
                            continue;
                        }
                        let d = sys.periodicity.displacement(xi, sys.x[j]);
                        let g = effective_gradient(scheme, kernel, ci, d, d.norm(), h);
                        let dv = sys.v[j] - vi;
                        let vol = sys.vol[j];
                        // sph-lint: allow(raw-accumulation) — FROZEN: the
                        // divergence sum in sorted-neighbour order feeds
                        // the Balsara switch; part of the bit contract.
                        div += vol * dv.dot(g);
                        // sph-lint: allow(raw-accumulation) — FROZEN: same
                        // contract as `div` above (identical loop, order).
                        curl += (dv.cross(g)) * vol;
                    }
                    (div, curl.norm())
                })
                .collect()
        })
        .collect();
    for (&ai, (div, curl)) in active.iter().zip(chunks.into_iter().flatten()) {
        sys.div_v[ai as usize] = div;
        sys.curl_v[ai as usize] = curl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SphConfig;
    use crate::density::compute_density;
    use crate::volume::compute_volume_elements;
    use sph_kernels::SUPPORT_RADIUS;
    use sph_math::{Aabb, Periodicity, SplitMix64};
    use sph_tree::CellGrid;

    /// Jittered lattice: irregular enough to break naive estimators but
    /// with full support everywhere in the interior.
    fn jittered_system(n: usize, jitter: f64, seed: u64) -> ParticleSystem {
        let mut rng = SplitMix64::new(seed);
        let spacing = 1.0 / n as f64;
        let mut x = Vec::with_capacity(n * n * n);
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    x.push(Vec3::new(
                        (ix as f64 + 0.5 + rng.uniform(-jitter, jitter)) * spacing,
                        (iy as f64 + 0.5 + rng.uniform(-jitter, jitter)) * spacing,
                        (iz as f64 + 0.5 + rng.uniform(-jitter, jitter)) * spacing,
                    ));
                }
            }
        }
        let count = x.len();
        ParticleSystem::new(
            x,
            vec![Vec3::ZERO; count],
            vec![1.0 / count as f64; count],
            vec![1.0; count],
            2.0 * spacing,
            Periodicity::open(Aabb::unit()),
        )
    }

    /// Run density + volumes (+ IAD matrices when requested); return lists.
    fn prepare(sys: &mut ParticleSystem, cfg: &SphConfig) -> NeighborLists {
        let grid = CellGrid::build(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        let (lists, _) = compute_density(sys, &grid, kernel.as_ref(), cfg, &active);
        compute_volume_elements(sys, &lists, kernel.as_ref(), cfg, &active);
        if cfg.gradients == GradientScheme::Iad {
            compute_iad_matrices(sys, &lists, kernel.as_ref(), &active);
        }
        lists
    }

    fn interior(sys: &ParticleSystem, margin: f64) -> Vec<usize> {
        (0..sys.len())
            .filter(|&i| {
                let p = sys.x[i];
                p.x > margin
                    && p.x < 1.0 - margin
                    && p.y > margin
                    && p.y < 1.0 - margin
                    && p.z > margin
                    && p.z < 1.0 - margin
            })
            .collect()
    }

    #[test]
    fn iad_is_exact_for_linear_fields_on_disorder() {
        let cfg = SphConfig {
            gradients: GradientScheme::Iad,
            target_neighbors: 60,
            ..Default::default()
        };
        let mut sys = jittered_system(10, 0.25, 7);
        let lists = prepare(&mut sys, &cfg);
        let kernel = cfg.kernel.build();
        // f = a·r + b
        let a = Vec3::new(2.0, -1.0, 0.5);
        let f: Vec<f64> = sys.x.iter().map(|&p| a.dot(p) + 3.0).collect();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        let grads =
            scalar_gradient(&sys, &lists, kernel.as_ref(), GradientScheme::Iad, &active, &f);
        for i in interior(&sys, 0.3) {
            let err = (grads[i] - a).norm() / a.norm();
            assert!(err < 1e-10, "particle {i}: IAD gradient error {err}");
        }
    }

    #[test]
    fn kernel_derivative_gradient_is_first_order_only() {
        // On the same disordered arrangement the analytic-derivative
        // estimator shows O(10%) errors — that contrast is the point of IAD.
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        let mut sys = jittered_system(10, 0.25, 7);
        let lists = prepare(&mut sys, &cfg);
        let kernel = cfg.kernel.build();
        let a = Vec3::new(2.0, -1.0, 0.5);
        let f: Vec<f64> = sys.x.iter().map(|&p| a.dot(p) + 3.0).collect();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        let grads = scalar_gradient(
            &sys,
            &lists,
            kernel.as_ref(),
            GradientScheme::KernelDerivative,
            &active,
            &f,
        );
        let mut max_err = 0.0_f64;
        let mut mean_err = 0.0;
        let ids = interior(&sys, 0.3);
        for &i in &ids {
            let err = (grads[i] - a).norm() / a.norm();
            max_err = max_err.max(err);
            mean_err += err;
        }
        mean_err /= ids.len() as f64;
        // It is a consistent estimator (errors bounded) but far from the
        // IAD's 1e-10 exactness.
        assert!(mean_err < 0.5, "mean error {mean_err} unreasonably large");
        assert!(max_err > 1e-6, "analytic estimator suspiciously exact: {max_err}");
    }

    #[test]
    fn constant_field_has_zero_gradient_in_both_schemes() {
        let cfg = SphConfig { target_neighbors: 50, ..Default::default() };
        let mut sys = jittered_system(8, 0.2, 9);
        let lists = prepare(&mut sys, &cfg);
        let kernel = cfg.kernel.build();
        let f = vec![4.2; sys.len()];
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        for scheme in [GradientScheme::KernelDerivative, GradientScheme::Iad] {
            let grads = scalar_gradient(&sys, &lists, kernel.as_ref(), scheme, &active, &f);
            for g in &grads {
                assert!(g.norm() < 1e-12, "{scheme:?} nonzero gradient of constant: {g:?}");
            }
        }
    }

    #[test]
    fn rigid_rotation_has_zero_divergence_and_known_curl() {
        // v = ω × r with ω = 5 ẑ (the square-patch initial field):
        // ∇·v = 0, |∇×v| = 2ω = 10.
        let cfg = SphConfig {
            gradients: GradientScheme::Iad,
            target_neighbors: 60,
            ..Default::default()
        };
        let mut sys = jittered_system(10, 0.15, 3);
        let omega = 5.0;
        let c = Vec3::splat(0.5);
        for i in 0..sys.len() {
            let d = sys.x[i] - c;
            sys.v[i] = Vec3::new(omega * d.y, -omega * d.x, 0.0);
        }
        let lists = prepare(&mut sys, &cfg);
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        compute_velocity_gradients(&mut sys, &lists, kernel.as_ref(), GradientScheme::Iad, &active);
        for i in interior(&sys, 0.3) {
            assert!(sys.div_v[i].abs() < 1e-9, "div {} at {i}", sys.div_v[i]);
            assert!((sys.curl_v[i] - 2.0 * omega).abs() < 1e-8, "curl {} at {i}", sys.curl_v[i]);
        }
    }

    #[test]
    fn uniform_expansion_has_divergence_three() {
        // v = r ⇒ ∇·v = 3, ∇×v = 0.
        let cfg = SphConfig {
            gradients: GradientScheme::Iad,
            target_neighbors: 60,
            ..Default::default()
        };
        let mut sys = jittered_system(10, 0.15, 4);
        for i in 0..sys.len() {
            sys.v[i] = sys.x[i] - Vec3::splat(0.5);
        }
        let lists = prepare(&mut sys, &cfg);
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        compute_velocity_gradients(&mut sys, &lists, kernel.as_ref(), GradientScheme::Iad, &active);
        for i in interior(&sys, 0.3) {
            assert!((sys.div_v[i] - 3.0).abs() < 1e-9, "div {} at {i}", sys.div_v[i]);
            assert!(sys.curl_v[i].abs() < 1e-9, "curl {} at {i}", sys.curl_v[i]);
        }
    }

    #[test]
    fn singular_iad_falls_back_to_kernel_derivative() {
        // Two coincident-line particles: τ is rank-1, inverse fails, and the
        // effective gradient must equal the analytic one.
        let kernel = crate::config::SphConfig::default().kernel.build();
        let c = Mat3::ZERO; // the singular marker
        let d = Vec3::new(0.3, 0.0, 0.0);
        let g_iad = effective_gradient(GradientScheme::Iad, kernel.as_ref(), &c, d, d.norm(), 0.5);
        let g_kd = effective_gradient(
            GradientScheme::KernelDerivative,
            kernel.as_ref(),
            &c,
            d,
            d.norm(),
            0.5,
        );
        assert_eq!(g_iad, g_kd);
    }
}
