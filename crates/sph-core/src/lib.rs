//! The SPH numerical core of the mini-app.
//!
//! Implements every "scientific characteristic" row of Table 2 of the
//! paper:
//!
//! | Table 2 column      | Module                                     |
//! |---------------------|--------------------------------------------|
//! | Kernel              | `sph-kernels` (consumed here)              |
//! | Gradients           | [`gradients`] — IAD and kernel derivatives |
//! | Volume elements     | [`volume`] — generalized and standard      |
//! | Mass of particles   | per-particle masses in [`particles`]       |
//! | Time-stepping       | [`timestep`] — global, individual, adaptive|
//! | Neighbour discovery | `sph-tree` tree walk (driven from here)    |
//! | Self-gravity        | `sph-tree::gravity` (coupled in `sph-exa`) |
//!
//! The computational phases match Algorithm 1 and carry the same letters
//! the Extrae trace of Fig. 4 uses (A: tree build, B–D: neighbours and h,
//! E–H: SPH kernels, I: gravity, J: update), so the profiler can label the
//! timeline identically.

pub mod config;
pub mod density;
pub mod diagnostics;
pub mod eos;
pub mod forces;
pub mod gradients;
pub mod integrator;
pub mod particles;
pub mod timestep;
pub mod viscosity;
pub mod volume;

pub use config::{GradientScheme, SphConfig, TimeStepping, VolumeElements};
pub use diagnostics::Conservation;
pub use eos::IdealGas;
pub use particles::ParticleSystem;

/// Result of one full SPH force evaluation (steps 2–3 of Algorithm 1),
/// including interaction counts consumed by the performance model.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Neighbour-search traversal statistics.
    pub neighbor: sph_tree::TraversalStats,
    /// Smoothing-length iterations executed (phase B–D work multiplier).
    pub h_iterations: u64,
    /// SPH pair interactions evaluated in density + force loops.
    pub sph_interactions: u64,
    /// Gravity traversal statistics (zero when gravity is off).
    pub gravity: sph_tree::TraversalStats,
    /// Number of particles that were active this step (== n for global
    /// time-stepping; a subset under individual/block time-stepping).
    pub active_particles: u64,
    /// Largest neighbour-search radius requested during the evaluation
    /// (the smoothing-length iteration can grow it past `2·h₀`). A
    /// distributed run's halo import is sufficient iff its radius covers
    /// this value — the quantity the halo-retry negotiation reduces over.
    pub max_search_radius: f64,
}

impl StepStats {
    pub fn merge(&mut self, o: &StepStats) {
        self.neighbor.merge(&o.neighbor);
        self.h_iterations += o.h_iterations;
        self.sph_interactions += o.sph_interactions;
        self.gravity.merge(&o.gravity);
        self.active_particles += o.active_particles;
        self.max_search_radius = self.max_search_radius.max(o.max_search_radius);
    }
}
