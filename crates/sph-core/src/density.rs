//! Density evaluation and smoothing-length adaptation
//! (Algorithm 1, step 2 "Find neighbors and smoothing length" and the
//! density part of step 3).
//!
//! Each particle iterates its smoothing length until the neighbour count
//! inside the `2h` support hits the configured target (footnote 2 of the
//! paper: "the simulation will try to reach a given target number of
//! neighbors and this influences the value of the resulting smoothing
//! length"). The density sum, the grad-h term Ω and the neighbour lists
//! are produced in the same pass.

use crate::config::SphConfig;
use crate::particles::ParticleSystem;
use crate::StepStats;
use rayon::prelude::*;
use sph_kernels::{Kernel, SUPPORT_RADIUS};
use sph_math::REDUCE_CHUNK;
use sph_tree::{NeighborSearch, Octree, TraversalStats};

/// Flattened (CSR) neighbour lists for a set of query particles.
#[derive(Debug, Clone, Default)]
pub struct NeighborLists {
    /// `offsets[k]..offsets[k+1]` indexes `indices` for query `k`.
    offsets: Vec<u64>,
    /// Neighbour particle ids (original indexing), self included.
    indices: Vec<u32>,
}

impl NeighborLists {
    pub fn from_lists(lists: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u64);
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut indices = Vec::with_capacity(total);
        for l in lists {
            indices.extend_from_slice(&l);
            offsets.push(indices.len() as u64);
        }
        NeighborLists { offsets, indices }
    }

    /// Neighbour slice of the k-th query particle.
    #[inline]
    pub fn neighbors(&self, k: usize) -> &[u32] {
        let s = self.offsets[k] as usize;
        let e = self.offsets[k + 1] as usize;
        &self.indices[s..e]
    }

    /// Number of query particles covered.
    pub fn query_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored neighbour entries.
    pub fn total_neighbors(&self) -> usize {
        self.indices.len()
    }

    /// Mean neighbours per query.
    pub fn mean_count(&self) -> f64 {
        if self.query_count() == 0 {
            return 0.0;
        }
        self.total_neighbors() as f64 / self.query_count() as f64
    }

    /// Symmetric closure of the lists: if `j ∈ N(i)` then also `i ∈ N(j)`.
    ///
    /// The density pass gathers within each particle's *own* support
    /// `2h_i`; with per-particle smoothing lengths that relation is not
    /// symmetric, but the pairwise momentum/energy equations must see every
    /// pair from both sides or conservation is silently broken. Only valid
    /// when the lists cover *all* particles (query `k` ⇔ particle `k`).
    pub fn symmetrized(&self) -> NeighborLists {
        let n = self.query_count();
        let mut sets: Vec<Vec<u32>> = (0..n).map(|k| self.neighbors(k).to_vec()).collect();
        for k in 0..n {
            for &j in self.neighbors(k) {
                let j = j as usize;
                assert!(j < n, "symmetrized() requires full-system lists");
                if j != k {
                    sets[j].push(k as u32);
                }
            }
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        NeighborLists::from_lists(sets)
    }
}

/// Per-particle output of the density pass.
struct DensityRow {
    h: f64,
    rho: f64,
    omega: f64,
    neighbors: Vec<u32>,
}

/// Per-chunk output: the rows plus the chunk-folded counters. Counters are
/// folded once per chunk (not per particle) and merged in chunk order by
/// the caller — the chunked-map + ordered-reduce shape every parallel hot
/// path in the workspace follows.
struct DensityChunk {
    rows: Vec<DensityRow>,
    stats: TraversalStats,
    h_iterations: u64,
    interactions: u64,
    max_search_radius: f64,
}

/// Upper bound on the factor by which **one** smoothing-length iteration
/// can grow `h`: the starved-support branch grows by 1.5×, the damped
/// fixed-point update by at most `0.5·(1 + ∛(target/2))` (its worst case,
/// reached at the minimum neighbour count of 2 that reaches that branch).
///
/// Distributed halo negotiation uses this to bound the largest search
/// radius an evaluation starting from `h` can request:
/// `2h · bound^(max_h_iterations − 1)`.
pub fn h_growth_bound(cfg: &SphConfig) -> f64 {
    let fixed_point = 0.5 * (1.0 + (cfg.target_neighbors as f64 / 2.0).cbrt());
    fixed_point.max(1.5)
}

/// Compute densities, adapted smoothing lengths, Ω terms and neighbour
/// lists for the particles listed in `active` (pass `0..n` for all).
///
/// Positions are read from `sys` and must match what `tree` was built
/// from. On return `sys.h`, `sys.rho`, `sys.omega` are updated for active
/// particles and the neighbour lists (indexed like `active`) are returned
/// together with accumulated [`StepStats`].
pub fn compute_density(
    sys: &mut ParticleSystem,
    tree: &Octree,
    kernel: &dyn Kernel,
    cfg: &SphConfig,
    active: &[u32],
) -> (NeighborLists, StepStats) {
    let search = NeighborSearch::new(tree, sys.periodicity);
    let target = cfg.target_neighbors as f64;
    let lo = (target * (1.0 - cfg.neighbor_tolerance)).floor() as usize;
    let hi = (target * (1.0 + cfg.neighbor_tolerance)).ceil() as usize;
    // Hard cap on h: the minimum-image metric is only unambiguous while
    // the support 2h stays below half of every periodic span. Surface
    // particles in thin extruded domains would otherwise grow h past it.
    let mut h_cap = f64::INFINITY;
    for axis in 0..3 {
        if sys.periodicity.periodic[axis] {
            let span = sys.periodicity.domain.extent().component(axis);
            h_cap = h_cap.min(span * (0.5 - 1e-9) / SUPPORT_RADIUS);
        }
    }
    assert!(h_cap > 0.0, "degenerate periodic domain: zero span on a periodic axis");

    // Chunked map: fixed REDUCE_CHUNK boundaries (independent of the
    // thread count) so the per-chunk folds below always see the same
    // particles — results are bit-identical for any `SPH_THREADS`.
    let chunks: Vec<DensityChunk> = active
        .par_chunks(REDUCE_CHUNK)
        .map(|chunk| {
            let mut stats = TraversalStats::default();
            let mut h_iterations = 0u64;
            let mut interactions = 0u64;
            let mut max_search_radius = 0.0_f64;
            let rows = chunk
                .iter()
                .map(|&ai| {
                    let i = ai as usize;
                    let xi = sys.x[i];
                    let mut h = sys.h[i];
                    let mut neighbors: Vec<u32> = Vec::with_capacity(cfg.target_neighbors * 2);
                    let mut iterations = 0u64;

                    // --- Smoothing-length iteration (phases B–D of Fig. 4) ---
                    // Loop invariant on exit: `neighbors` is the exact ball
                    // query at the *final* `h` — every break happens after a
                    // search at the current value. (The pre-fix starved
                    // branch could break with a freshly grown `h` but the
                    // neighbour set of the previous one, leaving the stored
                    // h and the density sum inconsistent.) Distributed halo
                    // symmetrisation relies on this invariant to recover a
                    // ghost particle's gather set by one search at its
                    // exchanged h.
                    loop {
                        neighbors.clear();
                        max_search_radius = max_search_radius.max(SUPPORT_RADIUS * h);
                        search.neighbors_within(xi, SUPPORT_RADIUS * h, &mut neighbors, &mut stats);
                        iterations += 1;
                        let count = neighbors.len();
                        if iterations as usize >= cfg.max_h_iterations || (lo..=hi).contains(&count)
                        {
                            break;
                        }
                        let h_new = if count < 2 {
                            // Starved support: grow geometrically.
                            (h * 1.5).min(h_cap)
                        } else {
                            // n(h) ∝ h³ ⇒ damped fixed point of h (n_target/n)^{1/3}.
                            let factor = (target / count as f64).cbrt();
                            (h * 0.5 * (1.0 + factor)).min(h_cap)
                        };
                        if h_new == h {
                            break; // pinned at the periodic cap
                        }
                        h = h_new;
                    }

                    // Canonical summation order: ascending particle index.
                    // The tree walk yields neighbours in traversal order,
                    // which depends on how the tree was built; sorting makes
                    // every downstream reduction's FP rounding a function of
                    // the particle *set* only — the property that lets a
                    // per-rank evaluation over (owned ∪ ghost) subsets
                    // reproduce the global sums bit-for-bit.
                    neighbors.sort_unstable();

                    // --- Density sum and grad-h term over the final support ---
                    let mut rho = 0.0;
                    let mut drho_dh = 0.0;
                    for &j in &neighbors {
                        let j = j as usize;
                        let d = sys.periodicity.displacement(xi, sys.x[j]);
                        let r = d.norm();
                        rho += sys.m[j] * kernel.w(r, h);
                        drho_dh += sys.m[j] * kernel.dw_dh(r, h);
                        interactions += 1;
                    }
                    // Ω_i = 1 + (h/3ρ) ∂ρ/∂h
                    let omega = if rho > 0.0 { 1.0 + h / (3.0 * rho) * drho_dh } else { 1.0 };
                    h_iterations += iterations;
                    DensityRow { h, rho, omega, neighbors }
                })
                .collect();
            DensityChunk { rows, stats, h_iterations, interactions, max_search_radius }
        })
        .collect();

    // Ordered reduce: merge chunk counters and write rows back in `active`
    // order (chunk order × row order reproduces it exactly).
    let mut lists = Vec::with_capacity(active.len());
    let mut step = StepStats::default();
    let mut ids = active.iter();
    for chunk in chunks {
        step.neighbor.merge(&chunk.stats);
        step.h_iterations += chunk.h_iterations;
        step.sph_interactions += chunk.interactions;
        step.max_search_radius = step.max_search_radius.max(chunk.max_search_radius);
        for row in chunk.rows {
            let i = *ids.next().expect("chunk rows outnumber active ids") as usize;
            sys.h[i] = row.h;
            sys.rho[i] = row.rho;
            sys.omega[i] = if cfg.grad_h { row.omega } else { 1.0 };
            lists.push(row.neighbors);
        }
    }
    step.active_particles += active.len() as u64;
    (NeighborLists::from_lists(lists), step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};
    use sph_tree::OctreeConfig;

    /// Uniform cubic lattice of n³ particles in the unit cube with total
    /// mass 1 ⇒ expected density 1 away from the open boundaries.
    pub fn lattice_system(n: usize) -> ParticleSystem {
        let mut x = Vec::with_capacity(n * n * n);
        let spacing = 1.0 / n as f64;
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    x.push(Vec3::new(
                        (ix as f64 + 0.5) * spacing,
                        (iy as f64 + 0.5) * spacing,
                        (iz as f64 + 0.5) * spacing,
                    ));
                }
            }
        }
        let count = x.len();
        let m = vec![1.0 / count as f64; count];
        let v = vec![Vec3::ZERO; count];
        let u = vec![1.0; count];
        ParticleSystem::new(x, v, m, u, 2.0 * spacing, Periodicity::open(Aabb::unit()))
    }

    fn run_density(sys: &mut ParticleSystem, cfg: &SphConfig) -> (NeighborLists, StepStats) {
        let tree = Octree::build(
            &sys.x,
            &sys.bounds(),
            OctreeConfig { max_leaf_size: 32, parallel_sort: false },
        );
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        compute_density(sys, &tree, kernel.as_ref(), cfg, &active)
    }

    #[test]
    fn lattice_density_is_unity_in_the_bulk() {
        let mut sys = lattice_system(12);
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        run_density(&mut sys, &cfg);
        // Check interior particles only (the open boundary depletes the
        // kernel support of surface particles).
        let mut checked = 0;
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.25;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                assert!(
                    (sys.rho[i] - 1.0).abs() < 0.05,
                    "interior density {} at {p:?}",
                    sys.rho[i]
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "too few interior particles checked: {checked}");
    }

    #[test]
    fn neighbor_count_hits_target() {
        let mut sys = lattice_system(12);
        let cfg = SphConfig { target_neighbors: 60, neighbor_tolerance: 0.1, ..Default::default() };
        let (lists, _) = run_density(&mut sys, &cfg);
        // Interior particles must land inside the tolerance band.
        let mut hits = 0;
        let mut total = 0;
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.25;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                total += 1;
                let c = lists.neighbors(i).len();
                if (54..=66).contains(&c) {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 > 0.9 * total as f64, "{hits}/{total} on target");
    }

    #[test]
    fn self_is_always_a_neighbor() {
        let mut sys = lattice_system(8);
        let cfg = SphConfig { target_neighbors: 40, ..Default::default() };
        let (lists, _) = run_density(&mut sys, &cfg);
        for i in 0..sys.len() {
            assert!(lists.neighbors(i).contains(&(i as u32)), "particle {i} lost itself");
        }
    }

    #[test]
    fn omega_near_one_for_uniform_field() {
        // In a uniform lattice ∂ρ/∂h ≈ 0 at the adapted h, so Ω ≈ 1.
        let mut sys = lattice_system(12);
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        run_density(&mut sys, &cfg);
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.3;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                assert!(
                    (sys.omega[i] - 1.0).abs() < 0.3,
                    "Ω = {} at interior particle {i}",
                    sys.omega[i]
                );
            }
        }
    }

    #[test]
    fn grad_h_disabled_pins_omega() {
        let mut sys = lattice_system(6);
        let cfg = SphConfig { grad_h: false, target_neighbors: 40, ..Default::default() };
        run_density(&mut sys, &cfg);
        assert!(sys.omega.iter().all(|&o| o == 1.0));
    }

    #[test]
    fn mass_is_recovered_by_volume_integral() {
        // Σ_i ρ_i · (m_i/ρ_i) = Σ m_i = total mass, trivially; the real
        // check: kernel-summed density integrates the mass distribution,
        // Σ_i m_i ρ_i / ρ_i ≈ Σ m. Instead verify Σ_j m_j W h-consistency:
        // density of an isolated particle is m·W(0,h).
        let mut sys = ParticleSystem::new(
            vec![Vec3::splat(0.5)],
            vec![Vec3::ZERO],
            vec![2.0],
            vec![1.0],
            0.25,
            Periodicity::open(Aabb::unit()),
        );
        let cfg = SphConfig { max_h_iterations: 1, ..Default::default() };
        let kernel = cfg.kernel.build();
        let (_, stats) = run_density(&mut sys, &cfg);
        let expected = 2.0 * kernel.w(0.0, sys.h[0]);
        assert!((sys.rho[0] - expected).abs() < 1e-12);
        assert_eq!(stats.active_particles, 1);
    }

    #[test]
    fn active_subset_only_touches_subset() {
        let mut sys = lattice_system(6);
        let cfg = SphConfig { target_neighbors: 40, ..Default::default() };
        let tree = Octree::build(&sys.x, &sys.bounds(), OctreeConfig::default());
        let kernel = cfg.kernel.build();
        let before_rho = sys.rho.clone();
        let active = [0u32, 5, 10];
        let (lists, stats) = compute_density(&mut sys, &tree, kernel.as_ref(), &cfg, &active);
        assert_eq!(lists.query_count(), 3);
        assert_eq!(stats.active_particles, 3);
        // Untouched particles keep their (zero) density.
        for (i, &rho_before) in before_rho.iter().enumerate() {
            if !active.contains(&(i as u32)) {
                assert_eq!(sys.rho[i], rho_before);
            }
        }
        for &ai in &active {
            assert!(sys.rho[ai as usize] > 0.0);
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_ascending() {
        // The canonical-order contract every downstream sum relies on for
        // decomposition-independent rounding.
        let mut sys = lattice_system(8);
        let cfg = SphConfig { target_neighbors: 40, ..Default::default() };
        let (lists, stats) = run_density(&mut sys, &cfg);
        for k in 0..lists.query_count() {
            let n = lists.neighbors(k);
            assert!(n.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated list at query {k}");
        }
        assert!(stats.max_search_radius > 0.0);
    }

    #[test]
    fn max_search_radius_respects_the_growth_bound() {
        // Start far below the converged h so the iteration must grow it;
        // every radius requested along the way must stay within the
        // analytic per-iteration growth bound — the guarantee the halo
        // negotiation's worst-case headroom is built on.
        let mut sys = lattice_system(10);
        let h0 = 0.02;
        for h in sys.h.iter_mut() {
            *h = h0;
        }
        let cfg = SphConfig { target_neighbors: 60, max_h_iterations: 6, ..Default::default() };
        let (_, stats) = run_density(&mut sys, &cfg);
        let bound = SUPPORT_RADIUS
            * h0
            * h_growth_bound(&cfg).powi(cfg.max_h_iterations as i32 - 1)
            * (1.0 + 1e-12);
        assert!(stats.max_search_radius > SUPPORT_RADIUS * h0, "iteration never grew h");
        assert!(
            stats.max_search_radius <= bound,
            "radius {} exceeds analytic bound {bound}",
            stats.max_search_radius
        );
    }

    #[test]
    fn final_neighbors_match_a_fresh_search_at_final_h() {
        // Exit invariant of the h iteration: the stored h and the returned
        // neighbour set are consistent — one frozen search at the final h
        // reproduces the list exactly (the property halo symmetrisation
        // uses to recover ghost gather sets).
        let mut sys = lattice_system(9);
        let cfg = SphConfig { target_neighbors: 50, max_h_iterations: 4, ..Default::default() };
        let (lists, _) = run_density(&mut sys, &cfg);
        let frozen = SphConfig { max_h_iterations: 1, ..cfg };
        let mut again = sys.clone();
        let (lists2, _) = run_density(&mut again, &frozen);
        for k in 0..lists.query_count() {
            assert_eq!(lists.neighbors(k), lists2.neighbors(k), "particle {k}");
            assert_eq!(sys.h[k], again.h[k]);
            assert_eq!(sys.rho[k], again.rho[k]);
        }
    }

    #[test]
    fn csr_roundtrip() {
        let lists = vec![vec![1, 2, 3], vec![], vec![7]];
        let nl = NeighborLists::from_lists(lists);
        assert_eq!(nl.query_count(), 3);
        assert_eq!(nl.neighbors(0), &[1, 2, 3]);
        assert_eq!(nl.neighbors(1), &[] as &[u32]);
        assert_eq!(nl.neighbors(2), &[7]);
        assert_eq!(nl.total_neighbors(), 4);
        assert!((nl.mean_count() - 4.0 / 3.0).abs() < 1e-15);
    }
}
