//! Density evaluation and smoothing-length adaptation
//! (Algorithm 1, step 2 "Find neighbors and smoothing length" and the
//! density part of step 3).
//!
//! Each particle iterates its smoothing length until the neighbour count
//! inside the `2h` support hits the configured target (footnote 2 of the
//! paper: "the simulation will try to reach a given target number of
//! neighbors and this influences the value of the resulting smoothing
//! length"). The density sum, the grad-h term Ω and the neighbour lists
//! are produced in the same pass.

use crate::config::SphConfig;
use crate::particles::ParticleSystem;
use crate::StepStats;
use rayon::prelude::*;
use sph_kernels::{Kernel, SUPPORT_RADIUS};
use sph_math::REDUCE_CHUNK;
use sph_tree::{NeighborQuery, TraversalStats};

// The CSR neighbour-list container lives in `sph-tree` next to the cell
// grid that builds it; re-exported here because every sph-core kernel
// pass consumes it (and for source compatibility with earlier revisions).
pub use sph_tree::NeighborLists;

/// Per-particle scalar output of the density pass (the neighbour row goes
/// straight into the chunk's flat CSR buffer instead).
struct DensityRow {
    h: f64,
    rho: f64,
    omega: f64,
}

/// Per-chunk output: the rows plus the chunk-folded counters. Counters are
/// folded once per chunk (not per particle) and merged in chunk order by
/// the caller — the chunked-map + ordered-reduce shape every parallel hot
/// path in the workspace follows. Neighbour rows are stored as one flat
/// id buffer + per-row lengths (CSR fragments): no per-particle `Vec`
/// allocation anywhere on the hot path.
struct DensityChunk {
    rows: Vec<DensityRow>,
    flat: Vec<u32>,
    counts: Vec<u32>,
    stats: TraversalStats,
    h_iterations: u64,
    interactions: u64,
    max_search_radius: f64,
}

/// Upper bound on the factor by which **one** smoothing-length iteration
/// can grow `h`: the starved-support branch grows by 1.5×, the damped
/// fixed-point update by at most `0.5·(1 + ∛(target/2))` (its worst case,
/// reached at the minimum neighbour count of 2 that reaches that branch).
///
/// Distributed halo negotiation uses this to bound the largest search
/// radius an evaluation starting from `h` can request:
/// `2h · bound^(max_h_iterations − 1)`.
pub fn h_growth_bound(cfg: &SphConfig) -> f64 {
    let fixed_point = 0.5 * (1.0 + (cfg.target_neighbors as f64 / 2.0).cbrt());
    fixed_point.max(1.5)
}

/// Compute densities, adapted smoothing lengths, Ω terms and neighbour
/// lists for the particles listed in `active` (pass `0..n` for all).
///
/// Generic over the neighbour backend: the production drivers pass a
/// [`sph_tree::CellGrid`]; the octree walk (via
/// [`sph_tree::NeighborSearch`]) remains supported as the reference path
/// and for benchmarking the two against each other. Both backends answer
/// exact ball queries with identical accept arithmetic, so the choice
/// cannot change a bit of the result.
///
/// Positions are read from `sys` and must match what `query` was built
/// from. On return `sys.h`, `sys.rho`, `sys.omega` are updated for active
/// particles and the neighbour lists (indexed like `active`) are returned
/// together with accumulated [`StepStats`].
pub fn compute_density<Q: NeighborQuery + ?Sized>(
    sys: &mut ParticleSystem,
    query: &Q,
    kernel: &dyn Kernel,
    cfg: &SphConfig,
    active: &[u32],
) -> (NeighborLists, StepStats) {
    let target = cfg.target_neighbors as f64;
    let lo = (target * (1.0 - cfg.neighbor_tolerance)).floor() as usize;
    let hi = (target * (1.0 + cfg.neighbor_tolerance)).ceil() as usize;
    // Hard cap on h: the minimum-image metric is only unambiguous while
    // the support 2h stays below half of every periodic span. Surface
    // particles in thin extruded domains would otherwise grow h past it.
    let mut h_cap = f64::INFINITY;
    for axis in 0..3 {
        if sys.periodicity.periodic[axis] {
            let span = sys.periodicity.domain.extent().component(axis);
            h_cap = h_cap.min(span * (0.5 - 1e-9) / SUPPORT_RADIUS);
        }
    }
    assert!(h_cap > 0.0, "degenerate periodic domain: zero span on a periodic axis");

    // Chunked map: fixed REDUCE_CHUNK boundaries (independent of the
    // thread count) so the per-chunk folds below always see the same
    // particles — results are bit-identical for any `SPH_THREADS`.
    let chunks: Vec<DensityChunk> = active
        .par_chunks(REDUCE_CHUNK)
        .map(|chunk| {
            let mut stats = TraversalStats::default();
            let mut h_iterations = 0u64;
            let mut interactions = 0u64;
            let mut max_search_radius = 0.0_f64;
            // One candidate cache and one scratch row reused for every
            // particle of the chunk plus one flat CSR fragment the
            // finished rows append to — the per-particle `Vec` churn this
            // pass used to pay is gone.
            let mut cand: Vec<(u32, f64)> = Vec::with_capacity(cfg.target_neighbors * 4);
            let mut row: Vec<u32> = Vec::with_capacity(cfg.target_neighbors * 2);
            let mut flat: Vec<u32> = Vec::with_capacity(chunk.len() * cfg.target_neighbors);
            let mut counts: Vec<u32> = Vec::with_capacity(chunk.len());
            let rows = chunk
                .iter()
                .map(|&ai| {
                    let i = ai as usize;
                    let xi = sys.x[i];
                    let mut h = sys.h[i];
                    let mut iterations = 0u64;
                    // Candidate cache: the `(id, d²)` pairs of the exact
                    // ball at the radius searched (or pruned to) last,
                    // `r_cov`. A round whose radius fits inside the cache
                    // is answered by *pruning* on the cached distances
                    // instead of re-walking the structure — exact, because
                    // the half-span clamp admits at most one periodic image
                    // of a particle into any ball, so `d²` is the unique
                    // accept value a fresh query at the smaller radius
                    // would recompute. Typical initial guesses overshoot
                    // the target count (h only shrinks), so most particles
                    // pay exactly one structure walk however many rounds
                    // they take; a growing radius falls back to a fresh
                    // gather.
                    let mut r_cov = 0.0_f64;

                    // --- Smoothing-length iteration (phases B–D of Fig. 4) ---
                    // Loop invariant on exit: `cand` is the exact ball
                    // query at the *final* `h` — every break happens after
                    // a gather or prune at the current value. (The pre-fix
                    // starved branch could break with a freshly grown `h`
                    // but the neighbour set of the previous one, leaving
                    // the stored h and the density sum inconsistent.)
                    // Distributed halo symmetrisation relies on this
                    // invariant to recover a ghost particle's gather set by
                    // one search at its exchanged h.
                    loop {
                        let radius = SUPPORT_RADIUS * h;
                        max_search_radius = max_search_radius.max(radius);
                        let count = if radius > r_cov {
                            cand.clear();
                            query.neighbors_with_dist(xi, radius, &mut cand, &mut stats);
                            cand.len()
                        } else {
                            // Same per-round clamp accounting a fresh query
                            // would record; only the structure walk is
                            // skipped.
                            let clamped = query.clamp_radius(radius);
                            if clamped < radius {
                                stats.radius_clamps += 1;
                            }
                            let r2 = clamped * clamped;
                            cand.retain(|&(_, d2)| d2 <= r2);
                            cand.len()
                        };
                        r_cov = radius;
                        iterations += 1;
                        if iterations as usize >= cfg.max_h_iterations || (lo..=hi).contains(&count)
                        {
                            break;
                        }
                        let h_new = if count < 2 {
                            // Starved support: grow geometrically.
                            (h * 1.5).min(h_cap)
                        } else {
                            // n(h) ∝ h³ ⇒ damped fixed point of h (n_target/n)^{1/3}.
                            let factor = (target / count as f64).cbrt();
                            (h * 0.5 * (1.0 + factor)).min(h_cap)
                        };
                        if h_new == h {
                            break; // pinned at the periodic cap
                        }
                        h = h_new;
                    }

                    // Canonical summation order: ascending particle index.
                    // The gather yields candidates in scan order, which
                    // depends on how the structure was built; sorting makes
                    // every downstream reduction's FP rounding a function
                    // of the particle *set* only — the property that lets a
                    // per-rank evaluation over (owned ∪ ghost) subsets
                    // reproduce the global sums bit-for-bit. Only the
                    // surviving row is sorted, never the raw candidates.
                    row.clear();
                    row.extend(cand.iter().map(|&(id, _)| id));
                    row.sort_unstable();

                    // --- Density sum and grad-h term over the final support ---
                    // Distances go through the periodic minimum-image
                    // displacement — the exact arithmetic the pre-pipeline
                    // path used, so densities match it bit-for-bit.
                    let mut rho = 0.0;
                    let mut drho_dh = 0.0;
                    for &j in &row {
                        let j = j as usize;
                        let d = sys.periodicity.displacement(xi, sys.x[j]);
                        let r = d.norm();
                        let (w, dw_dh) = kernel.w_and_dw_dh(r, h);
                        // sph-lint: allow(raw-accumulation) — FROZEN: the
                        // per-particle kernel sum in sorted-neighbour order
                        // is the cross-backend bit-identity contract;
                        // compensation would change every trajectory.
                        rho += sys.m[j] * w;
                        // sph-lint: allow(raw-accumulation) — FROZEN: same
                        // contract as `rho` above (identical loop, order).
                        drho_dh += sys.m[j] * dw_dh;
                        interactions += 1;
                    }
                    // Ω_i = 1 + (h/3ρ) ∂ρ/∂h
                    let omega = if rho > 0.0 { 1.0 + h / (3.0 * rho) * drho_dh } else { 1.0 };
                    h_iterations += iterations;
                    flat.extend_from_slice(&row);
                    counts.push(row.len() as u32);
                    DensityRow { h, rho, omega }
                })
                .collect();
            DensityChunk {
                rows,
                flat,
                counts,
                stats,
                h_iterations,
                interactions,
                max_search_radius,
            }
        })
        .collect();

    // Ordered reduce: merge chunk counters, write rows back in `active`
    // order (chunk order × row order reproduces it exactly), and splice
    // the chunk CSR fragments into the shared lists.
    // sph-lint: allow(raw-accumulation) — integer size bookkeeping; usize
    // addition is exact (and overflow-checked), no FP order to freeze.
    let total: usize = chunks.iter().map(|c| c.flat.len()).sum();
    assert!(total <= u32::MAX as usize, "neighbour count overflows u32 CSR offsets");
    let mut offsets = Vec::with_capacity(active.len() + 1);
    offsets.push(0u32);
    let mut indices = Vec::with_capacity(total);
    let mut running = 0u32;
    let mut step = StepStats::default();
    let mut ids = active.iter();
    for chunk in chunks {
        step.neighbor.merge(&chunk.stats);
        step.h_iterations += chunk.h_iterations;
        step.sph_interactions += chunk.interactions;
        step.max_search_radius = step.max_search_radius.max(chunk.max_search_radius);
        for (row, count) in chunk.rows.into_iter().zip(chunk.counts) {
            // sph-lint: allow(panic-path) — local invariant: the chunks
            // are a partition of `active`, so the id iterator yields
            // exactly one id per row; exhaustion here is a code bug.
            let i = *ids.next().expect("chunk rows outnumber active ids") as usize;
            sys.h[i] = row.h;
            sys.rho[i] = row.rho;
            sys.omega[i] = if cfg.grad_h { row.omega } else { 1.0 };
            // sph-lint: allow(raw-accumulation) — u32 CSR prefix sum;
            // integer addition is exact, no FP order to freeze.
            running += count;
            offsets.push(running);
        }
        indices.extend_from_slice(&chunk.flat);
    }
    step.active_particles += active.len() as u64;
    (NeighborLists::from_csr(offsets, indices), step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};
    use sph_tree::{CellGrid, NeighborSearch, Octree, OctreeConfig};

    /// Uniform cubic lattice of n³ particles in the unit cube with total
    /// mass 1 ⇒ expected density 1 away from the open boundaries.
    pub fn lattice_system(n: usize) -> ParticleSystem {
        let mut x = Vec::with_capacity(n * n * n);
        let spacing = 1.0 / n as f64;
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    x.push(Vec3::new(
                        (ix as f64 + 0.5) * spacing,
                        (iy as f64 + 0.5) * spacing,
                        (iz as f64 + 0.5) * spacing,
                    ));
                }
            }
        }
        let count = x.len();
        let m = vec![1.0 / count as f64; count];
        let v = vec![Vec3::ZERO; count];
        let u = vec![1.0; count];
        ParticleSystem::new(x, v, m, u, 2.0 * spacing, Periodicity::open(Aabb::unit()))
    }

    fn run_density(sys: &mut ParticleSystem, cfg: &SphConfig) -> (NeighborLists, StepStats) {
        let grid = CellGrid::build(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let kernel = cfg.kernel.build();
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        compute_density(sys, &grid, kernel.as_ref(), cfg, &active)
    }

    #[test]
    fn lattice_density_is_unity_in_the_bulk() {
        let mut sys = lattice_system(12);
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        run_density(&mut sys, &cfg);
        // Check interior particles only (the open boundary depletes the
        // kernel support of surface particles).
        let mut checked = 0;
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.25;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                assert!(
                    (sys.rho[i] - 1.0).abs() < 0.05,
                    "interior density {} at {p:?}",
                    sys.rho[i]
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "too few interior particles checked: {checked}");
    }

    #[test]
    fn neighbor_count_hits_target() {
        let mut sys = lattice_system(12);
        let cfg = SphConfig { target_neighbors: 60, neighbor_tolerance: 0.1, ..Default::default() };
        let (lists, _) = run_density(&mut sys, &cfg);
        // Interior particles must land inside the tolerance band.
        let mut hits = 0;
        let mut total = 0;
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.25;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                total += 1;
                let c = lists.neighbors(i).len();
                if (54..=66).contains(&c) {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 > 0.9 * total as f64, "{hits}/{total} on target");
    }

    #[test]
    fn self_is_always_a_neighbor() {
        let mut sys = lattice_system(8);
        let cfg = SphConfig { target_neighbors: 40, ..Default::default() };
        let (lists, _) = run_density(&mut sys, &cfg);
        for i in 0..sys.len() {
            assert!(lists.neighbors(i).contains(&(i as u32)), "particle {i} lost itself");
        }
    }

    #[test]
    fn omega_near_one_for_uniform_field() {
        // In a uniform lattice ∂ρ/∂h ≈ 0 at the adapted h, so Ω ≈ 1.
        let mut sys = lattice_system(12);
        let cfg = SphConfig { target_neighbors: 60, ..Default::default() };
        run_density(&mut sys, &cfg);
        for i in 0..sys.len() {
            let p = sys.x[i];
            let margin = 0.3;
            if p.x > margin
                && p.x < 1.0 - margin
                && p.y > margin
                && p.y < 1.0 - margin
                && p.z > margin
                && p.z < 1.0 - margin
            {
                assert!(
                    (sys.omega[i] - 1.0).abs() < 0.3,
                    "Ω = {} at interior particle {i}",
                    sys.omega[i]
                );
            }
        }
    }

    #[test]
    fn grad_h_disabled_pins_omega() {
        let mut sys = lattice_system(6);
        let cfg = SphConfig { grad_h: false, target_neighbors: 40, ..Default::default() };
        run_density(&mut sys, &cfg);
        assert!(sys.omega.iter().all(|&o| o == 1.0));
    }

    #[test]
    fn mass_is_recovered_by_volume_integral() {
        // Σ_i ρ_i · (m_i/ρ_i) = Σ m_i = total mass, trivially; the real
        // check: kernel-summed density integrates the mass distribution,
        // Σ_i m_i ρ_i / ρ_i ≈ Σ m. Instead verify Σ_j m_j W h-consistency:
        // density of an isolated particle is m·W(0,h).
        let mut sys = ParticleSystem::new(
            vec![Vec3::splat(0.5)],
            vec![Vec3::ZERO],
            vec![2.0],
            vec![1.0],
            0.25,
            Periodicity::open(Aabb::unit()),
        );
        let cfg = SphConfig { max_h_iterations: 1, ..Default::default() };
        let kernel = cfg.kernel.build();
        let (_, stats) = run_density(&mut sys, &cfg);
        let expected = 2.0 * kernel.w(0.0, sys.h[0]);
        assert!((sys.rho[0] - expected).abs() < 1e-12);
        assert_eq!(stats.active_particles, 1);
    }

    #[test]
    fn cell_grid_path_is_bit_identical_to_the_octree_path() {
        // The backend-exactness contract of the pipeline: the cell grid
        // and the octree walk answer every ball query with identical FP
        // accept arithmetic, so the *entire* density pass — adapted h,
        // ρ, Ω, sorted lists, stats that feed the performance model —
        // must match bit-for-bit between the two.
        let cfg = SphConfig { target_neighbors: 50, max_h_iterations: 4, ..Default::default() };
        let kernel = cfg.kernel.build();
        let mut via_grid = lattice_system(10);
        via_grid.periodicity = Periodicity::periodic_z(Aabb::unit());
        let mut via_tree = via_grid.clone();
        let active: Vec<u32> = (0..via_grid.len() as u32).collect();

        let grid =
            CellGrid::build(&via_grid.x, via_grid.periodicity, SUPPORT_RADIUS * via_grid.max_h());
        let (lists_g, stats_g) =
            compute_density(&mut via_grid, &grid, kernel.as_ref(), &cfg, &active);

        let tree = Octree::build(
            &via_tree.x,
            &via_tree.bounds(),
            OctreeConfig { max_leaf_size: 32, parallel_sort: false },
        );
        let search = NeighborSearch::new(&tree, via_tree.periodicity);
        let (lists_t, stats_t) =
            compute_density(&mut via_tree, &search, kernel.as_ref(), &cfg, &active);

        for k in 0..lists_g.query_count() {
            assert_eq!(lists_g.neighbors(k), lists_t.neighbors(k), "lists differ at particle {k}");
            assert_eq!(via_grid.h[k].to_bits(), via_tree.h[k].to_bits(), "h differs at {k}");
            assert_eq!(via_grid.rho[k].to_bits(), via_tree.rho[k].to_bits(), "ρ differs at {k}");
            assert_eq!(
                via_grid.omega[k].to_bits(),
                via_tree.omega[k].to_bits(),
                "Ω differs at {k}"
            );
        }
        // Work counters that are backend-independent must agree exactly;
        // nodes_visited legitimately differs (cells vs tree nodes).
        assert_eq!(stats_g.h_iterations, stats_t.h_iterations);
        assert_eq!(stats_g.sph_interactions, stats_t.sph_interactions);
        assert_eq!(stats_g.neighbor.radius_clamps, stats_t.neighbor.radius_clamps);
        assert_eq!(stats_g.max_search_radius.to_bits(), stats_t.max_search_radius.to_bits());
    }

    #[test]
    fn active_subset_only_touches_subset() {
        let mut sys = lattice_system(6);
        let cfg = SphConfig { target_neighbors: 40, ..Default::default() };
        let grid = CellGrid::build(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let kernel = cfg.kernel.build();
        let before_rho = sys.rho.clone();
        let active = [0u32, 5, 10];
        let (lists, stats) = compute_density(&mut sys, &grid, kernel.as_ref(), &cfg, &active);
        assert_eq!(lists.query_count(), 3);
        assert_eq!(stats.active_particles, 3);
        // Untouched particles keep their (zero) density.
        for (i, &rho_before) in before_rho.iter().enumerate() {
            if !active.contains(&(i as u32)) {
                assert_eq!(sys.rho[i], rho_before);
            }
        }
        for &ai in &active {
            assert!(sys.rho[ai as usize] > 0.0);
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_ascending() {
        // The canonical-order contract every downstream sum relies on for
        // decomposition-independent rounding.
        let mut sys = lattice_system(8);
        let cfg = SphConfig { target_neighbors: 40, ..Default::default() };
        let (lists, stats) = run_density(&mut sys, &cfg);
        for k in 0..lists.query_count() {
            let n = lists.neighbors(k);
            assert!(n.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated list at query {k}");
        }
        assert!(stats.max_search_radius > 0.0);
    }

    #[test]
    fn max_search_radius_respects_the_growth_bound() {
        // Start far below the converged h so the iteration must grow it;
        // every radius requested along the way must stay within the
        // analytic per-iteration growth bound — the guarantee the halo
        // negotiation's worst-case headroom is built on.
        let mut sys = lattice_system(10);
        let h0 = 0.02;
        for h in sys.h.iter_mut() {
            *h = h0;
        }
        let cfg = SphConfig { target_neighbors: 60, max_h_iterations: 6, ..Default::default() };
        let (_, stats) = run_density(&mut sys, &cfg);
        let bound = SUPPORT_RADIUS
            * h0
            * h_growth_bound(&cfg).powi(cfg.max_h_iterations as i32 - 1)
            * (1.0 + 1e-12);
        assert!(stats.max_search_radius > SUPPORT_RADIUS * h0, "iteration never grew h");
        assert!(
            stats.max_search_radius <= bound,
            "radius {} exceeds analytic bound {bound}",
            stats.max_search_radius
        );
    }

    #[test]
    fn final_neighbors_match_a_fresh_search_at_final_h() {
        // Exit invariant of the h iteration: the stored h and the returned
        // neighbour set are consistent — one frozen search at the final h
        // reproduces the list exactly (the property halo symmetrisation
        // uses to recover ghost gather sets).
        let mut sys = lattice_system(9);
        let cfg = SphConfig { target_neighbors: 50, max_h_iterations: 4, ..Default::default() };
        let (lists, _) = run_density(&mut sys, &cfg);
        let frozen = SphConfig { max_h_iterations: 1, ..cfg };
        let mut again = sys.clone();
        let (lists2, _) = run_density(&mut again, &frozen);
        for k in 0..lists.query_count() {
            assert_eq!(lists.neighbors(k), lists2.neighbors(k), "particle {k}");
            assert_eq!(sys.h[k], again.h[k]);
            assert_eq!(sys.rho[k], again.rho[k]);
        }
    }

    #[test]
    fn csr_roundtrip() {
        let lists = vec![vec![1, 2, 3], vec![], vec![7]];
        let nl = NeighborLists::from_lists(lists);
        assert_eq!(nl.query_count(), 3);
        assert_eq!(nl.neighbors(0), &[1, 2, 3]);
        assert_eq!(nl.neighbors(1), &[] as &[u32]);
        assert_eq!(nl.neighbors(2), &[7]);
        assert_eq!(nl.total_neighbors(), 4);
        assert!((nl.mean_count() - 4.0 / 3.0).abs() < 1e-15);
    }
}
