//! Time integrators (Algorithm 1, step 6 "Update velocity and position").
//!
//! The drift/kick primitives are split out so the step drivers in
//! `sph-exa` can compose them: a plain Euler step for smoke tests and the
//! kick–drift–kick (KDK) leapfrog used for production runs (second order,
//! symplectic for separable Hamiltonians — the standard choice of the
//! parent codes).

use crate::particles::ParticleSystem;

/// Kick: `v += a·dt`, `u += u̇·dt` for the given particles.
/// Internal energy is floored at zero (artificial viscosity can slightly
/// overcool cold flows in finite precision).
pub fn kick(sys: &mut ParticleSystem, dt: f64, active: &[u32]) {
    for &ai in active {
        let i = ai as usize;
        sys.v[i] += sys.a[i] * dt;
        sys.u[i] = (sys.u[i] + sys.du_dt[i] * dt).max(0.0);
    }
}

/// Drift: `x += v·dt` for **all** particles, wrapping periodic axes.
pub fn drift(sys: &mut ParticleSystem, dt: f64) {
    let per = sys.periodicity;
    for i in 0..sys.len() {
        sys.x[i] = per.wrap(sys.x[i] + sys.v[i] * dt);
    }
}

/// First-order Euler update of the given particles (tests/demos only).
pub fn euler_step(sys: &mut ParticleSystem, dt: f64, active: &[u32]) {
    kick(sys, dt, active);
    drift(sys, dt);
    sys.time += dt;
    sys.step_count += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn two_body() -> ParticleSystem {
        ParticleSystem::new(
            vec![Vec3::splat(0.25), Vec3::splat(0.75)],
            vec![Vec3::X, -Vec3::X],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            0.1,
            Periodicity::open(Aabb::unit()),
        )
    }

    #[test]
    fn kick_updates_velocity_and_energy() {
        let mut sys = two_body();
        sys.a[0] = Vec3::Y * 2.0;
        sys.du_dt[0] = 3.0;
        kick(&mut sys, 0.5, &[0]);
        assert_eq!(sys.v[0], Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(sys.u[0], 2.5);
        // Particle 1 untouched.
        assert_eq!(sys.v[1], -Vec3::X);
    }

    #[test]
    fn kick_floors_internal_energy() {
        let mut sys = two_body();
        sys.du_dt[0] = -100.0;
        kick(&mut sys, 1.0, &[0]);
        assert_eq!(sys.u[0], 0.0);
    }

    #[test]
    fn drift_moves_everyone() {
        let mut sys = two_body();
        drift(&mut sys, 0.1);
        assert!((sys.x[0].x - 0.35).abs() < 1e-15);
        assert!((sys.x[1].x - 0.65).abs() < 1e-15);
    }

    #[test]
    fn drift_wraps_periodic_axes() {
        let mut sys = two_body();
        sys.periodicity = Periodicity::periodic_z(Aabb::unit());
        sys.v[0] = Vec3::Z * 10.0;
        drift(&mut sys, 0.1); // z: 0.25 + 1.0 → wraps to 0.25
        assert!((sys.x[0].z - 0.25).abs() < 1e-12);
    }

    #[test]
    fn euler_advances_clock() {
        let mut sys = two_body();
        let active: Vec<u32> = vec![0, 1];
        euler_step(&mut sys, 0.25, &active);
        assert_eq!(sys.time, 0.25);
        assert_eq!(sys.step_count, 1);
    }

    #[test]
    fn free_particle_moves_ballistically() {
        let mut sys = two_body();
        let active: Vec<u32> = vec![0, 1];
        for _ in 0..10 {
            euler_step(&mut sys, 0.01, &active);
        }
        assert!((sys.x[0].x - 0.35).abs() < 1e-12);
        assert!((sys.time - 0.1).abs() < 1e-12);
    }
}
