//! Time integrators (Algorithm 1, step 6 "Update velocity and position").
//!
//! The drift/kick primitives are split out so the step drivers in
//! `sph-exa` can compose them: a plain Euler step for smoke tests and the
//! kick–drift–kick (KDK) leapfrog used for production runs (second order,
//! symplectic for separable Hamiltonians — the standard choice of the
//! parent codes).

use crate::particles::ParticleSystem;
use sph_math::Vec3;

/// Kick: `v += a·dt`, `u += u̇·dt` for the given particles.
/// Internal energy is floored at zero (artificial viscosity can slightly
/// overcool cold flows in finite precision).
pub fn kick(sys: &mut ParticleSystem, dt: f64, active: &[u32]) {
    for &ai in active {
        let i = ai as usize;
        sys.v[i] += sys.a[i] * dt;
        sys.u[i] = (sys.u[i] + sys.du_dt[i] * dt).max(0.0);
    }
}

/// Drift: `x += v·dt` for **all** particles, wrapping periodic axes.
pub fn drift(sys: &mut ParticleSystem, dt: f64) {
    let per = sys.periodicity;
    for i in 0..sys.len() {
        sys.x[i] = per.wrap(sys.x[i] + sys.v[i] * dt);
    }
}

/// Double (ping-pong) position/velocity buffers for the drivers' update
/// phase: the fused half-kick + drift streams the old `x`/`v` and writes
/// the new values into the back buffers, which are then swapped in O(1).
/// The state arrays are never read-modified in place, so the update is a
/// pure gather → scatter pass (the layout a GPU port needs), while the
/// per-particle arithmetic stays exactly `kick` followed by `drift` —
/// trajectories are bit-identical to the unfused primitives.
#[derive(Debug, Default)]
pub struct PingPongBuffers {
    x_back: Vec<Vec3>,
    v_back: Vec<Vec3>,
}

impl PingPongBuffers {
    pub fn new(n: usize) -> Self {
        PingPongBuffers { x_back: vec![Vec3::ZERO; n], v_back: vec![Vec3::ZERO; n] }
    }

    /// Match the buffer length to the system (cheap when unchanged).
    pub fn resize(&mut self, n: usize) {
        self.x_back.resize(n, Vec3::ZERO);
        self.v_back.resize(n, Vec3::ZERO);
    }
}

/// Fused first half of the KDK leapfrog over **all** particles: half-kick
/// `v ← v + a·dt_kick`, `u ← max(0, u + u̇·dt_kick)`, then drift
/// `x ← wrap(x + v·dt_drift)` — new `x`/`v` written to the back buffers
/// and swapped in. Identical arithmetic, element by element, to
/// `kick(sys, dt_kick, all)` followed by `drift(sys, dt_drift)`.
pub fn kick_drift(
    sys: &mut ParticleSystem,
    buf: &mut PingPongBuffers,
    dt_kick: f64,
    dt_drift: f64,
) {
    let n = sys.len();
    buf.resize(n);
    let per = sys.periodicity;
    for i in 0..n {
        let v_new = sys.v[i] + sys.a[i] * dt_kick;
        buf.v_back[i] = v_new;
        buf.x_back[i] = per.wrap(sys.x[i] + v_new * dt_drift);
        sys.u[i] = (sys.u[i] + sys.du_dt[i] * dt_kick).max(0.0);
    }
    std::mem::swap(&mut sys.v, &mut buf.v_back);
    std::mem::swap(&mut sys.x, &mut buf.x_back);
}

/// First-order Euler update of the given particles (tests/demos only).
pub fn euler_step(sys: &mut ParticleSystem, dt: f64, active: &[u32]) {
    kick(sys, dt, active);
    drift(sys, dt);
    sys.time += dt;
    sys.step_count += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn two_body() -> ParticleSystem {
        ParticleSystem::new(
            vec![Vec3::splat(0.25), Vec3::splat(0.75)],
            vec![Vec3::X, -Vec3::X],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            0.1,
            Periodicity::open(Aabb::unit()),
        )
    }

    #[test]
    fn kick_updates_velocity_and_energy() {
        let mut sys = two_body();
        sys.a[0] = Vec3::Y * 2.0;
        sys.du_dt[0] = 3.0;
        kick(&mut sys, 0.5, &[0]);
        assert_eq!(sys.v[0], Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(sys.u[0], 2.5);
        // Particle 1 untouched.
        assert_eq!(sys.v[1], -Vec3::X);
    }

    #[test]
    fn kick_floors_internal_energy() {
        let mut sys = two_body();
        sys.du_dt[0] = -100.0;
        kick(&mut sys, 1.0, &[0]);
        assert_eq!(sys.u[0], 0.0);
    }

    #[test]
    fn drift_moves_everyone() {
        let mut sys = two_body();
        drift(&mut sys, 0.1);
        assert!((sys.x[0].x - 0.35).abs() < 1e-15);
        assert!((sys.x[1].x - 0.65).abs() < 1e-15);
    }

    #[test]
    fn drift_wraps_periodic_axes() {
        let mut sys = two_body();
        sys.periodicity = Periodicity::periodic_z(Aabb::unit());
        sys.v[0] = Vec3::Z * 10.0;
        drift(&mut sys, 0.1); // z: 0.25 + 1.0 → wraps to 0.25
        assert!((sys.x[0].z - 0.25).abs() < 1e-12);
    }

    #[test]
    fn euler_advances_clock() {
        let mut sys = two_body();
        let active: Vec<u32> = vec![0, 1];
        euler_step(&mut sys, 0.25, &active);
        assert_eq!(sys.time, 0.25);
        assert_eq!(sys.step_count, 1);
    }

    #[test]
    fn kick_drift_is_bit_identical_to_kick_then_drift() {
        let mut a = two_body();
        a.periodicity = Periodicity::periodic_z(Aabb::unit());
        a.a[0] = Vec3::new(0.3, -0.7, 11.0); // big z kick to force a wrap
        a.a[1] = Vec3::new(-0.2, 0.4, 0.1);
        a.du_dt[0] = 2.5;
        a.du_dt[1] = -100.0; // exercises the energy floor
        let mut b = a.clone();

        let all: Vec<u32> = vec![0, 1];
        kick(&mut a, 0.05, &all);
        drift(&mut a, 0.1);

        let mut buf = PingPongBuffers::new(b.len());
        kick_drift(&mut b, &mut buf, 0.05, 0.1);

        for i in 0..2 {
            assert_eq!(a.x[i], b.x[i], "x differs at {i}");
            assert_eq!(a.v[i], b.v[i], "v differs at {i}");
            assert_eq!(a.u[i], b.u[i], "u differs at {i}");
        }
    }

    #[test]
    fn ping_pong_buffers_track_system_size() {
        let mut buf = PingPongBuffers::default();
        let mut sys = two_body();
        kick_drift(&mut sys, &mut buf, 0.1, 0.1); // resizes 0 → 2 internally
        assert!(sys.sanity_check().is_ok());
    }

    #[test]
    fn free_particle_moves_ballistically() {
        let mut sys = two_body();
        let active: Vec<u32> = vec![0, 1];
        for _ in 0..10 {
            euler_step(&mut sys, 0.01, &active);
        }
        assert!((sys.x[0].x - 0.35).abs() < 1e-12);
        assert!((sys.time - 0.1).abs() < 1e-12);
    }
}
