//! 3×3 matrices.
//!
//! The IAD gradient scheme (García-Senz et al. 2012, used by SPHYNX) needs,
//! per particle, the inverse of the symmetric "shape" matrix
//! `τ = Σ_j V_j (r_j − r_i) ⊗ (r_j − r_i) W_ij`. That inverse is the only
//! linear algebra the mini-app requires, so this module provides exactly a
//! row-major 3×3 with determinant, inverse, and the symmetric outer-product
//! helpers — no general-purpose linear-algebra dependency.

use crate::vec3::Vec3;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Row-major 3×3 matrix of `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// `m[row][col]`
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::ZERO
    }
}

impl Mat3 {
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };
    pub const IDENTITY: Mat3 = Mat3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    #[inline]
    pub const fn new(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// Diagonal matrix with entries `d`.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Self {
        let mut m = Mat3::ZERO;
        m.m[0][0] = d.x;
        m.m[1][1] = d.y;
        m.m[2][2] = d.z;
        m
    }

    /// Outer product `a ⊗ b`.
    #[inline]
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        Mat3 {
            m: [
                [a.x * b.x, a.x * b.y, a.x * b.z],
                [a.y * b.x, a.y * b.y, a.y * b.z],
                [a.z * b.x, a.z * b.y, a.z * b.z],
            ],
        }
    }

    /// Symmetric rank-one update `self += w · (v ⊗ v)`.
    ///
    /// This is the hot operation of the IAD accumulation loop; it updates all
    /// nine entries (keeping the matrix exactly symmetric in exact
    /// arithmetic) without constructing a temporary.
    #[inline]
    pub fn add_scaled_outer(&mut self, v: Vec3, w: f64) {
        let wx = w * v.x;
        let wy = w * v.y;
        let wz = w * v.z;
        self.m[0][0] += wx * v.x;
        self.m[0][1] += wx * v.y;
        self.m[0][2] += wx * v.z;
        self.m[1][0] += wy * v.x;
        self.m[1][1] += wy * v.y;
        self.m[1][2] += wy * v.z;
        self.m[2][0] += wz * v.x;
        self.m[2][1] += wz * v.y;
        self.m[2][2] += wz * v.z;
    }

    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::new([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    #[inline]
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse via the adjugate. Returns `None` when `|det|` is below
    /// `1e-300` (degenerate neighbour geometry, e.g. all neighbours
    /// coplanar); callers fall back to standard kernel-derivative gradients
    /// in that case, mirroring what SPHYNX does.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-300 || !det.is_finite() {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        let adj = [
            [
                m[1][1] * m[2][2] - m[1][2] * m[2][1],
                m[0][2] * m[2][1] - m[0][1] * m[2][2],
                m[0][1] * m[1][2] - m[0][2] * m[1][1],
            ],
            [
                m[1][2] * m[2][0] - m[1][0] * m[2][2],
                m[0][0] * m[2][2] - m[0][2] * m[2][0],
                m[0][2] * m[1][0] - m[0][0] * m[1][2],
            ],
            [
                m[1][0] * m[2][1] - m[1][1] * m[2][0],
                m[0][1] * m[2][0] - m[0][0] * m[2][1],
                m[0][0] * m[1][1] - m[0][1] * m[1][0],
            ],
        ];
        let mut out = Mat3::ZERO;
        for (row_out, row_adj) in out.m.iter_mut().zip(&adj) {
            for (o, &a) in row_out.iter_mut().zip(row_adj) {
                *o = a * inv_det;
            }
        }
        Some(out)
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        let m = &self.m;
        Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        )
    }

    /// Sum of diagonal entries.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Frobenius norm, used by condition-number heuristics in the IAD path.
    pub fn frobenius_norm(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                // sph-lint: allow(raw-accumulation) — fixed 9-term sum in
                // a frozen FP stream; compensation would perturb the IAD
                // conditioning heuristics bit-for-bit.
                s += self.m[r][c] * self.m[r][c];
            }
        }
        s.sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().flatten().all(|x| x.is_finite())
    }

    /// Maximum absolute difference from `o` — handy in tests.
    pub fn max_abs_diff(&self, o: &Mat3) -> f64 {
        let mut d = 0.0_f64;
        for r in 0..3 {
            for c in 0..3 {
                d = d.max((self.m[r][c] - o.m[r][c]).abs());
            }
        }
        d
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + o.m[r][c];
            }
        }
        out
    }
}

impl AddAssign for Mat3 {
    fn add_assign(&mut self, o: Mat3) {
        *self = *self + o;
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] - o.m[r][c];
            }
        }
        out
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] * s;
            }
        }
        out
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    // sph-lint: allow(raw-accumulation) — fixed 3-term dot
                    // product; part of the frozen FP stream of the IAD
                    // matrix algebra (bit-identity contract).
                    s += self.m[r][k] * o.m[k][c];
                }
                out.m[r][c] = s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat3 {
        Mat3::new([[2.0, 1.0, 0.5], [1.0, 3.0, 0.25], [0.5, 0.25, 4.0]])
    }

    #[test]
    fn identity_behaviour() {
        let a = sample();
        assert_eq!(a * Mat3::IDENTITY, a);
        assert_eq!(Mat3::IDENTITY * a, a);
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec(v), v);
        assert_eq!(Mat3::IDENTITY.determinant(), 1.0);
        assert_eq!(Mat3::IDENTITY.trace(), 3.0);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = sample();
        let inv = a.inverse().expect("invertible");
        let prod = a * inv;
        assert!(prod.max_abs_diff(&Mat3::IDENTITY) < 1e-12, "prod = {prod:?}");
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Rank-1 matrix.
        let s = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
        assert!(s.inverse().is_none());
        assert!(Mat3::ZERO.inverse().is_none());
    }

    #[test]
    fn outer_product() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let o = Mat3::outer(a, b);
        assert_eq!(o.m[0][1], 5.0);
        assert_eq!(o.m[2][0], 12.0);
        // trace(a ⊗ b) = a · b
        assert_eq!(o.trace(), a.dot(b));
    }

    #[test]
    fn add_scaled_outer_matches_outer() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        let mut acc = Mat3::ZERO;
        acc.add_scaled_outer(v, 2.5);
        let reference = Mat3::outer(v, v) * 2.5;
        assert!(acc.max_abs_diff(&reference) < 1e-15);
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(d.determinant(), 24.0);
        let inv = d.inverse().unwrap();
        assert!(crate::approx_eq(inv.m[0][0], 0.5, 1e-15));
        assert!(crate::approx_eq(inv.m[1][1], 1.0 / 3.0, 1e-15));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_linear() {
        let a = sample();
        let u = Vec3::new(1.0, 2.0, 3.0);
        let v = Vec3::new(-1.0, 0.5, 2.0);
        let lhs = a.mul_vec(u + v);
        let rhs = a.mul_vec(u) + a.mul_vec(v);
        assert!((lhs - rhs).norm() < 1e-12);
    }

    #[test]
    fn frobenius() {
        assert!(crate::approx_eq(Mat3::IDENTITY.frobenius_norm(), 3.0_f64.sqrt(), 1e-15));
    }
}
