//! Streaming statistics.
//!
//! The profiler's POP metrics and the scaling harness summarise per-rank
//! compute times (mean, max, imbalance), and the benchmark binaries report
//! means over repeated steps. Welford's algorithm keeps this numerically
//! stable in one pass.

/// One-pass mean/variance/min/max (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); NaN for fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// `mean / max` — identical in form to the POP load-balance efficiency
    /// when fed with per-rank useful-computation times.
    pub fn balance_ratio(&self) -> f64 {
        if self.n == 0 || self.max <= 0.0 {
            f64::NAN
        } else {
            self.mean() / self.max
        }
    }

    /// Merge two accumulators (parallel reduction; Chan et al.).
    pub fn merge(&self, other: &OnlineStats) -> OnlineStats {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        OnlineStats { n, mean, m2, min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Immutable snapshot of an [`OnlineStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

/// Relative L2 error between two equal-length slices:
/// `‖a−b‖₂ / max(‖b‖₂, ε)`. Used by validation tests (IAD vs analytic
/// gradients, gravity vs direct summation).
pub fn relative_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "relative_l2_error: length mismatch");
    // Validation-only path (never feeds a trajectory), so it gets the
    // compensated accumulator rather than a frozen-order suppression.
    let mut num = crate::KahanAccumulator::new();
    let mut den = crate::KahanAccumulator::new();
    for (&x, &y) in a.iter().zip(b) {
        num.add((x - y) * (x - y));
        den.add(y * y);
    }
    (num.total() / den.total().max(1e-300)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
    }

    #[test]
    fn known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        // Sample variance of this classic sequence is 32/7.
        assert!(approx_eq(s.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).cos()).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        let merged = a.merge(&b);
        assert!(approx_eq(merged.mean(), whole.mean(), 1e-12));
        assert!(approx_eq(merged.variance(), whole.variance(), 1e-10));
        assert_eq!(merged.count(), whole.count());
    }

    #[test]
    fn balance_ratio_perfectly_balanced() {
        let mut s = OnlineStats::new();
        for _ in 0..8 {
            s.push(3.0);
        }
        assert!(approx_eq(s.balance_ratio(), 1.0, 1e-15));
    }

    #[test]
    fn balance_ratio_imbalanced() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0); // mean 2, max 3 → 2/3
        assert!(approx_eq(s.balance_ratio(), 2.0 / 3.0, 1e-15));
    }

    #[test]
    fn l2_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(relative_l2_error(&a, &a), 0.0);
        let b = [2.0, 2.0, 3.0];
        assert!(relative_l2_error(&b, &a) > 0.0);
    }
}
