//! Symmetric rank-3 tensors.
//!
//! The octupole term of the Barnes–Hut multipole expansion needs the
//! third moment `S_abc = Σ m d_a d_b d_c` of each tree node. `S` is fully
//! symmetric, so only the 10 components with `a ≤ b ≤ c` are stored. The
//! contractions the field evaluation needs are `S:xx → vector`
//! (`(S:xx)_a = S_abc x_b x_c`) and `S:xxx → scalar`.

use crate::vec3::Vec3;

/// Fully symmetric 3×3×3 tensor, canonical storage order:
/// `[xxx, xxy, xxz, xyy, xyz, xzz, yyy, yyz, yzz, zzz]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SymTensor3 {
    pub c: [f64; 10],
}

/// Map (a, b, c) with a ≤ b ≤ c to the canonical index.
#[inline]
fn canon(a: usize, b: usize, c: usize) -> usize {
    debug_assert!(a <= b && b <= c && c < 3);
    match (a, b, c) {
        (0, 0, 0) => 0,
        (0, 0, 1) => 1,
        (0, 0, 2) => 2,
        (0, 1, 1) => 3,
        (0, 1, 2) => 4,
        (0, 2, 2) => 5,
        (1, 1, 1) => 6,
        (1, 1, 2) => 7,
        (1, 2, 2) => 8,
        (2, 2, 2) => 9,
        _ => unreachable!(),
    }
}

impl SymTensor3 {
    pub const ZERO: SymTensor3 = SymTensor3 { c: [0.0; 10] };

    /// Component `S_abc` for any index order.
    #[inline]
    pub fn get(&self, mut a: usize, mut b: usize, mut c: usize) -> f64 {
        // Sort the three indices (network for 3 elements).
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if b > c {
            std::mem::swap(&mut b, &mut c);
        }
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.c[canon(a, b, c)]
    }

    /// `self += w · (v ⊗ v ⊗ v)` — the moment accumulation primitive.
    #[inline]
    pub fn add_scaled_cube(&mut self, v: Vec3, w: f64) {
        let [x, y, z] = v.to_array();
        self.c[0] += w * x * x * x;
        self.c[1] += w * x * x * y;
        self.c[2] += w * x * x * z;
        self.c[3] += w * x * y * y;
        self.c[4] += w * x * y * z;
        self.c[5] += w * x * z * z;
        self.c[6] += w * y * y * y;
        self.c[7] += w * y * y * z;
        self.c[8] += w * y * z * z;
        self.c[9] += w * z * z * z;
    }

    /// `self += w · sym(s ⊗ m2)` where `sym` symmetrises
    /// `s_a m2_bc + s_b m2_ac + s_c m2_ab` — the parallel-axis shift term
    /// (`m2` must be symmetric).
    pub fn add_scaled_sym_outer(&mut self, s: Vec3, m2: &crate::mat3::Mat3, w: f64) {
        for a in 0..3 {
            for b in a..3 {
                for c in b..3 {
                    let term = s.component(a) * m2.m[b][c]
                        + s.component(b) * m2.m[a][c]
                        + s.component(c) * m2.m[a][b];
                    self.c[canon(a, b, c)] += w * term;
                }
            }
        }
    }

    /// Vector contraction `(S:xx)_a = S_abc x_b x_c`.
    #[inline]
    pub fn contract_twice(&self, x: Vec3) -> Vec3 {
        let mut out = Vec3::ZERO;
        for a in 0..3 {
            let mut s = 0.0;
            for b in 0..3 {
                for c in 0..3 {
                    // sph-lint: allow(raw-accumulation) — fixed 9-term
                    // contraction in the octupole stream; frozen by the
                    // gravity bit-identity contract.
                    s += self.get(a, b, c) * x.component(b) * x.component(c);
                }
            }
            *out.component_mut(a) = s;
        }
        out
    }

    /// Scalar contraction `S:xxx = S_abc x_a x_b x_c`.
    #[inline]
    pub fn contract_thrice(&self, x: Vec3) -> f64 {
        self.contract_twice(x).dot(x)
    }

    pub fn is_finite(&self) -> bool {
        self.c.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Add for SymTensor3 {
    type Output = SymTensor3;
    fn add(mut self, o: SymTensor3) -> SymTensor3 {
        for k in 0..10 {
            self.c[k] += o.c[k];
        }
        self
    }
}

impl std::ops::AddAssign for SymTensor3 {
    fn add_assign(&mut self, o: SymTensor3) {
        for k in 0..10 {
            self.c[k] += o.c[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat3::Mat3;
    use crate::SplitMix64;

    fn rand_vec(rng: &mut SplitMix64) -> Vec3 {
        Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))
    }

    #[test]
    fn cube_components() {
        let mut s = SymTensor3::ZERO;
        let v = Vec3::new(2.0, 3.0, 5.0);
        s.add_scaled_cube(v, 1.0);
        assert_eq!(s.get(0, 0, 0), 8.0);
        assert_eq!(s.get(0, 1, 2), 30.0);
        // Symmetry under index permutation.
        assert_eq!(s.get(2, 1, 0), 30.0);
        assert_eq!(s.get(1, 0, 2), 30.0);
        assert_eq!(s.get(2, 2, 1), 75.0);
    }

    #[test]
    fn contractions_match_naive_loops() {
        let mut rng = SplitMix64::new(4);
        let mut s = SymTensor3::ZERO;
        let pts: Vec<(Vec3, f64)> =
            (0..5).map(|_| (rand_vec(&mut rng), rng.uniform(0.1, 2.0))).collect();
        for &(v, w) in &pts {
            s.add_scaled_cube(v, w);
        }
        let x = rand_vec(&mut rng);
        // Naive: Σ w (v·x)² v for the double contraction, Σ w (v·x)³.
        let mut expect_vec = Vec3::ZERO;
        let mut expect_scalar = 0.0;
        for &(v, w) in &pts {
            let vx = v.dot(x);
            expect_vec += v * (w * vx * vx);
            expect_scalar += w * vx * vx * vx;
        }
        assert!((s.contract_twice(x) - expect_vec).norm() < 1e-12);
        assert!((s.contract_thrice(x) - expect_scalar).abs() < 1e-12);
    }

    #[test]
    fn sym_outer_matches_explicit_symmetrisation() {
        let mut rng = SplitMix64::new(9);
        let sv = rand_vec(&mut rng);
        let v = rand_vec(&mut rng);
        let m2 = {
            let mut m = Mat3::ZERO;
            m.add_scaled_outer(v, 1.3);
            m
        };
        let mut s = SymTensor3::ZERO;
        s.add_scaled_sym_outer(sv, &m2, 0.7);
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let expect = 0.7
                        * (sv.component(a) * m2.m[b][c]
                            + sv.component(b) * m2.m[a][c]
                            + sv.component(c) * m2.m[a][b]);
                    assert!(
                        (s.get(a, b, c) - expect).abs() < 1e-12,
                        "S[{a}{b}{c}] = {} vs {expect}",
                        s.get(a, b, c)
                    );
                }
            }
        }
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = SymTensor3::ZERO;
        a.add_scaled_cube(Vec3::X, 1.0);
        let mut b = SymTensor3::ZERO;
        b.add_scaled_cube(Vec3::Y, 2.0);
        let c = a + b;
        assert_eq!(c.get(0, 0, 0), 1.0);
        assert_eq!(c.get(1, 1, 1), 2.0);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }
}
