//! Compensated and pairwise summation.
//!
//! Conservation diagnostics (total energy, momentum, angular momentum) and
//! the SDC "conservation drift" detector in `sph-ft` compare sums over up to
//! 10⁶ particles across time-steps; naive summation noise would mask the
//! signal, so reductions that feed diagnostics use Kahan or pairwise
//! summation.

/// Kahan–Babuška compensated accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanAccumulator {
    sum: f64,
    compensation: f64,
}

impl KahanAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let y = value - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum
    }

    /// Merge another accumulator (used by parallel reductions).
    pub fn merge(&mut self, other: &KahanAccumulator) {
        self.add(other.sum);
        self.add(-other.compensation);
    }
}

/// Kahan-compensated sum of a slice.
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut acc = KahanAccumulator::new();
    for &v in values {
        acc.add(v);
    }
    acc.total()
}

/// Recursive pairwise sum; O(log n) error growth, cache friendly.
pub fn pairwise_sum(values: &[f64]) -> f64 {
    const BASE: usize = 64;
    if values.len() <= BASE {
        return values.iter().sum();
    }
    let mid = values.len() / 2;
    pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(kahan_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(kahan_sum(&[42.0]), 42.0);
        assert_eq!(pairwise_sum(&[42.0]), 42.0);
    }

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        // 1 + many tiny values that naive summation drops entirely.
        let mut values = vec![1.0_f64];
        values.extend(std::iter::repeat(1e-16).take(100_000));
        let naive: f64 = values.iter().sum();
        let kahan = kahan_sum(&values);
        let exact = 1.0 + 1e-16 * 100_000.0;
        assert!((kahan - exact).abs() < (naive - exact).abs() || naive == exact);
        assert!((kahan - exact).abs() < 1e-12);
    }

    #[test]
    fn pairwise_matches_exact_on_integers() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let exact = 10_000.0 * 10_001.0 / 2.0;
        assert_eq!(pairwise_sum(&values), exact);
        assert_eq!(kahan_sum(&values), exact);
    }

    #[test]
    fn merge_is_associative_enough() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let total = kahan_sum(&values);
        let mut a = KahanAccumulator::new();
        let mut b = KahanAccumulator::new();
        for &v in &values[..500] {
            a.add(v);
        }
        for &v in &values[500..] {
            b.add(v);
        }
        a.merge(&b);
        assert!((a.total() - total).abs() < 1e-12);
    }
}
