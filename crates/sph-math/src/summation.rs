//! Compensated and pairwise summation.
//!
//! Conservation diagnostics (total energy, momentum, angular momentum) and
//! the SDC "conservation drift" detector in `sph-ft` compare sums over up to
//! 10⁶ particles across time-steps; naive summation noise would mask the
//! signal, so reductions that feed diagnostics use Kahan or pairwise
//! summation.

/// Fixed chunk length for the workspace's chunked-map + ordered-reduce
/// parallel loops (density, forces, gravity, conservation sums, …). The
/// boundaries depend only on the input length — never on the thread count —
/// so chunk-folded partial results merge to bit-identical totals for any
/// `SPH_THREADS`. That determinism is what lets the sph-ft SDC detector
/// treat a conservation-sum mismatch as silent data corruption rather than
/// scheduling noise.
pub const REDUCE_CHUNK: usize = 256;

/// Kahan–Babuška–Neumaier compensated accumulator.
///
/// Unlike classic Kahan, the Neumaier update also captures the error when
/// the incoming term is *larger* than the running sum, and the compensation
/// is carried as explicit state added back in [`total`](Self::total). That
/// pairing is what makes [`merge`](Self::merge) exact enough for parallel
/// reductions: merging chunk accumulators combines both partial sums *and*
/// both compensations instead of re-rounding the compensation away (the
/// pre-fix merge lost it through two lossy `add` calls).
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanAccumulator {
    sum: f64,
    compensation: f64,
}

impl KahanAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term (Neumaier update).
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Merge another accumulator (the combining step of parallel chunked
    /// reductions): fold in the partial sum with full error tracking, then
    /// carry the partner's compensation verbatim.
    pub fn merge(&mut self, other: &KahanAccumulator) {
        self.add(other.sum);
        self.compensation += other.compensation;
    }
}

/// Kahan-compensated sum of a slice.
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut acc = KahanAccumulator::new();
    for &v in values {
        acc.add(v);
    }
    acc.total()
}

/// Recursive pairwise sum; O(log n) error growth, cache friendly.
pub fn pairwise_sum(values: &[f64]) -> f64 {
    const BASE: usize = 64;
    if values.len() <= BASE {
        // sph-lint: allow(raw-accumulation) — this base case IS the leaf
        // of the ordered-reduce: the ≤64-term sequential sum whose fixed
        // order defines the pairwise reduction the rule points at.
        return values.iter().sum();
    }
    let mid = values.len() / 2;
    pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(kahan_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(kahan_sum(&[42.0]), 42.0);
        assert_eq!(pairwise_sum(&[42.0]), 42.0);
    }

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        // 1 + many tiny values that naive summation drops entirely.
        let mut values = vec![1.0_f64];
        values.extend(std::iter::repeat_n(1e-16, 100_000));
        let naive: f64 = values.iter().sum();
        let kahan = kahan_sum(&values);
        let exact = 1.0 + 1e-16 * 100_000.0;
        assert!((kahan - exact).abs() < (naive - exact).abs() || naive == exact);
        assert!((kahan - exact).abs() < 1e-12);
    }

    #[test]
    fn pairwise_matches_exact_on_integers() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let exact = 10_000.0 * 10_001.0 / 2.0;
        assert_eq!(pairwise_sum(&values), exact);
        assert_eq!(kahan_sum(&values), exact);
    }

    #[test]
    fn merge_is_associative_enough() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let total = kahan_sum(&values);
        let mut a = KahanAccumulator::new();
        let mut b = KahanAccumulator::new();
        for &v in &values[..500] {
            a.add(v);
        }
        for &v in &values[500..] {
            b.add(v);
        }
        a.merge(&b);
        assert!((a.total() - total).abs() < 1e-12);
    }

    #[test]
    fn neumaier_handles_large_incoming_terms() {
        // Classic Kahan loses the error when |value| > |sum|; Neumaier does
        // not: 1 + 1e100 − 1e100 must come back as exactly 1.
        let mut acc = KahanAccumulator::new();
        for v in [1.0, 1e100, -1e100] {
            acc.add(v);
        }
        assert_eq!(acc.total(), 1.0);
    }

    #[test]
    fn merge_preserves_compensation_pairing() {
        // The pre-fix merge re-rounded `other.compensation` through a lossy
        // add; carrying it verbatim keeps the merged total exact here.
        let mut a = KahanAccumulator::new();
        a.add(1e100);
        let mut b = KahanAccumulator::new();
        b.add(1.0);
        b.add(-1e100); // b = {sum: -1e100 (approx), compensation: 1}
        a.merge(&b);
        assert_eq!(a.total(), 1.0);
    }
}
