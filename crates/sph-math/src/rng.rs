//! Deterministic seed derivation.
//!
//! Every stochastic element of the reproduction (initial-condition jitter,
//! failure injection, SDC bit flips) draws its seed from a single master
//! seed through `SplitMix64`, so `--seed 42` regenerates the exact same
//! particle positions, failures and traces on every run — the
//! reproducibility requirement §4 of the paper calls out.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014). Tiny state, passes BigCrush,
/// and is the canonical seed-stretcher for other generators.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi).
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in [0, n) (Lemire's method would be overkill here;
    /// modulo bias is negligible for our n ≪ 2⁶⁴ uses, but we reject to be
    /// exact anyway).
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Derive an independent child seed for subsystem `label`.
    ///
    /// The label is hashed (FNV-1a) into the stream so different subsystems
    /// with the same master seed get decorrelated sequences and adding a new
    /// subsystem never perturbs existing ones.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut child = SplitMix64::new(self.state ^ h);
        child.next_u64()
    }

    /// Exponentially distributed sample with the given mean — used by the
    /// failure injector (inter-arrival times of fail-stop faults).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = r.uniform(-2.0, 4.0);
            assert!((-2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derive_decorrelates_labels() {
        let master = SplitMix64::new(42);
        let s1 = master.derive("ic-jitter");
        let s2 = master.derive("failure-injection");
        let s3 = master.derive("ic-jitter");
        assert_ne!(s1, s2);
        assert_eq!(s1, s3, "derivation must be a pure function of (seed, label)");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SplitMix64::new(3);
        let n = 200_000;
        let mean_target = 5.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exponential(mean_target);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean = {mean}");
    }
}
