//! A plain 3-component `f64` vector.
//!
//! SPH spends its time in tight per-neighbour loops; the vector type is kept
//! `Copy`, `#[repr(C)]`, and free of any hidden allocation so the compiler
//! can keep it in registers and auto-vectorise the particle loops.

use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// Three-dimensional vector of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Euclidean distance to `o`.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise product (Hadamard).
    #[inline]
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Access by axis index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics for `axis > 2`, mirroring the slice-indexing contract.
    #[inline]
    pub fn component(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            // sph-lint: allow(panic-path) — out-of-range bound, same
            // contract as std slice indexing; axes come from 0..3 loops.
            _ => panic!("Vec3 axis out of range: {axis}"),
        }
    }

    /// Mutable access by axis index.
    ///
    /// # Panics
    ///
    /// Panics for `axis > 2`, mirroring the slice-indexing contract.
    #[inline]
    pub fn component_mut(&mut self, axis: usize) -> &mut f64 {
        match axis {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            // sph-lint: allow(panic-path) — out-of-range bound, same
            // contract as std slice indexing; axes come from 0..3 loops.
            _ => panic!("Vec3 axis out of range: {axis}"),
        }
    }

    /// `[x, y, z]` array view, useful for serialisation.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // sph-lint: allow(panic-path) — the std Index contract IS
            // panic-on-out-of-range; a Result here is not expressible.
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        self.component_mut(i)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        // sph-lint: allow(raw-accumulation) — FROZEN: sequential fold in
        // the caller's iteration order; component-wise Kahan would change
        // every existing Vec3 sum bit-for-bit. Hot reductions use the
        // chunked ordered-reduce helpers instead of this impl.
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        let c = a.cross(b);
        // Cross product is orthogonal to both operands.
        assert!(approx_eq(c.dot(a), 0.0, 1e-12));
        assert!(approx_eq(c.dot(b), 0.0, 1e-12));
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert!(approx_eq(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0, 1e-15));
    }

    #[test]
    fn normalized() {
        let v = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!(approx_eq(v.norm(), 1.0, 1e-15));
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn component_access() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v.component(2), 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
        *v.component_mut(0) = -1.0;
        assert_eq!(v.x, -1.0);
    }

    #[test]
    #[should_panic]
    fn component_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v.component(3);
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(-2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(-2.0, -5.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 3.0);
        assert_eq!(a.min_component(), -5.0);
    }

    #[test]
    fn sum_iterator() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
