//! Per-axis periodic boundary handling.
//!
//! The paper's rotating square patch is the 2-D Colagrossi test extruded 100
//! layers along z with **periodic boundary conditions in the z direction**
//! (§5.1). The Evrard collapse is fully open. We therefore need a metric that
//! is periodic on an arbitrary subset of axes: distances use the minimum
//! image convention on periodic axes and plain Euclidean distance elsewhere.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Which axes wrap, and over what box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Periodicity {
    /// Domain over which periodic axes wrap.
    pub domain: Aabb,
    /// `periodic[axis]` is true when that axis wraps.
    pub periodic: [bool; 3],
}

impl Periodicity {
    /// No periodic axes; the domain is kept only for reference.
    pub fn open(domain: Aabb) -> Self {
        Periodicity { domain, periodic: [false; 3] }
    }

    /// All three axes periodic.
    pub fn fully_periodic(domain: Aabb) -> Self {
        Periodicity { domain, periodic: [true; 3] }
    }

    /// Periodic along z only — the square-patch configuration.
    pub fn periodic_z(domain: Aabb) -> Self {
        Periodicity { domain, periodic: [false, false, true] }
    }

    /// True if any axis is periodic.
    pub fn any(&self) -> bool {
        self.periodic.iter().any(|&p| p)
    }

    /// Length of the domain along `axis`.
    #[inline]
    fn span(&self, axis: usize) -> f64 {
        self.domain.extent().component(axis)
    }

    /// Minimum-image displacement `a - b`.
    ///
    /// On periodic axes the component is folded into `(-L/2, L/2]`; on open
    /// axes it is the plain difference.
    #[inline]
    pub fn displacement(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = a - b;
        for axis in 0..3 {
            if self.periodic[axis] {
                let span = self.span(axis);
                if span > 0.0 {
                    let c = d.component_mut(axis);
                    // Fold into (-span/2, span/2].
                    *c -= span * (*c / span).round();
                }
            }
        }
        d
    }

    /// Minimum-image distance.
    #[inline]
    pub fn distance(&self, a: Vec3, b: Vec3) -> f64 {
        self.displacement(a, b).norm()
    }

    /// Minimum-image squared distance.
    #[inline]
    pub fn distance_sq(&self, a: Vec3, b: Vec3) -> f64 {
        self.displacement(a, b).norm_sq()
    }

    /// Wrap a position back into the primary domain on periodic axes.
    /// Open axes are untouched (particles may leave the reference box, as in
    /// the free-surface square patch).
    pub fn wrap(&self, mut p: Vec3) -> Vec3 {
        for axis in 0..3 {
            if self.periodic[axis] {
                let lo = self.domain.lo.component(axis);
                let span = self.span(axis);
                if span > 0.0 {
                    let c = p.component_mut(axis);
                    let mut t = (*c - lo) % span;
                    if t < 0.0 {
                        // sph-lint: allow(raw-accumulation) — one-shot fixup,
                        // not a reduction: a single add canonicalises
                        // the remainder into [0, span).
                        t += span;
                    }
                    *c = lo + t;
                }
            }
        }
        p
    }

    /// The periodic images of `p` whose copies might interact with points in
    /// the primary domain within radius `r` — i.e. the ghost images the halo
    /// exchange must create. Returns offsets (including `Vec3::ZERO` first).
    pub fn ghost_offsets(&self, p: Vec3, r: f64) -> Vec<Vec3> {
        // Doubles once per shifted axis: at most 2^3 images. Pre-sizing
        // keeps this single allocation off the hot-path grow cycle.
        let mut offsets = Vec::with_capacity(8);
        offsets.push(Vec3::ZERO);
        for axis in 0..3 {
            if !self.periodic[axis] {
                continue;
            }
            let span = self.span(axis);
            if span <= 0.0 {
                continue;
            }
            let lo = self.domain.lo.component(axis);
            let hi = self.domain.hi.component(axis);
            let c = p.component(axis);
            let mut axis_shift = 0.0;
            if c - lo < r {
                axis_shift = span; // near low face: image appears above hi
            } else if hi - c < r {
                axis_shift = -span; // near high face: image appears below lo
            }
            if axis_shift != 0.0 {
                // Combine with every offset found so far so corner/edge
                // images are produced for multi-axis periodicity.
                let prev = offsets.clone();
                for off in prev {
                    let mut o = off;
                    *o.component_mut(axis) += axis_shift;
                    offsets.push(o);
                }
            }
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit_z() -> Periodicity {
        Periodicity::periodic_z(Aabb::unit())
    }

    #[test]
    fn open_metric_is_euclidean() {
        let p = Periodicity::open(Aabb::unit());
        let a = Vec3::new(0.1, 0.1, 0.05);
        let b = Vec3::new(0.1, 0.1, 0.95);
        assert!(approx_eq(p.distance(a, b), 0.9, 1e-15));
    }

    #[test]
    fn periodic_z_wraps_distance() {
        let p = unit_z();
        let a = Vec3::new(0.1, 0.1, 0.05);
        let b = Vec3::new(0.1, 0.1, 0.95);
        // Across the wrap the separation is 0.1, not 0.9.
        assert!(approx_eq(p.distance(a, b), 0.1, 1e-12));
        // x/y remain open.
        let c = Vec3::new(0.95, 0.1, 0.05);
        assert!(approx_eq(p.distance(a, c), 0.85, 1e-12));
    }

    #[test]
    fn displacement_sign() {
        let p = unit_z();
        let a = Vec3::new(0.0, 0.0, 0.05);
        let b = Vec3::new(0.0, 0.0, 0.95);
        let d = p.displacement(a, b);
        assert!(approx_eq(d.z, 0.1, 1e-12), "d.z = {}", d.z);
        let d2 = p.displacement(b, a);
        assert!(approx_eq(d2.z, -0.1, 1e-12));
    }

    #[test]
    fn wrap_into_domain() {
        let p = unit_z();
        let w = p.wrap(Vec3::new(2.5, -0.5, 1.25));
        // Only z is wrapped.
        assert_eq!(w.x, 2.5);
        assert_eq!(w.y, -0.5);
        assert!(approx_eq(w.z, 0.25, 1e-12));
        let w2 = p.wrap(Vec3::new(0.0, 0.0, -0.25));
        assert!(approx_eq(w2.z, 0.75, 1e-12));
    }

    #[test]
    fn wrap_is_idempotent() {
        let p = Periodicity::fully_periodic(Aabb::unit());
        let q = Vec3::new(3.7, -1.2, 0.4);
        let once = p.wrap(q);
        let twice = p.wrap(once);
        assert!((once - twice).norm() < 1e-12);
        assert!(p.domain.contains(once));
    }

    #[test]
    fn ghost_offsets_near_face() {
        let p = unit_z();
        // Deep interior: only the identity offset.
        assert_eq!(p.ghost_offsets(Vec3::splat(0.5), 0.1).len(), 1);
        // Near the low z face: one image shifted by +1 in z.
        let offs = p.ghost_offsets(Vec3::new(0.5, 0.5, 0.02), 0.1);
        assert_eq!(offs.len(), 2);
        assert!(approx_eq(offs[1].z, 1.0, 1e-15));
        // Near the high z face: image shifted by -1.
        let offs = p.ghost_offsets(Vec3::new(0.5, 0.5, 0.98), 0.1);
        assert_eq!(offs.len(), 2);
        assert!(approx_eq(offs[1].z, -1.0, 1e-15));
    }

    #[test]
    fn ghost_offsets_corner_fully_periodic() {
        let p = Periodicity::fully_periodic(Aabb::unit());
        // Corner point near (0,0,0): 2^3 = 8 images including identity.
        let offs = p.ghost_offsets(Vec3::splat(0.01), 0.05);
        assert_eq!(offs.len(), 8);
    }

    #[test]
    fn minimum_image_never_exceeds_half_span() {
        let p = Periodicity::fully_periodic(Aabb::unit());
        let a = Vec3::new(0.9, 0.9, 0.9);
        let b = Vec3::new(0.1, 0.1, 0.1);
        let d = p.displacement(a, b);
        assert!(d.x.abs() <= 0.5 + 1e-12 && d.y.abs() <= 0.5 + 1e-12 && d.z.abs() <= 0.5 + 1e-12);
    }
}
