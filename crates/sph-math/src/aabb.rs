//! Axis-aligned bounding boxes.
//!
//! The octree, the ORB decomposition and the SFC key generation all work in
//! terms of a global bounding box. For the rotating square patch the box is
//! periodic along z (the 2-D test is extruded and wrapped), which is handled
//! by [`crate::periodic::Periodicity`]; the box itself is geometry only.

use crate::vec3::Vec3;

/// Closed axis-aligned box `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl Aabb {
    /// Construct from corners; panics if any `lo` component exceeds `hi`.
    pub fn new(lo: Vec3, hi: Vec3) -> Self {
        assert!(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z, "invalid AABB: lo {lo:?} hi {hi:?}");
        Aabb { lo, hi }
    }

    /// Cube centred on `c` with half-width `half`.
    pub fn cube(c: Vec3, half: f64) -> Self {
        assert!(half >= 0.0);
        Aabb::new(c - Vec3::splat(half), c + Vec3::splat(half))
    }

    /// The unit cube `[0,1]³`.
    pub fn unit() -> Self {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    /// Tight bounding box of a point set; `None` when empty.
    pub fn from_points<'a, I: IntoIterator<Item = &'a Vec3>>(pts: I) -> Option<Self> {
        let mut it = pts.into_iter();
        let first = *it.next()?;
        let (lo, hi) = it.fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Aabb { lo, hi })
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    /// Longest edge length.
    #[inline]
    pub fn max_extent(&self) -> f64 {
        self.extent().max_component()
    }

    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Surface area — used by decomposition-quality metrics (halo volume is
    /// proportional to subdomain surface).
    pub fn surface_area(&self) -> f64 {
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }

    /// Smallest box containing both.
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Grow symmetrically by `pad` on every side.
    pub fn padded(&self, pad: f64) -> Aabb {
        Aabb::new(self.lo - Vec3::splat(pad), self.hi + Vec3::splat(pad))
    }

    /// Squared distance from `p` to the box (0 inside) — the pruning test of
    /// the fixed-radius neighbour search.
    #[inline]
    pub fn dist_sq_to_point(&self, p: Vec3) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        let dz = (self.lo.z - p.z).max(0.0).max(p.z - self.hi.z);
        dx * dx + dy * dy + dz * dz
    }

    /// True when the boxes overlap (closed-interval semantics).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.lo.x <= o.hi.x
            && o.lo.x <= self.hi.x
            && self.lo.y <= o.hi.y
            && o.lo.y <= self.hi.y
            && self.lo.z <= o.hi.z
            && o.lo.z <= self.hi.z
    }

    /// The cubic box with the same centre whose edge is the longest edge of
    /// `self`; Morton/octree construction requires a cube.
    pub fn bounding_cube(&self) -> Aabb {
        Aabb::cube(self.center(), self.max_extent() * 0.5)
    }

    /// Octant `i ∈ [0,8)` of a cubic box; bit 0 = x-high, bit 1 = y-high,
    /// bit 2 = z-high (matches Morton child ordering in `sph-tree`).
    pub fn octant(&self, i: usize) -> Aabb {
        assert!(i < 8);
        let c = self.center();
        let lo = Vec3::new(
            if i & 1 == 0 { self.lo.x } else { c.x },
            if i & 2 == 0 { self.lo.y } else { c.y },
            if i & 4 == 0 { self.lo.z } else { c.z },
        );
        let hi = Vec3::new(
            if i & 1 == 0 { c.x } else { self.hi.x },
            if i & 2 == 0 { c.y } else { self.hi.y },
            if i & 4 == 0 { c.z } else { self.hi.z },
        );
        Aabb { lo, hi }
    }

    /// Map `p` into `[0,1]³` relative to this box (no clamping).
    pub fn normalize(&self, p: Vec3) -> Vec3 {
        let e = self.extent();
        Vec3::new(
            if e.x > 0.0 { (p.x - self.lo.x) / e.x } else { 0.5 },
            if e.y > 0.0 { (p.y - self.lo.y) / e.y } else { 0.5 },
            if e.z > 0.0 { (p.z - self.lo.z) / e.z } else { 0.5 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert_eq!(b.center(), Vec3::splat(1.0));
        assert_eq!(b.extent(), Vec3::splat(2.0));
        assert_eq!(b.volume(), 8.0);
        assert_eq!(b.surface_area(), 24.0);
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(b.contains(Vec3::ZERO)); // closed boundary
        assert!(!b.contains(Vec3::splat(2.1)));
    }

    #[test]
    #[should_panic]
    fn inverted_box_panics() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ZERO);
    }

    #[test]
    fn from_points() {
        let pts = [Vec3::new(1.0, -1.0, 0.0), Vec3::new(-2.0, 3.0, 5.0)];
        let b = Aabb::from_points(pts.iter()).unwrap();
        assert_eq!(b.lo, Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(b.hi, Vec3::new(1.0, 3.0, 5.0));
        assert!(Aabb::from_points([].iter()).is_none());
    }

    #[test]
    fn octants_partition_cube() {
        let b = Aabb::cube(Vec3::splat(0.5), 0.5);
        let mut vol = 0.0;
        for i in 0..8 {
            let o = b.octant(i);
            vol += o.volume();
            assert!(b.contains(o.center()));
        }
        assert!(crate::approx_eq(vol, b.volume(), 1e-12));
        // Octant 0 is the low corner, octant 7 the high corner.
        assert_eq!(b.octant(0).lo, b.lo);
        assert_eq!(b.octant(7).hi, b.hi);
    }

    #[test]
    fn dist_sq_to_point() {
        let b = Aabb::unit();
        assert_eq!(b.dist_sq_to_point(Vec3::splat(0.5)), 0.0);
        assert!(crate::approx_eq(b.dist_sq_to_point(Vec3::new(2.0, 0.5, 0.5)), 1.0, 1e-15));
        assert!(crate::approx_eq(b.dist_sq_to_point(Vec3::new(2.0, 2.0, 0.5)), 2.0, 1e-15));
    }

    #[test]
    fn union_and_intersect() {
        let a = Aabb::unit();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert!(a.intersects(&b));
        let u = a.union(&b);
        assert_eq!(u.lo, Vec3::ZERO);
        assert_eq!(u.hi, Vec3::splat(2.0));
        let far = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(!a.intersects(&far));
    }

    #[test]
    fn bounding_cube_is_cubic_and_contains() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 1.0, 2.0));
        let c = b.bounding_cube();
        let e = c.extent();
        assert!(crate::approx_eq(e.x, e.y, 1e-15) && crate::approx_eq(e.y, e.z, 1e-15));
        assert!(c.contains(b.lo) && c.contains(b.hi));
    }

    #[test]
    fn normalize_maps_corners() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 2.0, 6.0));
        assert_eq!(b.normalize(b.lo), Vec3::ZERO);
        assert_eq!(b.normalize(b.hi), Vec3::ONE);
    }
}
