//! Small, dependency-free math substrate for the SPH-EXA reproduction.
//!
//! Everything the higher layers need and nothing more: 3-vectors, 3×3
//! matrices (with the symmetric inverse used by the IAD gradient scheme),
//! axis-aligned bounding boxes with optional per-axis periodicity,
//! compensated summation (conservation diagnostics must not drown in
//! round-off), basic statistics, and a deterministic `splitmix64` generator
//! used to derive every seed in the repository so that all experiments are
//! reproducible bit-for-bit.

pub mod aabb;
pub mod mat3;
pub mod periodic;
pub mod rng;
pub mod stats;
pub mod summation;
pub mod tensor3;
pub mod vec3;

pub use aabb::Aabb;
pub use mat3::Mat3;
pub use periodic::Periodicity;
pub use rng::SplitMix64;
pub use stats::{OnlineStats, Summary};
pub use summation::{kahan_sum, pairwise_sum, KahanAccumulator, REDUCE_CHUNK};
pub use tensor3::SymTensor3;
pub use vec3::Vec3;

/// Relative comparison of two floats with an absolute floor.
///
/// Used throughout the test suites: `approx_eq(a, b, 1e-12)` is true when
/// `|a-b| <= tol * max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
    }
}
