//! Property-based tests of the math substrate.

use proptest::prelude::*;
use sph_math::{
    approx_eq, kahan_sum, pairwise_sum, Aabb, KahanAccumulator, Mat3, Periodicity, SplitMix64, Vec3,
};

/// Distance in units in the last place between two finite doubles.
fn ulp_distance(a: f64, b: f64) -> u64 {
    // Standard IEEE-754 total-order key: flip all bits of negatives, set
    // the sign bit of non-negatives. Strictly monotone over the whole
    // line, so distances through zero count every representable step.
    fn key(x: f64) -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
    key(a).abs_diff(key(b))
}

#[test]
fn ulp_distance_is_sign_aware() {
    // Guard for the helper itself: ±1.0 are far apart, not distance 0.
    assert!(ulp_distance(-1.0, 1.0) > 1 << 60);
    assert_eq!(ulp_distance(1.0, 1.0), 0);
    assert_eq!(ulp_distance(0.0, f64::from_bits(1)), 1);
    // −0.0 and +0.0 are adjacent steps on the total-order line.
    assert_eq!(ulp_distance(-0.0, 0.0), 1);
    assert_eq!(ulp_distance(-0.0, f64::from_bits(1)), 2);
}

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6_f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_f64(), finite_f64(), finite_f64()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn triangle_inequality(a in vec3(), b in vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
    }

    #[test]
    fn cauchy_schwarz(a in vec3(), b in vec3()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn cross_product_orthogonality(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm();
        prop_assert!(c.dot(a).abs() <= 1e-6 * scale.max(1.0) * a.norm().max(1.0));
        prop_assert!(c.dot(b).abs() <= 1e-6 * scale.max(1.0) * b.norm().max(1.0));
    }

    #[test]
    fn vector_algebra_distributes(a in vec3(), b in vec3(), s in -100.0..100.0_f64) {
        let lhs = (a + b) * s;
        let rhs = a * s + b * s;
        prop_assert!((lhs - rhs).norm() < 1e-6 * (1.0 + lhs.norm()));
    }

    #[test]
    fn mat3_inverse_roundtrip(
        d in (0.1..10.0_f64, 0.1..10.0_f64, 0.1..10.0_f64),
        v in vec3()
    ) {
        // Diagonally dominant ⇒ comfortably invertible.
        let mut m = Mat3::from_diagonal(Vec3::new(d.0 + 3.0, d.1 + 3.0, d.2 + 3.0));
        let v_small = v * (1.0 / (1.0 + v.norm())); // |entries| < 1
        m.add_scaled_outer(v_small, 0.1);
        let inv = m.inverse().expect("dominant matrix must invert");
        let prod = m * inv;
        prop_assert!(prod.max_abs_diff(&Mat3::IDENTITY) < 1e-9);
    }

    #[test]
    fn mat3_det_of_product(s in 0.5..2.0_f64, t in 0.5..2.0_f64) {
        let a = Mat3::from_diagonal(Vec3::new(s, 2.0 * s, 0.5));
        let b = Mat3::from_diagonal(Vec3::new(t, 1.0, 3.0 * t));
        let lhs = (a * b).determinant();
        let rhs = a.determinant() * b.determinant();
        prop_assert!(approx_eq(lhs, rhs, 1e-10));
    }

    #[test]
    fn periodic_wrap_idempotent_and_inside(p in vec3()) {
        let per = Periodicity::fully_periodic(Aabb::unit());
        let w = per.wrap(p);
        prop_assert!(per.domain.padded(1e-9).contains(w), "wrapped {w:?} outside");
        prop_assert!((per.wrap(w) - w).norm() < 1e-9);
    }

    #[test]
    fn periodic_displacement_antisymmetric(a in vec3(), b in vec3()) {
        let per = Periodicity::fully_periodic(Aabb::unit());
        let (a, b) = (per.wrap(a), per.wrap(b));
        let d1 = per.displacement(a, b);
        let d2 = per.displacement(b, a);
        prop_assert!((d1 + d2).norm() < 1e-9, "d1 {d1:?} d2 {d2:?}");
    }

    #[test]
    fn minimum_image_is_shortest(a in vec3(), b in vec3()) {
        let per = Periodicity::fully_periodic(Aabb::unit());
        let (a, b) = (per.wrap(a), per.wrap(b));
        let d = per.distance(a, b);
        // No shifted image may be closer.
        for sx in [-1.0, 0.0, 1.0] {
            for sy in [-1.0, 0.0, 1.0] {
                for sz in [-1.0, 0.0, 1.0] {
                    let shifted = b + Vec3::new(sx, sy, sz);
                    prop_assert!(d <= (a - shifted).norm() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn compensated_sums_agree_with_naive_on_benign_input(values in prop::collection::vec(-1e3..1e3_f64, 0..300)) {
        let naive: f64 = values.iter().sum();
        let k = kahan_sum(&values);
        let p = pairwise_sum(&values);
        let scale = values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((k - naive).abs() < 1e-9 * scale);
        prop_assert!((p - naive).abs() < 1e-9 * scale);
    }

    #[test]
    fn chunked_kahan_merge_matches_sequential_to_one_ulp(
        values in prop::collection::vec(-1e12..1e12_f64, 0..600),
        chunk in 1usize..64,
    ) {
        // The parallel reductions split a sum into fixed chunks, fold each
        // chunk into its own accumulator, and merge in chunk order. The
        // Kahan–Babuška–Neumaier merge must reproduce the sequential
        // compensated sum to 1 ulp — this is load-bearing for the
        // bit-stability claims of the SPH hot paths.
        let mut sequential = KahanAccumulator::new();
        for &v in &values {
            sequential.add(v);
        }
        let mut merged = KahanAccumulator::new();
        for piece in values.chunks(chunk) {
            let mut acc = KahanAccumulator::new();
            for &v in piece {
                acc.add(v);
            }
            merged.merge(&acc);
        }
        let (s, m) = (sequential.total(), merged.total());
        prop_assert!(
            ulp_distance(s, m) <= 1,
            "sequential {s:e} vs chunked-merged {m:e} ({} ulps apart, chunk {chunk})",
            ulp_distance(s, m)
        );
    }

    #[test]
    fn kahan_is_permutation_stable(mut values in prop::collection::vec(-1e6..1e6_f64, 1..100)) {
        let forward = kahan_sum(&values);
        values.reverse();
        let backward = kahan_sum(&values);
        let scale = values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((forward - backward).abs() < 1e-9 * scale);
    }

    #[test]
    fn splitmix_derive_is_pure(seed in any::<u64>()) {
        let a = SplitMix64::new(seed);
        let b = SplitMix64::new(seed);
        prop_assert_eq!(a.derive("x"), b.derive("x"));
        prop_assert_ne!(a.derive("x"), a.derive("y"));
    }

    #[test]
    fn aabb_union_contains_both(
        a in (vec3(), 0.1..10.0_f64),
        b in (vec3(), 0.1..10.0_f64)
    ) {
        let ba = Aabb::cube(a.0, a.1);
        let bb = Aabb::cube(b.0, b.1);
        let u = ba.union(&bb);
        prop_assert!(u.contains(ba.lo) && u.contains(ba.hi));
        prop_assert!(u.contains(bb.lo) && u.contains(bb.hi));
    }

    #[test]
    fn aabb_dist_consistent_with_contains(c in vec3(), half in 0.1..5.0_f64, p in vec3()) {
        let b = Aabb::cube(c, half);
        if b.contains(p) {
            prop_assert_eq!(b.dist_sq_to_point(p), 0.0);
        } else {
            prop_assert!(b.dist_sq_to_point(p) > 0.0);
        }
    }

    #[test]
    fn octants_contain_their_centers_and_tile(c in vec3(), half in 0.1..5.0_f64) {
        let b = Aabb::cube(c, half);
        let mut vol = 0.0;
        for i in 0..8 {
            let o = b.octant(i);
            prop_assert!(b.contains(o.center()));
            vol += o.volume();
        }
        prop_assert!(approx_eq(vol, b.volume(), 1e-9));
    }
}
