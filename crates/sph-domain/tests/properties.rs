//! Property-based tests of the decomposition substrate.

use proptest::prelude::*;
use sph_domain::{halo_sets, hilbert, orb_partition, sfc_partition, slab_partition, SfcKind};
use sph_math::{Aabb, Periodicity, Vec3};

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hilbert_roundtrip(ix in 0u64..2048, iy in 0u64..2048, iz in 0u64..2048) {
        let bits = 11;
        let key = hilbert::encode_cell(ix, iy, iz, bits);
        prop_assert_eq!(hilbert::decode_cell(key, bits), (ix, iy, iz));
    }

    #[test]
    fn hilbert_keys_are_unique(cells in prop::collection::hash_set((0u64..32, 0u64..32, 0u64..32), 2..50)) {
        let keys: std::collections::BTreeSet<u64> = cells
            .iter()
            .map(|&(x, y, z)| hilbert::encode_cell(x, y, z, 5))
            .collect();
        prop_assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn every_partitioner_assigns_every_particle(pts in points(1..400), nparts in 1usize..17) {
        for d in [
            sfc_partition(&pts, &Aabb::unit(), nparts, SfcKind::Morton, &[]),
            sfc_partition(&pts, &Aabb::unit(), nparts, SfcKind::Hilbert, &[]),
            orb_partition(&pts, nparts, &[]),
            slab_partition(&pts, &Aabb::unit(), nparts, 0),
        ] {
            prop_assert_eq!(d.assignment.len(), pts.len());
            prop_assert!(d.assignment.iter().all(|&r| (r as usize) < nparts));
            prop_assert_eq!(d.counts().iter().sum::<usize>(), pts.len());
        }
    }

    #[test]
    fn adaptive_partitioners_balance_counts(pts in points(200..600), nparts in 2usize..9) {
        for d in [
            sfc_partition(&pts, &Aabb::unit(), nparts, SfcKind::Hilbert, &[]),
            orb_partition(&pts, nparts, &[]),
        ] {
            // Max deviation bounded: every rank within 2× of the mean and
            // non-empty for n ≫ p.
            prop_assert!(d.imbalance() < 2.0, "imbalance {}", d.imbalance());
            prop_assert!(d.counts().iter().all(|&c| c > 0));
        }
    }

    #[test]
    fn weighted_sfc_balances_weights(pts in points(200..500), skew in 1.0..50.0_f64) {
        let weights: Vec<f64> = pts.iter().map(|p| if p.x < 0.5 { skew } else { 1.0 }).collect();
        let d = sfc_partition(&pts, &Aabb::unit(), 4, SfcKind::Hilbert, &weights);
        prop_assert!(
            d.weighted_imbalance(&weights) < 2.0,
            "weighted imbalance {}",
            d.weighted_imbalance(&weights)
        );
    }

    #[test]
    fn halo_sets_are_symmetric_and_complete(pts in points(30..150), radius in 0.05..0.3_f64) {
        let d = orb_partition(&pts, 3, &[]);
        let per = Periodicity::open(Aabb::unit());
        let halos = halo_sets(&pts, &d, radius, &per);
        // Completeness: every cross-rank pair within radius is covered.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].dist_sq(pts[j]) <= radius * radius {
                    let (ri, rj) = (d.assignment[i], d.assignment[j]);
                    if ri != rj {
                        prop_assert!(halos.imports[ri as usize].contains(&(j as u32)));
                        prop_assert!(halos.imports[rj as usize].contains(&(i as u32)));
                    }
                }
            }
        }
        // No rank imports its own particles.
        for (r, imp) in halos.imports.iter().enumerate() {
            for &i in imp {
                prop_assert_ne!(d.assignment[i as usize], r as u32);
            }
        }
    }

    #[test]
    fn decomposition_is_deterministic(pts in points(50..200), nparts in 2usize..8) {
        let a = orb_partition(&pts, nparts, &[]);
        let b = orb_partition(&pts, nparts, &[]);
        prop_assert_eq!(a.assignment, b.assignment);
        let c = sfc_partition(&pts, &Aabb::unit(), nparts, SfcKind::Hilbert, &[]);
        let d = sfc_partition(&pts, &Aabb::unit(), nparts, SfcKind::Hilbert, &[]);
        prop_assert_eq!(c.assignment, d.assignment);
    }
}
