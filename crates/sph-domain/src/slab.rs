//! "Straightforward" slab decomposition — SPHYNX's strategy in Table 3
//! ("Domain Decomposition: Straightforward, Load Balancing: None
//! (static)").
//!
//! The particles are sorted along one axis and cut into `nparts` chunks of
//! equal *count* (quantile slabs). This is the classic quick-and-simple
//! decomposition: particle counts are balanced by construction, but the
//! scheme is blind to per-particle *cost* — gravity-heavy core particles
//! of the Evrard collapse cost several times an envelope particle, and a
//! cost-blind decomposition turns that variance straight into the load
//! imbalance the paper measures for SPHYNX (§5.2, Fig. 4). It also cuts
//! long thin slabs, whose surface (halo) is far larger than the compact
//! ORB/SFC subdomains.

use crate::Decomposition;
use sph_math::{Aabb, Vec3};

/// Equal-count slab partition along `axis` (0 = x, 1 = y, 2 = z).
///
/// `_bounds` is accepted for interface symmetry with the other
/// partitioners but not needed: the cuts are quantiles of the particle
/// coordinates themselves.
pub fn slab_partition(
    positions: &[Vec3],
    _bounds: &Aabb,
    nparts: usize,
    axis: usize,
) -> Decomposition {
    assert!(nparts > 0);
    assert!(axis < 3);
    assert!(!positions.is_empty());
    let mut order: Vec<u32> = (0..positions.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        positions[a as usize]
            .component(axis)
            .partial_cmp(&positions[b as usize].component(axis))
            // sph-lint: allow(panic-path) — positions are validated finite
            // upstream (cell_of_point / Octree::build reject NaN loudly),
            // so partial_cmp cannot return None here; switching to
            // total_cmp would reorder ±0.0 and change the decomposition.
            .unwrap()
            .then(a.cmp(&b)) // deterministic tie-break
    });
    let n = positions.len();
    let mut assignment = vec![0u32; n];
    for (k, &i) in order.iter().enumerate() {
        // Rank of the k-th particle in sorted order: proportional split.
        assignment[i as usize] = ((k * nparts) / n) as u32;
    }
    Decomposition::new(assignment, nparts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::SplitMix64;

    fn uniform(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    fn clustered(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let r = rng.next_f64().powi(4) * 0.5;
                let d = Vec3::new(
                    rng.uniform(-1.0, 1.0),
                    rng.uniform(-1.0, 1.0),
                    rng.uniform(-1.0, 1.0),
                );
                Vec3::splat(0.5) + d.normalized().unwrap_or(Vec3::X) * r
            })
            .collect()
    }

    #[test]
    fn counts_balanced_on_uniform_points() {
        let pts = uniform(8000, 1);
        let d = slab_partition(&pts, &Aabb::unit(), 8, 0);
        assert!(d.imbalance() < 1.01, "imbalance {}", d.imbalance());
    }

    #[test]
    fn counts_balanced_even_on_clustered_points() {
        // Quantile cuts balance counts regardless of the distribution.
        let pts = clustered(8000, 2);
        let d = slab_partition(&pts, &Aabb::unit(), 8, 0);
        assert!(d.imbalance() < 1.01, "imbalance {}", d.imbalance());
    }

    #[test]
    fn blind_to_per_particle_cost() {
        // The SPHYNX pathology: when work concentrates spatially, the
        // count-balanced slabs are badly *load* imbalanced — and the
        // scheme has no weights input to fix it.
        let pts = uniform(8000, 3);
        let d = slab_partition(&pts, &Aabb::unit(), 8, 0);
        let weights: Vec<f64> = pts
            .iter()
            .map(|p| if (*p - Vec3::splat(0.5)).norm() < 0.25 { 20.0 } else { 1.0 })
            .collect();
        assert!(
            d.weighted_imbalance(&weights) > 1.5,
            "weighted imbalance {}",
            d.weighted_imbalance(&weights)
        );
    }

    #[test]
    fn slabs_are_ordered_along_the_axis() {
        let pts = uniform(2000, 4);
        let d = slab_partition(&pts, &Aabb::unit(), 4, 2);
        // Any particle in a lower rank has z ≤ any particle in a higher
        // rank (up to quantile ties).
        let mut max_per_rank = [f64::NEG_INFINITY; 4];
        let mut min_per_rank = [f64::INFINITY; 4];
        for (i, &r) in d.assignment.iter().enumerate() {
            max_per_rank[r as usize] = max_per_rank[r as usize].max(pts[i].z);
            min_per_rank[r as usize] = min_per_rank[r as usize].min(pts[i].z);
        }
        for r in 0..3 {
            assert!(max_per_rank[r] <= min_per_rank[r + 1] + 1e-12);
        }
    }

    #[test]
    fn axis_selection() {
        let pts = vec![
            Vec3::new(0.1, 0.9, 0.5),
            Vec3::new(0.9, 0.1, 0.5),
            Vec3::new(0.2, 0.8, 0.5),
            Vec3::new(0.8, 0.2, 0.5),
        ];
        let dx = slab_partition(&pts, &Aabb::unit(), 2, 0);
        let dy = slab_partition(&pts, &Aabb::unit(), 2, 1);
        assert_eq!(dx.assignment, vec![0, 1, 0, 1]);
        assert_eq!(dy.assignment, vec![1, 0, 1, 0]);
    }

    #[test]
    fn deterministic_with_ties() {
        let mut pts = uniform(200, 5);
        for p in pts.iter_mut().take(100) {
            p.x = 0.5;
        }
        let a = slab_partition(&pts, &Aabb::unit(), 4, 0);
        let b = slab_partition(&pts, &Aabb::unit(), 4, 0);
        assert_eq!(a.assignment, b.assignment);
    }
}
