//! Orthogonal Recursive Bisection (SPH-flow's strategy, Table 3; mini-app
//! requirement, Table 4).
//!
//! The particle set is recursively split by a plane orthogonal to the
//! longest axis of its bounding box at the *weighted median*, producing
//! box-shaped subdomains with near-equal load. Non-power-of-two rank
//! counts are handled by splitting proportionally (⌈P/2⌉ : ⌊P/2⌋).

use crate::Decomposition;
use sph_math::{Aabb, KahanAccumulator, Vec3};

/// Partition into `nparts` subdomains by recursive bisection.
///
/// `weights` empty ⇒ unit weights. Deterministic.
pub fn orb_partition(positions: &[Vec3], nparts: usize, weights: &[f64]) -> Decomposition {
    assert!(nparts > 0);
    assert!(!positions.is_empty());
    assert!(weights.is_empty() || weights.len() == positions.len());
    let mut assignment = vec![0u32; positions.len()];
    let all: Vec<u32> = (0..positions.len() as u32).collect();
    split(positions, weights, all, 0, nparts, &mut assignment);
    Decomposition::new(assignment, nparts)
}

fn weight_of(weights: &[f64], i: u32) -> f64 {
    if weights.is_empty() {
        1.0
    } else {
        weights[i as usize]
    }
}

/// Recursively assign `ids` to ranks `[first_rank, first_rank + nparts)`.
fn split(
    positions: &[Vec3],
    weights: &[f64],
    mut ids: Vec<u32>,
    first_rank: u32,
    nparts: usize,
    assignment: &mut [u32],
) {
    if nparts == 1 {
        for i in ids {
            assignment[i as usize] = first_rank;
        }
        return;
    }
    // Longest axis of the current subdomain. An empty subdomain (more
    // ranks than particles) has nothing to assign.
    let Some(bb) = Aabb::from_points(ids.iter().map(|&i| &positions[i as usize])) else {
        return;
    };
    let e = bb.extent();
    let axis = if e.x >= e.y && e.x >= e.z {
        0
    } else if e.y >= e.z {
        1
    } else {
        2
    };
    // Sort along the axis, then cut at the weighted split fraction.
    ids.sort_unstable_by(|&a, &b| {
        positions[a as usize]
            .component(axis)
            .partial_cmp(&positions[b as usize].component(axis))
            // sph-lint: allow(panic-path) — positions are validated finite
            // upstream (cell_of_point / Octree::build reject NaN loudly),
            // so partial_cmp cannot return None here; switching to
            // total_cmp would reorder ±0.0 and change the decomposition.
            .unwrap()
            .then(a.cmp(&b)) // total order for determinism with ties
    });
    let left_parts = nparts.div_ceil(2);
    let right_parts = nparts - left_parts;
    // Compensated sums: the cut index is a threshold crossing, so it must
    // not drift with summation noise as the subdomain grows.
    let mut total_acc = KahanAccumulator::new();
    for &i in ids.iter() {
        total_acc.add(weight_of(weights, i));
    }
    let total = total_acc.total();
    let target_left = total * left_parts as f64 / nparts as f64;

    let mut acc = KahanAccumulator::new();
    let mut cut = ids.len(); // fallback: everything left
    for (k, &i) in ids.iter().enumerate() {
        acc.add(weight_of(weights, i));
        if acc.total() >= target_left {
            cut = k + 1;
            break;
        }
    }
    // Guarantee both sides non-empty when both need particles.
    cut = cut.clamp(1, ids.len().saturating_sub(1).max(1));
    let right = ids.split_off(cut.min(ids.len()));
    split(positions, weights, ids, first_rank, left_parts, assignment);
    if right_parts > 0 {
        // Degenerate case: no particles left for the right side — assign
        // nothing (those ranks stay empty) rather than panicking.
        if !right.is_empty() {
            split(
                positions,
                weights,
                right,
                first_rank + left_parts as u32,
                right_parts,
                assignment,
            );
        }
    }
}

/// Bounding boxes of each rank's particles (used by halo identification
/// and by the metrics).
pub fn rank_boxes(positions: &[Vec3], decomp: &Decomposition) -> Vec<Option<Aabb>> {
    let mut boxes: Vec<Option<Aabb>> = vec![None; decomp.nparts];
    for (i, &r) in decomp.assignment.iter().enumerate() {
        let p = positions[i];
        boxes[r as usize] = Some(match boxes[r as usize] {
            None => Aabb::new(p, p),
            Some(b) => b.union(&Aabb::new(p, p)),
        });
    }
    boxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::SplitMix64;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    #[test]
    fn power_of_two_balances() {
        let pts = random_points(8192, 1);
        let d = orb_partition(&pts, 8, &[]);
        assert!(d.imbalance() < 1.01, "imbalance {}", d.imbalance());
        assert!(d.counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn non_power_of_two_balances() {
        let pts = random_points(9000, 2);
        for p in [3usize, 5, 6, 7, 12] {
            let d = orb_partition(&pts, p, &[]);
            assert!(d.imbalance() < 1.05, "p={p}: imbalance {}", d.imbalance());
        }
    }

    #[test]
    fn subdomains_are_axis_aligned_disjoint_boxes() {
        // ORB's defining property: rank regions can be separated by planes;
        // a cheap necessary condition is that the rank bounding boxes have
        // small pairwise volume overlap relative to their own volume.
        let pts = random_points(4000, 3);
        let d = orb_partition(&pts, 8, &[]);
        let boxes: Vec<Aabb> = rank_boxes(&pts, &d).into_iter().flatten().collect();
        assert_eq!(boxes.len(), 8);
        let mut overlapping_pairs = 0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                let (a, b) = (&boxes[i], &boxes[j]);
                if a.intersects(b) {
                    // Allow surface contact; flag only interior overlap of
                    // meaningful volume.
                    let lo = a.lo.max(b.lo);
                    let hi = a.hi.min(b.hi);
                    if hi.x > lo.x && hi.y > lo.y && hi.z > lo.z {
                        let inter = Aabb::new(lo, hi).volume();
                        if inter > 0.02 * a.volume().min(b.volume()) {
                            overlapping_pairs += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(overlapping_pairs, 0, "ORB subdomains overlap in volume");
    }

    #[test]
    fn weighted_split_balances_load() {
        let pts = random_points(4000, 4);
        let weights: Vec<f64> = pts.iter().map(|p| if p.z > 0.7 { 20.0 } else { 1.0 }).collect();
        let d = orb_partition(&pts, 8, &weights);
        assert!(
            d.weighted_imbalance(&weights) < 1.25,
            "weighted imbalance {}",
            d.weighted_imbalance(&weights)
        );
    }

    #[test]
    fn single_part_trivial() {
        let pts = random_points(50, 5);
        let d = orb_partition(&pts, 1, &[]);
        assert!(d.assignment.iter().all(|&r| r == 0));
    }

    #[test]
    fn deterministic_with_duplicate_coordinates() {
        // Ties along the split axis must break deterministically.
        let mut pts = random_points(100, 6);
        for p in pts.iter_mut().take(50) {
            p.x = 0.5; // many identical x
        }
        let a = orb_partition(&pts, 4, &[]);
        let b = orb_partition(&pts, 4, &[]);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn splits_longest_axis_first() {
        // A slab-shaped domain (long in y): the first cut must be in y,
        // giving rank boxes that tile y rather than x.
        let mut rng = SplitMix64::new(7);
        let pts: Vec<Vec3> = (0..2000)
            .map(|_| Vec3::new(rng.next_f64() * 0.1, rng.next_f64() * 10.0, rng.next_f64() * 0.1))
            .collect();
        let d = orb_partition(&pts, 2, &[]);
        let boxes: Vec<Aabb> = rank_boxes(&pts, &d).into_iter().flatten().collect();
        // The two boxes must separate along y.
        let sep_y = boxes[0].hi.y <= boxes[1].lo.y + 1e-9 || boxes[1].hi.y <= boxes[0].lo.y + 1e-9;
        assert!(sep_y, "expected a y split: {boxes:?}");
    }
}
