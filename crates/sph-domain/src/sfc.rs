//! Space-filling-curve partitioning (ChaNGa's strategy, Table 3; mini-app
//! requirement, Table 4).
//!
//! Particles are sorted along the curve and the sorted order is cut into
//! `nparts` contiguous chunks of (approximately) equal total *weight*.
//! Weights default to 1 (equal particle counts) but the dynamic load
//! balancer in `sph-cluster` re-partitions with measured per-particle
//! costs, which is exactly how SFC-based codes rebalance.

use crate::hilbert;
use crate::Decomposition;
use sph_math::{kahan_sum, Aabb, KahanAccumulator, Vec3};
use sph_tree::morton;

/// Which curve orders the particles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfcKind {
    /// Z-order (Morton) — cheap, some locality jumps.
    Morton,
    /// Hilbert — strictly face-adjacent, best locality.
    Hilbert,
}

/// Partition by space-filling curve into `nparts` weighted-balanced chunks.
///
/// `weights` may be empty (⇒ unit weights). Deterministic for fixed input.
pub fn sfc_partition(
    positions: &[Vec3],
    bounds: &Aabb,
    nparts: usize,
    kind: SfcKind,
    weights: &[f64],
) -> Decomposition {
    assert!(nparts > 0);
    assert!(!positions.is_empty());
    assert!(weights.is_empty() || weights.len() == positions.len());
    let cube = bounds.bounding_cube();
    let mut keyed: Vec<(u64, u32)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let k = match kind {
                SfcKind::Morton => morton::encode_point(p, &cube),
                SfcKind::Hilbert => hilbert::encode_point(p, &cube),
            };
            (k, i as u32)
        })
        .collect();
    keyed.sort_unstable();

    let total_weight: f64 =
        if weights.is_empty() { positions.len() as f64 } else { kahan_sum(weights) };
    let target = total_weight / nparts as f64;

    let mut assignment = vec![0u32; positions.len()];
    let mut rank = 0u32;
    // Compensated running weight: the cut positions depend on the partial
    // sums, so they must not drift with summation noise as n grows.
    let mut acc = KahanAccumulator::new();
    for &(_, i) in &keyed {
        let w = if weights.is_empty() { 1.0 } else { weights[i as usize] };
        // Close the chunk when its weight reaches the target, but never
        // run out of ranks for the remaining particles.
        if acc.total() + 0.5 * w > target && (rank as usize) < nparts - 1 {
            rank += 1;
            acc = KahanAccumulator::new();
        }
        assignment[i as usize] = rank;
        acc.add(w);
    }
    Decomposition::new(assignment, nparts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::SplitMix64;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    #[test]
    fn balanced_counts_unweighted() {
        for kind in [SfcKind::Morton, SfcKind::Hilbert] {
            let pts = random_points(10_000, 1);
            let d = sfc_partition(&pts, &Aabb::unit(), 16, kind, &[]);
            assert!(d.imbalance() < 1.01, "{kind:?}: imbalance {}", d.imbalance());
            // Everyone assigned a valid rank.
            assert!(d.assignment.iter().all(|&r| r < 16));
            assert!(d.counts().iter().all(|&c| c > 0));
        }
    }

    #[test]
    fn weighted_partition_balances_weight_not_count() {
        let pts = random_points(4000, 2);
        // Left half of the box is 10× more expensive.
        let weights: Vec<f64> = pts.iter().map(|p| if p.x < 0.5 { 10.0 } else { 1.0 }).collect();
        let d = sfc_partition(&pts, &Aabb::unit(), 8, SfcKind::Hilbert, &weights);
        let wi = d.weighted_imbalance(&weights);
        assert!(wi < 1.2, "weighted imbalance {wi}");
        // Count imbalance should now be far from 1 (cheap ranks hold many).
        assert!(d.imbalance() > 1.3, "count imbalance {}", d.imbalance());
    }

    #[test]
    fn single_rank_owns_everything() {
        let pts = random_points(100, 3);
        let d = sfc_partition(&pts, &Aabb::unit(), 1, SfcKind::Morton, &[]);
        assert!(d.assignment.iter().all(|&r| r == 0));
    }

    #[test]
    fn chunks_are_contiguous_on_the_curve() {
        let pts = random_points(2000, 4);
        let cube = Aabb::unit();
        let d = sfc_partition(&pts, &cube, 7, SfcKind::Hilbert, &[]);
        // Walking particles in curve order, the rank must be non-decreasing.
        let mut keyed: Vec<(u64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| (hilbert::encode_point(p, &cube), i as u32))
            .collect();
        keyed.sort_unstable();
        let mut prev = 0;
        for &(_, i) in &keyed {
            let r = d.assignment[i as usize];
            assert!(r >= prev, "rank decreased along the curve");
            prev = r;
        }
    }

    #[test]
    fn hilbert_subdomains_are_more_compact_than_morton() {
        // Compactness proxy: mean subdomain bounding-box surface area.
        let pts = random_points(8000, 5);
        let nparts = 16;
        let mut areas = Vec::new();
        for kind in [SfcKind::Hilbert, SfcKind::Morton] {
            let d = sfc_partition(&pts, &Aabb::unit(), nparts, kind, &[]);
            let mut total = 0.0;
            for r in 0..nparts as u32 {
                let ids = d.indices_of(r);
                let sub: Vec<Vec3> = ids.iter().map(|&i| pts[i as usize]).collect();
                let bb = Aabb::from_points(sub.iter()).unwrap();
                total += bb.surface_area();
            }
            areas.push(total / nparts as f64);
        }
        assert!(areas[0] < areas[1], "hilbert {} should beat morton {}", areas[0], areas[1]);
    }

    #[test]
    fn deterministic() {
        let pts = random_points(500, 6);
        let a = sfc_partition(&pts, &Aabb::unit(), 4, SfcKind::Hilbert, &[]);
        let b = sfc_partition(&pts, &Aabb::unit(), 4, SfcKind::Hilbert, &[]);
        assert_eq!(a.assignment, b.assignment);
    }
}
