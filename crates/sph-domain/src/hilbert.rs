//! 3-D Hilbert curve keys (Skilling 2004 transpose algorithm).
//!
//! The Hilbert curve is the higher-quality of the two space-filling curves
//! Table 4 lists for the mini-app: unlike Morton order it has **no jumps**
//! — consecutive keys always address face-adjacent cells — which yields
//! more compact subdomains and therefore smaller halos. The tests verify
//! exactly that adjacency property and the locality advantage over Morton.

use sph_math::{Aabb, Vec3};
use sph_tree::morton;

/// Bits per axis used for Hilbert keys (matches the Morton resolution).
pub const BITS_PER_AXIS: u32 = morton::BITS_PER_AXIS;

/// Convert axis coordinates to the Hilbert "transpose" form, in place
/// (Skilling, AIP Conf. Proc. 707, 2004 — `AxestoTranspose`).
fn axes_to_transpose(x: &mut [u64; 3], bits: u32) {
    let m = 1u64 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..3 {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..3 {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    q = m;
    while q > 1 {
        if x[2] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Inverse of [`axes_to_transpose`] (Skilling `TransposetoAxes`).
fn transpose_to_axes(x: &mut [u64; 3], bits: u32) {
    let m = 1u64 << (bits - 1);
    // Gray decode.
    let mut t = x[2] >> 1;
    for i in (1..3).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u64;
    while q != m << 1 {
        let p = q - 1;
        for i in (0..3).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack a transpose form into a single key: bit `b` of axis `a` lands at
/// key bit `3(bits−1−b) + (2−a)` — i.e. the axes interleave most
/// significant first.
fn transpose_to_key(x: &[u64; 3], bits: u32) -> u64 {
    let mut key = 0u64;
    for b in (0..bits).rev() {
        for xi in x.iter() {
            key = (key << 1) | ((xi >> b) & 1);
        }
    }
    key
}

fn key_to_transpose(key: u64, bits: u32) -> [u64; 3] {
    let mut x = [0u64; 3];
    for b in 0..(3 * bits) {
        let bit = (key >> (3 * bits - 1 - b)) & 1;
        let axis = (b % 3) as usize;
        let pos = bits - 1 - b / 3;
        x[axis] |= bit << pos;
    }
    x
}

/// Hilbert key of integer cell coordinates (each < 2^bits).
pub fn encode_cell(ix: u64, iy: u64, iz: u64, bits: u32) -> u64 {
    debug_assert!(bits <= BITS_PER_AXIS);
    debug_assert!(ix < (1 << bits) && iy < (1 << bits) && iz < (1 << bits));
    let mut x = [ix, iy, iz];
    axes_to_transpose(&mut x, bits);
    transpose_to_key(&x, bits)
}

/// Inverse of [`encode_cell`].
pub fn decode_cell(key: u64, bits: u32) -> (u64, u64, u64) {
    let mut x = key_to_transpose(key, bits);
    transpose_to_axes(&mut x, bits);
    (x[0], x[1], x[2])
}

/// Hilbert key of a point in `bounds` at full 21-bit resolution.
pub fn encode_point(p: Vec3, bounds: &Aabb) -> u64 {
    let (ix, iy, iz) = morton::cell_of_point(p, bounds);
    encode_cell(ix, iy, iz, BITS_PER_AXIS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::SplitMix64;

    #[test]
    fn roundtrip_small_grid() {
        let bits = 4;
        for ix in 0..16u64 {
            for iy in 0..16u64 {
                for iz in 0..16u64 {
                    let k = encode_cell(ix, iy, iz, bits);
                    assert_eq!(decode_cell(k, bits), (ix, iy, iz));
                }
            }
        }
    }

    #[test]
    fn roundtrip_full_resolution_random() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let ix = rng.next_below(1 << BITS_PER_AXIS);
            let iy = rng.next_below(1 << BITS_PER_AXIS);
            let iz = rng.next_below(1 << BITS_PER_AXIS);
            let k = encode_cell(ix, iy, iz, BITS_PER_AXIS);
            assert_eq!(decode_cell(k, BITS_PER_AXIS), (ix, iy, iz));
        }
    }

    #[test]
    fn keys_are_a_bijection_on_small_grid() {
        let bits = 3;
        let mut seen = vec![false; 512];
        for ix in 0..8u64 {
            for iy in 0..8u64 {
                for iz in 0..8u64 {
                    let k = encode_cell(ix, iy, iz, bits) as usize;
                    assert!(k < 512);
                    assert!(!seen[k], "duplicate key {k}");
                    seen[k] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_keys_are_face_adjacent() {
        // The defining Hilbert property: walking the curve in key order
        // moves exactly one cell along exactly one axis each step.
        // (Morton order violates this massively — see the locality test.)
        let bits = 3;
        let mut cells = vec![(0u64, 0u64, 0u64); 512];
        for ix in 0..8u64 {
            for iy in 0..8u64 {
                for iz in 0..8u64 {
                    cells[encode_cell(ix, iy, iz, bits) as usize] = (ix, iy, iz);
                }
            }
        }
        for w in cells.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = (a.0 as i64 - b.0 as i64).abs()
                + (a.1 as i64 - b.1 as i64).abs()
                + (a.2 as i64 - b.2 as i64).abs();
            assert_eq!(d, 1, "jump between {a:?} and {b:?}");
        }
    }

    #[test]
    fn hilbert_beats_morton_on_segment_spread() {
        // Sum of Euclidean jumps along the curve: Hilbert = n−1 exactly
        // (each step length 1); Morton has long jumps.
        let bits = 3;
        let n = 512usize;
        let mut hilbert_cells = vec![(0i64, 0i64, 0i64); n];
        let mut morton_keys = Vec::with_capacity(n);
        for ix in 0..8u64 {
            for iy in 0..8u64 {
                for iz in 0..8u64 {
                    hilbert_cells[encode_cell(ix, iy, iz, bits) as usize] =
                        (ix as i64, iy as i64, iz as i64);
                    // Rescale to the top bits for the shared morton encoder.
                    let shift = morton::BITS_PER_AXIS - bits;
                    morton_keys.push((
                        morton::encode_cell(ix << shift, iy << shift, iz << shift),
                        (ix as i64, iy as i64, iz as i64),
                    ));
                }
            }
        }
        morton_keys.sort_unstable();
        let jump = |a: (i64, i64, i64), b: (i64, i64, i64)| {
            (((a.0 - b.0).pow(2) + (a.1 - b.1).pow(2) + (a.2 - b.2).pow(2)) as f64).sqrt()
        };
        let h_total: f64 = hilbert_cells.windows(2).map(|w| jump(w[0], w[1])).sum();
        let m_total: f64 = morton_keys.windows(2).map(|w| jump(w[0].1, w[1].1)).sum();
        assert!((h_total - (n - 1) as f64).abs() < 1e-9);
        assert!(m_total > 1.3 * h_total, "morton {m_total} vs hilbert {h_total}");
    }

    #[test]
    fn curve_starts_at_origin() {
        assert_eq!(encode_cell(0, 0, 0, 5), 0);
    }

    #[test]
    fn point_encoding_orders_spatially_close_points_together() {
        let b = Aabb::unit();
        let near1 = encode_point(Vec3::new(0.1, 0.1, 0.1), &b);
        let near2 = encode_point(Vec3::new(0.1001, 0.1, 0.1), &b);
        let far = encode_point(Vec3::new(0.9, 0.9, 0.9), &b);
        let d_near = near1.abs_diff(near2);
        let d_far = near1.abs_diff(far);
        assert!(d_near < d_far);
    }
}
