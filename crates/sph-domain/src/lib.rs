//! Domain decomposition substrate.
//!
//! Table 3 of the paper records three different strategies in the parent
//! codes — SPHYNX "straightforward" (slab-like static split), ChaNGa
//! "space filling curve", SPH-flow "orthogonal recursive bisection" — and
//! Table 4 prescribes that the mini-app support **ORB and SFCs**. This
//! crate implements all of them over the shared [`Decomposition`]
//! abstraction, plus the halo (ghost-particle) identification the cluster
//! simulator uses to account communication volume, and the quality metrics
//! (imbalance, surface/volume, halo fraction) that explain the
//! load-balance differences measured in §5.2.
//!
//! # The rank / halo / migration protocol
//!
//! The distributed step driver (`sph_exa::DistributedSimulation`) runs
//! Algorithm 1 per rank over these primitives. One macro-step is a
//! sequence of bulk-synchronous supersteps:
//!
//! 1. **Halo negotiation** — each rank reports the maximum smoothing
//!    length of its *owned* particles; [`HaloRadiusPolicy::negotiate`]
//!    reduces them to one conservative import radius (support radius ×
//!    global max h × iteration headroom). [`halo_sets`] then yields, per
//!    rank, the remote particles within that radius of its bounding box.
//! 2. **Collective h-iteration + density** — every rank adapts h and sums
//!    density for its owned particles over (owned ∪ ghost) only. The
//!    largest search radius actually requested is reduced globally
//!    (`StepStats::max_search_radius`); if it exceeds the negotiated
//!    radius, the exchange is *renegotiated* at the observed radius and
//!    the phase re-runs — coverage is verified, never assumed.
//! 3. **Ghost-field refresh between kernels** — volume elements, IAD
//!    matrices, EOS outputs and velocity gradients each read neighbour
//!    fields computed by the owners in the previous superstep, so ghost
//!    copies are refreshed (the exchange a real MPI code would post)
//!    before each kernel.
//! 4. **Forces** — the symmetric pair closure needs gather lists of the
//!    ghosts too; each rank recovers them with one frozen search at the
//!    ghost's exchanged h (valid because the h-iteration's exit invariant
//!    ties the final h to its exact ball query).
//! 5. **dt reduction, kick/drift** — the per-particle bounds reduce by an
//!    exact `min` (order-independent), then each rank integrates its
//!    owned particles.
//! 6. **Migration** — particles that drifted out of their rank's box
//!    (captured by [`orb::rank_boxes`] at decomposition time) are
//!    reassigned to the nearest box, with ties to the lowest rank;
//!    every `rebalance_every` steps the decomposition is rebuilt from
//!    scratch with the measured per-particle work as weights.
//!
//! # Determinism contract
//!
//! Ownership never affects values: SPH sums iterate neighbours in
//! **ascending global-index order** (the density pass sorts its gather
//! lists; the symmetric force closure is sorted by construction), and
//! each rank's local particle set is kept sorted by global id so local
//! order ≡ global order. Every per-particle quantity therefore rounds
//! identically no matter which rank computes it or how many threads it
//! uses — full-state fingerprints are bit-identical across rank counts
//! *and* `SPH_THREADS`, which is what lets one `sph-ft` conservation
//! checksum govern a whole distributed run.

pub mod exchange;
pub mod halo;
pub mod hilbert;
pub mod metrics;
pub mod orb;
pub mod sfc;
pub mod slab;

pub use exchange::{Exchange, ExchangeError, ExchangeErrorKind, ExchangePath, InProcessExchange};
pub use halo::{halo_sets, HaloExchange, HaloRadiusPolicy};
pub use metrics::DecompositionMetrics;
pub use orb::orb_partition;
pub use sfc::{sfc_partition, SfcKind};
pub use slab::slab_partition;

/// An assignment of every particle to one of `nparts` ranks.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// `assignment[i]` = owning rank of particle `i`.
    pub assignment: Vec<u32>,
    /// Number of ranks.
    pub nparts: usize,
}

impl Decomposition {
    pub fn new(assignment: Vec<u32>, nparts: usize) -> Self {
        assert!(nparts > 0);
        debug_assert!(assignment.iter().all(|&r| (r as usize) < nparts));
        Decomposition { assignment, nparts }
    }

    /// Particle count per rank.
    pub fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.nparts];
        for &r in &self.assignment {
            c[r as usize] += 1;
        }
        c
    }

    /// Particle indices owned by `rank`.
    pub fn indices_of(&self, rank: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == rank)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// `max/mean` particle-count imbalance (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let counts = self.counts();
        let max = counts.iter().max().copied().unwrap_or(0) as f64;
        let mean = self.assignment.len() as f64 / self.nparts as f64;
        if mean > 0.0 {
            max / mean
        } else {
            f64::NAN
        }
    }

    /// Weighted imbalance: `max(W_r)/mean(W_r)` for per-particle weights.
    pub fn weighted_imbalance(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.assignment.len());
        let mut loads = vec![0.0; self.nparts];
        for (i, &r) in self.assignment.iter().enumerate() {
            loads[r as usize] += weights[i];
        }
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let mean = loads.iter().sum::<f64>() / self.nparts as f64;
        if mean > 0.0 {
            max / mean
        } else {
            f64::NAN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_indices() {
        let d = Decomposition::new(vec![0, 1, 0, 2, 1, 0], 3);
        assert_eq!(d.counts(), vec![3, 2, 1]);
        assert_eq!(d.indices_of(0), vec![0, 2, 5]);
        assert_eq!(d.indices_of(2), vec![3]);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        let d = Decomposition::new(vec![0, 0, 1, 1], 2);
        assert!((d.imbalance() - 1.0).abs() < 1e-15);
        let d = Decomposition::new(vec![0, 0, 0, 1], 2);
        assert!((d.imbalance() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn weighted_imbalance_sees_heavy_particles() {
        let d = Decomposition::new(vec![0, 0, 1, 1], 2);
        // Counts balanced but weights not.
        let w = vec![10.0, 10.0, 1.0, 1.0];
        assert!((d.weighted_imbalance(&w) - 20.0 / 11.0).abs() < 1e-12);
    }
}
