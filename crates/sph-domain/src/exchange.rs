//! The rank-to-rank exchange seam.
//!
//! The distributed step driver performs exactly five kinds of
//! communication per macro-step (see the crate docs): halo-radius
//! negotiation, ghost-field refresh, particle migration, the global dt
//! reduction, and checkpoint blob movement. Each of those goes through
//! the [`Exchange`] trait so the *protocol* is fixed while the *carrier*
//! is pluggable: [`InProcessExchange`] (this module) is the determinism
//! reference, a fault-injecting wrapper lives in `sph-ft`, and a real
//! shared-memory or socket transport can slot in later without touching
//! the driver.
//!
//! # Contract
//!
//! * **Reductions are exact.** `reduce_max`/`reduce_min` must return the
//!   IEEE fold of the per-rank contributions — `max`/`min` are
//!   order-independent, so any tree shape a real transport uses yields
//!   the same bits as the sequential fold.
//! * **Deliveries are bit-preserving.** A successful `deliver_f64` /
//!   `deliver_bytes` leaves the payload exactly as handed in (the
//!   in-process carrier moves nothing; a real one must round-trip the
//!   bytes unchanged). The driver reads the payload back *after* the
//!   call, so a transport that detects corruption must report it as an
//!   error rather than deliver altered bits.
//! * **Transient errors are retry-safe.** On [`ExchangeErrorKind::Transient`]
//!   the payload is unmodified and the same call may be issued again.
//!   Non-transient errors (payload corruption, rank failure) are not
//!   retryable; the driver escalates them to its recovery layer.

use std::error::Error;
use std::fmt;

/// The five communication paths of the distributed step protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExchangePath {
    /// Global max-h reduction that sizes the halo import radius.
    HaloNegotiation,
    /// Owner → ghost field refresh between kernel passes.
    GhostRefresh,
    /// Particles drifting across rank boundaries.
    Migration,
    /// Exact global `min` over per-rank dt bounds.
    DtReduce,
    /// Per-rank snapshot + manifest bytes moving to stable storage.
    CheckpointBlob,
}

impl ExchangePath {
    /// Every path, in protocol order.
    pub const ALL: [ExchangePath; 5] = [
        ExchangePath::HaloNegotiation,
        ExchangePath::GhostRefresh,
        ExchangePath::Migration,
        ExchangePath::DtReduce,
        ExchangePath::CheckpointBlob,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ExchangePath::HaloNegotiation => "halo_negotiation",
            ExchangePath::GhostRefresh => "ghost_refresh",
            ExchangePath::Migration => "migration",
            ExchangePath::DtReduce => "dt_reduce",
            ExchangePath::CheckpointBlob => "checkpoint_blob",
        }
    }
}

impl fmt::Display for ExchangePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What went wrong on an exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeErrorKind {
    /// Recoverable carrier hiccup (dropped message, timeout). The payload
    /// is untouched; the caller may retry the identical call.
    Transient { detail: String },
    /// The payload arrived but its integrity check failed. Not retryable:
    /// the correct bits are gone and only a rollback can restore them.
    PayloadCorruption { detail: String },
    /// A peer rank is unreachable. Not retryable until the rank is
    /// recovered (see [`Exchange::recover_rank`]).
    RankFailed { rank: u32 },
}

/// A failed exchange, tagged with the protocol path it happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeError {
    pub path: ExchangePath,
    pub kind: ExchangeErrorKind,
}

impl ExchangeError {
    pub fn transient(path: ExchangePath, detail: impl Into<String>) -> Self {
        ExchangeError { path, kind: ExchangeErrorKind::Transient { detail: detail.into() } }
    }

    pub fn corruption(path: ExchangePath, detail: impl Into<String>) -> Self {
        ExchangeError { path, kind: ExchangeErrorKind::PayloadCorruption { detail: detail.into() } }
    }

    pub fn rank_failed(path: ExchangePath, rank: u32) -> Self {
        ExchangeError { path, kind: ExchangeErrorKind::RankFailed { rank } }
    }

    /// Whether retrying the identical call can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self.kind, ExchangeErrorKind::Transient { .. })
    }
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExchangeErrorKind::Transient { detail } => {
                write!(f, "transient fault on {}: {detail}", self.path)
            }
            ExchangeErrorKind::PayloadCorruption { detail } => {
                write!(f, "payload corruption on {}: {detail}", self.path)
            }
            ExchangeErrorKind::RankFailed { rank } => {
                write!(f, "rank {rank} failed during {}", self.path)
            }
        }
    }
}

impl Error for ExchangeError {}

/// The carrier behind the distributed driver's five exchange paths.
///
/// Implementations must uphold the module-level contract: exact
/// reductions, bit-preserving deliveries, retry-safe transients.
pub trait Exchange {
    /// Carrier name (for logs and benchmark reports).
    fn name(&self) -> &'static str;

    /// Called once at the top of every macro-step with the step index
    /// about to be computed. Fault-injecting or epoch-tagged transports
    /// key their behaviour off this; the in-process carrier ignores it.
    fn begin_step(&mut self, _step: u64) {}

    /// Exact global `max` over one contribution per rank.
    fn reduce_max(&mut self, path: ExchangePath, per_rank: &[f64]) -> Result<f64, ExchangeError>;

    /// Exact global `min` over one contribution per rank.
    fn reduce_min(&mut self, path: ExchangePath, per_rank: &[f64]) -> Result<f64, ExchangeError>;

    /// Move an f64 payload to `to_rank`. On `Ok(())` the payload holds
    /// exactly the delivered bits (unchanged for the in-process carrier).
    fn deliver_f64(
        &mut self,
        path: ExchangePath,
        to_rank: u32,
        payload: &mut Vec<f64>,
    ) -> Result<(), ExchangeError>;

    /// Move a byte payload to `to_rank` (checkpoint snapshots/manifests).
    fn deliver_bytes(
        &mut self,
        path: ExchangePath,
        to_rank: u32,
        payload: &mut Vec<u8>,
    ) -> Result<(), ExchangeError>;

    /// Attempt to bring a failed rank back (respawn / reconnect). The
    /// in-process carrier has no failures, so the default succeeds.
    fn recover_rank(&mut self, _rank: u32) -> Result<(), ExchangeError> {
        Ok(())
    }
}

/// The determinism reference: all "ranks" live in one address space, so
/// reductions are sequential IEEE folds and deliveries are no-ops over
/// the caller's own buffer. Every other carrier is validated against the
/// bits this one produces.
#[derive(Debug, Default, Clone, Copy)]
pub struct InProcessExchange;

impl InProcessExchange {
    pub fn new() -> Self {
        InProcessExchange
    }
}

impl Exchange for InProcessExchange {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn reduce_max(&mut self, _path: ExchangePath, per_rank: &[f64]) -> Result<f64, ExchangeError> {
        Ok(per_rank.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    fn reduce_min(&mut self, _path: ExchangePath, per_rank: &[f64]) -> Result<f64, ExchangeError> {
        Ok(per_rank.iter().copied().fold(f64::INFINITY, f64::min))
    }

    fn deliver_f64(
        &mut self,
        _path: ExchangePath,
        _to_rank: u32,
        _payload: &mut Vec<f64>,
    ) -> Result<(), ExchangeError> {
        Ok(())
    }

    fn deliver_bytes(
        &mut self,
        _path: ExchangePath,
        _to_rank: u32,
        _payload: &mut Vec<u8>,
    ) -> Result<(), ExchangeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_are_exact_folds() {
        let mut ex = InProcessExchange::new();
        let vals = [3.5, -1.0, 7.25, 0.0];
        assert_eq!(ex.reduce_max(ExchangePath::HaloNegotiation, &vals).unwrap(), 7.25);
        assert_eq!(ex.reduce_min(ExchangePath::DtReduce, &vals).unwrap(), -1.0);
        // Empty contributions reduce to the fold identities.
        assert_eq!(ex.reduce_max(ExchangePath::HaloNegotiation, &[]).unwrap(), f64::NEG_INFINITY);
        assert_eq!(ex.reduce_min(ExchangePath::DtReduce, &[]).unwrap(), f64::INFINITY);
    }

    #[test]
    fn reductions_ignore_order() {
        let mut ex = InProcessExchange::new();
        let a = [0.1, 0.7, 0.3, 0.5];
        let b = [0.5, 0.3, 0.7, 0.1];
        assert_eq!(
            ex.reduce_max(ExchangePath::HaloNegotiation, &a).unwrap().to_bits(),
            ex.reduce_max(ExchangePath::HaloNegotiation, &b).unwrap().to_bits()
        );
    }

    #[test]
    fn deliveries_preserve_payload_bits() {
        let mut ex = InProcessExchange::new();
        let original = vec![1.0, f64::MIN_POSITIVE, -0.0, 1e308];
        let mut payload = original.clone();
        ex.deliver_f64(ExchangePath::GhostRefresh, 2, &mut payload).unwrap();
        assert!(payload.iter().zip(&original).all(|(a, b)| a.to_bits() == b.to_bits()));

        let bytes_in = vec![0u8, 255, 127, 1];
        let mut bytes = bytes_in.clone();
        ex.deliver_bytes(ExchangePath::CheckpointBlob, 0, &mut bytes).unwrap();
        assert_eq!(bytes, bytes_in);
    }

    #[test]
    fn error_taxonomy_retryability() {
        assert!(ExchangeError::transient(ExchangePath::Migration, "drop").is_retryable());
        assert!(!ExchangeError::corruption(ExchangePath::GhostRefresh, "bit").is_retryable());
        assert!(!ExchangeError::rank_failed(ExchangePath::DtReduce, 3).is_retryable());
    }

    #[test]
    fn display_names_the_path() {
        let e = ExchangeError::rank_failed(ExchangePath::HaloNegotiation, 1);
        assert_eq!(e.to_string(), "rank 1 failed during halo_negotiation");
        for p in ExchangePath::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
