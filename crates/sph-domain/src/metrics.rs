//! Decomposition quality metrics.
//!
//! §5.2 attributes the measured efficiency loss to load imbalance; these
//! metrics quantify a decomposition before running it, and the ablation
//! bench (`sph-bench`) uses them to compare ORB vs SFC vs static slabs on
//! both test problems — the comparison that motivates Table 4's choice to
//! support ORB *and* SFCs.

use crate::halo::HaloExchange;
use crate::Decomposition;

/// Summary quality numbers for one decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompositionMetrics {
    /// `max/mean` particle-count imbalance (1.0 = perfect).
    pub count_imbalance: f64,
    /// `max/mean` weighted-load imbalance (== count imbalance for unit
    /// weights).
    pub load_imbalance: f64,
    /// Imported (ghost) particles as a fraction of owned particles.
    pub halo_fraction: f64,
    /// Mean distinct communication partners per rank.
    pub mean_partners: f64,
    /// Largest single import set (straggler volume).
    pub max_import: usize,
}

impl DecompositionMetrics {
    pub fn compute(decomp: &Decomposition, weights: &[f64], halos: &HaloExchange) -> Self {
        let n = decomp.assignment.len();
        let count_imbalance = decomp.imbalance();
        let load_imbalance =
            if weights.is_empty() { count_imbalance } else { decomp.weighted_imbalance(weights) };
        let halo_fraction = halos.total_volume() as f64 / n as f64;
        let nparts = decomp.nparts;
        let mut partners = 0usize;
        for a in 0..nparts {
            for b in 0..nparts {
                if a != b && halos.pair_volume[a * nparts + b] > 0 {
                    partners += 1;
                }
            }
        }
        DecompositionMetrics {
            count_imbalance,
            load_imbalance,
            halo_fraction,
            mean_partners: partners as f64 / nparts as f64,
            max_import: halos.max_import(),
        }
    }
}

impl std::fmt::Display for DecompositionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "imbalance(count) {:.3}  imbalance(load) {:.3}  halo {:.1}%  partners {:.1}  max-import {}",
            self.count_imbalance,
            self.load_imbalance,
            self.halo_fraction * 100.0,
            self.mean_partners,
            self.max_import
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::halo_sets;
    use crate::orb::orb_partition;
    use crate::sfc::{sfc_partition, SfcKind};
    use crate::slab::slab_partition;
    use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};

    fn clustered_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let r = rng.next_f64().powi(3) * 0.5;
                let d = Vec3::new(
                    rng.uniform(-1.0, 1.0),
                    rng.uniform(-1.0, 1.0),
                    rng.uniform(-1.0, 1.0),
                );
                Vec3::splat(0.5) + d.normalized().unwrap_or(Vec3::X) * r
            })
            .collect()
    }

    fn metrics_for(pts: &[Vec3], d: &Decomposition) -> DecompositionMetrics {
        let per = Periodicity::open(Aabb::unit());
        let halos = halo_sets(pts, d, 0.08, &per);
        DecompositionMetrics::compute(d, &[], &halos)
    }

    #[test]
    fn weighted_schemes_beat_cost_blind_slabs_under_skewed_load() {
        // Quantile slabs balance particle *counts* on any distribution,
        // but they cannot see per-particle cost. With a hot core (the
        // Evrard gravity pattern), the weight-aware decompositions keep
        // the load balanced while slabs cannot — the Table 3 contrast
        // between SPHYNX ("None (static)") and the balancing codes.
        let pts = clustered_points(6000, 1);
        let weights: Vec<f64> = pts
            .iter()
            .map(|p| if (*p - sph_math::Vec3::splat(0.5)).norm() < 0.1 { 40.0 } else { 1.0 })
            .collect();
        let per = Periodicity::open(Aabb::unit());
        let eval = |d: &Decomposition| {
            let halos = halo_sets(&pts, d, 0.08, &per);
            DecompositionMetrics::compute(d, &weights, &halos)
        };
        let slab = eval(&slab_partition(&pts, &Aabb::unit(), 8, 0));
        let orb = eval(&orb_partition(&pts, 8, &weights));
        let sfc = eval(&sfc_partition(&pts, &Aabb::unit(), 8, SfcKind::Hilbert, &weights));
        assert!(slab.count_imbalance < 1.05, "quantile slabs balance counts");
        assert!(
            slab.load_imbalance > 1.5,
            "cost-blind slabs should be load-imbalanced: {}",
            slab.load_imbalance
        );
        assert!(orb.load_imbalance < 1.3, "ORB load imbalance {}", orb.load_imbalance);
        assert!(sfc.load_imbalance < 1.3, "SFC load imbalance {}", sfc.load_imbalance);
    }

    #[test]
    fn display_renders() {
        let pts = clustered_points(1000, 2);
        let m = metrics_for(&pts, &orb_partition(&pts, 4, &[]));
        let s = format!("{m}");
        assert!(s.contains("imbalance"));
        assert!(s.contains("halo"));
    }

    #[test]
    fn load_imbalance_defaults_to_count() {
        let pts = clustered_points(500, 3);
        let m = metrics_for(&pts, &orb_partition(&pts, 4, &[]));
        assert_eq!(m.count_imbalance, m.load_imbalance);
    }
}
