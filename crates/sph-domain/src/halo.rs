//! Halo (ghost-particle) identification.
//!
//! A rank computing SPH sums for its own particles needs every remote
//! particle within the interaction radius of its subdomain. The halo sets
//! determine both correctness (the cluster simulator feeds them to the
//! per-rank SPH evaluation) and cost (their sizes are the per-step
//! communication volume the network model charges — the term that erodes
//! strong scaling in Figs. 1–3 as subdomains shrink).

use crate::orb::rank_boxes;
use crate::Decomposition;
use rayon::prelude::*;
use sph_math::{Periodicity, Vec3, REDUCE_CHUNK};

/// Conservative halo-radius negotiation.
///
/// A rank's halo import is sufficient iff it contains every remote
/// particle any of its neighbour searches can reach. Two things set that
/// reach: the largest smoothing length *anywhere* (a remote particle's
/// support `2h_j` must find owned particles for the symmetric force
/// pairs), and the headroom the smoothing-length iteration needs, since it
/// may *grow* `h` — and therefore the search radius — before converging.
///
/// The policy captures both: `radius = support · max_h · g^steps`, where
/// `g` bounds the per-iteration growth (e.g.
/// `sph_core::density::h_growth_bound`) and `steps` is how many growth
/// iterations to budget for. Drivers and tests share this one
/// implementation instead of hand-rolled over-estimates; a driver that
/// additionally *verifies* coverage (via the measured
/// `StepStats::max_search_radius`) can start from a small `steps` and
/// renegotiate on a miss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloRadiusPolicy {
    /// Kernel support radius in units of `h` (2.0 for the standard
    /// compact kernels).
    pub support_radius: f64,
    /// Upper bound on the factor one smoothing-length iteration can grow
    /// `h` by (1.0 = frozen h).
    pub growth_per_iteration: f64,
    /// Number of growth iterations budgeted for.
    pub growth_steps: u32,
}

impl HaloRadiusPolicy {
    /// Policy for an evaluation at frozen smoothing lengths (no
    /// iteration headroom): `radius = support · max_h` exactly.
    pub fn frozen(support_radius: f64) -> Self {
        HaloRadiusPolicy { support_radius, growth_per_iteration: 1.0, growth_steps: 0 }
    }

    /// Policy with `steps` iterations of headroom at growth bound `g`.
    pub fn with_headroom(support_radius: f64, g: f64, steps: u32) -> Self {
        assert!(g >= 1.0, "growth bound {g} < 1 cannot bound a growing iteration");
        HaloRadiusPolicy { support_radius, growth_per_iteration: g, growth_steps: steps }
    }

    /// The multiplicative iteration headroom `g^steps`.
    pub fn headroom(&self) -> f64 {
        self.growth_per_iteration.powi(self.growth_steps as i32)
    }

    /// Halo radius for a given maximum smoothing length.
    pub fn radius_for(&self, max_h: f64) -> f64 {
        assert!(max_h > 0.0 && max_h.is_finite(), "bad max_h {max_h}");
        assert!(self.support_radius > 0.0);
        self.support_radius * max_h * self.headroom()
    }

    /// The collective step of the negotiation: reduce the per-rank maxima
    /// of the *owned* smoothing lengths (ranks that own nothing report
    /// 0.0) and apply the policy to the global maximum. Every rank must
    /// use the globally negotiated radius — a rank's ghosts are bounded by
    /// *other* ranks' supports, not its own.
    pub fn negotiate(&self, per_rank_max_h: &[f64]) -> f64 {
        let max_h = per_rank_max_h.iter().cloned().fold(0.0, f64::max);
        self.radius_for(max_h)
    }
}

/// The halo exchange pattern for one decomposition.
#[derive(Debug, Clone)]
pub struct HaloExchange {
    /// `imports[r]` = indices of remote particles rank `r` must receive.
    pub imports: Vec<Vec<u32>>,
    /// `pair_volume[(a, b)]` = particles sent from rank `a` to rank `b`,
    /// flattened as `a * nparts + b`.
    pub pair_volume: Vec<u32>,
    /// Number of ranks.
    pub nparts: usize,
}

impl HaloExchange {
    /// Total imported particles across ranks (total message payload).
    pub fn total_volume(&self) -> usize {
        self.imports.iter().map(|v| v.len()).sum::<usize>()
    }

    /// Number of neighbouring-rank pairs that actually exchange data.
    pub fn message_count(&self) -> usize {
        self.pair_volume.iter().filter(|&&v| v > 0).count()
    }

    /// Largest per-rank import set (the communication straggler).
    pub fn max_import(&self) -> usize {
        self.imports.iter().map(|v| v.len()).max().unwrap_or(0)
    }

    /// Particles sent from `a` to `b`.
    pub fn volume_between(&self, a: u32, b: u32) -> u32 {
        self.pair_volume[a as usize * self.nparts + b as usize]
    }
}

/// Compute halo sets: for each rank, the remote particles within `radius`
/// of its subdomain bounding box (minimum-image aware on periodic axes).
///
/// `radius` is conservatively the largest interaction radius in the system
/// (2·max h); using the box–point distance keeps this O(N·P) instead of
/// O(N²).
pub fn halo_sets(
    positions: &[Vec3],
    decomp: &Decomposition,
    radius: f64,
    periodicity: &Periodicity,
) -> HaloExchange {
    assert!(radius > 0.0);
    let nparts = decomp.nparts;
    let boxes = rank_boxes(positions, decomp);
    let r2 = radius * radius;

    // For each particle, the ranks whose box it is close to (excluding its
    // owner). Chunked map over fixed REDUCE_CHUNK boundaries, then an
    // ordered reduce inverting the chunks into per-rank import lists — so
    // the import ordering is identical for any thread count.
    let chunks: Vec<Vec<Vec<u32>>> = positions
        .par_chunks(REDUCE_CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            let base = c * REDUCE_CHUNK;
            chunk
                .iter()
                .enumerate()
                .map(|(off, &p)| {
                    let owner = decomp.assignment[base + off];
                    let mut out = Vec::new();
                    // Periodic images of the particle that could be near a box.
                    let images = periodicity.ghost_offsets(p, radius);
                    for (r, bx) in boxes.iter().enumerate() {
                        if r as u32 == owner {
                            continue;
                        }
                        let Some(bx) = bx else { continue };
                        let near = images.iter().any(|&off| bx.dist_sq_to_point(p + off) <= r2);
                        if near {
                            out.push(r as u32);
                        }
                    }
                    out
                })
                .collect()
        })
        .collect();

    let mut imports: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    let mut pair_volume = vec![0u32; nparts * nparts];
    for (i, ranks) in chunks.iter().flatten().enumerate() {
        let owner = decomp.assignment[i] as usize;
        for &r in ranks {
            imports[r as usize].push(i as u32);
            pair_volume[owner * nparts + r as usize] += 1;
        }
    }
    HaloExchange { imports, pair_volume, nparts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orb::orb_partition;
    use crate::sfc::{sfc_partition, SfcKind};
    use sph_math::{Aabb, SplitMix64};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    #[test]
    fn halo_covers_all_cross_rank_neighbors() {
        // Correctness: every pair (i, j) within `radius` that crosses ranks
        // must appear in the import set of each other's owner.
        let pts = random_points(1500, 1);
        let d = orb_partition(&pts, 4, &[]);
        let radius = 0.12;
        let per = Periodicity::open(Aabb::unit());
        let halos = halo_sets(&pts, &d, radius, &per);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if per.distance_sq(pts[i], pts[j]) <= radius * radius {
                    let (ri, rj) = (d.assignment[i], d.assignment[j]);
                    if ri != rj {
                        assert!(
                            halos.imports[ri as usize].contains(&(j as u32)),
                            "rank {ri} missing remote neighbour {j}"
                        );
                        assert!(
                            halos.imports[rj as usize].contains(&(i as u32)),
                            "rank {rj} missing remote neighbour {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn halo_covers_periodic_wraps() {
        let pts = random_points(800, 2);
        let per = Periodicity::periodic_z(Aabb::unit());
        // Slab decomposition along z puts the wrap between first and last rank.
        let d = crate::slab::slab_partition(&pts, &Aabb::unit(), 4, 2);
        let radius = 0.1;
        let halos = halo_sets(&pts, &d, radius, &per);
        let mut checked = 0;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if per.distance_sq(pts[i], pts[j]) <= radius * radius {
                    let (ri, rj) = (d.assignment[i], d.assignment[j]);
                    if ri != rj {
                        assert!(halos.imports[ri as usize].contains(&(j as u32)));
                        assert!(halos.imports[rj as usize].contains(&(i as u32)));
                        if (ri == 0 && rj == 3) || (ri == 3 && rj == 0) {
                            checked += 1; // pairs across the wrap
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "test never exercised the periodic wrap");
    }

    #[test]
    fn no_self_imports() {
        let pts = random_points(500, 3);
        let d = orb_partition(&pts, 4, &[]);
        let halos = halo_sets(&pts, &d, 0.1, &Periodicity::open(Aabb::unit()));
        for (r, imp) in halos.imports.iter().enumerate() {
            for &i in imp {
                assert_ne!(d.assignment[i as usize], r as u32, "rank {r} imports its own particle");
            }
        }
    }

    #[test]
    fn halo_shrinks_with_radius() {
        let pts = random_points(2000, 4);
        let d = orb_partition(&pts, 8, &[]);
        let per = Periodicity::open(Aabb::unit());
        let small = halo_sets(&pts, &d, 0.05, &per);
        let large = halo_sets(&pts, &d, 0.2, &per);
        assert!(small.total_volume() < large.total_volume());
    }

    #[test]
    fn more_ranks_more_relative_communication() {
        // The strong-scaling killer: at fixed N, the halo fraction grows
        // with rank count (surface-to-volume of the shrinking subdomains).
        let pts = random_points(4000, 5);
        let per = Periodicity::open(Aabb::unit());
        let radius = 0.08;
        let frac = |p: usize| {
            let d = orb_partition(&pts, p, &[]);
            let h = halo_sets(&pts, &d, radius, &per);
            h.total_volume() as f64 / pts.len() as f64
        };
        let f2 = frac(2);
        let f16 = frac(16);
        assert!(f16 > 1.5 * f2, "halo fraction: 2 ranks {f2}, 16 ranks {f16}");
    }

    #[test]
    fn frozen_policy_is_exactly_the_support_radius() {
        let p = HaloRadiusPolicy::frozen(2.0);
        assert_eq!(p.headroom(), 1.0);
        assert_eq!(p.radius_for(0.25), 0.5);
    }

    #[test]
    fn headroom_compounds_per_iteration() {
        let p = HaloRadiusPolicy::with_headroom(2.0, 1.5, 3);
        assert!((p.headroom() - 3.375).abs() < 1e-15);
        assert!((p.radius_for(0.1) - 2.0 * 0.1 * 3.375).abs() < 1e-15);
        // More budgeted iterations can only widen the halo.
        let wider = HaloRadiusPolicy::with_headroom(2.0, 1.5, 4);
        assert!(wider.radius_for(0.1) > p.radius_for(0.1));
    }

    #[test]
    fn negotiation_takes_the_global_max_h() {
        // Rank 2 owns nothing (reports 0); the winner is rank 1's 0.3 —
        // every rank must budget for the *largest* remote support.
        let p = HaloRadiusPolicy::frozen(2.0);
        let r = p.negotiate(&[0.1, 0.3, 0.0, 0.2]);
        assert_eq!(r, 0.6);
    }

    #[test]
    #[should_panic]
    fn negotiation_rejects_degenerate_h() {
        // All ranks empty (or h wiped to zero) — a halo radius of zero
        // would silently produce empty imports and wrong physics.
        HaloRadiusPolicy::frozen(2.0).negotiate(&[0.0, 0.0]);
    }

    #[test]
    fn pair_volume_bookkeeping_consistent() {
        let pts = random_points(1000, 6);
        let d = sfc_partition(&pts, &Aabb::unit(), 5, SfcKind::Hilbert, &[]);
        let halos = halo_sets(&pts, &d, 0.1, &Periodicity::open(Aabb::unit()));
        // Σ over sender→receiver pair volumes equals total imports.
        let pair_total: u32 = halos.pair_volume.iter().sum();
        assert_eq!(pair_total as usize, halos.total_volume());
        assert!(halos.message_count() > 0);
        assert!(halos.max_import() > 0);
        // volume_between agrees with the matrix.
        let v01 = halos.volume_between(0, 1);
        assert_eq!(v01, halos.pair_volume[1]);
    }
}
