//! Parent-code emulations: SPHYNX, ChaNGa and SPH-flow as configurations
//! of the mini-app.
//!
//! The paper's co-design method (§4) is to express each parent code as a
//! point in the mini-app's feature space — Tables 1 and 3 are exactly
//! those coordinates. [`CodeSetup`] bundles one code's scientific
//! configuration (kernel, gradients, volume elements, time-stepping,
//! gravity), its computer-science configuration (domain decomposition,
//! load balancing), and its calibrated cost model for the cluster
//! simulator. [`features`] holds the Tables 1–4 data and renderers.

pub mod features;
pub mod setups;

pub use features::{render_table, FeatureTable};
pub use setups::{changa, miniapp, sphflow, sphynx, CodeSetup, Scenario};
