//! The three parent-code configurations (Tables 1 & 3) plus the mini-app
//! reference configuration (Tables 2 & 4).
//!
//! Cost-model constants are *calibrated* against the 12-core anchor
//! points of Figs. 1–3 (see EXPERIMENTS.md for the derivation); the
//! scaling *shape* comes from the measured decomposition, halo and
//! imbalance structure, not from these constants.

use sph_cluster::{CostModel, LoadBalancing, Partitioner};
use sph_core::config::{GradientScheme, SphConfig, TimeStepping, ViscosityConfig, VolumeElements};
use sph_domain::SfcKind;
use sph_kernels::KernelKind;
use sph_tree::{GravityConfig, MultipoleOrder};

/// Which of the two paper test cases a cost model is calibrated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    SquarePatch,
    Evrard,
}

/// One parent code (or the mini-app) as a full configuration.
#[derive(Debug, Clone, Copy)]
pub struct CodeSetup {
    pub name: &'static str,
    /// Table 1 row: the scientific configuration.
    pub sph: SphConfig,
    /// Self-gravity (None for SPH-flow — Table 1: "Self-Gravity: No").
    pub gravity: Option<GravityConfig>,
    /// Table 3 row: domain decomposition.
    pub partitioner: Partitioner,
    /// Table 3 row: load balancing.
    pub balancing: LoadBalancing,
    /// The SPHYNX 1.3.1 pathology from Fig. 4: tree build runs serially.
    pub serial_tree: bool,
    /// Calibrated per-scenario cost models.
    square_cost: CostModel,
    evrard_cost: CostModel,
}

impl CodeSetup {
    /// Cost model calibrated for the given test case.
    pub fn cost_for(&self, scenario: Scenario) -> CostModel {
        match scenario {
            Scenario::SquarePatch => self.square_cost,
            Scenario::Evrard => self.evrard_cost,
        }
    }

    /// Does this code run the Evrard test? (Table 5: SPH-flow does not —
    /// it has no self-gravity.)
    pub fn supports_evrard(&self) -> bool {
        self.gravity.is_some()
    }
}

/// SPHYNX 1.3.1 (Cabezón et al. 2017): sinc kernels, IAD gradients,
/// generalized volume elements, global time-steps, slab ("straightforward")
/// decomposition with **no** load balancing, quadrupole (4-pole) gravity,
/// and — per the Fig. 4 finding — a serial tree build.
pub fn sphynx() -> CodeSetup {
    CodeSetup {
        name: "SPHYNX",
        sph: SphConfig {
            kernel: KernelKind::Sinc(5),
            gradients: GradientScheme::Iad,
            volume_elements: VolumeElements::Generalized { p: 0.7 },
            time_stepping: TimeStepping::Global,
            target_neighbors: 100,
            neighbor_tolerance: 0.05,
            max_h_iterations: 10,
            gamma: 5.0 / 3.0,
            viscosity: ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: true },
            cfl: 0.3,
            grad_h: true,
        },
        gravity: Some(GravityConfig {
            g: 1.0,
            theta: 0.5,
            softening: 1e-3,
            order: MultipoleOrder::Quadrupole,
        }),
        partitioner: Partitioner::Slab { axis: 0 },
        balancing: LoadBalancing::Static,
        serial_tree: true,
        square_cost: CostModel {
            sph_flops_per_interaction: 8_500.0,
            gravity_flops_per_interaction: 250.0,
            tree_flops_per_particle: 80.0,
            serial_flops_per_particle: 4_500.0,
            bytes_per_halo_particle: 136.0,
            runtime_flops_per_rank: 2e5,
        },
        evrard_cost: CostModel {
            sph_flops_per_interaction: 8_500.0,
            gravity_flops_per_interaction: 250.0,
            tree_flops_per_particle: 80.0,
            serial_flops_per_particle: 5_500.0,
            bytes_per_halo_particle: 136.0,
            runtime_flops_per_rank: 2e5,
        },
    }
}

/// ChaNGa 3.3 (Menon et al. 2015): Wendland/M4 kernels with analytic
/// derivatives, standard volume elements, **individual** (block)
/// time-steps, space-filling-curve decomposition with Charm++ dynamic
/// load balancing, hexadecapole (16-pole) gravity — modelled as an
/// octupole expansion (one order below) with the remaining 16-pole *cost*
/// folded into the gravity constant (DESIGN.md substitution table).
pub fn changa() -> CodeSetup {
    CodeSetup {
        name: "ChaNGa",
        sph: SphConfig {
            kernel: KernelKind::WendlandC2,
            gradients: GradientScheme::KernelDerivative,
            volume_elements: VolumeElements::Standard,
            time_stepping: TimeStepping::Individual { max_rungs: 6 },
            target_neighbors: 64,
            neighbor_tolerance: 0.1,
            max_h_iterations: 8,
            gamma: 5.0 / 3.0,
            viscosity: ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: true },
            cfl: 0.3,
            grad_h: true,
        },
        gravity: Some(GravityConfig {
            g: 1.0,
            theta: 0.7,
            softening: 1e-3,
            order: MultipoleOrder::Octupole,
        }),
        partitioner: Partitioner::Sfc(SfcKind::Hilbert),
        balancing: LoadBalancing::Dynamic,
        serial_tree: false,
        // The square patch runs through ChaNGa's unoptimised CFD path —
        // the paper measures it ~19× slower than SPHYNX at 12 cores, with
        // a heavy rank-count-resistant floor (93 s at 1 536 cores).
        square_cost: CostModel {
            sph_flops_per_interaction: 150_000.0,
            gravity_flops_per_interaction: 700.0,
            tree_flops_per_particle: 150.0,
            serial_flops_per_particle: 350_000.0,
            bytes_per_halo_particle: 120.0,
            runtime_flops_per_rank: 5e5,
        },
        // The Evrard collapse is ChaNGa's home turf: tuned gravity and
        // multi-time-stepping make it competitive (30.4 s → 5.7 s).
        evrard_cost: CostModel {
            sph_flops_per_interaction: 7_000.0,
            gravity_flops_per_interaction: 700.0,
            tree_flops_per_particle: 150.0,
            serial_flops_per_particle: 20_000.0,
            bytes_per_halo_particle: 120.0,
            runtime_flops_per_rank: 5e5,
        },
    }
}

/// SPH-flow 17.6 (Oger et al. 2016): Wendland kernels, analytic
/// derivatives, standard volume elements, adaptive global time-steps,
/// ORB decomposition with Local-Inner-Outer balancing (modelled as the
/// dynamic re-decomposition policy — DESIGN.md), no self-gravity.
pub fn sphflow() -> CodeSetup {
    CodeSetup {
        name: "SPH-flow",
        sph: SphConfig {
            kernel: KernelKind::WendlandC2,
            gradients: GradientScheme::KernelDerivative,
            volume_elements: VolumeElements::Standard,
            time_stepping: TimeStepping::Adaptive { growth_limit: 1.1 },
            target_neighbors: 100,
            neighbor_tolerance: 0.05,
            max_h_iterations: 10,
            gamma: 7.0,
            viscosity: ViscosityConfig { alpha: 0.5, beta: 1.0, eta2: 0.01, balsara: false },
            cfl: 0.25,
            grad_h: false,
        },
        gravity: None,
        partitioner: Partitioner::Orb,
        balancing: LoadBalancing::Dynamic,
        serial_tree: false,
        square_cost: CostModel {
            sph_flops_per_interaction: 6_800.0,
            gravity_flops_per_interaction: 0.0,
            tree_flops_per_particle: 60.0,
            serial_flops_per_particle: 3_500.0,
            bytes_per_halo_particle: 112.0,
            runtime_flops_per_rank: 1.5e5,
        },
        evrard_cost: CostModel {
            // Never used (no gravity), kept equal to the square model.
            sph_flops_per_interaction: 6_800.0,
            gravity_flops_per_interaction: 0.0,
            tree_flops_per_particle: 60.0,
            serial_flops_per_particle: 3_500.0,
            bytes_per_halo_particle: 112.0,
            runtime_flops_per_rank: 1.5e5,
        },
    }
}

/// The SPH-EXA mini-app target configuration (Tables 2 & 4): best-of
/// features — sinc/IAD accuracy, Hilbert SFC decomposition, dynamic load
/// balancing, parallel tree, lean cost model.
pub fn miniapp() -> CodeSetup {
    CodeSetup {
        name: "SPH-EXA mini-app",
        sph: SphConfig {
            kernel: KernelKind::Sinc(5),
            gradients: GradientScheme::Iad,
            volume_elements: VolumeElements::Generalized { p: 0.7 },
            time_stepping: TimeStepping::Individual { max_rungs: 8 },
            target_neighbors: 100,
            neighbor_tolerance: 0.05,
            max_h_iterations: 10,
            gamma: 5.0 / 3.0,
            viscosity: ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: true },
            cfl: 0.3,
            grad_h: true,
        },
        gravity: Some(GravityConfig {
            g: 1.0,
            theta: 0.5,
            softening: 1e-3,
            order: MultipoleOrder::Quadrupole,
        }),
        partitioner: Partitioner::Sfc(SfcKind::Hilbert),
        balancing: LoadBalancing::Dynamic,
        serial_tree: false,
        square_cost: CostModel {
            sph_flops_per_interaction: 2_500.0,
            gravity_flops_per_interaction: 200.0,
            tree_flops_per_particle: 40.0,
            serial_flops_per_particle: 500.0,
            bytes_per_halo_particle: 112.0,
            runtime_flops_per_rank: 1e5,
        },
        evrard_cost: CostModel {
            sph_flops_per_interaction: 2_500.0,
            gravity_flops_per_interaction: 200.0,
            tree_flops_per_particle: 40.0,
            serial_flops_per_particle: 500.0,
            bytes_per_halo_particle: 112.0,
            runtime_flops_per_rank: 1e5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_setups_validate() {
        for s in [sphynx(), changa(), sphflow(), miniapp()] {
            s.sph.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn table1_rows_match_the_paper() {
        // SPHYNX: sinc, IAD, generalized VE, global stepping, 4-pole.
        let s = sphynx();
        assert!(matches!(s.sph.kernel, KernelKind::Sinc(_)));
        assert_eq!(s.sph.gradients, GradientScheme::Iad);
        assert!(matches!(s.sph.volume_elements, VolumeElements::Generalized { .. }));
        assert!(matches!(s.sph.time_stepping, TimeStepping::Global));
        assert_eq!(s.gravity.unwrap().order, MultipoleOrder::Quadrupole);

        // ChaNGa: Wendland, derivatives, standard VE, individual stepping.
        let c = changa();
        assert_eq!(c.sph.kernel, KernelKind::WendlandC2);
        assert_eq!(c.sph.gradients, GradientScheme::KernelDerivative);
        assert!(matches!(c.sph.time_stepping, TimeStepping::Individual { .. }));
        // ChaNGa carries the highest-order expansion of the three codes.
        assert_eq!(c.gravity.unwrap().order, MultipoleOrder::Octupole);
        assert!(c.gravity.unwrap().order.degree() > sphynx().gravity.unwrap().order.degree());

        // SPH-flow: Wendland, adaptive stepping, no gravity.
        let f = sphflow();
        assert_eq!(f.sph.kernel, KernelKind::WendlandC2);
        assert!(matches!(f.sph.time_stepping, TimeStepping::Adaptive { .. }));
        assert!(f.gravity.is_none());
        assert!(!f.supports_evrard());
    }

    #[test]
    fn table3_rows_match_the_paper() {
        assert!(matches!(sphynx().partitioner, Partitioner::Slab { .. }));
        assert_eq!(sphynx().balancing, LoadBalancing::Static);
        assert!(matches!(changa().partitioner, Partitioner::Sfc(_)));
        assert_eq!(changa().balancing, LoadBalancing::Dynamic);
        assert_eq!(sphflow().partitioner, Partitioner::Orb);
    }

    #[test]
    fn sphynx_alone_has_the_serial_tree_pathology() {
        assert!(sphynx().serial_tree);
        assert!(!changa().serial_tree);
        assert!(!sphflow().serial_tree);
        assert!(!miniapp().serial_tree);
    }

    #[test]
    fn cost_anchors_order_correctly() {
        // Paper, 12-core anchors (square): ChaNGa ≫ SPHYNX > SPH-flow.
        let sq = Scenario::SquarePatch;
        assert!(
            changa().cost_for(sq).sph_flops_per_interaction
                > 10.0 * sphynx().cost_for(sq).sph_flops_per_interaction
        );
        assert!(
            sphynx().cost_for(sq).sph_flops_per_interaction
                > sphflow().cost_for(sq).sph_flops_per_interaction
        );
        // ChaNGa's Evrard path is dramatically cheaper than its square path.
        assert!(
            changa().cost_for(Scenario::Evrard).sph_flops_per_interaction
                < changa().cost_for(sq).sph_flops_per_interaction / 10.0
        );
        // The mini-app is the leanest of all.
        assert!(
            miniapp().cost_for(sq).serial_flops_per_particle
                < sphflow().cost_for(sq).serial_flops_per_particle
        );
    }
}
