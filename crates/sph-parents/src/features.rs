//! The feature matrices of the paper — Tables 1–4 — as data plus text
//! renderers. `sph-bench --bin tables` regenerates each table from here,
//! and the tests cross-check the rows against the actual [`CodeSetup`]
//! configurations so the printed tables can never drift from the code.

/// A rendered feature table: header row + body rows.
#[derive(Debug, Clone)]
pub struct FeatureTable {
    pub title: &'static str,
    pub columns: Vec<&'static str>,
    pub rows: Vec<Vec<&'static str>>,
}

/// Table 1: "Differences and similarities between SPH-flow, SPHYNX, and
/// ChaNGa" (scientific features).
pub fn table1() -> FeatureTable {
    FeatureTable {
        title: "Table 1: Differences and similarities between SPH-flow, SPHYNX, and ChaNGa",
        columns: vec![
            "SPH Code",
            "Version",
            "Kernel",
            "Gradients Calculation",
            "Volume Elements",
            "Mass of Particles",
            "Time-Stepping",
            "Neighbour Discovery",
            "Self-Gravity",
        ],
        rows: vec![
            vec![
                "SPHYNX",
                "1.3.1",
                "Sinc",
                "IAD",
                "Generalized",
                "Equal or Variable",
                "Global",
                "Tree Walk",
                "Multipoles (4-pole)",
            ],
            vec![
                "ChaNGa",
                "3.3",
                "Wendland, M4 spline",
                "Kernel derivatives",
                "Standard",
                "Equal or Variable",
                "Individual",
                "Tree Walk",
                "Multipoles (16-pole)",
            ],
            vec![
                "SPH-flow",
                "17.6",
                "Wendland",
                "Kernel derivatives",
                "Standard",
                "Equal or Adaptive",
                "Global",
                "Tree Walk",
                "No",
            ],
        ],
    }
}

/// Table 2: scientific characteristics of the future SPH-EXA mini-app.
pub fn table2() -> FeatureTable {
    FeatureTable {
        title: "Table 2: Outlook on the scientific characteristics of the future SPH-EXA mini-app",
        columns: vec![
            "",
            "Kernel",
            "Gradients Calculation",
            "Volume Elements",
            "Mass of Particles",
            "Time-Stepping",
            "Neighbour Discovery",
            "Self-Gravity",
        ],
        rows: vec![vec![
            "mini-app",
            "Sinc, M4 spline, Wendland",
            "IAD, Kernel derivatives",
            "Generalized, Standard",
            "Equal, Variable, and Adaptive",
            "Global, Individual",
            "Tree Walk",
            "Multipoles (16-pole)",
        ]],
    }
}

/// Table 3: computer-science aspects of the parent codes.
pub fn table3() -> FeatureTable {
    FeatureTable {
        title: "Table 3: Different and similar computer science-related aspects between SPH-flow, SPHYNX and ChaNGa",
        columns: vec![
            "SPH Code",
            "Domain Decomposition",
            "Load Balancing",
            "Checkpoint-Restart",
            "Precision",
            "Language",
            "Parallelization",
            "#LOC",
        ],
        rows: vec![
            vec![
                "SPHYNX",
                "Straightforward",
                "None (static)",
                "Yes",
                "64-bit",
                "Fortran 90",
                "MPI+OpenMP",
                "25,000",
            ],
            vec![
                "ChaNGa",
                "Space Filling Curve",
                "Dynamic",
                "Yes",
                "64-bit",
                "C++",
                "MPI+OpenMP+CUDA",
                "110,000",
            ],
            vec![
                "SPH-flow",
                "Orthogonal Recursive Bisection",
                "Local-Inner-Outer",
                "Yes",
                "64-bit",
                "Fortran 90",
                "MPI",
                "37,000",
            ],
        ],
    }
}

/// Table 4: computer-science features of the future SPH-EXA mini-app.
pub fn table4() -> FeatureTable {
    FeatureTable {
        title: "Table 4: Outlook on the computer science features of the future SPH-EXA mini-app",
        columns: vec![
            "",
            "Domain Decomposition",
            "Parallelization",
            "Load Balancing",
            "Checkpoint-Restart",
            "Error Detection",
            "Precision",
            "Language",
        ],
        rows: vec![vec![
            "mini-app",
            "Orthogonal Recursive Bisection, Space Filling Curves",
            "X+Y+Z; X={MPI} Y={OpenMP, HPX} Z={OpenACC, CUDA}",
            "DLB with self-scheduling per X, Y, Z level",
            "Optimal interval, Multilevel",
            "Silent data corruption detectors",
            "64-bit",
            "C++",
        ]],
    }
}

/// Render a table as aligned plain text.
pub fn render_table(t: &FeatureTable) -> String {
    let ncol = t.columns.len();
    let mut widths: Vec<usize> = t.columns.iter().map(|c| c.len()).collect();
    for row in &t.rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let mut out = format!("{}\n", t.title);
    let render_row = |cells: &[&str], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (k, &width) in widths.iter().enumerate().take(ncol) {
            let cell = cells.get(k).copied().unwrap_or("");
            line.push_str(&format!("{cell:width$} | "));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(&t.columns, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 3 * ncol + 1;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in &t.rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setups::{changa, sphflow, sphynx};
    use sph_cluster::{LoadBalancing, Partitioner};
    use sph_core::config::{GradientScheme, TimeStepping};

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(table1().rows.len(), 3);
        assert_eq!(table2().rows.len(), 1);
        assert_eq!(table3().rows.len(), 3);
        assert_eq!(table4().rows.len(), 1);
        for t in [table1(), table2(), table3(), table4()] {
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len(), "{}", t.title);
            }
        }
    }

    #[test]
    fn table1_is_consistent_with_the_setups() {
        // The printed table must agree with what the code actually runs.
        let t = table1();
        let sphynx_row = &t.rows[0];
        assert_eq!(sphynx_row[3], "IAD");
        assert_eq!(sphynx().sph.gradients, GradientScheme::Iad);
        let changa_row = &t.rows[1];
        assert_eq!(changa_row[6], "Individual");
        assert!(matches!(changa().sph.time_stepping, TimeStepping::Individual { .. }));
        let sphflow_row = &t.rows[2];
        assert_eq!(sphflow_row[8], "No");
        assert!(sphflow().gravity.is_none());
    }

    #[test]
    fn table3_is_consistent_with_the_setups() {
        let t = table3();
        assert_eq!(t.rows[0][2], "None (static)");
        assert_eq!(sphynx().balancing, LoadBalancing::Static);
        assert_eq!(t.rows[1][1], "Space Filling Curve");
        assert!(matches!(changa().partitioner, Partitioner::Sfc(_)));
        assert_eq!(t.rows[2][1], "Orthogonal Recursive Bisection");
        assert_eq!(sphflow().partitioner, Partitioner::Orb);
    }

    #[test]
    fn render_aligns_columns() {
        let s = render_table(&table1());
        let lines: Vec<&str> = s.lines().collect();
        // Title + header + rule + 3 rows.
        assert_eq!(lines.len(), 6);
        // All data lines share the pipe positions of the header.
        let pipe_positions = |l: &str| -> Vec<usize> {
            l.char_indices().filter(|(_, c)| *c == '|').map(|(i, _)| i).collect()
        };
        let header_pipes = pipe_positions(lines[1]);
        for l in &lines[3..] {
            assert_eq!(pipe_positions(l), header_pipes, "misaligned: {l}");
        }
    }

    #[test]
    fn tables_mention_all_three_codes() {
        let s = render_table(&table1());
        for code in ["SPHYNX", "ChaNGa", "SPH-flow"] {
            assert!(s.contains(code));
        }
    }
}
