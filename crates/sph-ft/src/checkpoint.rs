//! Checkpoint stores: where serialized snapshots live.
//!
//! The multilevel scheme of Table 4 needs multiple storage tiers with
//! different speeds and failure coverage; this module provides the common
//! store interface plus an in-memory tier (standing in for node-local
//! RAM/NVMe — fast, lost on node failure) and a disk tier (standing in
//! for the parallel file system — slow, survives everything).

use crate::codec::{decode, encode, CodecError};
use sph_core::particles::ParticleSystem;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::PathBuf;

/// A place checkpoints can be written to and restored from.
pub trait CheckpointStore {
    /// Persist a snapshot under `label`; returns the stored size in bytes.
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, String>;
    /// Restore the snapshot stored under `label`.
    fn restore(&self, label: &str) -> Result<ParticleSystem, String>;
    /// Labels currently stored, sorted.
    fn labels(&self) -> Vec<String>;
    /// Drop a snapshot (e.g. when a simulated node failure wipes the tier).
    fn invalidate(&mut self, label: &str);
    /// Drop everything (tier-wide loss).
    fn invalidate_all(&mut self);

    /// Persist an opaque byte blob under `label` — metadata that travels
    /// with snapshots but is not itself a [`ParticleSystem`] (e.g. the
    /// per-rank manifest of a distributed checkpoint). Blobs live in a
    /// separate namespace from snapshots and do not appear in
    /// [`CheckpointStore::labels`]. Stores may not support blobs; the
    /// default refuses.
    fn save_blob(&mut self, _label: &str, _bytes: &[u8]) -> Result<usize, String> {
        Err("this checkpoint store does not support raw blobs".to_string())
    }

    /// Restore a blob saved with [`CheckpointStore::save_blob`].
    fn restore_blob(&self, label: &str) -> Result<Vec<u8>, String> {
        Err(format!("no blob '{label}': this checkpoint store does not support raw blobs"))
    }
}

/// In-memory store: the "L1 node-local" tier.
#[derive(Debug, Default)]
pub struct MemoryStore {
    snapshots: BTreeMap<String, Vec<u8>>,
    raw_blobs: BTreeMap<String, Vec<u8>>,
}

impl MemoryStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemoryStore {
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, String> {
        let bytes = encode(sys);
        let size = bytes.len();
        self.snapshots.insert(label.to_string(), bytes);
        Ok(size)
    }

    fn restore(&self, label: &str) -> Result<ParticleSystem, String> {
        let bytes = self.snapshots.get(label).ok_or_else(|| format!("no checkpoint '{label}'"))?;
        decode(bytes).map_err(|e: CodecError| e.to_string())
    }

    fn labels(&self) -> Vec<String> {
        self.snapshots.keys().cloned().collect()
    }

    fn invalidate(&mut self, label: &str) {
        self.snapshots.remove(label);
        self.raw_blobs.remove(label);
    }

    fn invalidate_all(&mut self) {
        self.snapshots.clear();
        self.raw_blobs.clear();
    }

    fn save_blob(&mut self, label: &str, bytes: &[u8]) -> Result<usize, String> {
        self.raw_blobs.insert(label.to_string(), bytes.to_vec());
        Ok(bytes.len())
    }

    fn restore_blob(&self, label: &str) -> Result<Vec<u8>, String> {
        self.raw_blobs.get(label).cloned().ok_or_else(|| format!("no blob '{label}'"))
    }
}

/// On-disk store: the "L3 parallel file system" tier.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Store checkpoints under `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        Ok(DiskStore { dir })
    }

    fn path_of(&self, label: &str) -> PathBuf {
        // Sanitise: labels become file names.
        let safe: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}.sphcp"))
    }

    fn blob_path_of(&self, label: &str) -> PathBuf {
        self.path_of(label).with_extension("sphblob")
    }
}

impl CheckpointStore for DiskStore {
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, String> {
        let bytes = encode(sys);
        let path = self.path_of(label);
        let tmp = path.with_extension("tmp");
        // Write-then-rename: a crash mid-write never corrupts the previous
        // checkpoint — the property multilevel recovery depends on.
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| e.to_string())?;
            f.write_all(&bytes).map_err(|e| e.to_string())?;
            f.sync_all().map_err(|e| e.to_string())?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
        Ok(bytes.len())
    }

    fn restore(&self, label: &str) -> Result<ParticleSystem, String> {
        let mut bytes = Vec::new();
        std::fs::File::open(self.path_of(label))
            .map_err(|e| format!("no checkpoint '{label}': {e}"))?
            .read_to_end(&mut bytes)
            .map_err(|e| e.to_string())?;
        decode(&bytes).map_err(|e| e.to_string())
    }

    fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| {
                        let name = e.file_name().into_string().ok()?;
                        name.strip_suffix(".sphcp").map(str::to_string)
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }

    fn invalidate(&mut self, label: &str) {
        let _ = std::fs::remove_file(self.path_of(label));
        let _ = std::fs::remove_file(self.blob_path_of(label));
    }

    fn invalidate_all(&mut self) {
        for l in self.labels() {
            self.invalidate(&l);
        }
        // Blobs may exist without a same-named snapshot.
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for e in rd.filter_map(|e| e.ok()) {
                if e.file_name().to_string_lossy().ends_with(".sphblob") {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }

    fn save_blob(&mut self, label: &str, bytes: &[u8]) -> Result<usize, String> {
        let path = self.blob_path_of(label);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| e.to_string())?;
            f.write_all(bytes).map_err(|e| e.to_string())?;
            f.sync_all().map_err(|e| e.to_string())?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
        Ok(bytes.len())
    }

    fn restore_blob(&self, label: &str) -> Result<Vec<u8>, String> {
        let mut bytes = Vec::new();
        std::fs::File::open(self.blob_path_of(label))
            .map_err(|e| format!("no blob '{label}': {e}"))?
            .read_to_end(&mut bytes)
            .map_err(|e| e.to_string())?;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn sample(tag: f64) -> ParticleSystem {
        let mut sys = ParticleSystem::new(
            vec![Vec3::splat(0.25), Vec3::splat(0.75)],
            vec![Vec3::ZERO; 2],
            vec![1.0, 1.0],
            vec![tag, tag],
            0.1,
            Periodicity::open(Aabb::unit()),
        );
        sys.time = tag;
        sys
    }

    fn exercise_store(store: &mut dyn CheckpointStore) {
        assert!(store.labels().is_empty());
        let size = store.save("step-10", &sample(1.0)).unwrap();
        assert!(size > 0);
        store.save("step-20", &sample(2.0)).unwrap();
        assert_eq!(store.labels(), vec!["step-10".to_string(), "step-20".to_string()]);
        let back = store.restore("step-20").unwrap();
        assert_eq!(back.time, 2.0);
        let back = store.restore("step-10").unwrap();
        assert_eq!(back.time, 1.0);
        assert!(store.restore("missing").is_err());
        store.invalidate("step-10");
        assert!(store.restore("step-10").is_err());
        store.invalidate_all();
        assert!(store.labels().is_empty());
    }

    #[test]
    fn memory_store_contract() {
        exercise_store(&mut MemoryStore::new());
    }

    #[test]
    fn disk_store_contract() {
        let dir = std::env::temp_dir().join(format!("sphft-test-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.invalidate_all();
        exercise_store(&mut store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_overwrites_atomically() {
        let dir = std::env::temp_dir().join(format!("sphft-test2-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.save("ck", &sample(1.0)).unwrap();
        store.save("ck", &sample(2.0)).unwrap();
        assert_eq!(store.restore("ck").unwrap().time, 2.0);
        assert_eq!(store.labels().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_sanitises_labels() {
        let dir = std::env::temp_dir().join(format!("sphft-test3-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.save("weird/label name", &sample(1.0)).unwrap();
        assert_eq!(store.restore("weird/label name").unwrap().time, 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
