//! Checkpoint stores: where serialized snapshots live.
//!
//! The multilevel scheme of Table 4 needs multiple storage tiers with
//! different speeds and failure coverage; this module provides the common
//! store interface plus an in-memory tier (standing in for node-local
//! RAM/NVMe — fast, lost on node failure) and a disk tier (standing in
//! for the parallel file system — slow, survives everything).
//!
//! Snapshots carry the codec's own magic/version/checksum framing; raw
//! blobs are *sealed* on save with an FNV-1a trailer that [`CheckpointStore::restore_blob`]
//! verifies **before** handing bytes back — a corrupt manifest is
//! reported as [`FtError::BlobCorrupted`] instead of failing late inside
//! whatever deserializer consumes it.

use crate::codec::{decode, encode, fnv1a};
use crate::error::FtError;
use sph_core::particles::ParticleSystem;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::PathBuf;

/// Which of a store's two namespaces an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredKind {
    /// A [`ParticleSystem`] snapshot (codec-framed).
    Snapshot,
    /// An opaque sealed blob (manifests, metadata).
    Blob,
}

/// Seal raw bytes with an FNV-1a integrity trailer.
fn seal_blob(bytes: &[u8]) -> Vec<u8> {
    let mut sealed = Vec::with_capacity(bytes.len() + 8);
    sealed.extend_from_slice(bytes);
    sealed.extend_from_slice(&fnv1a(bytes).to_le_bytes());
    sealed
}

/// Verify and strip a seal written by [`seal_blob`].
fn unseal_blob(label: &str, sealed: &[u8]) -> Result<Vec<u8>, FtError> {
    if sealed.len() < 8 {
        return Err(FtError::BlobCorrupted {
            label: label.to_string(),
            detail: format!("{} bytes is too short to carry a checksum trailer", sealed.len()),
        });
    }
    let (body, trailer) = sealed.split_at(sealed.len() - 8);
    let stored = u64::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
        trailer[7],
    ]);
    let computed = fnv1a(body);
    if stored != computed {
        return Err(FtError::BlobCorrupted {
            label: label.to_string(),
            detail: format!("checksum trailer {stored:#018x} != computed {computed:#018x}"),
        });
    }
    Ok(body.to_vec())
}

/// A place checkpoints can be written to and restored from.
pub trait CheckpointStore {
    /// Persist a snapshot under `label`; returns the stored size in bytes.
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, FtError>;
    /// Restore the snapshot stored under `label`.
    fn restore(&self, label: &str) -> Result<ParticleSystem, FtError>;
    /// Labels currently stored, sorted.
    fn labels(&self) -> Vec<String>;
    /// Drop a snapshot (e.g. when a simulated node failure wipes the tier).
    fn invalidate(&mut self, label: &str);
    /// Drop everything (tier-wide loss).
    fn invalidate_all(&mut self);

    /// Persist an opaque byte blob under `label` — metadata that travels
    /// with snapshots but is not itself a [`ParticleSystem`] (e.g. the
    /// per-rank manifest of a distributed checkpoint). Blobs live in a
    /// separate namespace from snapshots and do not appear in
    /// [`CheckpointStore::labels`]. Stores may not support blobs; the
    /// default refuses.
    fn save_blob(&mut self, _label: &str, _bytes: &[u8]) -> Result<usize, FtError> {
        Err(FtError::Unsupported { what: "raw blobs" })
    }

    /// Restore a blob saved with [`CheckpointStore::save_blob`]. The
    /// integrity trailer is verified (and stripped) before any byte is
    /// returned; corruption surfaces as [`FtError::BlobCorrupted`].
    fn restore_blob(&self, _label: &str) -> Result<Vec<u8>, FtError> {
        Err(FtError::Unsupported { what: "raw blobs" })
    }

    /// Fault-injection seam: mutate the *stored* bytes under `label` in
    /// place (bit rot, truncation). Chaos tests use this to corrupt a
    /// checkpoint after it was written and verified; production code has
    /// no reason to call it. The default refuses.
    fn corrupt_stored(
        &mut self,
        _label: &str,
        _kind: StoredKind,
        _mutate: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), FtError> {
        Err(FtError::Unsupported { what: "stored-byte corruption" })
    }
}

/// In-memory store: the "L1 node-local" tier.
#[derive(Debug, Default)]
pub struct MemoryStore {
    snapshots: BTreeMap<String, Vec<u8>>,
    raw_blobs: BTreeMap<String, Vec<u8>>,
}

impl MemoryStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemoryStore {
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, FtError> {
        let bytes = encode(sys);
        let size = bytes.len();
        self.snapshots.insert(label.to_string(), bytes);
        Ok(size)
    }

    fn restore(&self, label: &str) -> Result<ParticleSystem, FtError> {
        let bytes = self
            .snapshots
            .get(label)
            .ok_or_else(|| FtError::MissingCheckpoint { label: label.to_string() })?;
        decode(bytes).map_err(FtError::from)
    }

    fn labels(&self) -> Vec<String> {
        self.snapshots.keys().cloned().collect()
    }

    fn invalidate(&mut self, label: &str) {
        self.snapshots.remove(label);
        self.raw_blobs.remove(label);
    }

    fn invalidate_all(&mut self) {
        self.snapshots.clear();
        self.raw_blobs.clear();
    }

    fn save_blob(&mut self, label: &str, bytes: &[u8]) -> Result<usize, FtError> {
        let sealed = seal_blob(bytes);
        let size = sealed.len();
        self.raw_blobs.insert(label.to_string(), sealed);
        Ok(size)
    }

    fn restore_blob(&self, label: &str) -> Result<Vec<u8>, FtError> {
        let sealed = self
            .raw_blobs
            .get(label)
            .ok_or_else(|| FtError::MissingBlob { label: label.to_string() })?;
        unseal_blob(label, sealed)
    }

    fn corrupt_stored(
        &mut self,
        label: &str,
        kind: StoredKind,
        mutate: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), FtError> {
        let entry = match kind {
            StoredKind::Snapshot => self
                .snapshots
                .get_mut(label)
                .ok_or_else(|| FtError::MissingCheckpoint { label: label.to_string() })?,
            StoredKind::Blob => self
                .raw_blobs
                .get_mut(label)
                .ok_or_else(|| FtError::MissingBlob { label: label.to_string() })?,
        };
        mutate(entry);
        Ok(())
    }
}

/// On-disk store: the "L3 parallel file system" tier.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Store checkpoints under `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, FtError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| FtError::Io { label: dir.display().to_string(), detail: e.to_string() })?;
        Ok(DiskStore { dir })
    }

    fn path_of(&self, label: &str) -> PathBuf {
        // Sanitise: labels become file names.
        let safe: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}.sphcp"))
    }

    fn blob_path_of(&self, label: &str) -> PathBuf {
        self.path_of(label).with_extension("sphblob")
    }

    fn write_atomic(path: &PathBuf, bytes: &[u8], label: &str) -> Result<(), FtError> {
        let io_err =
            |e: std::io::Error| FtError::Io { label: label.to_string(), detail: e.to_string() };
        let tmp = path.with_extension("tmp");
        // Write-then-rename: a crash mid-write never corrupts the previous
        // checkpoint — the property multilevel recovery depends on.
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(bytes).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    fn read_all(path: &PathBuf, missing: FtError, label: &str) -> Result<Vec<u8>, FtError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .map_err(|_| missing)?
            .read_to_end(&mut bytes)
            .map_err(|e| FtError::Io { label: label.to_string(), detail: e.to_string() })?;
        Ok(bytes)
    }
}

impl CheckpointStore for DiskStore {
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, FtError> {
        let bytes = encode(sys);
        Self::write_atomic(&self.path_of(label), &bytes, label)?;
        Ok(bytes.len())
    }

    fn restore(&self, label: &str) -> Result<ParticleSystem, FtError> {
        let bytes = Self::read_all(
            &self.path_of(label),
            FtError::MissingCheckpoint { label: label.to_string() },
            label,
        )?;
        decode(&bytes).map_err(FtError::from)
    }

    fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| {
                        let name = e.file_name().into_string().ok()?;
                        name.strip_suffix(".sphcp").map(str::to_string)
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }

    fn invalidate(&mut self, label: &str) {
        let _ = std::fs::remove_file(self.path_of(label));
        let _ = std::fs::remove_file(self.blob_path_of(label));
    }

    fn invalidate_all(&mut self) {
        for l in self.labels() {
            self.invalidate(&l);
        }
        // Blobs may exist without a same-named snapshot.
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for e in rd.filter_map(|e| e.ok()) {
                if e.file_name().to_string_lossy().ends_with(".sphblob") {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }

    fn save_blob(&mut self, label: &str, bytes: &[u8]) -> Result<usize, FtError> {
        let sealed = seal_blob(bytes);
        Self::write_atomic(&self.blob_path_of(label), &sealed, label)?;
        Ok(sealed.len())
    }

    fn restore_blob(&self, label: &str) -> Result<Vec<u8>, FtError> {
        let sealed = Self::read_all(
            &self.blob_path_of(label),
            FtError::MissingBlob { label: label.to_string() },
            label,
        )?;
        unseal_blob(label, &sealed)
    }

    fn corrupt_stored(
        &mut self,
        label: &str,
        kind: StoredKind,
        mutate: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), FtError> {
        let (path, missing) = match kind {
            StoredKind::Snapshot => {
                (self.path_of(label), FtError::MissingCheckpoint { label: label.to_string() })
            }
            StoredKind::Blob => {
                (self.blob_path_of(label), FtError::MissingBlob { label: label.to_string() })
            }
        };
        let mut bytes = Self::read_all(&path, missing, label)?;
        mutate(&mut bytes);
        // Deliberately *not* atomic: this simulates in-place bit rot.
        std::fs::write(&path, &bytes)
            .map_err(|e| FtError::Io { label: label.to_string(), detail: e.to_string() })
    }
}

/// A view of another store with every label prefixed by `{namespace}__`.
///
/// Lets independent writers (e.g. sph-serve jobs, keyed by job id) share
/// one backing [`DiskStore`]/[`MemoryStore`] without label collisions:
/// each job sees only its own snapshots and blobs, and invalidating one
/// namespace cannot touch another's checkpoints. The separator is `__`
/// (not `::`) because [`DiskStore`] sanitises labels into file names and
/// only `[A-Za-z0-9_-]` survives the round trip through
/// [`CheckpointStore::labels`]; namespaces should stick to that alphabet
/// too (sph-serve's hex job ids do).
pub struct NamespacedStore<S> {
    inner: S,
    prefix: String,
}

impl<S> NamespacedStore<S> {
    pub fn new(namespace: &str, inner: S) -> NamespacedStore<S> {
        NamespacedStore { inner, prefix: format!("{namespace}__") }
    }

    fn full(&self, label: &str) -> String {
        format!("{}{label}", self.prefix)
    }

    /// The wrapped store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CheckpointStore> CheckpointStore for NamespacedStore<S> {
    fn save(&mut self, label: &str, sys: &ParticleSystem) -> Result<usize, FtError> {
        self.inner.save(&self.full(label), sys)
    }

    fn restore(&self, label: &str) -> Result<ParticleSystem, FtError> {
        self.inner.restore(&self.full(label))
    }

    fn labels(&self) -> Vec<String> {
        self.inner
            .labels()
            .into_iter()
            .filter_map(|l| l.strip_prefix(&self.prefix).map(str::to_string))
            .collect()
    }

    fn invalidate(&mut self, label: &str) {
        self.inner.invalidate(&self.full(label));
    }

    fn invalidate_all(&mut self) {
        for label in self.labels() {
            self.invalidate(&label);
        }
    }

    fn save_blob(&mut self, label: &str, bytes: &[u8]) -> Result<usize, FtError> {
        self.inner.save_blob(&self.full(label), bytes)
    }

    fn restore_blob(&self, label: &str) -> Result<Vec<u8>, FtError> {
        self.inner.restore_blob(&self.full(label))
    }

    fn corrupt_stored(
        &mut self,
        label: &str,
        kind: StoredKind,
        mutate: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), FtError> {
        self.inner.corrupt_stored(&self.full(label), kind, mutate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn sample(tag: f64) -> ParticleSystem {
        let mut sys = ParticleSystem::new(
            vec![Vec3::splat(0.25), Vec3::splat(0.75)],
            vec![Vec3::ZERO; 2],
            vec![1.0, 1.0],
            vec![tag, tag],
            0.1,
            Periodicity::open(Aabb::unit()),
        );
        sys.time = tag;
        sys
    }

    fn exercise_store(store: &mut dyn CheckpointStore) {
        assert!(store.labels().is_empty());
        let size = store.save("step-10", &sample(1.0)).unwrap();
        assert!(size > 0);
        store.save("step-20", &sample(2.0)).unwrap();
        assert_eq!(store.labels(), vec!["step-10".to_string(), "step-20".to_string()]);
        let back = store.restore("step-20").unwrap();
        assert_eq!(back.time, 2.0);
        let back = store.restore("step-10").unwrap();
        assert_eq!(back.time, 1.0);
        assert!(matches!(
            store.restore("missing"),
            Err(FtError::MissingCheckpoint { label }) if label == "missing"
        ));
        store.invalidate("step-10");
        assert!(store.restore("step-10").is_err());
        store.invalidate_all();
        assert!(store.labels().is_empty());
    }

    fn exercise_blobs(store: &mut dyn CheckpointStore) {
        let payload = b"manifest bytes".to_vec();
        store.save_blob("m", &payload).unwrap();
        assert_eq!(store.restore_blob("m").unwrap(), payload);
        assert!(matches!(
            store.restore_blob("absent"),
            Err(FtError::MissingBlob { label }) if label == "absent"
        ));

        // Bit rot in the body is caught by the trailer, before decode.
        store
            .corrupt_stored("m", StoredKind::Blob, &mut |bytes: &mut Vec<u8>| {
                bytes[3] ^= 0x40;
            })
            .unwrap();
        assert!(matches!(store.restore_blob("m"), Err(FtError::BlobCorrupted { .. })));

        // Truncation below the trailer size is also a typed corruption.
        store.save_blob("m", &payload).unwrap();
        store
            .corrupt_stored("m", StoredKind::Blob, &mut |bytes: &mut Vec<u8>| {
                bytes.truncate(4);
            })
            .unwrap();
        assert!(matches!(store.restore_blob("m"), Err(FtError::BlobCorrupted { .. })));

        // Snapshot corruption surfaces through the codec's own framing.
        store.save("snap", &sample(3.0)).unwrap();
        store
            .corrupt_stored("snap", StoredKind::Snapshot, &mut |bytes: &mut Vec<u8>| {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
            })
            .unwrap();
        assert!(matches!(store.restore("snap"), Err(FtError::Codec(_))));
        store.invalidate_all();
    }

    #[test]
    fn memory_store_contract() {
        exercise_store(&mut MemoryStore::new());
    }

    #[test]
    fn memory_store_blob_seal() {
        exercise_blobs(&mut MemoryStore::new());
    }

    #[test]
    fn disk_store_contract() {
        let dir = std::env::temp_dir().join(format!("sphft-test-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.invalidate_all();
        exercise_store(&mut store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_blob_seal() {
        let dir = std::env::temp_dir().join(format!("sphft-test4-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.invalidate_all();
        exercise_blobs(&mut store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_overwrites_atomically() {
        let dir = std::env::temp_dir().join(format!("sphft-test2-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.save("ck", &sample(1.0)).unwrap();
        store.save("ck", &sample(2.0)).unwrap();
        assert_eq!(store.restore("ck").unwrap().time, 2.0);
        assert_eq!(store.labels().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_sanitises_labels() {
        let dir = std::env::temp_dir().join(format!("sphft-test3-{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.save("weird/label name", &sample(1.0)).unwrap();
        assert_eq!(store.restore("weird/label name").unwrap().time, 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_store_refuses_blobs_with_typed_error() {
        struct Minimal;
        impl CheckpointStore for Minimal {
            fn save(&mut self, _: &str, _: &ParticleSystem) -> Result<usize, FtError> {
                Ok(0)
            }
            fn restore(&self, label: &str) -> Result<ParticleSystem, FtError> {
                Err(FtError::MissingCheckpoint { label: label.to_string() })
            }
            fn labels(&self) -> Vec<String> {
                Vec::new()
            }
            fn invalidate(&mut self, _: &str) {}
            fn invalidate_all(&mut self) {}
        }
        let mut s = Minimal;
        assert!(matches!(s.save_blob("x", b"y"), Err(FtError::Unsupported { .. })));
        assert!(matches!(s.restore_blob("x"), Err(FtError::Unsupported { .. })));
        assert!(matches!(
            s.corrupt_stored("x", StoredKind::Blob, &mut |_| {}),
            Err(FtError::Unsupported { .. })
        ));
    }

    #[test]
    fn namespaced_stores_are_isolated() {
        let backing = MemoryStore::new();
        let mut a = NamespacedStore::new("job-a", backing);
        a.save("gen0", &sample(1.0)).unwrap();
        a.save_blob("manifest", b"alpha").unwrap();

        let mut b = NamespacedStore::new("job-b", a.into_inner());
        // Namespace b sees none of a's snapshots or blobs.
        assert!(b.labels().is_empty());
        assert!(matches!(b.restore("gen0"), Err(FtError::MissingCheckpoint { .. })));
        assert!(matches!(b.restore_blob("manifest"), Err(FtError::MissingBlob { .. })));
        b.save("gen0", &sample(2.0)).unwrap();
        assert_eq!(b.labels(), vec!["gen0".to_string()]);
        // Wiping b leaves a's data intact in the backing store.
        b.invalidate_all();
        let a_again = NamespacedStore::new("job-a", b.into_inner());
        assert_eq!(a_again.restore("gen0").unwrap().time, 1.0);
        assert_eq!(a_again.restore_blob("manifest").unwrap(), b"alpha");
    }

    #[test]
    fn namespaced_labels_round_trip_through_disk_store() {
        // DiskStore reconstructs label names from sanitised file names, so the
        // namespace separator must survive sanitisation (`__` does, `::` would
        // not). labels()/invalidate_all() must keep working over a DiskStore.
        let dir = std::env::temp_dir().join(format!("sphft-test5-{}", std::process::id()));
        let mut a = NamespacedStore::new("1f2e3d4c", DiskStore::new(&dir).unwrap());
        a.invalidate_all();
        a.save("resilient-gen0", &sample(1.0)).unwrap();
        a.save("resilient-gen1", &sample(2.0)).unwrap();
        let mut labels = a.labels();
        labels.sort();
        assert_eq!(labels, vec!["resilient-gen0".to_string(), "resilient-gen1".to_string()]);
        assert_eq!(a.restore("resilient-gen1").unwrap().time, 2.0);

        let mut other = NamespacedStore::new("deadbeef", a.into_inner());
        assert!(other.labels().is_empty());
        other.save("resilient-gen0", &sample(3.0)).unwrap();
        other.invalidate_all();
        assert!(other.labels().is_empty());
        let a_back = NamespacedStore::new("1f2e3d4c", other.into_inner());
        assert_eq!(a_back.labels().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
