//! Silent-data-corruption (SDC) injection and detection — Table 4's
//! "Error Detection: Silent data corruption detectors", after the paper's
//! refs [6, 44] (DRAM error field studies) and [7] (resilience patterns
//! for silent errors).
//!
//! Three complementary detectors, ordered by cost and reach:
//!
//! 1. **Checksum** — bit-exact FNV over the state between known-good
//!    points; catches everything but says nothing about *where*;
//! 2. **Physics bounds** — NaN/negative-mass/negative-energy screening
//!    (free, catches gross corruption immediately);
//! 3. **Conservation drift** — total energy/momentum moving beyond the
//!    integrator's expected tolerance flags subtle numeric corruption;
//! 4. **ABFT reduction** — duplicate a global sum with independently
//!    ordered arithmetic and compare (algorithm-based fault tolerance for
//!    the reduction step itself).

use crate::codec::state_checksum;
use crate::error::FtError;
use sph_core::diagnostics::Conservation;
use sph_core::particles::ParticleSystem;
use sph_math::{kahan_sum, SplitMix64};
use std::fmt;

/// A detector's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    Clean,
    Corrupted(String),
}

impl Verdict {
    pub fn is_corrupted(&self) -> bool {
        matches!(self, Verdict::Corrupted(_))
    }
}

/// Common detector interface.
pub trait SdcDetector {
    fn name(&self) -> &'static str;
    /// Inspect the system, returning a verdict.
    fn check(&mut self, sys: &ParticleSystem) -> Verdict;
}

/// Bit-exact checksum detector: remembers the checksum at `arm()` and
/// reports corruption if the state changed while it was not supposed to.
#[derive(Debug, Default)]
pub struct ChecksumDetector {
    armed: Option<u64>,
}

impl ChecksumDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the current state as known-good.
    pub fn arm(&mut self, sys: &ParticleSystem) {
        self.armed = Some(state_checksum(sys));
    }
}

impl SdcDetector for ChecksumDetector {
    fn name(&self) -> &'static str {
        "checksum"
    }

    fn check(&mut self, sys: &ParticleSystem) -> Verdict {
        match self.armed {
            None => Verdict::Clean, // not armed: nothing to compare
            Some(reference) => {
                if state_checksum(sys) == reference {
                    Verdict::Clean
                } else {
                    Verdict::Corrupted("state checksum changed".into())
                }
            }
        }
    }
}

/// Physics-bounds detector: wraps `ParticleSystem::sanity_check`.
#[derive(Debug, Default)]
pub struct PhysicsBoundsDetector;

impl SdcDetector for PhysicsBoundsDetector {
    fn name(&self) -> &'static str {
        "physics-bounds"
    }

    fn check(&mut self, sys: &ParticleSystem) -> Verdict {
        match sys.sanity_check() {
            Ok(()) => Verdict::Clean,
            Err(e) => Verdict::Corrupted(e),
        }
    }
}

/// Conservation-drift detector: flags when total energy or momentum move
/// beyond `tolerance` (relative) from the armed reference.
#[derive(Debug)]
pub struct ConservationDetector {
    reference: Option<Conservation>,
    momentum_scale: f64,
    pub tolerance: f64,
}

impl ConservationDetector {
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0);
        ConservationDetector { reference: None, momentum_scale: 0.0, tolerance }
    }

    pub fn arm(&mut self, sys: &ParticleSystem) {
        self.reference = Some(Conservation::measure(sys, None));
        self.momentum_scale = sph_core::diagnostics::momentum_scale(sys).max(1e-300);
    }
}

impl SdcDetector for ConservationDetector {
    fn name(&self) -> &'static str {
        "conservation-drift"
    }

    fn check(&mut self, sys: &ParticleSystem) -> Verdict {
        let Some(reference) = &self.reference else {
            return Verdict::Clean;
        };
        let now = Conservation::measure(sys, None);
        let e_drift = now.energy_drift(reference);
        if e_drift > self.tolerance {
            return Verdict::Corrupted(format!("energy drift {e_drift:.3e}"));
        }
        let p_drift = now.momentum_drift(reference, self.momentum_scale);
        if p_drift > self.tolerance {
            return Verdict::Corrupted(format!("momentum drift {p_drift:.3e}"));
        }
        Verdict::Clean
    }
}

/// ABFT-style duplicated reduction: computes a global sum twice with
/// different summation orders/algorithms and flags disagreement beyond
/// round-off. Detects corruption *during the reduction itself* (e.g. a
/// flipped register), which state checksums cannot see.
pub fn abft_redundant_sum(values: &[f64], rel_tolerance: f64) -> Result<f64, FtError> {
    assert!(rel_tolerance > 0.0);
    let forward = kahan_sum(values);
    let backward: f64 = {
        let mut rev: Vec<f64> = values.to_vec();
        rev.reverse();
        sph_math::pairwise_sum(&rev)
    };
    let scale = values.iter().map(|v| v.abs()).sum::<f64>().max(1e-300);
    if (forward - backward).abs() / scale > rel_tolerance {
        Err(FtError::RedundantSumMismatch { forward, backward })
    } else {
        Ok(forward)
    }
}

/// Which particle field an injected fault landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultField {
    Position,
    Velocity,
    Mass,
    InternalEnergy,
    SmoothingLength,
}

impl FaultField {
    /// The field's short name as it appears in `ParticleSystem` (`x`,
    /// `v`, `m`, `u`, `h`).
    pub fn symbol(&self) -> &'static str {
        match self {
            FaultField::Position => "x",
            FaultField::Velocity => "v",
            FaultField::Mass => "m",
            FaultField::InternalEnergy => "u",
            FaultField::SmoothingLength => "h",
        }
    }
}

/// A structured record of one injected bit flip — enough for a chaos
/// suite to assert that a detector caught *this* fault (and to undo or
/// re-apply it exactly), where a prose description could only show that
/// *some* fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Index of the particle hit (global index of the system injected into).
    pub particle: usize,
    /// Field the flip landed in.
    pub field: FaultField,
    /// Vector component for `Position`/`Velocity` (0..3); 0 for scalars.
    pub component: u8,
    /// Which bit of the f64 was flipped (0 = LSB of the mantissa).
    pub bit: u32,
    /// Field bits before the flip.
    pub old_bits: u64,
    /// Field bits after the flip (`old_bits ^ (1 << bit)`).
    pub new_bits: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.field {
            FaultField::Position | FaultField::Velocity => {
                write!(
                    f,
                    "{}[{}].{} bit {}",
                    self.field.symbol(),
                    self.particle,
                    self.component,
                    self.bit
                )
            }
            _ => write!(f, "{}[{}] bit {}", self.field.symbol(), self.particle, self.bit),
        }
    }
}

/// Deterministic SDC injector: flips a random bit in a random field of a
/// random particle — the "unprotected computing" threat model of ref [6].
#[derive(Debug)]
pub struct SdcInjector {
    rng: SplitMix64,
}

impl SdcInjector {
    pub fn new(seed: u64) -> Self {
        SdcInjector { rng: SplitMix64::new(SplitMix64::new(seed).derive("sdc-injector")) }
    }

    /// Flip one bit; returns a structured record of exactly what was hit.
    pub fn inject(&mut self, sys: &mut ParticleSystem) -> InjectedFault {
        assert!(!sys.is_empty(), "cannot inject into an empty system");
        let i = self.rng.next_below(sys.len() as u64) as usize;
        let field = self.rng.next_below(5);
        let bit = self.rng.next_below(64) as u32;
        let flip = |v: f64| f64::from_bits(v.to_bits() ^ (1u64 << bit));
        let (field, component, old) = match field {
            0 => {
                let axis = self.rng.next_below(3) as usize;
                let v = sys.x[i].component(axis);
                *sys.x[i].component_mut(axis) = flip(v);
                (FaultField::Position, axis as u8, v)
            }
            1 => {
                let axis = self.rng.next_below(3) as usize;
                let v = sys.v[i].component(axis);
                *sys.v[i].component_mut(axis) = flip(v);
                (FaultField::Velocity, axis as u8, v)
            }
            2 => {
                let v = sys.m[i];
                sys.m[i] = flip(v);
                (FaultField::Mass, 0, v)
            }
            3 => {
                let v = sys.u[i];
                sys.u[i] = flip(v);
                (FaultField::InternalEnergy, 0, v)
            }
            _ => {
                let v = sys.h[i];
                sys.h[i] = flip(v);
                (FaultField::SmoothingLength, 0, v)
            }
        };
        InjectedFault {
            particle: i,
            field,
            component,
            bit,
            old_bits: old.to_bits(),
            new_bits: flip(old).to_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, Vec3};

    fn sample() -> ParticleSystem {
        let n = 64;
        let mut rng = SplitMix64::new(5);
        let x: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        let v: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), 0.0))
            .collect();
        ParticleSystem::new(x, v, vec![1.0; n], vec![0.5; n], 0.1, Periodicity::open(Aabb::unit()))
    }

    #[test]
    fn checksum_detector_catches_any_flip() {
        let mut sys = sample();
        let mut det = ChecksumDetector::new();
        det.arm(&sys);
        assert_eq!(det.check(&sys), Verdict::Clean);
        let mut inj = SdcInjector::new(1);
        let what = inj.inject(&mut sys);
        assert!(det.check(&sys).is_corrupted(), "missed injection at {what}");
    }

    #[test]
    fn checksum_detector_unarmed_is_silent() {
        let sys = sample();
        let mut det = ChecksumDetector::new();
        assert_eq!(det.check(&sys), Verdict::Clean);
    }

    #[test]
    fn physics_bounds_catches_gross_corruption() {
        let mut sys = sample();
        let mut det = PhysicsBoundsDetector;
        assert_eq!(det.check(&sys), Verdict::Clean);
        sys.m[3] = -1.0;
        assert!(det.check(&sys).is_corrupted());
    }

    #[test]
    fn physics_bounds_misses_subtle_corruption() {
        // A low-order mantissa flip stays physical — that is exactly why
        // checksum/conservation detectors exist.
        let mut sys = sample();
        let mut det = PhysicsBoundsDetector;
        sys.u[0] = f64::from_bits(sys.u[0].to_bits() ^ 1); // LSB flip
        assert_eq!(det.check(&sys), Verdict::Clean);
    }

    #[test]
    fn conservation_detector_sees_energy_jump() {
        let mut sys = sample();
        let mut det = ConservationDetector::new(1e-6);
        det.arm(&sys);
        assert_eq!(det.check(&sys), Verdict::Clean);
        sys.v[7].x *= 1.5; // kinetic-energy corruption
        let verdict = det.check(&sys);
        assert!(verdict.is_corrupted(), "{verdict:?}");
    }

    #[test]
    fn conservation_detector_sees_momentum_jump_at_constant_energy() {
        let mut sys = sample();
        // Symmetric pair of velocities: swap signs keeps energy, moves p.
        sys.v[0] = Vec3::new(1.0, 0.0, 0.0);
        sys.v[1] = Vec3::new(-1.0, 0.0, 0.0);
        let mut det = ConservationDetector::new(1e-6);
        det.arm(&sys);
        sys.v[1] = Vec3::new(1.0, 0.0, 0.0); // |v| unchanged ⇒ KE unchanged
        let verdict = det.check(&sys);
        assert!(verdict.is_corrupted(), "{verdict:?}");
    }

    #[test]
    fn abft_sum_accepts_clean_and_rejects_corrupt() {
        let values: Vec<f64> =
            (0..10_000).map(|i| ((i * 37) % 1000) as f64 * 0.001 - 0.3).collect();
        let ok = abft_redundant_sum(&values, 1e-10).expect("clean sum accepted");
        assert!((ok - values.iter().sum::<f64>()).abs() < 1e-6);
        // Simulate a corrupted reduction by perturbing one addend between
        // the two passes — model it as comparing against a corrupted total.
        let forward = kahan_sum(&values);
        let corrupted = forward + 0.5;
        let scale: f64 = values.iter().map(|v| v.abs()).sum();
        assert!((forward - corrupted).abs() / scale > 1e-10);
    }

    #[test]
    fn injector_deterministic_and_varied() {
        let mut sys_a = sample();
        let mut sys_b = sample();
        let mut inj_a = SdcInjector::new(9);
        let mut inj_b = SdcInjector::new(9);
        for _ in 0..5 {
            assert_eq!(inj_a.inject(&mut sys_a), inj_b.inject(&mut sys_b));
        }
        // Different fields get hit across many injections.
        let mut inj = SdcInjector::new(10);
        let mut sys = sample();
        let kinds: std::collections::BTreeSet<&'static str> =
            (0..40).map(|_| inj.inject(&mut sys).field.symbol()).collect();
        assert!(kinds.len() >= 3, "kinds hit: {kinds:?}");
    }

    #[test]
    fn injected_fault_record_is_faithful() {
        let mut sys = sample();
        let before = sys.clone();
        let fault = SdcInjector::new(3).inject(&mut sys);
        // The record's old/new bits must match the actual state mutation.
        let read = |s: &ParticleSystem| -> u64 {
            let i = fault.particle;
            match fault.field {
                FaultField::Position => s.x[i].component(fault.component as usize).to_bits(),
                FaultField::Velocity => s.v[i].component(fault.component as usize).to_bits(),
                FaultField::Mass => s.m[i].to_bits(),
                FaultField::InternalEnergy => s.u[i].to_bits(),
                FaultField::SmoothingLength => s.h[i].to_bits(),
            }
        };
        assert_eq!(read(&before), fault.old_bits);
        assert_eq!(read(&sys), fault.new_bits);
        assert_eq!(fault.old_bits ^ fault.new_bits, 1u64 << fault.bit);
        // Display names the field and particle for human logs.
        let shown = fault.to_string();
        assert!(shown.contains(&format!("[{}]", fault.particle)), "{shown}");
        assert!(shown.contains(&format!("bit {}", fault.bit)), "{shown}");
    }
}
