//! Deterministic fault injection for the distributed step protocol.
//!
//! A [`FaultPlan`] is a seeded, replayable schedule of faults: each
//! [`FaultEvent`] names a step and a [`FaultKind`]. Exchange-side kinds
//! (rank kill, payload corruption, transient carrier errors) are executed
//! by [`FaultyExchange`], a wrapper around any
//! [`Exchange`](sph_domain::Exchange) carrier; state- and storage-side
//! kinds (in-memory SDC, checkpoint bit rot) are executed by the
//! recovery driver (`sph_exa::ResilientSimulation`) at step boundaries.
//!
//! Every event is **one-shot**: once fired it is marked spent and never
//! fires again, so the rollback-and-replay recovery path re-executes the
//! same steps *without* re-suffering the same fault — exactly the
//! semantics of a real transient failure, and the property that makes a
//! chaos run terminate. Determinism is total: the same plan against the
//! same simulation produces the same faults, detections, and recovery
//! trajectory on every run, for any `SPH_THREADS`.

use crate::sdc::SdcInjector;
use sph_domain::exchange::{Exchange, ExchangeError, ExchangePath};

/// How stored checkpoint bytes get damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// XOR one bit: `byte` indexes into the stored bytes (wrapped by
    /// length), `bit` selects the bit within it.
    BitFlip { byte: usize, bit: u8 },
    /// Truncate the stored bytes to at most `keep` bytes.
    Truncate { keep: usize },
}

/// The fault taxonomy of the chaos suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Rank `rank` dies: every subsequent exchange fails with
    /// `RankFailed` until the recovery layer calls `recover_rank`,
    /// which succeeds iff `respawnable`.
    KillRank { rank: u32, respawnable: bool },
    /// The next `repeat` operations on `path` arrive corrupted: the
    /// carrier flips `bit` of the payload and reports
    /// `PayloadCorruption` (integrity check failed on arrival).
    CorruptPayload { path: ExchangePath, bit: u32, repeat: u32 },
    /// The next `failures` operations on `path` fail with a retryable
    /// `Transient` error, then the carrier heals.
    Transient { path: ExchangePath, failures: u32 },
    /// Flip one seeded-random bit in one in-memory particle field
    /// (executed by the recovery driver via [`SdcInjector`]).
    CorruptField,
    /// Damage the *newest stored* checkpoint's manifest blob (executed
    /// by the recovery driver via `CheckpointStore::corrupt_stored`).
    CorruptNewestCheckpoint { mode: CorruptionMode },
}

impl FaultKind {
    /// Whether [`FaultyExchange`] executes this kind (vs the recovery
    /// driver at step boundaries).
    pub fn is_exchange_side(&self) -> bool {
        matches!(
            self,
            FaultKind::KillRank { .. }
                | FaultKind::CorruptPayload { .. }
                | FaultKind::Transient { .. }
        )
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Macro-step index at (or after) which the fault fires.
    pub step: u64,
    pub kind: FaultKind,
}

/// A seeded, replayable fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Schedule `kind` at `step` (builder style).
    pub fn at(mut self, step: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { step, kind });
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The seeded injector used for [`FaultKind::CorruptField`] events.
    pub fn injector(&self) -> SdcInjector {
        SdcInjector::new(self.seed)
    }

    /// Partition into (exchange-side, driver-side) event lists.
    pub fn split(&self) -> (Vec<FaultEvent>, Vec<FaultEvent>) {
        let (ex, st): (Vec<_>, Vec<_>) =
            self.events.iter().partition(|e| e.kind.is_exchange_side());
        (ex, st)
    }
}

/// Internal: an exchange-side event plus its firing state.
#[derive(Debug, Clone, Copy)]
struct ArmedEvent {
    event: FaultEvent,
    /// Remaining firings (payload corruption `repeat` / transient
    /// `failures`; 1 for rank kills). 0 ⇒ spent.
    remaining: u32,
}

/// A fault-injecting wrapper around any exchange carrier.
///
/// Wraps the real carrier and, keyed off the step watermark delivered by
/// `begin_step`, executes the exchange-side events of a [`FaultPlan`].
/// When no event applies, every call forwards unchanged — a
/// `FaultyExchange` with an empty plan is bit-identical to its inner
/// carrier.
pub struct FaultyExchange {
    inner: Box<dyn Exchange>,
    events: Vec<ArmedEvent>,
    /// `(rank, respawnable)` for currently-dead ranks, sorted by rank.
    dead: Vec<(u32, bool)>,
    step: u64,
}

impl FaultyExchange {
    /// Wrap `inner`, executing the exchange-side events of `plan`.
    pub fn new(inner: Box<dyn Exchange>, plan: &FaultPlan) -> Self {
        let (exchange_events, _) = plan.split();
        let events = exchange_events
            .into_iter()
            .map(|event| {
                let remaining = match event.kind {
                    FaultKind::KillRank { .. } => 1,
                    FaultKind::CorruptPayload { repeat, .. } => repeat,
                    FaultKind::Transient { failures, .. } => failures,
                    // Driver-side kinds are filtered out by split().
                    FaultKind::CorruptField | FaultKind::CorruptNewestCheckpoint { .. } => 0,
                };
                ArmedEvent { event, remaining }
            })
            .collect();
        FaultyExchange { inner, events, dead: Vec::new(), step: 0 }
    }

    /// Ranks currently dead (test observability).
    pub fn dead_ranks(&self) -> Vec<u32> {
        self.dead.iter().map(|&(r, _)| r).collect()
    }

    /// A dead rank fails *every* path: the protocol is bulk-synchronous,
    /// so each superstep touches all ranks.
    fn check_dead(&self, path: ExchangePath) -> Result<(), ExchangeError> {
        match self.dead.first() {
            Some(&(rank, _)) => Err(ExchangeError::rank_failed(path, rank)),
            None => Ok(()),
        }
    }

    /// Run the pre-operation fault gates for `path`; on a corruption
    /// event, `damage` applies the bit flip to the in-flight payload.
    fn gate(
        &mut self,
        path: ExchangePath,
        damage: &mut dyn FnMut(u32),
    ) -> Result<(), ExchangeError> {
        self.check_dead(path)?;
        for armed in &mut self.events {
            if armed.remaining == 0 || armed.event.step > self.step {
                continue;
            }
            match armed.event.kind {
                FaultKind::Transient { path: p, .. } if p == path => {
                    armed.remaining -= 1;
                    return Err(ExchangeError::transient(
                        path,
                        format!("injected carrier fault at step {}", self.step),
                    ));
                }
                FaultKind::CorruptPayload { path: p, bit, .. } if p == path => {
                    armed.remaining -= 1;
                    damage(bit);
                    return Err(ExchangeError::corruption(
                        path,
                        format!("bit {bit} flipped in flight at step {}", self.step),
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl Exchange for FaultyExchange {
    fn name(&self) -> &'static str {
        "fault-injecting"
    }

    fn begin_step(&mut self, step: u64) {
        self.step = step;
        for armed in &mut self.events {
            if armed.remaining == 0 || armed.event.step > step {
                continue;
            }
            if let FaultKind::KillRank { rank, respawnable } = armed.event.kind {
                armed.remaining = 0;
                if let Err(at) = self.dead.binary_search_by_key(&rank, |&(r, _)| r) {
                    self.dead.insert(at, (rank, respawnable));
                }
            }
        }
        self.inner.begin_step(step);
    }

    fn reduce_max(&mut self, path: ExchangePath, per_rank: &[f64]) -> Result<f64, ExchangeError> {
        // Reductions carry no mutable payload; corruption there surfaces
        // as the error alone (the integrity check rejected the result).
        self.gate(path, &mut |_| {})?;
        self.inner.reduce_max(path, per_rank)
    }

    fn reduce_min(&mut self, path: ExchangePath, per_rank: &[f64]) -> Result<f64, ExchangeError> {
        self.gate(path, &mut |_| {})?;
        self.inner.reduce_min(path, per_rank)
    }

    fn deliver_f64(
        &mut self,
        path: ExchangePath,
        to_rank: u32,
        payload: &mut Vec<f64>,
    ) -> Result<(), ExchangeError> {
        self.gate(path, &mut |bit| {
            if !payload.is_empty() {
                let word = (bit as usize / 64) % payload.len();
                let v = payload[word];
                payload[word] = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
            }
        })?;
        self.inner.deliver_f64(path, to_rank, payload)
    }

    fn deliver_bytes(
        &mut self,
        path: ExchangePath,
        to_rank: u32,
        payload: &mut Vec<u8>,
    ) -> Result<(), ExchangeError> {
        self.gate(path, &mut |bit| {
            if !payload.is_empty() {
                let byte = (bit as usize / 8) % payload.len();
                payload[byte] ^= 1u8 << (bit % 8);
            }
        })?;
        self.inner.deliver_bytes(path, to_rank, payload)
    }

    fn recover_rank(&mut self, rank: u32) -> Result<(), ExchangeError> {
        if let Ok(at) = self.dead.binary_search_by_key(&rank, |&(r, _)| r) {
            let (_, respawnable) = self.dead[at];
            if !respawnable {
                // Permanently lost: recovery cannot proceed without it.
                return Err(ExchangeError::rank_failed(ExchangePath::HaloNegotiation, rank));
            }
            self.dead.remove(at);
        }
        self.inner.recover_rank(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_domain::exchange::{ExchangeErrorKind, InProcessExchange};

    fn faulty(plan: FaultPlan) -> FaultyExchange {
        FaultyExchange::new(Box::new(InProcessExchange::new()), &plan)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut ex = faulty(FaultPlan::new(7));
        ex.begin_step(5);
        let mut payload = vec![1.5, -2.5];
        ex.deliver_f64(ExchangePath::GhostRefresh, 0, &mut payload).unwrap();
        assert_eq!(payload, vec![1.5, -2.5]);
        assert_eq!(ex.reduce_min(ExchangePath::DtReduce, &[0.25, 0.5]).unwrap(), 0.25);
    }

    #[test]
    fn transient_fails_exactly_n_times_then_heals() {
        let plan = FaultPlan::new(1)
            .at(3, FaultKind::Transient { path: ExchangePath::Migration, failures: 2 });
        let mut ex = faulty(plan);
        // Before the scheduled step: clean.
        ex.begin_step(2);
        let mut p = vec![1.0];
        ex.deliver_f64(ExchangePath::Migration, 0, &mut p).unwrap();
        // At the scheduled step: exactly two retryable failures.
        ex.begin_step(3);
        for _ in 0..2 {
            let err = ex.deliver_f64(ExchangePath::Migration, 0, &mut p).unwrap_err();
            assert!(err.is_retryable());
            assert_eq!(p, vec![1.0], "transient faults must not touch the payload");
        }
        ex.deliver_f64(ExchangePath::Migration, 0, &mut p).unwrap();
        // Other paths were never affected.
        ex.reduce_min(ExchangePath::DtReduce, &[0.5]).unwrap();
    }

    #[test]
    fn corruption_flips_a_bit_and_is_not_retryable() {
        let plan = FaultPlan::new(1).at(
            0,
            FaultKind::CorruptPayload { path: ExchangePath::GhostRefresh, bit: 1, repeat: 1 },
        );
        let mut ex = faulty(plan);
        ex.begin_step(0);
        let mut p = vec![1.0, 2.0];
        let err = ex.deliver_f64(ExchangePath::GhostRefresh, 1, &mut p).unwrap_err();
        assert!(matches!(err.kind, ExchangeErrorKind::PayloadCorruption { .. }));
        assert!(!err.is_retryable());
        assert_ne!(p[0].to_bits(), 1.0f64.to_bits(), "payload must actually be damaged");
        // One-shot: the replay after rollback sees a clean carrier.
        let mut q = vec![1.0, 2.0];
        ex.deliver_f64(ExchangePath::GhostRefresh, 1, &mut q).unwrap();
        assert_eq!(q[0].to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn killed_rank_fails_every_path_until_recovered() {
        let plan = FaultPlan::new(1).at(4, FaultKind::KillRank { rank: 2, respawnable: true });
        let mut ex = faulty(plan);
        ex.begin_step(4);
        assert_eq!(ex.dead_ranks(), vec![2]);
        let err = ex.reduce_max(ExchangePath::HaloNegotiation, &[1.0]).unwrap_err();
        assert!(matches!(err.kind, ExchangeErrorKind::RankFailed { rank: 2 }));
        let mut b = vec![0u8; 4];
        assert!(ex.deliver_bytes(ExchangePath::CheckpointBlob, 0, &mut b).is_err());
        // Respawn, then everything works — and the kill never re-fires.
        ex.recover_rank(2).unwrap();
        assert!(ex.dead_ranks().is_empty());
        ex.begin_step(4);
        ex.reduce_max(ExchangePath::HaloNegotiation, &[1.0]).unwrap();
    }

    #[test]
    fn non_respawnable_rank_stays_lost() {
        let plan = FaultPlan::new(1).at(0, FaultKind::KillRank { rank: 1, respawnable: false });
        let mut ex = faulty(plan);
        ex.begin_step(0);
        let err = ex.recover_rank(1).unwrap_err();
        assert!(matches!(err.kind, ExchangeErrorKind::RankFailed { rank: 1 }));
        assert_eq!(ex.dead_ranks(), vec![1]);
    }

    #[test]
    fn split_partitions_by_side() {
        let plan = FaultPlan::new(9)
            .at(1, FaultKind::CorruptField)
            .at(2, FaultKind::Transient { path: ExchangePath::DtReduce, failures: 1 })
            .at(
                3,
                FaultKind::CorruptNewestCheckpoint { mode: CorruptionMode::Truncate { keep: 8 } },
            );
        let (ex, st) = plan.split();
        assert_eq!(ex.len(), 1);
        assert_eq!(st.len(), 2);
        assert!(ex.iter().all(|e| e.kind.is_exchange_side()));
        assert!(st.iter().all(|e| !e.kind.is_exchange_side()));
    }
}
