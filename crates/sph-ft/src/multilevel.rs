//! Multilevel checkpointing with failure-injection simulation — the
//! "Multilevel" requirement of Table 4, after the paper's refs [7, 20]
//! (optimal resilience patterns / two-level checkpoint models).
//!
//! Three tiers, ordered by cost and coverage:
//!
//! | level | medium (model)        | cost | survives                    |
//! |-------|-----------------------|------|-----------------------------|
//! | L1    | node-local memory/NVMe| low  | transient process failures  |
//! | L2    | partner-node copy     | mid  | single-node failures        |
//! | L3    | parallel file system  | high | anything                    |
//!
//! A failure of *severity* `s` destroys all checkpoints of level < `s`;
//! recovery rolls back to the newest surviving checkpoint. The simulator
//! plays a work trace against exponentially-distributed failures and
//! reports the total wall-clock, so single- vs multi-level strategies can
//! be compared quantitatively (the `sph-bench` ablation does exactly
//! that).

use sph_math::SplitMix64;

/// One checkpoint tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointLevel {
    /// Tier index (1 = cheapest, shallowest).
    pub level: u8,
    /// Seconds to write a checkpoint at this tier.
    pub write_cost: f64,
    /// Seconds to restore from this tier.
    pub restore_cost: f64,
    /// Steps between checkpoints at this tier.
    pub interval_steps: u64,
}

/// Multilevel configuration: levels must be sorted by `level`.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    pub levels: Vec<CheckpointLevel>,
}

impl MultilevelConfig {
    /// A typical 3-tier setup for a step taking `step_time` seconds.
    pub fn three_tier(step_time: f64) -> Self {
        MultilevelConfig {
            levels: vec![
                CheckpointLevel {
                    level: 1,
                    write_cost: 0.1 * step_time,
                    restore_cost: 0.1 * step_time,
                    interval_steps: 5,
                },
                CheckpointLevel {
                    level: 2,
                    write_cost: 0.5 * step_time,
                    restore_cost: 0.6 * step_time,
                    interval_steps: 25,
                },
                CheckpointLevel {
                    level: 3,
                    write_cost: 4.0 * step_time,
                    restore_cost: 5.0 * step_time,
                    interval_steps: 100,
                },
            ],
        }
    }

    /// Single-level (PFS only) baseline.
    pub fn single_level(step_time: f64, interval_steps: u64) -> Self {
        MultilevelConfig {
            levels: vec![CheckpointLevel {
                level: 3,
                write_cost: 4.0 * step_time,
                restore_cost: 5.0 * step_time,
                interval_steps,
            }],
        }
    }

    fn validate(&self) {
        assert!(!self.levels.is_empty());
        for w in self.levels.windows(2) {
            assert!(w[0].level < w[1].level, "levels must be sorted and unique");
        }
        for l in &self.levels {
            assert!(l.interval_steps > 0 && l.write_cost >= 0.0 && l.restore_cost >= 0.0);
        }
    }
}

/// Exponentially-distributed failure injector. Severity distribution:
/// most failures are transient (severity 1), some kill a node (2), few
/// take out shared storage paths (3) — following the field studies the
/// paper cites ([11, 12, 43]).
#[derive(Debug, Clone)]
pub struct FailureInjector {
    rng: SplitMix64,
    /// Mean seconds between failures.
    pub mtbf: f64,
    /// Probability that a failure has severity ≥ 2 / ≥ 3.
    pub p_node: f64,
    pub p_storage: f64,
    next_failure_at: f64,
}

impl FailureInjector {
    pub fn new(mtbf: f64, p_node: f64, p_storage: f64, seed: u64) -> Self {
        assert!(mtbf > 0.0 && (0.0..=1.0).contains(&p_node) && (0.0..=1.0).contains(&p_storage));
        assert!(p_storage <= p_node, "severity classes must nest");
        let mut rng = SplitMix64::new(SplitMix64::new(seed).derive("failure-injector"));
        let first = rng.exponential(mtbf);
        FailureInjector { rng, mtbf, p_node, p_storage, next_failure_at: first }
    }

    /// Does a failure strike before `t_end` (wall-clock)? Returns the
    /// failure time and severity, advancing the schedule.
    pub fn failure_before(&mut self, t_end: f64) -> Option<(f64, u8)> {
        if self.next_failure_at >= t_end {
            return None;
        }
        let t = self.next_failure_at;
        let u = self.rng.next_f64();
        let severity = if u < self.p_storage {
            3
        } else if u < self.p_node {
            2
        } else {
            1
        };
        self.next_failure_at = t + self.rng.exponential(self.mtbf);
        Some((t, severity))
    }
}

/// Result of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Total wall-clock seconds including checkpoints, failures, rework.
    pub wall_clock: f64,
    /// Pure compute seconds (steps × step_time) — the lower bound.
    pub useful: f64,
    /// Failures endured.
    pub failures: u32,
    /// Checkpoints written, per level index (parallel to config.levels).
    pub checkpoints_written: [u32; 3],
    /// Steps re-executed after rollbacks.
    pub steps_reworked: u64,
}

impl RunOutcome {
    /// Overhead factor: wall-clock / useful (1.0 = free fault tolerance).
    pub fn overhead(&self) -> f64 {
        self.wall_clock / self.useful
    }
}

/// Simulate `total_steps` steps of `step_time` seconds each under the
/// given checkpoint strategy and failure process.
///
/// Semantics: after each step, any tier whose interval divides the step
/// index writes a checkpoint (cheapest first). A failure of severity `s`
/// invalidates all checkpoints of level < `s`; the run rolls back to the
/// newest surviving checkpoint (or step 0) and pays its restore cost.
pub fn simulate_run(
    config: &MultilevelConfig,
    injector: &mut FailureInjector,
    total_steps: u64,
    step_time: f64,
) -> RunOutcome {
    config.validate();
    assert!(total_steps > 0 && step_time > 0.0);
    let mut clock = 0.0_f64;
    let mut step: u64 = 0;
    // Newest checkpointed step per level (None = only step 0 / nothing).
    let mut newest: Vec<Option<u64>> = vec![None; config.levels.len()];
    let mut written = [0u32; 3];
    let mut failures = 0u32;
    let mut reworked = 0u64;

    while step < total_steps {
        // Attempt one step.
        let t_end = clock + step_time;
        if let Some((t_fail, severity)) = injector.failure_before(t_end) {
            failures += 1;
            clock = t_fail;
            // Destroy shallow checkpoints.
            for (k, l) in config.levels.iter().enumerate() {
                if l.level < severity {
                    newest[k] = None;
                }
            }
            // Recover from the newest survivor.
            let mut best: Option<(u64, usize)> = None;
            for (k, n) in newest.iter().enumerate() {
                if let Some(s) = n {
                    if best.is_none_or(|(b, _)| *s > b) {
                        best = Some((*s, k));
                    }
                }
            }
            match best {
                Some((s, k)) => {
                    clock += config.levels[k].restore_cost;
                    reworked += step - s;
                    step = s;
                }
                None => {
                    // Back to the beginning.
                    reworked += step;
                    step = 0;
                }
            }
            continue;
        }
        clock = t_end;
        step += 1;
        // Write due checkpoints (a real system coalesces; costs add).
        for (k, l) in config.levels.iter().enumerate() {
            if step.is_multiple_of(l.interval_steps) {
                clock += l.write_cost;
                newest[k] = Some(step);
                written[k.min(2)] += 1;
            }
        }
    }
    RunOutcome {
        wall_clock: clock,
        useful: total_steps as f64 * step_time,
        failures,
        checkpoints_written: written,
        steps_reworked: reworked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_run_costs_only_checkpoints() {
        let cfg = MultilevelConfig::three_tier(1.0);
        // MTBF far beyond the run: no failures.
        let mut inj = FailureInjector::new(1e12, 0.2, 0.02, 1);
        let out = simulate_run(&cfg, &mut inj, 100, 1.0);
        assert_eq!(out.failures, 0);
        assert_eq!(out.steps_reworked, 0);
        // 20 L1 writes ×0.1 + 4 L2 ×0.5 + 1 L3 ×4.0 = 2 + 2 + 4 = 8.
        assert!((out.wall_clock - 108.0).abs() < 1e-9, "wall {}", out.wall_clock);
        assert_eq!(out.checkpoints_written, [20, 4, 1]);
    }

    #[test]
    fn failures_cause_rework() {
        let cfg = MultilevelConfig::three_tier(1.0);
        let mut inj = FailureInjector::new(50.0, 0.2, 0.02, 2);
        let out = simulate_run(&cfg, &mut inj, 200, 1.0);
        assert!(out.failures > 0);
        assert!(out.steps_reworked > 0);
        assert!(out.overhead() > 1.0);
    }

    #[test]
    fn multilevel_beats_single_level_under_frequent_transients() {
        // Mostly transient failures: L1 absorbs them cheaply, while the
        // single-level PFS strategy pays long rollbacks.
        let steps = 2000u64;
        let multi = MultilevelConfig::three_tier(1.0);
        let single = MultilevelConfig::single_level(1.0, 100);
        let mut results = Vec::new();
        for (cfg, tag) in [(&multi, "multi"), (&single, "single")] {
            let mut total = 0.0;
            for seed in 0..5 {
                let mut inj = FailureInjector::new(120.0, 0.1, 0.01, seed);
                total += simulate_run(cfg, &mut inj, steps, 1.0).wall_clock;
            }
            results.push((tag, total / 5.0));
        }
        let (_, multi_t) = results[0];
        let (_, single_t) = results[1];
        assert!(
            multi_t < single_t * 0.9,
            "multilevel {multi_t} should clearly beat single-level {single_t}"
        );
    }

    #[test]
    fn severe_failures_fall_through_to_deep_levels() {
        // Only storage-severity failures: L1/L2 are always wiped, so
        // recovery must come from L3 (or restart).
        let cfg = MultilevelConfig::three_tier(1.0);
        let mut inj = FailureInjector::new(300.0, 1.0, 1.0, 3); // all severity 3
        let out = simulate_run(&cfg, &mut inj, 500, 1.0);
        assert!(out.failures > 0);
        // Rework per failure is bounded by the L3 interval (100 steps) plus
        // the L1/L2 work since — but never by the whole run.
        assert!(out.steps_reworked as f64 / out.failures as f64 <= 110.0);
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let mut a = FailureInjector::new(100.0, 0.3, 0.05, 7);
        let mut b = FailureInjector::new(100.0, 0.3, 0.05, 7);
        for _ in 0..10 {
            assert_eq!(a.failure_before(1e9), b.failure_before(1e9));
        }
    }

    #[test]
    fn severity_classes_nest() {
        let mut inj = FailureInjector::new(1.0, 0.5, 0.1, 9);
        let mut counts = [0u32; 4];
        for _ in 0..2000 {
            if let Some((_, s)) = inj.failure_before(f64::INFINITY) {
                counts[s as usize] += 1;
            }
        }
        // Transients most common, storage failures rarest.
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > 0);
    }

    #[test]
    #[should_panic]
    fn misordered_levels_rejected() {
        let cfg = MultilevelConfig {
            levels: vec![
                CheckpointLevel {
                    level: 2,
                    write_cost: 1.0,
                    restore_cost: 1.0,
                    interval_steps: 10,
                },
                CheckpointLevel { level: 1, write_cost: 1.0, restore_cost: 1.0, interval_steps: 5 },
            ],
        };
        let mut inj = FailureInjector::new(100.0, 0.1, 0.01, 1);
        let _ = simulate_run(&cfg, &mut inj, 10, 1.0);
    }
}
