//! Daly-driven checkpoint scheduling — Table 4's "Optimal interval" wired
//! into a run loop.
//!
//! The scheduler observes the measured per-step wall-clock time, the
//! measured checkpoint write cost, and the machine MTBF, and answers one
//! question after every step: *checkpoint now?* It re-derives the Daly
//! interval continuously, so the cadence adapts when steps get slower
//! (e.g. the Evrard collapse deepening) or checkpoints get cheaper.

use crate::daly::daly_interval;
use sph_math::OnlineStats;

/// Adaptive checkpoint scheduler.
#[derive(Debug)]
pub struct CheckpointScheduler {
    /// Mean time between failures of the machine (seconds).
    pub mtbf: f64,
    step_times: OnlineStats,
    write_times: OnlineStats,
    /// Useful work (seconds) accumulated since the last checkpoint.
    since_checkpoint: f64,
    /// Initial guess for the checkpoint cost until one is measured.
    write_cost_guess: f64,
}

impl CheckpointScheduler {
    /// `mtbf` in seconds; `write_cost_guess` seeds the interval before the
    /// first checkpoint has been timed.
    pub fn new(mtbf: f64, write_cost_guess: f64) -> Self {
        assert!(mtbf > 0.0 && write_cost_guess > 0.0);
        CheckpointScheduler {
            mtbf,
            step_times: OnlineStats::new(),
            write_times: OnlineStats::new(),
            since_checkpoint: 0.0,
            write_cost_guess,
        }
    }

    /// Record a completed step's wall-clock seconds. Returns `true` when a
    /// checkpoint should be written now.
    pub fn after_step(&mut self, step_seconds: f64) -> bool {
        assert!(step_seconds >= 0.0);
        self.step_times.push(step_seconds);
        self.since_checkpoint += step_seconds;
        // Checkpoint when the accumulated work exceeds the Daly interval,
        // but never within one step of the last checkpoint (the interval
        // cannot be shorter than a step).
        self.since_checkpoint >= self.current_interval()
    }

    /// Record the cost of a checkpoint just written and reset the clock.
    pub fn after_checkpoint(&mut self, write_seconds: f64) {
        assert!(write_seconds >= 0.0);
        self.write_times.push(write_seconds);
        self.since_checkpoint = 0.0;
    }

    /// Current checkpoint write-cost estimate (measured mean or the seed).
    pub fn write_cost(&self) -> f64 {
        if self.write_times.count() > 0 {
            self.write_times.mean()
        } else {
            self.write_cost_guess
        }
    }

    /// The Daly-optimal work interval under current estimates, floored at
    /// one mean step so a slow machine still makes forward progress.
    pub fn current_interval(&self) -> f64 {
        let interval = daly_interval(self.write_cost().max(1e-9), self.mtbf);
        if self.step_times.count() > 0 {
            interval.max(self.step_times.mean())
        } else {
            interval
        }
    }

    /// Expected checkpoints for a run of `total_work` seconds — planning
    /// helper for the CLI.
    pub fn expected_checkpoints(&self, total_work: f64) -> f64 {
        (total_work / self.current_interval()).floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_at_the_daly_cadence() {
        // C = 2 s, MTBF = 10 000 s ⇒ w* = √(2·2·10⁴) = 200 s.
        let mut sched = CheckpointScheduler::new(10_000.0, 2.0);
        let mut steps_between = Vec::new();
        let mut count = 0;
        for _ in 0..1000 {
            count += 1;
            if sched.after_step(1.0) {
                steps_between.push(count);
                count = 0;
                sched.after_checkpoint(2.0);
            }
        }
        // Every interval ≈ 200 steps of 1 s.
        assert!(!steps_between.is_empty());
        for &s in &steps_between {
            assert!((195..=205).contains(&s), "interval {s} steps");
        }
    }

    #[test]
    fn adapts_when_checkpoints_get_expensive() {
        let mut sched = CheckpointScheduler::new(10_000.0, 2.0);
        let w_cheap = sched.current_interval();
        sched.after_checkpoint(50.0); // measured: much more expensive
        let w_measured = sched.current_interval();
        assert!(w_measured > 2.0 * w_cheap, "{w_cheap} → {w_measured}");
    }

    #[test]
    fn interval_never_below_one_step() {
        // Tiny MTBF would demand constant checkpointing; the floor keeps
        // one step of progress per checkpoint.
        let mut sched = CheckpointScheduler::new(1.0, 0.5);
        sched.after_step(10.0);
        assert!(sched.current_interval() >= 10.0);
    }

    #[test]
    fn expected_checkpoint_count() {
        let sched = CheckpointScheduler::new(10_000.0, 2.0);
        // w* = 200 ⇒ 5 checkpoints in 1 000 s of work.
        assert_eq!(sched.expected_checkpoints(1_000.0), 5.0);
    }

    // --- edge cases: invalid machine parameters must be rejected at
    // construction or observation time, never folded into the cadence ---

    #[test]
    #[should_panic]
    fn rejects_zero_mtbf() {
        CheckpointScheduler::new(0.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_mtbf() {
        CheckpointScheduler::new(-100.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_write_cost_guess() {
        CheckpointScheduler::new(10_000.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_step_time() {
        let mut sched = CheckpointScheduler::new(10_000.0, 2.0);
        sched.after_step(-1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_write_time() {
        let mut sched = CheckpointScheduler::new(10_000.0, 2.0);
        sched.after_checkpoint(-1.0);
    }

    #[test]
    fn write_cost_exceeding_mtbf_still_makes_progress() {
        // C ≥ 2M puts daly_interval in its degenerate regime (interval =
        // MTBF); with steps slower than the MTBF, the one-step floor wins
        // and the run checkpoints after every step instead of stalling.
        let mut sched = CheckpointScheduler::new(10.0, 50.0);
        assert_eq!(sched.current_interval(), 10.0);
        assert!(sched.after_step(30.0), "one slow step must trigger a checkpoint");
        sched.after_checkpoint(50.0);
        assert!(sched.current_interval() >= 30.0, "floor must track the measured step");
        assert!(sched.after_step(30.0));
    }

    #[test]
    fn zero_step_time_never_divides_the_cadence() {
        // Instant steps (cached/no-op) accumulate no work; the scheduler
        // must neither trigger nor corrupt its interval estimate.
        let mut sched = CheckpointScheduler::new(10_000.0, 2.0);
        for _ in 0..100 {
            assert!(!sched.after_step(0.0));
        }
        assert!(sched.current_interval().is_finite());
    }

    #[test]
    fn no_immediate_checkpoint_after_reset() {
        let mut sched = CheckpointScheduler::new(10_000.0, 2.0);
        let mut first_trigger = 0;
        for k in 1..=300 {
            if sched.after_step(1.0) {
                first_trigger = k;
                break;
            }
        }
        // Daly interval ≈ 198.7 s of work at C = 2 s, M = 10⁴ s.
        assert!((195..=205).contains(&first_trigger), "first trigger at {first_trigger}");
        sched.after_checkpoint(2.0);
        assert!(!sched.after_step(1.0), "clock must reset after a checkpoint");
    }
}
