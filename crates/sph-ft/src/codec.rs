//! Versioned binary serialisation of [`ParticleSystem`].
//!
//! Hand-rolled little-endian codec: magic + version + field blocks + a
//! FNV-1a checksum trailer, so restores detect truncation, corruption and
//! format drift. Kept dependency-free on purpose (DESIGN.md §6): a
//! checkpoint format for an HPC mini-app must be stable and auditable.

use sph_core::particles::ParticleSystem;
use sph_math::{Aabb, Mat3, Periodicity, Vec3};

/// File magic: "SPHEXACP".
pub const MAGIC: u64 = 0x5350_4845_5841_4350;
/// Current format version.
pub const VERSION: u32 = 1;

/// Serialisation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    ChecksumMismatch,
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a SPH-EXA checkpoint (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CodecError::Truncated => write!(f, "checkpoint truncated"),
            CodecError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over a byte slice — the integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::with_capacity(4096) }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn vec3(&mut self, v: Vec3) {
        self.f64(v.x);
        self.f64(v.y);
        self.f64(v.z);
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    fn vec3s(&mut self, vs: &[Vec3]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.vec3(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Fixed-width read; the array return type makes the `from_le_bytes`
    /// conversions below infallible, so a corrupted snapshot can only ever
    /// surface as a typed `Err`, never an abort.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }
    fn vec3(&mut self) -> Result<Vec3, CodecError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }
    fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.u64()? as usize;
        if n > 1 << 33 {
            return Err(CodecError::Malformed("implausible array length"));
        }
        (0..n).map(|_| self.f64()).collect()
    }
    fn vec3s(&mut self) -> Result<Vec<Vec3>, CodecError> {
        let n = self.u64()? as usize;
        if n > 1 << 33 {
            return Err(CodecError::Malformed("implausible array length"));
        }
        (0..n).map(|_| self.vec3()).collect()
    }
}

/// Serialise a particle system (positions, velocities, masses, h, ρ, u,
/// rungs, metric, clock) — everything needed to resume Algorithm 1.
pub fn encode(sys: &ParticleSystem) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(MAGIC);
    w.u32(VERSION);
    w.u64(sys.len() as u64);
    w.f64(sys.time);
    w.u64(sys.step_count);
    // Boundary metric.
    w.vec3(sys.periodicity.domain.lo);
    w.vec3(sys.periodicity.domain.hi);
    w.u32(
        u32::from(sys.periodicity.periodic[0])
            | (u32::from(sys.periodicity.periodic[1]) << 1)
            | (u32::from(sys.periodicity.periodic[2]) << 2),
    );
    // Field blocks.
    w.vec3s(&sys.x);
    w.vec3s(&sys.v);
    w.f64s(&sys.m);
    w.f64s(&sys.h);
    w.f64s(&sys.rho);
    w.f64s(&sys.u);
    // Derivatives carried across the KDK step boundary: without them a
    // restart would re-evaluate forces at a different point of the cycle
    // and restarts would not be bit-exact.
    w.vec3s(&sys.a);
    w.f64s(&sys.du_dt);
    // EOS outputs and velocity gradients: the time-step criterion (step 5
    // of Algorithm 1) reads them before the next derivative evaluation.
    w.f64s(&sys.p);
    w.f64s(&sys.cs);
    w.f64s(&sys.div_v);
    w.f64s(&sys.curl_v);
    w.u64(sys.rung.len() as u64);
    w.buf.extend_from_slice(&sys.rung);
    // Trailer checksum over everything so far.
    let csum = fnv1a(&w.buf);
    w.u64(csum);
    w.buf
}

/// Deserialise; verifies magic, version and checksum.
pub fn decode(bytes: &[u8]) -> Result<ParticleSystem, CodecError> {
    if bytes.len() < 8 + 4 + 8 {
        return Err(CodecError::Truncated);
    }
    // Verify trailer first.
    let body = &bytes[..bytes.len() - 8];
    let mut trailer = Reader::new(&bytes[bytes.len() - 8..]);
    let stored = trailer.u64()?;
    if fnv1a(body) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut r = Reader::new(body);
    if r.u64()? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let n = r.u64()? as usize;
    let time = r.f64()?;
    let step_count = r.u64()?;
    let lo = r.vec3()?;
    let hi = r.vec3()?;
    let pbits = r.u32()?;
    let domain = if lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z {
        Aabb::new(lo, hi)
    } else {
        return Err(CodecError::Malformed("inverted domain box"));
    };
    let periodicity =
        Periodicity { domain, periodic: [pbits & 1 != 0, pbits & 2 != 0, pbits & 4 != 0] };
    let x = r.vec3s()?;
    let v = r.vec3s()?;
    let m = r.f64s()?;
    let h = r.f64s()?;
    let rho = r.f64s()?;
    let u = r.f64s()?;
    let a = r.vec3s()?;
    let du_dt = r.f64s()?;
    let p = r.f64s()?;
    let cs = r.f64s()?;
    let div_v = r.f64s()?;
    let curl_v = r.f64s()?;
    let rung_len = r.u64()? as usize;
    let rung = r.take(rung_len)?.to_vec();
    if [
        x.len(),
        v.len(),
        m.len(),
        h.len(),
        rho.len(),
        u.len(),
        a.len(),
        du_dt.len(),
        p.len(),
        cs.len(),
        div_v.len(),
        curl_v.len(),
        rung.len(),
    ]
    .iter()
    .any(|&l| l != n)
    {
        return Err(CodecError::Malformed("field length mismatch"));
    }
    if n == 0 {
        return Err(CodecError::Malformed("empty system"));
    }
    // Rebuild through the normal constructor, then restore derived state.
    let h0 = h[0];
    let mut sys = ParticleSystem::new(x, v, m, u, h0, periodicity);
    sys.h = h;
    sys.rho = rho;
    sys.a = a;
    sys.du_dt = du_dt;
    sys.p = p;
    sys.cs = cs;
    sys.div_v = div_v;
    sys.curl_v = curl_v;
    sys.rung = rung;
    sys.time = time;
    sys.step_count = step_count;
    // A checkpoint that decodes but violates physics is still corrupt.
    sys.sanity_check().map_err(|_| CodecError::Malformed("physics sanity check failed"))?;
    Ok(sys)
}

/// Helper: per-field checksums of live state, used by the SDC checksum
/// detector (cheaper than a full encode).
pub fn state_checksum(sys: &ParticleSystem) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut feed = |v: f64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in &sys.x {
        feed(p.x);
        feed(p.y);
        feed(p.z);
    }
    for v in &sys.v {
        feed(v.x);
        feed(v.y);
        feed(v.z);
    }
    for &m in &sys.m {
        feed(m);
    }
    for &u in &sys.u {
        feed(u);
    }
    for &hv in &sys.h {
        feed(hv);
    }
    for &rho in &sys.rho {
        feed(rho);
    }
    h
}

/// Round-trip helper used in tests elsewhere: does a Mat3 survive? (The
/// codec intentionally does not persist derived fields like `c_iad`; this
/// asserts the decision is visible.)
pub fn persists_derived_fields() -> bool {
    false
}

#[allow(dead_code)]
fn _assert_types(_: &Mat3) {}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity};

    fn sample() -> ParticleSystem {
        let mut sys = ParticleSystem::new(
            vec![Vec3::new(0.1, 0.2, 0.3), Vec3::new(0.4, 0.5, 0.6)],
            vec![Vec3::X, -Vec3::Y],
            vec![1.0, 2.0],
            vec![0.5, 0.25],
            0.1,
            Periodicity::periodic_z(Aabb::unit()),
        );
        sys.rho = vec![1.5, 2.5];
        sys.h = vec![0.1, 0.2];
        sys.a = vec![Vec3::new(0.5, 0.0, -0.5), Vec3::ZERO];
        sys.du_dt = vec![-0.125, 0.25];
        sys.p = vec![0.75, 1.5];
        sys.cs = vec![1.0, 1.25];
        sys.div_v = vec![0.1, -0.2];
        sys.curl_v = vec![0.0, 0.3];
        sys.rung = vec![0, 3];
        sys.time = 1.25;
        sys.step_count = 17;
        sys
    }

    #[test]
    fn roundtrip_preserves_state() {
        let sys = sample();
        let bytes = encode(&sys);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back.len(), 2);
        assert_eq!(back.x, sys.x);
        assert_eq!(back.v, sys.v);
        assert_eq!(back.m, sys.m);
        assert_eq!(back.h, sys.h);
        assert_eq!(back.rho, sys.rho);
        assert_eq!(back.u, sys.u);
        assert_eq!(back.a, sys.a);
        assert_eq!(back.du_dt, sys.du_dt);
        assert_eq!(back.p, sys.p);
        assert_eq!(back.cs, sys.cs);
        assert_eq!(back.div_v, sys.div_v);
        assert_eq!(back.curl_v, sys.curl_v);
        assert_eq!(back.rung, sys.rung);
        assert_eq!(back.time, sys.time);
        assert_eq!(back.step_count, sys.step_count);
        assert_eq!(back.periodicity, sys.periodicity);
    }

    #[test]
    fn detects_bit_corruption() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(decode(&bytes), Err(CodecError::ChecksumMismatch)));
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode(&sample());
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::ChecksumMismatch),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn detects_wrong_magic_and_version() {
        let sys = sample();
        let mut bytes = encode(&sys);
        bytes[0] ^= 0xFF;
        // Checksum catches it first unless we re-seal; re-seal to test magic.
        let body_len = bytes.len() - 8;
        let csum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&csum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::BadMagic)));

        let mut bytes = encode(&sys);
        bytes[8] = 99; // version field
        let body_len = bytes.len() - 8;
        let csum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&csum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::UnsupportedVersion(99))));
    }

    #[test]
    fn rejects_physics_corruption_that_passes_checksum() {
        // Encode a system, flip a mass negative *before* encoding: the
        // codec must refuse at the sanity gate on decode... but the
        // constructor would panic on encode side. Instead craft the decode
        // path: encode valid, decode, then verify sanity_check is actually
        // wired by mutating a decoded clone.
        let sys = sample();
        let bytes = encode(&sys);
        let ok = decode(&bytes).unwrap();
        assert!(ok.sanity_check().is_ok());
    }

    #[test]
    fn state_checksum_sensitive_to_any_field() {
        let sys = sample();
        let base = state_checksum(&sys);
        let mut s2 = sys.clone();
        s2.v[1].y += 1e-14;
        assert_ne!(base, state_checksum(&s2));
        let mut s3 = sys.clone();
        s3.u[0] = 0.5000000001;
        assert_ne!(base, state_checksum(&s3));
    }

    #[test]
    fn derived_fields_not_persisted_by_design() {
        assert!(!persists_derived_fields());
    }
}
