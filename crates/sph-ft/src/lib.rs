//! Fault-tolerance substrate.
//!
//! Table 4 prescribes for the mini-app: "Checkpoint-Restart: Optimal
//! interval, Multilevel" and "Error Detection: Silent data corruption
//! detectors"; §4 adds selective replication and ABFT. All of it is here:
//!
//! * [`codec`] — versioned, checksummed binary serialisation of the
//!   particle state (no external dependencies);
//! * [`checkpoint`] — in-memory and on-disk checkpoint stores with
//!   integrity verification on restore;
//! * [`daly`] — the Young/Daly optimal checkpoint interval and the
//!   expected-waste model it minimises;
//! * [`multilevel`] — multi-level checkpointing (node-local / partner /
//!   parallel-file-system) with a failure-level simulator, after Di et
//!   al. / Benoit et al. (paper refs [7, 20]);
//! * [`sdc`] — silent-data-corruption injection and three detectors
//!   (checksum, physics bounds, conservation drift) plus an ABFT-style
//!   redundant reduction;
//! * [`replication`] — selective (sampled) duplicate evaluation;
//! * [`chaos`] — deterministic seeded fault plans and the fault-injecting
//!   [`Exchange`](sph_domain::Exchange) wrapper the chaos suite drives;
//! * [`error`] — the typed [`FtError`] all of the above report with.

pub mod chaos;
pub mod checkpoint;
pub mod codec;
pub mod daly;
pub mod error;
pub mod multilevel;
pub mod replication;
pub mod scheduler;
pub mod sdc;

pub use chaos::{CorruptionMode, FaultEvent, FaultKind, FaultPlan, FaultyExchange};
pub use checkpoint::{CheckpointStore, DiskStore, MemoryStore, NamespacedStore, StoredKind};
pub use daly::{daly_interval, expected_waste};
pub use error::FtError;
pub use multilevel::{
    simulate_run, CheckpointLevel, FailureInjector, MultilevelConfig, RunOutcome,
};
pub use scheduler::CheckpointScheduler;
pub use sdc::{
    ChecksumDetector, ConservationDetector, FaultField, InjectedFault, PhysicsBoundsDetector,
    SdcDetector, SdcInjector, Verdict,
};
