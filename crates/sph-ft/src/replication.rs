//! Selective replication — §5.2: "fault-tolerance is currently being
//! addressed via the combination of **selective replication**,
//! algorithm-based fault-tolerance (ABFT) techniques, and optimal
//! checkpointing".
//!
//! Full duplex replication doubles the machine; *selective* replication
//! re-executes only a sampled subset of the work on different workers and
//! compares. Detection probability for a corruption affecting a fraction
//! `f` of particles, sampling a fraction `s`, is `1 − (1−f)^{sN}` — high
//! even for small samples on large N, which is the scheme's point.

use sph_math::{SplitMix64, Vec3};

/// Outcome of a replicated check.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationVerdict {
    /// All sampled recomputations agreed.
    Consistent,
    /// Some sampled particle disagreed beyond tolerance.
    Mismatch { particle: u32, relative_error: f64 },
}

/// Selective replication checker: samples `sample_fraction` of the
/// particles (deterministically per seed) and compares a recomputed
/// quantity against the stored one.
#[derive(Debug)]
pub struct SelectiveReplication {
    pub sample_fraction: f64,
    pub rel_tolerance: f64,
    seed: u64,
}

impl SelectiveReplication {
    pub fn new(sample_fraction: f64, rel_tolerance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&sample_fraction) && sample_fraction > 0.0);
        assert!(rel_tolerance >= 0.0);
        SelectiveReplication { sample_fraction, rel_tolerance, seed }
    }

    /// The deterministic sample of particle indices for a system of `n`.
    pub fn sample_indices(&self, n: usize) -> Vec<u32> {
        let mut rng = SplitMix64::new(SplitMix64::new(self.seed).derive("replication-sample"));
        let count = ((n as f64 * self.sample_fraction).ceil() as usize).clamp(1, n);
        // Partial Fisher–Yates over an index array.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for k in 0..count {
            let j = k as u64 + rng.next_below((n - k) as u64);
            idx.swap(k, j as usize);
        }
        idx.truncate(count);
        idx.sort_unstable();
        idx
    }

    /// Compare stored values against recomputation for the sampled subset.
    ///
    /// `stored` is the full per-particle array (e.g. accelerations);
    /// `recompute` is called for each sampled index and must reproduce the
    /// stored value if no corruption occurred.
    pub fn verify_vec3(
        &self,
        stored: &[Vec3],
        mut recompute: impl FnMut(u32) -> Vec3,
    ) -> ReplicationVerdict {
        for &i in &self.sample_indices(stored.len()) {
            let fresh = recompute(i);
            let old = stored[i as usize];
            let scale = old.norm().max(fresh.norm()).max(1e-300);
            let rel = (fresh - old).norm() / scale;
            if rel > self.rel_tolerance {
                return ReplicationVerdict::Mismatch { particle: i, relative_error: rel };
            }
        }
        ReplicationVerdict::Consistent
    }

    /// Analytic detection probability for corruption touching a fraction
    /// `f` of the particles.
    pub fn detection_probability(&self, n: usize, corrupted_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&corrupted_fraction));
        let sampled = ((n as f64 * self.sample_fraction).ceil()).min(n as f64);
        1.0 - (1.0 - corrupted_fraction).powf(sampled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic_and_sized() {
        let r = SelectiveReplication::new(0.1, 1e-12, 3);
        let a = r.sample_indices(1000);
        let b = r.sample_indices(1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // No duplicates.
        let mut c = a.clone();
        c.dedup();
        assert_eq!(c.len(), a.len());
    }

    #[test]
    fn consistent_when_recomputation_matches() {
        let stored: Vec<Vec3> = (0..500).map(|i| Vec3::splat(i as f64)).collect();
        let r = SelectiveReplication::new(0.05, 1e-12, 1);
        let v = r.verify_vec3(&stored, |i| Vec3::splat(i as f64));
        assert_eq!(v, ReplicationVerdict::Consistent);
    }

    #[test]
    fn detects_corruption_in_sampled_particle() {
        let mut stored: Vec<Vec3> = (0..500).map(|i| Vec3::splat(i as f64 + 1.0)).collect();
        let r = SelectiveReplication::new(0.1, 1e-9, 2);
        // Corrupt exactly one *sampled* particle.
        let victim = r.sample_indices(500)[0];
        stored[victim as usize] += Vec3::X * 0.5;
        match r.verify_vec3(&stored, |i| Vec3::splat(i as f64 + 1.0)) {
            ReplicationVerdict::Mismatch { particle, relative_error } => {
                assert_eq!(particle, victim);
                assert!(relative_error > 1e-9);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn misses_corruption_outside_the_sample() {
        // The price of *selective* replication — also worth testing.
        let mut stored: Vec<Vec3> = (0..500).map(|i| Vec3::splat(i as f64 + 1.0)).collect();
        let r = SelectiveReplication::new(0.02, 1e-9, 4);
        let sampled = r.sample_indices(500);
        let victim = (0..500u32).find(|i| !sampled.contains(i)).unwrap();
        stored[victim as usize] += Vec3::X;
        assert_eq!(
            r.verify_vec3(&stored, |i| Vec3::splat(i as f64 + 1.0)),
            ReplicationVerdict::Consistent
        );
    }

    #[test]
    fn tolerance_forgives_roundoff() {
        let stored: Vec<Vec3> = (0..100).map(|i| Vec3::splat(i as f64 + 1.0)).collect();
        let r = SelectiveReplication::new(0.5, 1e-6, 5);
        // Recomputation differs at the 1e-9 level — within tolerance.
        let v = r.verify_vec3(&stored, |i| Vec3::splat((i as f64 + 1.0) * (1.0 + 1e-9)));
        assert_eq!(v, ReplicationVerdict::Consistent);
    }

    #[test]
    fn detection_probability_behaviour() {
        let r = SelectiveReplication::new(0.01, 1e-12, 6);
        // Widespread corruption is near-certain to be caught even at 1%.
        let p_wide = r.detection_probability(100_000, 0.01);
        assert!(p_wide > 0.9999, "p = {p_wide}");
        // A single corrupted particle in 100k with a 1% sample: ~1%.
        let p_single = r.detection_probability(100_000, 1.0 / 100_000.0);
        assert!((p_single - 0.01).abs() < 0.002, "p = {p_single}");
    }
}
