//! Typed errors for the fault-tolerance substrate.
//!
//! Mirrors the `TimeStepError` pattern from `sph-core`: every fallible
//! `sph-ft` operation names *what* failed in a matchable enum instead of
//! a formatted `String`, so recovery code can branch on the failure kind
//! (missing vs corrupt vs unsupported) and the chaos suite can assert
//! the exact fault that was detected.

use crate::codec::CodecError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong in checkpoint storage, SDC machinery,
/// and the redundant reductions.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// Snapshot bytes failed to decode (bad magic, truncation, checksum…).
    Codec(CodecError),
    /// No snapshot stored under this label.
    MissingCheckpoint { label: String },
    /// No blob stored under this label.
    MissingBlob { label: String },
    /// A blob's integrity trailer failed verification *before* decoding.
    BlobCorrupted { label: String, detail: String },
    /// Underlying storage I/O failed (disk tier only).
    Io { label: String, detail: String },
    /// The store does not implement this operation.
    Unsupported { what: &'static str },
    /// The ABFT duplicated reduction disagreed with itself.
    RedundantSumMismatch { forward: f64, backward: f64 },
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::Codec(e) => write!(f, "{e}"),
            FtError::MissingCheckpoint { label } => write!(f, "no checkpoint '{label}'"),
            FtError::MissingBlob { label } => write!(f, "no blob '{label}'"),
            FtError::BlobCorrupted { label, detail } => {
                write!(f, "blob '{label}' corrupted: {detail}")
            }
            FtError::Io { label, detail } => write!(f, "storage I/O on '{label}': {detail}"),
            FtError::Unsupported { what } => {
                write!(f, "this checkpoint store does not support {what}")
            }
            FtError::RedundantSumMismatch { forward, backward } => {
                write!(f, "redundant sums disagree: {forward} vs {backward}")
            }
        }
    }
}

impl Error for FtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for FtError {
    fn from(e: CodecError) -> Self {
        FtError::Codec(e)
    }
}

impl From<FtError> for String {
    fn from(e: FtError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = FtError::BlobCorrupted { label: "ck3".into(), detail: "trailer mismatch".into() };
        assert_eq!(e.to_string(), "blob 'ck3' corrupted: trailer mismatch");
        let e: FtError = CodecError::ChecksumMismatch.into();
        assert!(matches!(e, FtError::Codec(CodecError::ChecksumMismatch)));
        let s: String = FtError::Unsupported { what: "raw blobs" }.into();
        assert!(s.contains("raw blobs"));
    }
}
