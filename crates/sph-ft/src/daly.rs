//! Optimal checkpoint interval (Young 1974; Daly 2006) — the "Optimal
//! interval" requirement of Table 4, after the paper's refs [15, 20, 21].
//!
//! For checkpoint cost `C`, recovery cost `R` and machine MTBF `M`, the
//! wall-clock waste of checkpointing every `w` seconds of useful work is
//! minimised near `w* = √(2 C M)` (Young), with Daly's higher-order
//! refinement `w* = √(2CM)·[1 + ⅓√(C/2M) + (C/2M)/9] − C` for `C < 2M`.

/// Young's first-order optimal interval `√(2 C M)`.
pub fn young_interval(checkpoint_cost: f64, mtbf: f64) -> f64 {
    assert!(checkpoint_cost > 0.0 && mtbf > 0.0);
    (2.0 * checkpoint_cost * mtbf).sqrt()
}

/// Daly's refined optimal interval.
pub fn daly_interval(checkpoint_cost: f64, mtbf: f64) -> f64 {
    assert!(checkpoint_cost > 0.0 && mtbf > 0.0);
    let c = checkpoint_cost;
    let m = mtbf;
    if c >= 2.0 * m {
        // Degenerate regime: checkpointing costs more than the MTBF —
        // checkpoint every MTBF.
        return m;
    }
    let x = (c / (2.0 * m)).sqrt();
    (2.0 * c * m).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - c
}

/// Expected fraction of wall-clock time wasted (checkpoint overhead +
/// expected rework + recovery) when checkpointing every `w` seconds of
/// work, under exponential failures with MTBF `M` (first-order model).
pub fn expected_waste(w: f64, checkpoint_cost: f64, recovery_cost: f64, mtbf: f64) -> f64 {
    assert!(w > 0.0 && checkpoint_cost >= 0.0 && recovery_cost >= 0.0 && mtbf > 0.0);
    // Per period of useful work w: overhead C, failure probability
    // (w + C)/M, expected rework w/2 + recovery R.
    let period = w + checkpoint_cost;
    let p_fail = (period / mtbf).min(1.0);
    let waste = checkpoint_cost + p_fail * (w / 2.0 + recovery_cost);
    waste / (w + waste)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_formula() {
        // C = 50 s, M = 10000 s ⇒ w* = √(2·50·10⁴) = 1000 s.
        assert!((young_interval(50.0, 10_000.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn daly_close_to_young_for_small_c_over_m() {
        let (c, m) = (10.0, 1_000_000.0);
        let y = young_interval(c, m);
        let d = daly_interval(c, m);
        assert!((d - y).abs() / y < 0.01, "young {y}, daly {d}");
    }

    #[test]
    fn daly_degenerate_regime() {
        // C ≥ 2M: interval collapses to the MTBF.
        assert_eq!(daly_interval(100.0, 40.0), 40.0);
    }

    #[test]
    fn optimal_interval_minimises_waste() {
        let (c, r, m) = (30.0, 60.0, 20_000.0);
        let w_opt = daly_interval(c, m);
        let waste_opt = expected_waste(w_opt, c, r, m);
        // The optimum must beat 4× shorter and 4× longer intervals.
        let waste_short = expected_waste(w_opt / 4.0, c, r, m);
        let waste_long = expected_waste(w_opt * 4.0, c, r, m);
        assert!(waste_opt < waste_short, "{waste_opt} !< {waste_short}");
        assert!(waste_opt < waste_long, "{waste_opt} !< {waste_long}");
    }

    #[test]
    fn waste_increases_with_failure_rate() {
        let w = 500.0;
        let low = expected_waste(w, 30.0, 60.0, 100_000.0);
        let high = expected_waste(w, 30.0, 60.0, 5_000.0);
        assert!(high > low);
    }

    #[test]
    fn waste_is_a_fraction() {
        for &(w, c, r, m) in
            &[(100.0, 10.0, 10.0, 1e4), (1e4, 100.0, 500.0, 1e3), (1.0, 0.1, 0.1, 1e6)]
        {
            let f = expected_waste(w, c, r, m);
            assert!((0.0..1.0).contains(&f), "waste {f}");
        }
    }

    // --- edge cases: the formulas must reject nonsense loudly, not
    // return a quietly wrong interval ---

    #[test]
    #[should_panic]
    fn young_rejects_zero_mtbf() {
        young_interval(10.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn young_rejects_zero_cost() {
        young_interval(0.0, 1e4);
    }

    #[test]
    #[should_panic]
    fn daly_rejects_negative_mtbf() {
        daly_interval(10.0, -5.0);
    }

    #[test]
    #[should_panic]
    fn daly_rejects_nonpositive_cost() {
        daly_interval(0.0, 1e4);
    }

    #[test]
    #[should_panic]
    fn waste_rejects_zero_work_interval() {
        expected_waste(0.0, 10.0, 10.0, 1e4);
    }

    #[test]
    #[should_panic]
    fn waste_rejects_negative_recovery_cost() {
        expected_waste(100.0, 10.0, -1.0, 1e4);
    }

    #[test]
    fn daly_degenerate_boundary_is_continuous_in_regime_choice() {
        // Exactly C = 2M sits in the degenerate branch: interval = MTBF.
        let m = 50.0;
        assert_eq!(daly_interval(2.0 * m, m), m);
        // Just below the boundary the refined formula applies and stays
        // positive and finite.
        let below = daly_interval(2.0 * m - 1e-9, m);
        assert!(below.is_finite() && below > 0.0, "interval {below}");
    }

    #[test]
    fn waste_increases_monotonically_away_from_the_optimum() {
        // Walk both directions from w*: each doubling away from the
        // optimum must cost at least as much as the previous point.
        let (c, r, m) = (30.0, 60.0, 20_000.0);
        let w_opt = daly_interval(c, m);
        let mut prev = expected_waste(w_opt, c, r, m);
        for k in 1..=4 {
            let next = expected_waste(w_opt * f64::powi(2.0, k), c, r, m);
            assert!(next >= prev, "waste fell moving away from optimum: {prev} → {next}");
            prev = next;
        }
        let mut prev = expected_waste(w_opt, c, r, m);
        for k in 1..=4 {
            let next = expected_waste(w_opt / f64::powi(2.0, k), c, r, m);
            assert!(next >= prev, "waste fell moving away from optimum: {prev} → {next}");
            prev = next;
        }
    }
}
