//! Property-based tests of the fault-tolerance substrate: the codec must
//! round-trip any physical state and reject any corruption; the Daly
//! interval must actually be optimal.

use proptest::prelude::*;
use sph_core::particles::ParticleSystem;
use sph_ft::codec::{decode, encode};
use sph_ft::daly::{daly_interval, expected_waste, young_interval};
use sph_math::{Aabb, Periodicity, Vec3};

fn physical_system() -> impl Strategy<Value = ParticleSystem> {
    // 1–40 particles with physical (positive-mass, finite) state.
    prop::collection::vec(
        (
            (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64),
            (-10.0..10.0_f64, -10.0..10.0_f64, -10.0..10.0_f64),
            0.001..10.0_f64, // mass
            0.0..100.0_f64,  // u
            0.001..1.0_f64,  // h
        ),
        1..40,
    )
    .prop_map(|rows| {
        let n = rows.len();
        let mut sys = ParticleSystem::new(
            rows.iter().map(|r| Vec3::new(r.0 .0, r.0 .1, r.0 .2)).collect(),
            rows.iter().map(|r| Vec3::new(r.1 .0, r.1 .1, r.1 .2)).collect(),
            rows.iter().map(|r| r.2).collect(),
            rows.iter().map(|r| r.3).collect(),
            0.1,
            Periodicity::periodic_z(Aabb::unit()),
        );
        sys.h = rows.iter().map(|r| r.4).collect();
        sys.rho = vec![1.0; n];
        sys.time = 3.25;
        sys.step_count = 11;
        sys
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_roundtrips_any_physical_state(sys in physical_system()) {
        let bytes = encode(&sys);
        let back = decode(&bytes).expect("roundtrip");
        prop_assert_eq!(back.x, sys.x);
        prop_assert_eq!(back.v, sys.v);
        prop_assert_eq!(back.m, sys.m);
        prop_assert_eq!(back.h, sys.h);
        prop_assert_eq!(back.u, sys.u);
        prop_assert_eq!(back.time, sys.time);
        prop_assert_eq!(back.step_count, sys.step_count);
        prop_assert_eq!(back.periodicity, sys.periodicity);
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(sys in physical_system(), which in any::<prop::sample::Index>(), bit in 0u8..8) {
        let bytes = encode(&sys);
        let k = which.index(bytes.len());
        let mut corrupted = bytes.clone();
        corrupted[k] ^= 1 << bit;
        prop_assert!(decode(&corrupted).is_err(), "flip at byte {k} bit {bit} accepted");
    }

    #[test]
    fn any_truncation_is_rejected(sys in physical_system(), frac in 0.0..0.999_f64) {
        let bytes = encode(&sys);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn daly_interval_is_locally_optimal(c in 1.0..100.0_f64, m_factor in 10.0..1000.0_f64, r in 0.0..200.0_f64) {
        let m = c * m_factor; // keep C < 2M
        let w = daly_interval(c, m);
        prop_assert!(w > 0.0);
        let at = expected_waste(w, c, r, m);
        // The optimum beats substantially shorter and longer intervals.
        prop_assert!(at <= expected_waste(w * 3.0, c, r, m) + 1e-12);
        prop_assert!(at <= expected_waste(w / 3.0, c, r, m) + 1e-12);
    }

    #[test]
    fn daly_refines_young_downward_bounded(c in 0.1..50.0_f64, m in 1_000.0..1e6_f64) {
        let y = young_interval(c, m);
        let d = daly_interval(c, m);
        // Daly subtracts C and adds small corrections; stays within 2× of
        // Young in the sane regime.
        prop_assert!(d > 0.0);
        prop_assert!(d < 2.0 * y);
    }

    #[test]
    fn waste_fraction_bounded(w in 1.0..1e5_f64, c in 0.0..100.0_f64, r in 0.0..1e3_f64, m in 10.0..1e6_f64) {
        let f = expected_waste(w, c, r, m);
        prop_assert!((0.0..1.0).contains(&f), "waste {f}");
    }
}
