//! Kelvin–Helmholtz shear layer (McNally, Lyra & Passy 2012 setup).
//!
//! Two fluid layers in pressure equilibrium slide past each other; a
//! seeded sinusoidal transverse velocity perturbation of wavelength
//! λ = 1/2 grows by the KH instability. There is no closed-form
//! nonlinear solution, so the validation diagnostic is the *mode
//! amplitude*: the λ-Fourier component of the transverse velocity,
//! weighted towards the interfaces exactly as McNally et al. define it.
//! During the linear phase the amplitude must grow monotonically — a
//! solver that over-damps shear (e.g. artificial viscosity without the
//! Balsara switch) fails this immediately.
//!
//! Density and shear velocity are ramped smoothly across the interfaces
//! so the growth starts from a *resolved* state instead of lattice
//! noise: the registered scenario uses a ramp width of two particle
//! spacings (never below McNally's σ = 0.025) — IC smoothing tied to
//! the lattice like the smoothing length itself, and safe precisely
//! because KH validates through the tracked mode amplitude, not a
//! cfg-derived pointwise reference. The density contrast is carried by **variable
//! particle masses** on a uniform lattice (Table 1's "variable mass"
//! configuration), which keeps the lattice — and the smoothing-length
//! iteration — uniform across the contact.

use crate::engine::momentum_scale;
use crate::engine::{
    AnalyticReference, Check, Resolution, Scenario, ScenarioRun, ScenarioSetup, ValidationReport,
};
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::eos::IdealGas;
use sph_core::particles::ParticleSystem;
use sph_math::{Aabb, Periodicity, Vec3};
use std::f64::consts::PI;

/// Kelvin–Helmholtz configuration (McNally et al. 2012 values).
#[derive(Debug, Clone, Copy)]
pub struct KelvinHelmholtzConfig {
    /// Lattice cells per unit length.
    pub nx: usize,
    /// Slab thickness in cells.
    pub nz: usize,
    /// Outer-layer density (y < 1/4 or y > 3/4).
    pub rho1: f64,
    /// Inner-band density (1/4 ≤ y ≤ 3/4).
    pub rho2: f64,
    /// Outer-layer x-velocity (inner band moves at −v1).
    pub v1: f64,
    /// Uniform pressure.
    pub pressure: f64,
    /// Interface ramp width σ.
    pub sigma: f64,
    /// Seed amplitude of the transverse velocity perturbation.
    pub delta: f64,
    pub gamma: f64,
}

impl Default for KelvinHelmholtzConfig {
    fn default() -> Self {
        KelvinHelmholtzConfig {
            nx: 32,
            nz: 8,
            rho1: 1.0,
            rho2: 2.0,
            v1: 1.0,
            pressure: 2.5,
            sigma: 0.025,
            delta: 0.01,
            gamma: 5.0 / 3.0,
        }
    }
}

/// McNally's smooth vertical ramp of a quantity that is `a` in the outer
/// layers and `b` in the inner band, with interfaces at y = 1/4, 3/4.
fn ramp(y: f64, a: f64, b: f64, sigma: f64) -> f64 {
    let m = (a - b) / 2.0;
    if y < 0.25 {
        a - m * ((y - 0.25) / sigma).exp()
    } else if y < 0.5 {
        b + m * ((0.25 - y) / sigma).exp()
    } else if y < 0.75 {
        b + m * ((y - 0.75) / sigma).exp()
    } else {
        a - m * ((0.75 - y) / sigma).exp()
    }
}

/// Build the KH initial conditions on `[0,1]² × [0, nz/nx]`, fully
/// periodic, with the density contrast in per-particle masses.
pub fn kelvin_helmholtz(cfg: &KelvinHelmholtzConfig) -> ParticleSystem {
    assert!(cfg.nx >= 8 && cfg.nz >= 4);
    assert!(cfg.rho1 > 0.0 && cfg.rho2 > 0.0 && cfg.pressure > 0.0 && cfg.sigma > 0.0);
    let dx = 1.0 / cfg.nx as f64;
    let lz = cfg.nz as f64 * dx;
    let n = cfg.nx * cfg.nx * cfg.nz;
    let eos = IdealGas::new(cfg.gamma);

    let mut x = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut m = Vec::with_capacity(n);
    let mut u = Vec::with_capacity(n);
    for iz in 0..cfg.nz {
        for iy in 0..cfg.nx {
            for ix in 0..cfg.nx {
                let p = Vec3::new(
                    (ix as f64 + 0.5) * dx,
                    (iy as f64 + 0.5) * dx,
                    (iz as f64 + 0.5) * dx,
                );
                let rho = ramp(p.y, cfg.rho1, cfg.rho2, cfg.sigma);
                let mut vx = ramp(p.y, cfg.v1, -cfg.v1, cfg.sigma);
                // Seed the *divergence-free eigenmode* of each
                // interface, from the stream function
                // ψ = (δ/k) cos(kx) e^{−k|y−y₀|}: a y-uniform (or
                // compressive) seed mostly sheds acoustic waves and
                // damps before the instability can amplify it.
                let k = 4.0 * PI;
                let mut vy = 0.0;
                for y0 in [0.25, 0.75] {
                    let d = p.y - y0;
                    let env = (-k * d.abs()).exp();
                    vy += cfg.delta * (k * p.x).sin() * env;
                    vx -= cfg.delta * (k * p.x).cos() * d.signum() * env;
                }
                x.push(p);
                v.push(Vec3::new(vx, vy, 0.0));
                m.push(rho * dx * dx * dx);
                u.push(eos.energy_from_pressure(rho, cfg.pressure));
            }
        }
    }
    let domain = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, lz));
    ParticleSystem::new(x, v, m, u, 1.5 * dx, Periodicity::fully_periodic(domain))
}

/// McNally et al. (2012) KH mode amplitude: the λ = 1/2 Fourier
/// component of the transverse velocity, exponentially weighted towards
/// the two interfaces.
pub fn kh_mode_amplitude(sys: &ParticleSystem) -> f64 {
    let k = 4.0 * PI;
    let (mut s, mut c, mut d) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..sys.len() {
        let y = sys.x[i].y;
        let dist = (y - 0.25).abs().min((y - 0.75).abs());
        let w = sys.m[i] * (-k * dist).exp();
        s += w * sys.v[i].y * (k * sys.x[i].x).sin();
        c += w * sys.v[i].y * (k * sys.x[i].x).cos();
        d += w;
    }
    2.0 * (s * s + c * c).sqrt() / d
}

/// The registered Kelvin–Helmholtz workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct KelvinHelmholtzScenario;

impl KelvinHelmholtzScenario {
    fn cfg(&self, res: Resolution) -> KelvinHelmholtzConfig {
        let nx = res.scaled(32, 12);
        // The ramp must be resolved at every scale: at least two
        // particle spacings, never thinner than McNally's σ = 0.025.
        let sigma = (2.0 / nx as f64).max(0.025);
        KelvinHelmholtzConfig { nx, nz: res.scaled(8, 4), sigma, ..Default::default() }
    }
}

impl Scenario for KelvinHelmholtzScenario {
    fn name(&self) -> &'static str {
        "kelvin-helmholtz"
    }

    fn reference(&self) -> &'static str {
        "McNally, Lyra & Passy 2012"
    }

    fn description(&self) -> &'static str {
        "Shear layer with seeded λ = ½ mode: instability growth diagnostic"
    }

    fn analytic_check(&self) -> &'static str {
        "seeded-mode amplitude grows monotonically through the linear phase"
    }

    fn init(&self, res: Resolution) -> ScenarioSetup {
        let cfg = self.cfg(res);
        let config = SphConfig {
            gamma: cfg.gamma,
            target_neighbors: 60,
            // Subsonic shear: half-strength AV + Balsara, so the seed
            // mode is not eaten before the instability amplifies it.
            viscosity: ViscosityConfig { alpha: 0.5, beta: 1.0, eta2: 0.01, balsara: true },
            ..Default::default()
        };
        ScenarioSetup { sys: kelvin_helmholtz(&cfg), config, gravity: None }
    }

    fn end_time(&self) -> f64 {
        // ~one KH growth time τ = (ρ₁+ρ₂)λ / (√(ρ₁ρ₂)·Δv) ≈ 1.06.
        1.0
    }

    /// No pointwise reference: the registered bound gates the energy
    /// drift instead.
    fn l1_tolerance(&self) -> f64 {
        0.02
    }

    fn analytic_reference(&self, _t: f64) -> Option<AnalyticReference> {
        None
    }

    fn track(&self, sys: &ParticleSystem) -> Option<f64> {
        Some(kh_mode_amplitude(sys))
    }

    fn validate(&self, run: &ScenarioRun) -> ValidationReport {
        // Monotonic growth, scored coarse-grained after the
        // seed-relaxation transient (the SPH pressure field takes ~one
        // interface sound-crossing, t ≈ 0.2, to absorb the seed; the
        // divergence-free eigenmode seed keeps that adjustment small,
        // but not zero). Acoustic modulation superposes bounded ±20 %
        // wiggles on the exponential growth, so the gate compares
        // *block means*: the scored samples are split into five equal
        // blocks whose mean amplitudes must strictly increase.
        let t_score = 0.2;
        let scored: Vec<f64> =
            run.samples.iter().filter(|s| s.time >= t_score).map(|s| s.value).collect();
        let nblocks = 5usize;
        let mut violations = 0u32;
        if scored.len() >= nblocks {
            let means: Vec<f64> = (0..nblocks)
                .map(|b| {
                    let lo = b * scored.len() / nblocks;
                    let hi = (b + 1) * scored.len() / nblocks;
                    scored[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
                })
                .collect();
            for w in means.windows(2) {
                if w[1] <= w[0] {
                    violations += 1;
                }
            }
        } else {
            violations = u32::MAX; // run too short to judge growth
        }
        let first = run.samples.first().map(|s| s.value).unwrap_or(0.0);
        let last = run.samples.last().map(|s| s.value).unwrap_or(0.0);
        let growth = if first > 0.0 { last / first } else { 0.0 };
        let momentum_scale = momentum_scale(&run.sys);
        let checks = vec![
            Check::upper("mode_growth_violations", violations as f64, 0.0),
            Check::lower("mode_growth_factor", growth, 1.5),
            Check::upper("energy_drift", run.energy_drift(), self.l1_tolerance()),
        ];
        let metrics = vec![
            ("mode_amplitude_initial", first),
            ("mode_amplitude_final", last),
            ("samples", run.samples.len() as f64),
        ];
        ValidationReport::new(
            self.name(),
            run,
            run.sys.time,
            None,
            self.l1_tolerance(),
            momentum_scale,
            checks,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_hits_pure_values_away_from_interfaces() {
        let cfg = KelvinHelmholtzConfig::default();
        let r = |y: f64| ramp(y, cfg.rho1, cfg.rho2, cfg.sigma);
        assert!((r(0.01) - cfg.rho1).abs() < 1e-4);
        assert!((r(0.5) - cfg.rho2).abs() < 1e-4);
        assert!((r(0.99) - cfg.rho1).abs() < 1e-4);
        // Midpoint of each interface is the mean.
        assert!((r(0.25) - 1.5).abs() < 1e-12);
        assert!((r(0.75) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ramp_is_continuous() {
        let cfg = KelvinHelmholtzConfig::default();
        for y0 in [0.25, 0.5, 0.75] {
            let below = ramp(y0 - 1e-12, cfg.rho1, cfg.rho2, cfg.sigma);
            let above = ramp(y0 + 1e-12, cfg.rho1, cfg.rho2, cfg.sigma);
            assert!((below - above).abs() < 1e-9, "ramp jumps at {y0}");
        }
    }

    #[test]
    fn ic_is_pressure_uniform_and_sane() {
        let cfg = KelvinHelmholtzConfig { nx: 16, nz: 4, ..Default::default() };
        let sys = kelvin_helmholtz(&cfg);
        assert!(sys.sanity_check().is_ok());
        let eos = IdealGas::new(cfg.gamma);
        for i in 0..sys.len() {
            // m/dx³ recovers the nominal density; u was set so p is flat.
            let rho = sys.m[i] * (cfg.nx as f64).powi(3);
            let p = eos.pressure(rho, sys.u[i]);
            assert!((p - cfg.pressure).abs() < 1e-10, "p = {p} at {i}");
        }
    }

    #[test]
    fn mode_amplitude_sees_the_seeded_mode() {
        let cfg = KelvinHelmholtzConfig { nx: 24, nz: 4, ..Default::default() };
        let sys = kelvin_helmholtz(&cfg);
        let a = kh_mode_amplitude(&sys);
        // The seed is the eigenmode envelope δ sin(kx) e^{−k d}: the
        // interface-weighted Fourier projection recovers a finite
        // fraction of δ (⟨e^{−2kd}⟩/⟨e^{−kd}⟩ < 1), and scales with δ.
        assert!(a > 0.2 * cfg.delta && a < cfg.delta, "amplitude {a} vs seed {}", cfg.delta);
        let double = kelvin_helmholtz(&KelvinHelmholtzConfig {
            delta: 2.0 * cfg.delta,
            nx: 24,
            nz: 4,
            ..Default::default()
        });
        let a2 = kh_mode_amplitude(&double);
        assert!((a2 / a - 2.0).abs() < 1e-9, "projection must be linear in the seed");
    }

    #[test]
    fn unseeded_layer_has_no_mode() {
        let cfg = KelvinHelmholtzConfig { nx: 16, nz: 4, delta: 0.0, ..Default::default() };
        let sys = kelvin_helmholtz(&cfg);
        assert!(kh_mode_amplitude(&sys) < 1e-14);
    }
}
