//! Physics workloads for the mini-app: the scenario engine.
//!
//! The paper validates on exactly two workloads (Table 5, §5.1); the
//! ROADMAP's north star demands "as many scenarios as you can imagine".
//! This crate provides both: a trait-based **scenario engine**
//! ([`engine::Scenario`] + [`engine::ScenarioRegistry`]) and six
//! registered workloads, each with deterministic initial conditions, a
//! solver configuration, an analytic (or well-known) reference, and a
//! machine-checkable validation:
//!
//! | Scenario | Reference | Analytic check |
//! |----------|-----------|----------------|
//! | `square-patch` | Colagrossi 2005 | Poisson-series pressure, L_z retention |
//! | `evrard` | Evrard 1988 | W₀ = −2GM²/(3R), energy ledger |
//! | `sedov` | Sedov 1959 / Taylor 1950 | self-similar shock radius |
//! | `sod` | Sod 1978 | exact Riemann solution (L1 density) |
//! | `gresho` | Gresho & Chan 1990 | stationary vortex, v_φ retention |
//! | `kelvin-helmholtz` | McNally et al. 2012 | seeded-mode growth |
//!
//! # The `Scenario` trait contract
//!
//! * [`engine::Scenario::init`] is **deterministic**: the same
//!   resolution always builds the bit-identical [`sph_core::ParticleSystem`]
//!   and returns the solver configuration the workload needs (γ,
//!   viscosity, boundary metric, optional gravity). Scenarios never
//!   reach into driver internals.
//! * [`engine::Scenario::analytic_reference`] returns the exact solution
//!   at a time where one exists — a pointwise primitive-variable profile
//!   or a shock-front radius — and `None` otherwise.
//! * [`engine::Scenario::validate`] consumes a completed
//!   [`engine::ScenarioRun`] and produces a [`engine::ValidationReport`]:
//!   L1/L∞ norms, conservation drift, and named checks against the
//!   registered tolerances. `report.passed` is the CI gate.
//! * Every registered scenario runs through **both** step drivers
//!   ([`engine::run_scenario`]): the single-rank `Simulation` and the
//!   multi-rank `DistributedSimulation` produce bit-identical states for
//!   any rank/thread count, so validation transfers between them.
//!
//! The paper's Table 5 ([`registry::scenario_table`]) is *derived* from
//! the registry entries that carry paper metadata — the table cannot
//! drift from the runnable workloads.

pub mod engine;
pub mod evrard;
pub mod gresho;
pub mod kelvin_helmholtz;
pub mod registry;
pub mod relaxation;
pub mod sedov;
pub mod sod;
pub mod square_patch;

pub use engine::{
    density_error_norms, run_scenario, AnalyticReference, Check, DriverKind, ErrorNorms,
    MetricSample, PrimitiveState, Resolution, RunOptions, Scenario, ScenarioRegistry, ScenarioRun,
    ScenarioSetup, ValidationReport,
};
pub use evrard::{evrard_collapse, EvrardConfig, EvrardScenario};
pub use gresho::{gresho_pressure, gresho_v_phi, gresho_vortex, GreshoConfig, GreshoScenario};
pub use kelvin_helmholtz::{
    kelvin_helmholtz, kh_mode_amplitude, KelvinHelmholtzConfig, KelvinHelmholtzScenario,
};
pub use registry::{scenario_table, ScenarioInfo};
pub use relaxation::{relax_to_glass, RelaxationConfig, RelaxationReport};
pub use sedov::{
    sedov_blast, sedov_shock_radius, shock_radius_estimate, SedovConfig, SedovScenario,
};
pub use sod::{sod_tube, RiemannProblem, RiemannSolution, RiemannState, SodConfig, SodScenario};
pub use square_patch::{
    square_patch, square_patch_pressure, SquarePatchConfig, SquarePatchScenario,
};

/// Every built-in workload, in registry (and Table 5 row) order.
pub fn builtin_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(SquarePatchScenario),
        Box::new(EvrardScenario),
        Box::new(SedovScenario),
        Box::new(SodScenario),
        Box::new(GreshoScenario),
        Box::new(KelvinHelmholtzScenario),
    ]
}
