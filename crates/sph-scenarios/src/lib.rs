//! The two validation/acceptance test cases of the paper (Table 5, §5.1):
//!
//! | Test | Description | Domain | Length |
//! |------|-------------|--------|--------|
//! | Rotating square patch (Colagrossi 2005) | rotation of a free-surface square fluid patch | 3-D, 10⁶ particles | 20 steps |
//! | Evrard collapse (Evrard 1988) | adiabatic collapse of a cold static gas sphere (with self-gravity) | 3-D, 10⁶ particles | 20 steps |
//!
//! Both builders are deterministic for a given seed and particle count and
//! expose the analytic references the validation tests check against.

pub mod evrard;
pub mod registry;
pub mod relaxation;
pub mod square_patch;

pub use evrard::{evrard_collapse, EvrardConfig};
pub use registry::{scenario_table, ScenarioInfo};
pub use relaxation::{relax_to_glass, RelaxationConfig, RelaxationReport};
pub use square_patch::{square_patch, square_patch_pressure, SquarePatchConfig};
