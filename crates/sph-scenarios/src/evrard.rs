//! The Evrard collapse (Evrard 1988), configured as §5.1 of the paper:
//! initial density profile `ρ(r) = M/(2πR²r)` for `r ≤ R` with
//! `R = M = 1`, initial specific internal energy `u₀ = 0.05`, ideal gas
//! with `γ = 5/3`, gravitational constant `G = 1`. "With this
//! configuration the gravitational energy is much larger than the internal
//! energy and the system collapses naturally."
//!
//! Particles are equal-mass; positions come from a cubic lattice clipped
//! to the unit ball and **radially stretched** by `r → R (r/R)^{3/2}`,
//! which maps the uniform enclosed-mass profile `μ ∝ r³` onto the target
//! `μ ∝ r²` exactly. An optional deterministic jitter breaks the lattice
//! alignment.

use crate::engine::{
    AnalyticReference, Check, PrimitiveState, Resolution, Scenario, ScenarioRun, ScenarioSetup,
    ValidationReport,
};
use crate::registry::ScenarioInfo;
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::ParticleSystem;
use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};
use sph_tree::{GravityConfig, MultipoleOrder};

/// Evrard-collapse configuration; paper values are the defaults.
#[derive(Debug, Clone, Copy)]
pub struct EvrardConfig {
    /// Approximate particle count (the lattice clip makes it inexact;
    /// the builder gets within a few percent).
    pub n_target: usize,
    /// Cloud radius R.
    pub radius: f64,
    /// Cloud mass M.
    pub mass: f64,
    /// Initial specific internal energy u₀.
    pub u0: f64,
    /// Lattice jitter amplitude in units of the lattice spacing.
    pub jitter: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl Default for EvrardConfig {
    fn default() -> Self {
        EvrardConfig { n_target: 10_000, radius: 1.0, mass: 1.0, u0: 0.05, jitter: 0.05, seed: 42 }
    }
}

/// Analytic initial density `ρ(r) = M/(2πR²r)` (r ≤ R).
pub fn evrard_density(r: f64, mass: f64, radius: f64) -> f64 {
    assert!(r > 0.0);
    if r <= radius {
        mass / (2.0 * std::f64::consts::PI * radius * radius * r)
    } else {
        0.0
    }
}

/// Exact gravitational energy of the 1/r sphere: `W = −2GM²/(3R)`.
pub fn evrard_gravitational_energy(mass: f64, radius: f64, g: f64) -> f64 {
    -2.0 * g * mass * mass / (3.0 * radius)
}

/// Build the Evrard initial conditions.
pub fn evrard_collapse(cfg: &EvrardConfig) -> ParticleSystem {
    assert!(cfg.n_target >= 100, "need at least ~100 particles for a sphere");
    assert!(cfg.radius > 0.0 && cfg.mass > 0.0 && cfg.u0 >= 0.0);
    // Lattice resolution: a cube of side 2R holds ~ (π/6)·n_lattice³ ball
    // points; choose n so the clipped count approximates n_target.
    let n_side = ((cfg.n_target as f64 * 6.0 / std::f64::consts::PI).cbrt()).round() as usize;
    let n_side = n_side.max(4);
    let spacing = 2.0 * cfg.radius / n_side as f64;
    let mut rng = SplitMix64::new(SplitMix64::new(cfg.seed).derive("evrard-jitter"));

    let mut x = Vec::with_capacity(cfg.n_target * 2);
    for iz in 0..n_side {
        for iy in 0..n_side {
            for ix in 0..n_side {
                let mut p = Vec3::new(
                    -cfg.radius + (ix as f64 + 0.5) * spacing,
                    -cfg.radius + (iy as f64 + 0.5) * spacing,
                    -cfg.radius + (iz as f64 + 0.5) * spacing,
                );
                if cfg.jitter > 0.0 {
                    p += Vec3::new(
                        rng.uniform(-cfg.jitter, cfg.jitter),
                        rng.uniform(-cfg.jitter, cfg.jitter),
                        rng.uniform(-cfg.jitter, cfg.jitter),
                    ) * spacing;
                }
                let r = p.norm();
                if r > 0.0 && r <= cfg.radius {
                    // Radial stretch: uniform μ=(r/R)³ → target μ=(r/R)²,
                    // i.e. r_new = R (r/R)^{3/2}.
                    let r_new = cfg.radius * (r / cfg.radius).powf(1.5);
                    x.push(p * (r_new / r));
                }
            }
        }
    }
    let n = x.len();
    assert!(n > 0, "lattice produced no particles inside the sphere");
    let m = cfg.mass / n as f64;
    let domain = Aabb::cube(Vec3::ZERO, cfg.radius * 1.5);
    ParticleSystem::new(
        x,
        vec![Vec3::ZERO; n],
        vec![m; n],
        vec![cfg.u0; n],
        1.6 * spacing,
        Periodicity::open(domain),
    )
}

/// Mass-weighted rms radius — the collapse-progress diagnostic.
pub fn rms_radius(sys: &ParticleSystem) -> f64 {
    let mut mr2 = 0.0;
    let mut mt = 0.0;
    for i in 0..sys.len() {
        mr2 += sys.m[i] * sys.x[i].norm_sq();
        mt += sys.m[i];
    }
    (mr2 / mt).sqrt()
}

/// The registered Evrard-collapse workload (paper Table 5, row 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvrardScenario;

impl EvrardScenario {
    fn cfg(&self, res: Resolution) -> EvrardConfig {
        EvrardConfig { n_target: res.scaled(3000, 400), ..Default::default() }
    }
}

impl Scenario for EvrardScenario {
    fn name(&self) -> &'static str {
        "evrard"
    }

    fn reference(&self) -> &'static str {
        "Evrard 1988"
    }

    fn description(&self) -> &'static str {
        "Adiabatic collapse of a cold static gas sphere under self-gravity"
    }

    fn analytic_check(&self) -> &'static str {
        "W₀ = −2GM²/(3R) at start; energy ledger and collapse dynamics over the run"
    }

    fn table5_row(&self) -> Option<ScenarioInfo> {
        Some(crate::registry::evrard_table5_row())
    }

    fn init(&self, res: Resolution) -> ScenarioSetup {
        let cfg = self.cfg(res);
        let config = SphConfig {
            gamma: 5.0 / 3.0,
            target_neighbors: 60,
            viscosity: ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: true },
            ..Default::default()
        };
        let gravity = GravityConfig {
            g: 1.0,
            theta: 0.5,
            softening: 1e-2,
            order: MultipoleOrder::Quadrupole,
        };
        ScenarioSetup { sys: evrard_collapse(&cfg), config, gravity: Some(gravity) }
    }

    fn end_time(&self) -> f64 {
        0.2
    }

    /// No pointwise reference at t > 0: the registered bound gates the
    /// total-energy drift.
    fn l1_tolerance(&self) -> f64 {
        0.02
    }

    fn analytic_reference(&self, t: f64) -> Option<AnalyticReference> {
        if t != 0.0 {
            return None;
        }
        // Same config source as `init` (Resolution scales n_target only).
        let cfg = self.cfg(Resolution::default());
        Some(AnalyticReference::Profile(Box::new(move |x: Vec3| {
            let r = x.norm().max(1e-6);
            let rho = evrard_density(r, cfg.mass, cfg.radius);
            PrimitiveState { rho, p: (5.0 / 3.0 - 1.0) * rho * cfg.u0, v: Vec3::ZERO }
        })))
    }

    fn track(&self, sys: &ParticleSystem) -> Option<f64> {
        Some(rms_radius(sys))
    }

    fn validate(&self, run: &ScenarioRun) -> ValidationReport {
        let cfg = self.cfg(Resolution::default());
        let w_analytic = evrard_gravitational_energy(cfg.mass, cfg.radius, 1.0);
        let w0 = run.initial.gravitational_energy;
        let w0_err = ((w0 - w_analytic) / w_analytic).abs();
        let r0 = run.samples.first().map(|s| s.value).unwrap_or(0.0);
        let r1 = run.samples.last().map(|s| s.value).unwrap_or(f64::INFINITY);
        let momentum_scale = crate::engine::momentum_scale(&run.sys);
        let checks = vec![
            Check::upper("energy_drift", run.energy_drift(), self.l1_tolerance()),
            Check::upper("initial_w_vs_analytic", w0_err, 0.1),
            // The cloud must collapse: rms radius shrinks, KE rises and
            // the potential deepens.
            Check::upper("rms_radius_ratio", r1 / r0.max(f64::MIN_POSITIVE), 1.0),
            Check::lower(
                "kinetic_energy_growth",
                run.final_conservation.kinetic_energy - run.initial.kinetic_energy,
                0.0,
            ),
            Check::upper(
                "potential_deepens",
                run.final_conservation.gravitational_energy - w0,
                0.0,
            ),
        ];
        let metrics = vec![
            ("w_initial_measured", w0),
            ("w_analytic", w_analytic),
            ("rms_radius_initial", r0),
            ("rms_radius_final", r1),
        ];
        ValidationReport::new(
            self.name(),
            run,
            run.sys.time,
            None,
            self.l1_tolerance(),
            momentum_scale,
            checks,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_near_target_and_mass_exact() {
        let cfg = EvrardConfig { n_target: 5000, ..Default::default() };
        let sys = evrard_collapse(&cfg);
        let n = sys.len();
        assert!((n as f64 - 5000.0).abs() < 0.25 * 5000.0, "count {n} too far from target");
        assert!((sys.total_mass() - cfg.mass).abs() < 1e-12);
    }

    #[test]
    fn all_particles_inside_sphere_cold_and_static() {
        let cfg = EvrardConfig::default();
        let sys = evrard_collapse(&cfg);
        for i in 0..sys.len() {
            assert!(sys.x[i].norm() <= cfg.radius + 1e-12);
            assert_eq!(sys.v[i], Vec3::ZERO);
            assert_eq!(sys.u[i], cfg.u0);
        }
    }

    #[test]
    fn radial_mass_profile_matches_one_over_r() {
        // Enclosed mass μ(r) = (r/R)² — the signature of ρ ∝ 1/r.
        let cfg = EvrardConfig { n_target: 20_000, jitter: 0.0, ..Default::default() };
        let sys = evrard_collapse(&cfg);
        let mut radii: Vec<f64> = sys.x.iter().map(|p| p.norm()).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = radii.len();
        for frac in [0.25, 0.5, 0.75] {
            let k = (frac * n as f64) as usize;
            let r_k = radii[k];
            // μ(r_k) = frac ⇒ r_k ≈ R √frac.
            let expected = cfg.radius * frac.sqrt();
            assert!(
                (r_k - expected).abs() < 0.05 * expected,
                "μ={frac}: r={r_k}, expected {expected}"
            );
        }
    }

    #[test]
    fn shell_density_matches_analytic() {
        let cfg = EvrardConfig { n_target: 30_000, jitter: 0.0, ..Default::default() };
        let sys = evrard_collapse(&cfg);
        // Count particles in shells and compare to ρ(r)·V_shell.
        for &(r0, r1) in &[(0.2, 0.3), (0.4, 0.5), (0.6, 0.7)] {
            let count = sys
                .x
                .iter()
                .filter(|p| {
                    let r = p.norm();
                    r >= r0 && r < r1
                })
                .count();
            let shell_mass = count as f64 * sys.m[0];
            // ∫ ρ 4πr² dr over the shell = M (r1²−r0²)/R².
            let expected = cfg.mass * (r1 * r1 - r0 * r0) / (cfg.radius * cfg.radius);
            assert!(
                (shell_mass - expected).abs() < 0.1 * expected,
                "shell [{r0},{r1}): mass {shell_mass} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn gravitational_energy_dominates_internal() {
        // The condition §5.1 states makes the cloud collapse: |W| ≫ U.
        let w = evrard_gravitational_energy(1.0, 1.0, 1.0);
        assert!((w + 2.0 / 3.0).abs() < 1e-15);
        let u_total = 0.05; // u₀ · M
        assert!(w.abs() > 10.0 * u_total);
    }

    #[test]
    fn analytic_density_integrates_to_total_mass() {
        // 4π ∫₀ᴿ ρ r² dr = M.
        let steps = 100_000;
        let dr = 1.0 / steps as f64;
        let mut total = 0.0;
        for k in 0..steps {
            let r = (k as f64 + 0.5) * dr;
            total += evrard_density(r, 1.0, 1.0) * 4.0 * std::f64::consts::PI * r * r * dr;
        }
        assert!((total - 1.0).abs() < 1e-4, "∫ρ dV = {total}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = EvrardConfig { n_target: 2000, ..Default::default() };
        let a = evrard_collapse(&cfg);
        let b = evrard_collapse(&cfg);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.x[i], b.x[i]);
        }
        // Different seed ⇒ different jitter.
        let c = evrard_collapse(&EvrardConfig { seed: 7, ..cfg });
        assert!(a.x.iter().zip(&c.x).any(|(p, q)| p != q));
    }
}
