//! The test-simulation registry — the data behind Table 5 of the paper.

/// One row of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioInfo {
    pub name: &'static str,
    pub reference: &'static str,
    pub description: &'static str,
    pub domain: &'static str,
    pub simulation_length: &'static str,
    pub codes: &'static str,
    pub platforms: &'static str,
}

/// The rows of Table 5, verbatim from the paper.
pub fn scenario_table() -> Vec<ScenarioInfo> {
    vec![
        ScenarioInfo {
            name: "Rotating Square Patch",
            reference: "Colagrossi 2005",
            description: "Rotation of a free-surface square fluid patch",
            domain: "3D, 10^6 particles",
            simulation_length: "20 time-steps",
            codes: "SPHYNX, ChaNGa, SPH-flow",
            platforms: "Piz Daint, MareNostrum 4",
        },
        ScenarioInfo {
            name: "Evrard Collapse",
            reference: "Evrard 1988",
            description:
                "Adiabatic collapse of an initially cold and static gas sphere (w/ self-gravity)",
            domain: "3D, 10^6 particles",
            simulation_length: "20 time-steps",
            codes: "SPHYNX, ChaNGa",
            platforms: "Piz Daint, MareNostrum 4",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_both_tests() {
        let t = scenario_table();
        assert_eq!(t.len(), 2);
        assert!(t[0].name.contains("Square"));
        assert!(t[1].name.contains("Evrard"));
    }

    #[test]
    fn evrard_excludes_sphflow() {
        // §5.1: "As this test needs the evaluation of self-gravity, it was
        // only performed by the astrophysical SPH codes."
        let t = scenario_table();
        assert!(!t[1].codes.contains("SPH-flow"));
        assert!(t[0].codes.contains("SPH-flow"));
    }
}
