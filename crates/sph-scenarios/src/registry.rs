//! Table 5 of the paper, derived from the scenario registry.
//!
//! The rows are no longer a free-standing hard-coded list: each paper
//! workload carries its Table 5 metadata ([`ScenarioInfo`]) as part of
//! its [`crate::engine::Scenario`] implementation, and
//! [`scenario_table`] collects them from the live registry — so the
//! paper table and the runnable workloads cannot drift apart.

/// One row of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioInfo {
    pub name: &'static str,
    pub reference: &'static str,
    pub description: &'static str,
    pub domain: &'static str,
    pub simulation_length: &'static str,
    pub codes: &'static str,
    pub platforms: &'static str,
}

/// Table 5, row 1 — verbatim from the paper; returned by
/// `SquarePatchScenario::table5_row`.
pub(crate) fn square_patch_table5_row() -> ScenarioInfo {
    ScenarioInfo {
        name: "Rotating Square Patch",
        reference: "Colagrossi 2005",
        description: "Rotation of a free-surface square fluid patch",
        domain: "3D, 10^6 particles",
        simulation_length: "20 time-steps",
        codes: "SPHYNX, ChaNGa, SPH-flow",
        platforms: "Piz Daint, MareNostrum 4",
    }
}

/// Table 5, row 2 — verbatim from the paper; returned by
/// `EvrardScenario::table5_row`.
pub(crate) fn evrard_table5_row() -> ScenarioInfo {
    ScenarioInfo {
        name: "Evrard Collapse",
        reference: "Evrard 1988",
        description:
            "Adiabatic collapse of an initially cold and static gas sphere (w/ self-gravity)",
        domain: "3D, 10^6 particles",
        simulation_length: "20 time-steps",
        codes: "SPHYNX, ChaNGa",
        platforms: "Piz Daint, MareNostrum 4",
    }
}

/// The rows of Table 5, collected from the registry entries that carry
/// paper metadata (registration order == row order).
pub fn scenario_table() -> Vec<ScenarioInfo> {
    crate::engine::ScenarioRegistry::builtin().iter().filter_map(|s| s.table5_row()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_both_tests() {
        let t = scenario_table();
        assert_eq!(t.len(), 2);
        assert!(t[0].name.contains("Square"));
        assert!(t[1].name.contains("Evrard"));
    }

    #[test]
    fn evrard_excludes_sphflow() {
        // §5.1: "As this test needs the evaluation of self-gravity, it was
        // only performed by the astrophysical SPH codes."
        let t = scenario_table();
        assert!(!t[1].codes.contains("SPH-flow"));
        assert!(t[0].codes.contains("SPH-flow"));
    }

    #[test]
    fn table_is_derived_from_the_registry() {
        // The registry entries that carry Table 5 metadata are exactly
        // the two paper workloads, in row order.
        let reg = crate::engine::ScenarioRegistry::builtin();
        let rows: Vec<_> = reg.iter().filter(|s| s.table5_row().is_some()).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name(), "square-patch");
        assert_eq!(rows[1].name(), "evrard");
        assert_eq!(scenario_table(), vec![square_patch_table5_row(), evrard_table5_row()]);
    }
}
