//! The scenario engine: a trait-based workload registry with a generic
//! runner and a validation/metrics harness.
//!
//! # The `Scenario` contract
//!
//! A [`Scenario`] is one physics workload packaged end-to-end:
//!
//! 1. **Init** — [`Scenario::init`] builds deterministic initial
//!    conditions *and* the solver configuration they need (kernel, γ,
//!    viscosity, boundary metric, optional self-gravity) at a requested
//!    [`Resolution`]. The same `(scenario, resolution)` pair must always
//!    produce the bit-identical [`ParticleSystem`].
//! 2. **Reference** — [`Scenario::analytic_reference`] exposes the exact
//!    or well-known solution at time `t` where one exists: a pointwise
//!    primitive-variable profile ([`AnalyticReference::Profile`]) or a
//!    self-similar shock-front radius
//!    ([`AnalyticReference::ShockRadius`]). Scenarios without a closed
//!    form (e.g. Kelvin–Helmholtz) return `None` and validate through a
//!    tracked diagnostic instead.
//! 3. **Validate** — [`Scenario::validate`] consumes a completed
//!    [`ScenarioRun`] and produces a [`ValidationReport`]: L1/L∞ error
//!    norms against the reference when one exists, conservation drift,
//!    and named pass/fail [`Check`]s with measured values and thresholds.
//!    `report.passed` is the machine-readable gate the `scenario_suite`
//!    binary (and CI) enforces.
//!
//! Scenarios run through **both** step drivers via [`run_scenario`]: the
//! single-rank [`Simulation`] and the multi-rank
//! [`sph_exa::DistributedSimulation`] produce bit-identical trajectories
//! (the repo-wide determinism contract), so a scenario validated on one
//! driver is validated on both.
//!
//! The [`ScenarioRegistry`] replaces the old hard-coded two-row table:
//! the paper's Table 5 is now *derived* from the registry (scenarios
//! carry their Table 5 row as metadata), so the table and the runnable
//! workloads cannot drift apart.

use sph_core::config::SphConfig;
use sph_core::diagnostics::Conservation;
use sph_core::particles::ParticleSystem;
use sph_exa::{DistributedBuilder, DistributedConfig, SimulationBuilder};
use sph_json::Value;
use sph_math::Vec3;
use sph_tree::GravityConfig;

use crate::registry::ScenarioInfo;

/// Resolution knob passed to [`Scenario::init`]: a multiplier on the
/// scenario's registered validation resolution (`1.0` = the resolution
/// its tolerances are calibrated for; CI runs exactly that, paper-scale
/// runs pass `> 1`).
///
/// **Contract:** resolution scales *discretisation only* (lattice /
/// particle counts). A scenario's physics parameters are
/// resolution-independent — that is what lets `validate` and
/// `analytic_reference` derive the reference from
/// `self.cfg(Resolution::default())` and have it match a run at any
/// scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolution {
    pub scale: f64,
}

impl Default for Resolution {
    fn default() -> Self {
        Resolution { scale: 1.0 }
    }
}

impl Resolution {
    /// Scale a reference lateral particle count, clamped below by
    /// `floor` (so pathological scales still build a runnable system).
    pub fn scaled(&self, reference: usize, floor: usize) -> usize {
        ((reference as f64 * self.scale).round() as usize).max(floor)
    }
}

/// Everything a driver needs to run one workload.
pub struct ScenarioSetup {
    pub sys: ParticleSystem,
    pub config: SphConfig,
    pub gravity: Option<GravityConfig>,
}

/// Pointwise primitive-variable state of an analytic solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimitiveState {
    pub rho: f64,
    pub p: f64,
    pub v: Vec3,
}

/// An analytic (or well-known) reference solution at a fixed time.
pub enum AnalyticReference {
    /// Exact primitive variables as a function of position.
    Profile(Box<dyn Fn(Vec3) -> PrimitiveState + Send + Sync>),
    /// A self-similar shock-front radius (measured from the origin).
    ShockRadius(f64),
}

/// One physics workload: deterministic initial conditions, solver
/// configuration, analytic reference, and validation logic. See the
/// module docs for the full contract.
pub trait Scenario: Send + Sync {
    /// Unique registry name (kebab-case).
    fn name(&self) -> &'static str;

    /// Literature reference of the test.
    fn reference(&self) -> &'static str;

    /// One-line description of the physics.
    fn description(&self) -> &'static str;

    /// Human description of the analytic / well-known check `validate`
    /// enforces (shown in the scenario catalogue).
    fn analytic_check(&self) -> &'static str;

    /// The paper's Table 5 row, for the two workloads the paper
    /// validates. `scenario_table()` is derived from these.
    fn table5_row(&self) -> Option<ScenarioInfo> {
        None
    }

    /// Build initial conditions + solver configuration.
    fn init(&self, res: Resolution) -> ScenarioSetup;

    /// End time of a validation run (the tolerances are registered for
    /// a run from t = 0 to this time at `Resolution::default()`).
    fn end_time(&self) -> f64;

    /// Registered L1 tolerance for the suite gate: the L1 error norm
    /// (or shock-position relative error) `validate` reports must not
    /// exceed this. Scenarios without an error norm gate on their named
    /// checks instead and register the conservation-drift bound here.
    fn l1_tolerance(&self) -> f64;

    /// The analytic reference at time `t`, where one exists.
    fn analytic_reference(&self, t: f64) -> Option<AnalyticReference>;

    /// A scalar diagnostic sampled over the run (mode amplitude, peak
    /// azimuthal velocity, shock radius, …). `None` = nothing tracked.
    fn track(&self, sys: &ParticleSystem) -> Option<f64> {
        let _ = sys;
        None
    }

    /// Validate a completed run.
    fn validate(&self, run: &ScenarioRun) -> ValidationReport;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Dynamic scenario registry: the successor of the hard-coded two-row
/// `scenario_table()`. Holds trait objects, so downstream crates can
/// register their own workloads next to the built-ins.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: Vec<Box<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry { entries: Vec::new() }
    }

    /// Every built-in workload, paper scenarios first (their registry
    /// order is the Table 5 row order).
    pub fn builtin() -> Self {
        let mut r = ScenarioRegistry::new();
        for s in crate::builtin_scenarios() {
            // sph-lint: allow(panic-path) — the name set is static and the
            // registry contract test covers it; duplication is a code bug.
            r.register(s).expect("built-in names are unique");
        }
        r
    }

    /// Register a scenario; names must be unique.
    pub fn register(&mut self, s: Box<dyn Scenario>) -> Result<(), String> {
        if self.get(s.name()).is_some() {
            return Err(format!("scenario {:?} is already registered", s.name()));
        }
        self.entries.push(s);
        Ok(())
    }

    /// Look a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.entries.iter().find(|s| s.name() == name).map(|s| s.as_ref())
    }

    /// Iterate the scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.entries.iter().map(|s| s.as_ref())
    }

    /// Registered names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name()).collect()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The markdown scenario catalogue (the README section is generated
    /// from this, and a test keeps the two in sync).
    pub fn catalogue_markdown(&self) -> String {
        let mut out = String::from(
            "| Scenario | Reference | Analytic check | Drivers |\n\
             |----------|-----------|----------------|---------|\n",
        );
        for s in self.iter() {
            out.push_str(&format!(
                "| `{}` | {} | {} | `Simulation`, `DistributedSimulation` |\n",
                s.name(),
                s.reference(),
                s.analytic_check(),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Generic runner
// ---------------------------------------------------------------------

/// Which step driver executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// The single-rank [`Simulation`].
    Single,
    /// The multi-rank [`sph_exa::DistributedSimulation`] (in-process
    /// ranks; bit-identical to `Single` for any rank count).
    Distributed { nranks: usize },
}

/// Options of one [`run_scenario`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    pub resolution: Resolution,
    pub driver: DriverKind,
    /// Override of the scenario's registered end time (`None` = run to
    /// [`Scenario::end_time`]).
    pub end_time: Option<f64>,
    /// Hard cap on macro-steps (safety net; also the knob short smoke
    /// runs use instead of an end time).
    pub max_steps: usize,
    /// Sample [`Scenario::track`] every this many steps.
    pub sample_every: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            resolution: Resolution::default(),
            driver: DriverKind::Single,
            end_time: None,
            max_steps: 100_000,
            sample_every: 10,
        }
    }
}

/// One `(time, value)` sample of the scenario's tracked diagnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    pub time: f64,
    pub value: f64,
}

/// A completed scenario run: the final state plus everything `validate`
/// needs to judge it.
pub struct ScenarioRun {
    /// Final particle state.
    pub sys: ParticleSystem,
    /// Final gravitational potentials (zeros with gravity off).
    pub phi: Vec<f64>,
    /// Conservation baseline after the *first* step (the first
    /// derivative evaluation populates pressures and potentials; drift
    /// is measured from here, the standard convention).
    pub initial: Conservation,
    /// Conservation at the end of the run.
    pub final_conservation: Conservation,
    /// Macro-steps taken.
    pub steps: u64,
    /// Samples of [`Scenario::track`] over the run (includes the t = 0
    /// state and the final state).
    pub samples: Vec<MetricSample>,
}

impl ScenarioRun {
    /// Relative total-energy drift over the run.
    pub fn energy_drift(&self) -> f64 {
        self.final_conservation.energy_drift(&self.initial)
    }
}

/// The driver interface the generic runner needs — implemented by both
/// step drivers, so the run/sample/assemble logic exists exactly once
/// (an asymmetry there would be indistinguishable from a determinism
/// bug in the bit-identity tests).
trait Drivable {
    /// One macro step; errors surface as the driver's own rendered
    /// message (`TimeStepError` single-rank, `DistributedError` — which
    /// wraps time-step, exchange and storage faults — distributed).
    fn step_once(&mut self) -> Result<(), String>;
    fn conservation(&self) -> Conservation;
    fn sys(&self) -> &ParticleSystem;
    fn into_state(self) -> (ParticleSystem, Vec<f64>);
}

impl Drivable for sph_exa::Simulation {
    fn step_once(&mut self) -> Result<(), String> {
        self.step().map(|_| ()).map_err(|e| e.to_string())
    }
    fn conservation(&self) -> Conservation {
        self.conservation()
    }
    fn sys(&self) -> &ParticleSystem {
        &self.sys
    }
    fn into_state(self) -> (ParticleSystem, Vec<f64>) {
        (self.sys, self.phi)
    }
}

impl Drivable for sph_exa::DistributedSimulation {
    fn step_once(&mut self) -> Result<(), String> {
        self.step().map(|_| ()).map_err(String::from)
    }
    fn conservation(&self) -> Conservation {
        self.conservation()
    }
    fn sys(&self) -> &ParticleSystem {
        &self.sys
    }
    fn into_state(self) -> (ParticleSystem, Vec<f64>) {
        (self.sys, self.phi)
    }
}

/// Run one scenario through the selected driver. Both drivers execute
/// the same macro-step count with bit-identical dt sequences, so
/// fingerprints of the returned `sys` may be compared across drivers.
pub fn run_scenario(sc: &dyn Scenario, opts: &RunOptions) -> Result<ScenarioRun, String> {
    let setup = sc.init(opts.resolution);
    match opts.driver {
        DriverKind::Single => {
            let mut b = SimulationBuilder::new(setup.sys).config(setup.config);
            if let Some(g) = setup.gravity {
                b = b.gravity(g);
            }
            drive(sc, opts, b.build()?)
        }
        DriverKind::Distributed { nranks } => {
            let mut b = DistributedBuilder::new(setup.sys)
                .config(setup.config)
                .distributed(DistributedConfig { nranks, ..Default::default() });
            if let Some(g) = setup.gravity {
                b = b.gravity(g);
            }
            drive(sc, opts, b.build().map_err(String::from)?)
        }
    }
}

/// The shared run loop + bookkeeping of both drivers: step until the
/// end time (or the step cap), sampling the tracked diagnostic on the
/// way, then assemble the [`ScenarioRun`].
fn drive<S: Drivable>(
    sc: &dyn Scenario,
    opts: &RunOptions,
    mut sim: S,
) -> Result<ScenarioRun, String> {
    let end_time = opts.end_time.unwrap_or_else(|| sc.end_time());
    let mut samples = Vec::new();
    let sample = |sys: &ParticleSystem, samples: &mut Vec<MetricSample>| {
        if let Some(v) = sc.track(sys) {
            if samples.last().map(|s: &MetricSample| s.time) != Some(sys.time) {
                samples.push(MetricSample { time: sys.time, value: v });
            }
        }
    };
    sample(sim.sys(), &mut samples);
    let mut initial: Option<Conservation> = None;
    let mut steps = 0u64;
    while sim.sys().time < end_time && steps < opts.max_steps as u64 {
        sim.step_once()?;
        steps += 1;
        if initial.is_none() {
            initial = Some(sim.conservation());
        }
        if opts.sample_every > 0 && steps.is_multiple_of(opts.sample_every as u64) {
            sample(sim.sys(), &mut samples);
        }
    }
    let initial = initial.unwrap_or_else(|| sim.conservation());
    let final_conservation = sim.conservation();
    sample(sim.sys(), &mut samples);
    let (sys, phi) = sim.into_state();
    Ok(ScenarioRun { sys, phi, initial, final_conservation, steps, samples })
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// L1 / L∞ error norms against an analytic reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorNorms {
    /// Mean absolute error, normalised by the mean reference magnitude.
    pub l1: f64,
    /// Max absolute error, normalised by the mean reference magnitude.
    pub linf: f64,
}

/// One named pass/fail criterion of a validation.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    pub name: &'static str,
    pub measured: f64,
    /// The bound `measured` is compared against.
    pub threshold: f64,
    pub passed: bool,
}

impl Check {
    /// `measured ≤ threshold` passes.
    pub fn upper(name: &'static str, measured: f64, threshold: f64) -> Check {
        Check { name, measured, threshold, passed: measured <= threshold }
    }

    /// `measured ≥ threshold` passes.
    pub fn lower(name: &'static str, measured: f64, threshold: f64) -> Check {
        Check { name, measured, threshold, passed: measured >= threshold }
    }
}

/// Machine-readable outcome of one scenario validation — the unit of the
/// accuracy trajectory `scenario_suite` emits as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    pub scenario: String,
    pub n_particles: usize,
    pub steps: u64,
    pub end_time: f64,
    /// Error norms vs the analytic reference (`None` when the scenario
    /// has no pointwise reference).
    pub norms: Option<ErrorNorms>,
    /// The registered L1 gate ([`Scenario::l1_tolerance`]).
    pub l1_tolerance: f64,
    /// Relative total-energy drift over the run.
    pub energy_drift: f64,
    /// |ΔP| over the run, relative to the momentum scale of the flow
    /// (scenarios with net bulk momentum — e.g. shear layers — stay
    /// meaningful: the *change* is gated, not the magnitude).
    pub momentum_drift: f64,
    /// Named scenario-specific checks.
    pub checks: Vec<Check>,
    /// Scenario-specific diagnostic values (not gated, just reported).
    pub metrics: Vec<(&'static str, f64)>,
    /// The overall gate: the conjunction of `checks` — the named
    /// checks are the *single* source of truth (scenarios with an
    /// error norm push an explicit check against `l1_tolerance`, so a
    /// failing report always has a failing check to point at).
    pub passed: bool,
}

impl ValidationReport {
    /// Assemble a report, deriving `passed` from the checks + norms.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scenario: &str,
        run: &ScenarioRun,
        end_time: f64,
        norms: Option<ErrorNorms>,
        l1_tolerance: f64,
        momentum_scale: f64,
        checks: Vec<Check>,
        metrics: Vec<(&'static str, f64)>,
    ) -> ValidationReport {
        let energy_drift = run.energy_drift();
        let momentum_drift = (run.final_conservation.momentum - run.initial.momentum).norm()
            / momentum_scale.max(f64::MIN_POSITIVE);
        let passed = checks.iter().all(|c| c.passed);
        ValidationReport {
            scenario: scenario.to_string(),
            n_particles: run.sys.len(),
            steps: run.steps,
            end_time,
            norms,
            l1_tolerance,
            energy_drift,
            momentum_drift,
            checks,
            metrics,
            passed,
        }
    }

    /// The report as a [`sph_json::Value`] tree (non-finite numbers map
    /// to `null` per the shared writer's contract).
    pub fn to_value(&self) -> Value {
        let (l1, linf) = match self.norms {
            Some(n) => (Value::Num(n.l1), Value::Num(n.linf)),
            None => (Value::Null, Value::Null),
        };
        Value::obj(vec![
            ("scenario", Value::str(&self.scenario)),
            ("n_particles", Value::Num(self.n_particles as f64)),
            ("steps", Value::Num(self.steps as f64)),
            ("end_time", Value::Num(self.end_time)),
            ("l1", l1),
            ("linf", linf),
            ("l1_tolerance", Value::Num(self.l1_tolerance)),
            ("energy_drift", Value::Num(self.energy_drift)),
            ("momentum_drift", Value::Num(self.momentum_drift)),
            (
                "checks",
                Value::Arr(
                    self.checks
                        .iter()
                        .map(|c| {
                            Value::obj(vec![
                                ("name", Value::str(c.name)),
                                ("measured", Value::Num(c.measured)),
                                ("threshold", Value::Num(c.threshold)),
                                ("passed", Value::Bool(c.passed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics",
                Value::Obj(
                    self.metrics.iter().map(|(k, v)| (k.to_string(), Value::Num(*v))).collect(),
                ),
            ),
            ("passed", Value::Bool(self.passed)),
        ])
    }

    /// Serialise as compact JSON text (shared hand-rolled writer — the
    /// workspace is offline, so no serde).
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }
}

/// Scale for momentum-conservation checks: `Σ|mᵢvᵢ|` of a state (the
/// denominator of [`ValidationReport::momentum_drift`]-style ratios).
pub fn momentum_scale(sys: &ParticleSystem) -> f64 {
    (0..sys.len()).map(|i| sys.m[i] * sys.v[i].norm()).sum()
}

/// Density error norms of `sys` against a pointwise reference profile,
/// over the particles selected by `mask`. Normalisation is the mean
/// reference density over the selection (so `l1 = 0.05` means "5 % of
/// the mean density").
pub fn density_error_norms(
    sys: &ParticleSystem,
    profile: &dyn Fn(Vec3) -> PrimitiveState,
    mask: impl Fn(usize) -> bool,
) -> ErrorNorms {
    let mut abs_sum = 0.0;
    let mut abs_max: f64 = 0.0;
    let mut ref_sum = 0.0;
    let mut n = 0usize;
    for i in 0..sys.len() {
        if !mask(i) {
            continue;
        }
        let want = profile(sys.x[i]).rho;
        let err = (sys.rho[i] - want).abs();
        abs_sum += err;
        abs_max = abs_max.max(err);
        ref_sum += want;
        n += 1;
    }
    assert!(n > 0, "density_error_norms: empty selection");
    let mean_ref = ref_sum / n as f64;
    ErrorNorms { l1: abs_sum / n as f64 / mean_ref, linf: abs_max / mean_ref }
}
