//! Damped relaxation to glass-like particle configurations.
//!
//! §5.2 of the paper: "Generating initial conditions for different numbers
//! of particles is a non-trivial process." Lattice ICs carry anisotropic
//! kernel-sampling noise; production SPH codes relax their initial
//! conditions into a *glass* — a disordered but locally uniform
//! arrangement — by evolving with velocity damping until the pressure
//! forces settle. This module provides that relaxation as a reusable
//! preparation step.

use sph_core::config::SphConfig;
use sph_core::integrator::drift;
use sph_core::particles::ParticleSystem;
use sph_exa::Simulation;
use sph_math::Vec3;

/// Relaxation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RelaxationConfig {
    /// Velocity damping per step: `v ← (1 − damping) v` (0 < damping ≤ 1).
    pub damping: f64,
    /// Maximum relaxation steps.
    pub max_steps: usize,
    /// Stop when the rms acceleration falls below this fraction of the
    /// initial rms acceleration.
    pub target_residual: f64,
}

impl Default for RelaxationConfig {
    fn default() -> Self {
        RelaxationConfig { damping: 0.3, max_steps: 50, target_residual: 0.2 }
    }
}

/// Outcome of a relaxation run.
#[derive(Debug, Clone, Copy)]
pub struct RelaxationReport {
    /// Steps actually taken.
    pub steps: usize,
    /// rms acceleration before / after.
    pub initial_rms_accel: f64,
    pub final_rms_accel: f64,
    /// Density scatter (σ/mean) before / after.
    pub initial_density_scatter: f64,
    pub final_density_scatter: f64,
}

impl RelaxationReport {
    /// Residual force fraction achieved.
    pub fn residual(&self) -> f64 {
        if self.initial_rms_accel > 0.0 {
            self.final_rms_accel / self.initial_rms_accel
        } else {
            0.0
        }
    }
}

fn rms_accel(sys: &ParticleSystem) -> f64 {
    (sys.a.iter().map(|a| a.norm_sq()).sum::<f64>() / sys.len() as f64).sqrt()
}

fn density_scatter(sys: &ParticleSystem) -> f64 {
    let n = sys.len() as f64;
    let mean = sys.rho.iter().sum::<f64>() / n;
    let var = sys.rho.iter().map(|&r| (r - mean) * (r - mean)).sum::<f64>() / n;
    var.sqrt() / mean.max(1e-300)
}

/// Relax `sys` in place toward a glass using damped pressure-driven
/// motion at constant internal energy (the thermodynamic state is reset
/// after every step so the relaxation does not heat the gas).
pub fn relax_to_glass(
    sys: &mut ParticleSystem,
    sph: &SphConfig,
    config: &RelaxationConfig,
) -> Result<RelaxationReport, String> {
    assert!(config.damping > 0.0 && config.damping <= 1.0);
    let u_frozen = sys.u.clone();
    let mut sim = Simulation::new(std::mem::replace(sys, dummy()), *sph)?;
    let all: Vec<u32> = (0..sim.sys.len() as u32).collect();
    sim.evaluate_derivatives(&all);
    let initial_rms = rms_accel(&sim.sys);
    let initial_scatter = density_scatter(&sim.sys);
    let mut steps = 0;
    let mut final_rms = initial_rms;
    for _ in 0..config.max_steps {
        steps += 1;
        // Damped pseudo-dynamics: kick by a, damp, drift, refreeze u.
        let dts = sph_core::timestep::per_particle_dt(&sim.sys, sph);
        let dt = sph_core::timestep::global_dt(&dts).map_err(|e| e.to_string())?;
        for i in 0..sim.sys.len() {
            let a = sim.sys.a[i];
            sim.sys.v[i] = (sim.sys.v[i] + a * dt) * (1.0 - config.damping);
        }
        drift(&mut sim.sys, dt);
        sim.sys.u.copy_from_slice(&u_frozen);
        sim.evaluate_derivatives(&all);
        final_rms = rms_accel(&sim.sys);
        if final_rms <= config.target_residual * initial_rms {
            break;
        }
    }
    // Return the relaxed particles at rest with the frozen thermal state.
    sim.sys.v.iter_mut().for_each(|v| *v = Vec3::ZERO);
    sim.sys.u.copy_from_slice(&u_frozen);
    sim.sys.time = 0.0;
    sim.sys.step_count = 0;
    let report = RelaxationReport {
        steps,
        initial_rms_accel: initial_rms,
        final_rms_accel: final_rms,
        initial_density_scatter: initial_scatter,
        final_density_scatter: density_scatter(&sim.sys),
    };
    *sys = sim.sys;
    Ok(report)
}

/// Placeholder system for the `mem::replace` dance (never observed).
fn dummy() -> ParticleSystem {
    ParticleSystem::new(
        vec![Vec3::ZERO],
        vec![Vec3::ZERO],
        vec![1.0],
        vec![0.0],
        0.1,
        sph_math::Periodicity::open(sph_math::Aabb::unit()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, SplitMix64};

    /// Random (Poisson) particles — the noisiest possible start.
    fn random_gas(n: usize, seed: u64) -> ParticleSystem {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        ParticleSystem::new(
            x,
            vec![Vec3::ZERO; n],
            vec![1.0 / n as f64; n],
            vec![1.0; n],
            0.15,
            Periodicity::fully_periodic(Aabb::unit()),
        )
    }

    fn cfg() -> SphConfig {
        SphConfig { target_neighbors: 40, max_h_iterations: 4, ..Default::default() }
    }

    #[test]
    fn relaxation_reduces_forces_and_density_scatter() {
        let mut sys = random_gas(1200, 5);
        let report = relax_to_glass(
            &mut sys,
            &cfg(),
            &RelaxationConfig { damping: 0.4, max_steps: 30, target_residual: 0.3 },
        )
        .expect("relaxation runs");
        assert!(report.steps > 0);
        assert!(
            report.final_rms_accel < report.initial_rms_accel,
            "forces must relax: {} → {}",
            report.initial_rms_accel,
            report.final_rms_accel
        );
        assert!(
            report.final_density_scatter < report.initial_density_scatter,
            "density scatter must shrink: {} → {}",
            report.initial_density_scatter,
            report.final_density_scatter
        );
        // The output is at rest with the original thermal state.
        assert!(sys.v.iter().all(|v| *v == Vec3::ZERO));
        assert!(sys.u.iter().all(|&u| (u - 1.0).abs() < 1e-12));
        assert_eq!(sys.time, 0.0);
        assert!(sys.sanity_check().is_ok());
    }

    #[test]
    fn relaxation_is_deterministic() {
        let mut a = random_gas(400, 9);
        let mut b = random_gas(400, 9);
        let rc = RelaxationConfig { damping: 0.5, max_steps: 5, target_residual: 0.0 };
        relax_to_glass(&mut a, &cfg(), &rc).unwrap();
        relax_to_glass(&mut b, &cfg(), &rc).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.x[i], b.x[i]);
        }
    }

    #[test]
    fn respects_max_steps() {
        let mut sys = random_gas(300, 11);
        let report = relax_to_glass(
            &mut sys,
            &cfg(),
            &RelaxationConfig { damping: 0.1, max_steps: 3, target_residual: 0.0 },
        )
        .unwrap();
        assert_eq!(report.steps, 3);
    }
}
