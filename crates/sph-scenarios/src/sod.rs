//! Sod shock tube (Sod 1978) as a 3-D periodic slab, with the exact
//! Riemann solution as the analytic reference.
//!
//! The tube is realised as a *mirrored double tube*: the left state
//! fills `x ∈ [0, 1)`, the right state `x ∈ [1, 2)`, and the domain is
//! periodic in x — so there are two Riemann problems, one at `x = 1`
//! and its mirror image at `x = 0 ≡ 2`. Until their wave fans meet
//! (far beyond the validation time) each interface evolves exactly like
//! an isolated tube, and no wall boundary condition is needed. The y/z
//! cross-section is a thin periodic slab.
//!
//! Particles carry **equal masses**: the 8:1 density ratio is realised
//! by a 2:1 lattice-spacing ratio, which keeps the smoothing-length
//! iteration symmetric across the contact (the configuration Table 1
//! lists as "equal mass").
//!
//! The reference is the exact solution of the Riemann problem for an
//! ideal gas (Toro 2009, ch. 4): pressure in the star region from
//! Newton iteration on the pressure function, then self-similar
//! sampling in ξ = (x − x₀)/t.

use crate::engine::momentum_scale;
use crate::engine::{
    AnalyticReference, Check, PrimitiveState, Resolution, Scenario, ScenarioRun, ScenarioSetup,
    ValidationReport,
};
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::particles::ParticleSystem;
use sph_math::{Aabb, Periodicity, Vec3};

// ---------------------------------------------------------------------
// Exact Riemann solver (Toro 2009, ch. 4)
// ---------------------------------------------------------------------

/// One side of a Riemann problem (velocity is the x-component).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiemannState {
    pub rho: f64,
    pub p: f64,
    pub v: f64,
}

/// A 1-D two-state Riemann problem for an ideal gas.
#[derive(Debug, Clone, Copy)]
pub struct RiemannProblem {
    pub left: RiemannState,
    pub right: RiemannState,
    pub gamma: f64,
}

/// Solved star-region state; sampling gives the full self-similar fan.
#[derive(Debug, Clone, Copy)]
pub struct RiemannSolution {
    problem: RiemannProblem,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region (contact) velocity.
    pub v_star: f64,
}

/// Toro's pressure function `f_K(p)` and its derivative for one side.
fn pressure_fn(p: f64, s: &RiemannState, gamma: f64) -> (f64, f64) {
    let cs = (gamma * s.p / s.rho).sqrt();
    if p > s.p {
        // Shock branch.
        let a = 2.0 / ((gamma + 1.0) * s.rho);
        let b = (gamma - 1.0) / (gamma + 1.0) * s.p;
        let q = (a / (p + b)).sqrt();
        let f = (p - s.p) * q;
        let df = q * (1.0 - (p - s.p) / (2.0 * (p + b)));
        (f, df)
    } else {
        // Rarefaction branch.
        let pr = p / s.p;
        let f = 2.0 * cs / (gamma - 1.0) * (pr.powf((gamma - 1.0) / (2.0 * gamma)) - 1.0);
        let df = 1.0 / (s.rho * cs) * pr.powf(-(gamma + 1.0) / (2.0 * gamma));
        (f, df)
    }
}

impl RiemannProblem {
    /// Solve for the star-region pressure and velocity (Newton–Raphson
    /// on the pressure function; converges quadratically from the
    /// two-rarefaction guess for any physical states).
    pub fn solve(&self) -> RiemannSolution {
        let (l, r, g) = (self.left, self.right, self.gamma);
        assert!(l.rho > 0.0 && r.rho > 0.0 && l.p > 0.0 && r.p > 0.0 && g > 1.0);
        let dv = r.v - l.v;
        // Two-rarefaction initial guess — positive and smooth.
        let cl = (g * l.p / l.rho).sqrt();
        let cr = (g * r.p / r.rho).sqrt();
        let z = (g - 1.0) / (2.0 * g);
        let mut p = ((cl + cr - 0.5 * (g - 1.0) * dv) / (cl / l.p.powf(z) + cr / r.p.powf(z)))
            .powf(1.0 / z);
        if !p.is_finite() || p <= 0.0 {
            p = 0.5 * (l.p + r.p);
        }
        for _ in 0..64 {
            let (fl, dfl) = pressure_fn(p, &l, g);
            let (fr, dfr) = pressure_fn(p, &r, g);
            let f = fl + fr + dv;
            let step = f / (dfl + dfr);
            let next = (p - step).max(1e-14 * p);
            if ((next - p) / p).abs() < 1e-14 {
                p = next;
                break;
            }
            p = next;
        }
        let (fl, _) = pressure_fn(p, &l, g);
        let (fr, _) = pressure_fn(p, &r, g);
        let v_star = 0.5 * (l.v + r.v) + 0.5 * (fr - fl);
        RiemannSolution { problem: *self, p_star: p, v_star }
    }
}

impl RiemannSolution {
    /// Sample the self-similar solution at `xi = (x − x₀)/t`.
    pub fn sample(&self, xi: f64) -> RiemannState {
        let (l, r, g) = (self.problem.left, self.problem.right, self.problem.gamma);
        let (p_star, v_star) = (self.p_star, self.v_star);
        let gm = g - 1.0;
        let gp = g + 1.0;
        if xi <= v_star {
            // Left of the contact.
            let cl = (g * l.p / l.rho).sqrt();
            if p_star > l.p {
                // Left shock.
                let s = l.v - cl * (gp / (2.0 * g) * p_star / l.p + gm / (2.0 * g)).sqrt();
                if xi <= s {
                    l
                } else {
                    let rho = l.rho * (p_star / l.p + gm / gp) / (gm / gp * p_star / l.p + 1.0);
                    RiemannState { rho, p: p_star, v: v_star }
                }
            } else {
                // Left rarefaction.
                let c_star = cl * (p_star / l.p).powf(gm / (2.0 * g));
                let head = l.v - cl;
                let tail = v_star - c_star;
                if xi <= head {
                    l
                } else if xi >= tail {
                    let rho = l.rho * (p_star / l.p).powf(1.0 / g);
                    RiemannState { rho, p: p_star, v: v_star }
                } else {
                    let v = 2.0 / gp * (cl + gm / 2.0 * l.v + xi);
                    let c = 2.0 / gp * (cl + gm / 2.0 * (l.v - xi));
                    let rho = l.rho * (c / cl).powf(2.0 / gm);
                    let p = l.p * (c / cl).powf(2.0 * g / gm);
                    RiemannState { rho, p, v }
                }
            }
        } else {
            // Right of the contact (mirror formulas).
            let cr = (g * r.p / r.rho).sqrt();
            if p_star > r.p {
                // Right shock.
                let s = r.v + cr * (gp / (2.0 * g) * p_star / r.p + gm / (2.0 * g)).sqrt();
                if xi >= s {
                    r
                } else {
                    let rho = r.rho * (p_star / r.p + gm / gp) / (gm / gp * p_star / r.p + 1.0);
                    RiemannState { rho, p: p_star, v: v_star }
                }
            } else {
                // Right rarefaction.
                let c_star = cr * (p_star / r.p).powf(gm / (2.0 * g));
                let head = r.v + cr;
                let tail = v_star + c_star;
                if xi >= head {
                    r
                } else if xi <= tail {
                    let rho = r.rho * (p_star / r.p).powf(1.0 / g);
                    RiemannState { rho, p: p_star, v: v_star }
                } else {
                    let v = 2.0 / gp * (-cr + gm / 2.0 * r.v + xi);
                    let c = 2.0 / gp * (cr - gm / 2.0 * (r.v - xi));
                    let rho = r.rho * (c / cr).powf(2.0 / gm);
                    let p = r.p * (c / cr).powf(2.0 * g / gm);
                    RiemannState { rho, p, v }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Initial conditions
// ---------------------------------------------------------------------

/// Sod-tube configuration. The classic states are the defaults.
#[derive(Debug, Clone, Copy)]
pub struct SodConfig {
    /// Lattice cells per unit length on the dense (left) side; must be
    /// even so the 2:1-spaced right side tiles exactly.
    pub nx: usize,
    /// Slab thickness in *left* cells; must be even for the same reason.
    pub slab_cells: usize,
    pub left: RiemannState,
    pub right: RiemannState,
    pub gamma: f64,
}

impl Default for SodConfig {
    fn default() -> Self {
        SodConfig {
            nx: 40,
            slab_cells: 8,
            left: RiemannState { rho: 1.0, p: 1.0, v: 0.0 },
            right: RiemannState { rho: 0.125, p: 0.1, v: 0.0 },
            gamma: 1.4,
        }
    }
}

/// Build the mirrored-double-tube initial conditions: left state over
/// `x ∈ [0, 1)`, right state over `x ∈ [1, 2)`, fully periodic.
pub fn sod_tube(cfg: &SodConfig) -> ParticleSystem {
    assert!(cfg.nx >= 8 && cfg.nx.is_multiple_of(2), "nx must be even and ≥ 8");
    assert!(cfg.slab_cells >= 4 && cfg.slab_cells.is_multiple_of(2));
    assert!(
        (cfg.left.rho / cfg.right.rho - 8.0).abs() < 1e-12,
        "the equal-mass lattice construction requires the classic 8:1 density ratio"
    );
    let dl = 1.0 / cfg.nx as f64;
    let dr = 2.0 * dl;
    let thickness = cfg.slab_cells as f64 * dl;
    let m = cfg.left.rho * dl * dl * dl;

    let mut x = Vec::new();
    let mut h = Vec::new();
    let mut u = Vec::new();
    let mut v = Vec::new();
    let gm1 = cfg.gamma - 1.0;
    // Left half: x ∈ [0, 1).
    for ix in 0..cfg.nx {
        for iy in 0..cfg.slab_cells {
            for iz in 0..cfg.slab_cells {
                x.push(Vec3::new(
                    (ix as f64 + 0.5) * dl,
                    (iy as f64 + 0.5) * dl,
                    (iz as f64 + 0.5) * dl,
                ));
                h.push(1.6 * dl);
                u.push(cfg.left.p / (gm1 * cfg.left.rho));
                v.push(Vec3::new(cfg.left.v, 0.0, 0.0));
            }
        }
    }
    // Right half: x ∈ [1, 2) at double spacing (equal particle mass).
    for ix in 0..cfg.nx / 2 {
        for iy in 0..cfg.slab_cells / 2 {
            for iz in 0..cfg.slab_cells / 2 {
                x.push(Vec3::new(
                    1.0 + (ix as f64 + 0.5) * dr,
                    (iy as f64 + 0.5) * dr,
                    (iz as f64 + 0.5) * dr,
                ));
                h.push(1.6 * dr);
                u.push(cfg.right.p / (gm1 * cfg.right.rho));
                v.push(Vec3::new(cfg.right.v, 0.0, 0.0));
            }
        }
    }
    let n = x.len();
    let domain = Aabb::new(Vec3::ZERO, Vec3::new(2.0, thickness, thickness));
    let mut sys =
        ParticleSystem::new(x, v, vec![m; n], u, 1.6 * dl, Periodicity::fully_periodic(domain));
    sys.h = h; // per-side initial guess, so the h iteration starts near
    sys
}

/// Full-domain analytic profile of the double tube at time `t`: each
/// position is sampled from its nearest interface's fan (exact until
/// the fans meet, far beyond the validation time).
pub fn sod_profile(cfg: SodConfig, t: f64) -> impl Fn(Vec3) -> PrimitiveState {
    let main = RiemannProblem { left: cfg.left, right: cfg.right, gamma: cfg.gamma }.solve();
    // The mirror interface at x = 0 ≡ 2 sees the right state on its left
    // and the left state on its right.
    let mirror = RiemannProblem { left: cfg.right, right: cfg.left, gamma: cfg.gamma }.solve();
    move |p: Vec3| {
        let x = p.x;
        let (sol, x0) = if (x - 1.0).abs() <= 0.5 {
            (&main, 1.0)
        } else if x < 0.5 {
            (&mirror, 0.0)
        } else {
            (&mirror, 2.0)
        };
        let s = if t > 0.0 {
            sol.sample((x - x0) / t)
        } else if (x - 1.0).abs() <= 0.5 {
            if x < 1.0 {
                cfg.left
            } else {
                cfg.right
            }
        } else if x < 0.5 {
            cfg.left
        } else {
            cfg.right
        };
        PrimitiveState { rho: s.rho, p: s.p, v: Vec3::new(s.v, 0.0, 0.0) }
    }
}

/// The registered Sod workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct SodScenario;

impl SodScenario {
    fn cfg(&self, res: Resolution) -> SodConfig {
        // Keep nx and the slab even at every scale.
        let nx = (res.scaled(20, 6) * 2).max(8);
        let slab = (res.scaled(4, 2) * 2).max(4);
        SodConfig { nx, slab_cells: slab, ..Default::default() }
    }

    /// The particles the error norm is taken over: the full fan of the
    /// main interface, excluding everything the mirror interface's
    /// waves can reach by the validation time.
    fn window(x: f64) -> bool {
        (x - 1.0).abs() <= 0.55
    }
}

impl Scenario for SodScenario {
    fn name(&self) -> &'static str {
        "sod"
    }

    fn reference(&self) -> &'static str {
        "Sod 1978"
    }

    fn description(&self) -> &'static str {
        "Shock tube in a 3-D periodic slab: shock, contact and rarefaction from one jump"
    }

    fn analytic_check(&self) -> &'static str {
        "L1 density error vs the exact Riemann solution < 0.05"
    }

    fn init(&self, res: Resolution) -> ScenarioSetup {
        let cfg = self.cfg(res);
        let config = SphConfig {
            gamma: cfg.gamma,
            target_neighbors: 60,
            viscosity: ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: true },
            ..Default::default()
        };
        ScenarioSetup { sys: sod_tube(&cfg), config, gravity: None }
    }

    fn end_time(&self) -> f64 {
        0.2
    }

    fn l1_tolerance(&self) -> f64 {
        0.05
    }

    fn analytic_reference(&self, t: f64) -> Option<AnalyticReference> {
        // Same config source as `init` (Resolution scales the lattice
        // only, so the Riemann states match any resolution's run).
        let cfg = self.cfg(Resolution::default());
        Some(AnalyticReference::Profile(Box::new(sod_profile(cfg, t))))
    }

    fn validate(&self, run: &ScenarioRun) -> ValidationReport {
        let cfg = self.cfg(Resolution::default());
        let profile = sod_profile(cfg, run.sys.time);
        let norms = crate::engine::density_error_norms(&run.sys, &profile, |i| {
            Self::window(run.sys.x[i].x)
        });
        let momentum_scale = momentum_scale(&run.sys);
        let checks = vec![
            Check::upper("l1_density_error", norms.l1, self.l1_tolerance()),
            Check::upper("energy_drift", run.energy_drift(), 0.02),
        ];
        let sol = RiemannProblem { left: cfg.left, right: cfg.right, gamma: cfg.gamma }.solve();
        let metrics = vec![("p_star_exact", sol.p_star), ("v_star_exact", sol.v_star)];
        ValidationReport::new(
            self.name(),
            run,
            run.sys.time,
            Some(norms),
            self.l1_tolerance(),
            momentum_scale,
            checks,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic() -> RiemannProblem {
        RiemannProblem {
            left: RiemannState { rho: 1.0, p: 1.0, v: 0.0 },
            right: RiemannState { rho: 0.125, p: 0.1, v: 0.0 },
            gamma: 1.4,
        }
    }

    #[test]
    fn classic_sod_star_state_matches_literature() {
        // Toro 2009, Table 4.2 (test 1): p* = 0.30313, u* = 0.92745.
        let sol = classic().solve();
        assert!((sol.p_star - 0.30313).abs() < 1e-4, "p* = {}", sol.p_star);
        assert!((sol.v_star - 0.92745).abs() < 1e-4, "u* = {}", sol.v_star);
    }

    #[test]
    fn sampled_densities_match_literature() {
        // Star densities of the classic tube: ρ*L ≈ 0.42632 (rarefaction
        // side), ρ*R ≈ 0.26557 (shock side).
        let sol = classic().solve();
        let just_left = sol.sample(sol.v_star - 1e-9);
        let just_right = sol.sample(sol.v_star + 1e-9);
        assert!((just_left.rho - 0.42632).abs() < 1e-4, "ρ*L = {}", just_left.rho);
        assert!((just_right.rho - 0.26557).abs() < 1e-4, "ρ*R = {}", just_right.rho);
        // Far field recovers the inputs.
        assert_eq!(sol.sample(-10.0), classic().left);
        assert_eq!(sol.sample(10.0), classic().right);
    }

    #[test]
    fn solution_is_continuous_across_the_rarefaction() {
        let sol = classic().solve();
        let cl = (1.4f64).sqrt();
        let head = -cl;
        let a = sol.sample(head - 1e-9);
        let b = sol.sample(head + 1e-9);
        assert!((a.rho - b.rho).abs() < 1e-6);
        assert!((a.v - b.v).abs() < 1e-6);
    }

    #[test]
    fn symmetric_states_give_zero_contact_velocity() {
        let s = RiemannState { rho: 1.0, p: 1.0, v: 0.0 };
        let sol = RiemannProblem { left: s, right: s, gamma: 1.4 }.solve();
        assert!((sol.v_star).abs() < 1e-12);
        assert!((sol.p_star - 1.0).abs() < 1e-10);
    }

    #[test]
    fn tube_construction_is_equal_mass_and_sane() {
        let cfg = SodConfig { nx: 16, slab_cells: 4, ..Default::default() };
        let sys = sod_tube(&cfg);
        assert!(sys.sanity_check().is_ok());
        // Equal masses by construction.
        let m0 = sys.m[0];
        assert!(sys.m.iter().all(|&m| (m - m0).abs() < 1e-18));
        // Total mass = ρL·V_left + ρR·V_right.
        let thick = 4.0 / 16.0;
        let want = (1.0 * 1.0 + 0.125 * 1.0) * thick * thick;
        assert!((sys.total_mass() - want).abs() < 1e-12, "M = {}", sys.total_mass());
        // 8:1 particle-count ratio between the halves.
        let left = sys.x.iter().filter(|p| p.x < 1.0).count();
        let right = sys.len() - left;
        assert_eq!(left, 8 * right);
    }

    #[test]
    fn profile_at_t0_is_the_initial_jump() {
        let cfg = SodConfig::default();
        let f = sod_profile(cfg, 0.0);
        assert_eq!(f(Vec3::new(0.5, 0.0, 0.0)).rho, 1.0);
        assert_eq!(f(Vec3::new(1.5, 0.0, 0.0)).rho, 0.125);
    }

    #[test]
    fn mirror_interface_produces_the_mirrored_fan() {
        // At t = 0.1 the mirror shock (travelling in −x from x = 2)
        // must have the same speed as the main shock (travelling +x).
        let cfg = SodConfig::default();
        let t = 0.1;
        let f = sod_profile(cfg, t);
        let sol = RiemannProblem { left: cfg.left, right: cfg.right, gamma: cfg.gamma }.solve();
        // Shock position from the sampled solution: density jumps at
        // x = 1 + s·t; probe just inside/outside.
        let g = cfg.gamma;
        let s_speed = cfg.right.v
            + (g * cfg.right.p / cfg.right.rho).sqrt()
                * ((g + 1.0) / (2.0 * g) * sol.p_star / cfg.right.p + (g - 1.0) / (2.0 * g)).sqrt();
        let main_in = f(Vec3::new(1.0 + s_speed * t - 1e-6, 0.0, 0.0)).rho;
        let mirror_in = f(Vec3::new(2.0 - s_speed * t + 1e-6, 0.0, 0.0)).rho;
        assert!((main_in - mirror_in).abs() < 1e-9, "{main_in} vs {mirror_in}");
    }
}
