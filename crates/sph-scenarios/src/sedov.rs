//! Sedov–Taylor point blast (Sedov 1959; Taylor 1950).
//!
//! A finite energy `E` deposited at the origin of a cold uniform gas
//! drives a spherical shock whose radius follows the self-similar law
//!
//! ```text
//! R(t) = ξ₀(γ) · (E t² / ρ₀)^{1/5}
//! ```
//!
//! with a dimensionless constant `ξ₀` fixed by energy conservation
//! inside the similarity solution. This is *the* standard strong-shock
//! benchmark: it exercises the artificial-viscosity shock capturing, the
//! energy equation under extreme gradients (u spans ~10 decades between
//! blast and background), and the smoothing-length iteration across a
//! 4:1 density jump.
//!
//! The initial condition is a cell-centred cubic lattice in a fully
//! periodic box (the shock never reaches the boundary within the
//! validation window) with the blast energy deposited as specific
//! internal energy over the few central particles, Gaussian-weighted so
//! the deposition is smooth and exactly lattice-symmetric.

use crate::engine::{
    momentum_scale, AnalyticReference, Check, ErrorNorms, Resolution, Scenario, ScenarioRun,
    ScenarioSetup, ValidationReport,
};
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::particles::ParticleSystem;
use sph_math::{Aabb, Periodicity, Vec3};

/// Sedov-blast configuration.
#[derive(Debug, Clone, Copy)]
pub struct SedovConfig {
    /// Lattice cells per side (total particles = nx³).
    pub nx: usize,
    /// Ambient density ρ₀.
    pub rho0: f64,
    /// Blast energy E.
    pub blast_energy: f64,
    /// Ambient specific internal energy (tiny but positive: the
    /// background must be effectively cold for the self-similar law).
    pub u_background: f64,
    /// Adiabatic index (ξ₀ is tabulated for 5/3 and 1.4).
    pub gamma: f64,
    /// Energy-deposition radius in units of the lattice spacing.
    pub injection_spacings: f64,
}

impl Default for SedovConfig {
    fn default() -> Self {
        SedovConfig {
            nx: 32,
            rho0: 1.0,
            blast_energy: 1.0,
            u_background: 1e-8,
            gamma: 5.0 / 3.0,
            injection_spacings: 3.0,
        }
    }
}

/// The Sedov similarity constant `ξ₀(γ)` (Sedov 1959, ch. IV): the
/// dimensionless shock position of the energy-conserving self-similar
/// solution. Tabulated for the two standard adiabatic indices.
pub fn sedov_xi0(gamma: f64) -> f64 {
    if (gamma - 5.0 / 3.0).abs() < 1e-9 {
        1.15167
    } else if (gamma - 1.4).abs() < 1e-9 {
        1.03279
    } else {
        // sph-lint: allow(panic-path) — programmer-error bound: the only
        // callers are registered scenarios pinned to the tabulated gammas;
        // an untabulated gamma must fail loudly at registration time.
        panic!("sedov_xi0: no tabulated similarity constant for gamma = {gamma}")
    }
}

/// Analytic shock radius `R(t) = ξ₀ (E t²/ρ₀)^{1/5}`.
pub fn sedov_shock_radius(e: f64, rho0: f64, t: f64, gamma: f64) -> f64 {
    sedov_xi0(gamma) * (e * t * t / rho0).powf(0.2)
}

/// Estimate the shock radius of a particle snapshot as the
/// density-weighted centroid of the peak of the radial density
/// histogram (the blast sits at the origin). Returns `None` while no
/// density excess is resolvable (e.g. before the first step).
pub fn shock_radius_estimate(sys: &ParticleSystem) -> Option<f64> {
    let r_max = sys.periodicity.domain.extent().min_component() * 0.5;
    const NBINS: usize = 64;
    let mut sum = [0.0f64; NBINS];
    let mut cnt = [0u32; NBINS];
    for i in 0..sys.len() {
        let r = sys.x[i].norm();
        let b = ((r / r_max) * NBINS as f64) as usize;
        if b < NBINS {
            sum[b] += sys.rho[i];
            cnt[b] += 1;
        }
    }
    let mean = |b: usize| -> Option<f64> { (cnt[b] > 0).then(|| sum[b] / cnt[b] as f64) };
    let (mut peak, mut peak_rho) = (0usize, f64::NEG_INFINITY);
    for b in 0..NBINS {
        if let Some(m) = mean(b) {
            if m > peak_rho {
                peak_rho = m;
                peak = b;
            }
        }
    }
    // Ambient density from the outer quarter of the histogram: the
    // pre-shock gas (the *interior* minimum is useless here — Sedov
    // evacuates the centre towards ρ → 0).
    let (mut amb_sum, mut amb_n) = (0.0, 0u32);
    for b in (3 * NBINS / 4)..NBINS {
        if let Some(m) = mean(b) {
            amb_sum += m;
            amb_n += 1;
        }
    }
    if amb_n == 0 || !peak_rho.is_finite() {
        return None;
    }
    let ambient = amb_sum / amb_n as f64;
    if peak_rho <= 1.1 * ambient || peak >= 3 * NBINS / 4 {
        return None; // no resolvable shock shell yet
    }
    let r_of = |b: usize| (b as f64 + 0.5) / NBINS as f64 * r_max;
    // Two estimators bracket the smeared front with opposite biases:
    //
    // 1. the density-excess centroid of the peak neighbourhood sits
    //    *inside* the front (the Sedov profile is asymmetric — steep
    //    outside, shallow inside), by about half a smoothing length;
    // 2. the radius where the outer flank crosses the peak/ambient
    //    midpoint sits *outside* it, by the same kernel smearing.
    //
    // Their mean cancels the leading-order bias.
    let lo = peak.saturating_sub(2);
    let hi = (peak + 2).min(NBINS - 1);
    let (mut wsum, mut wr) = (0.0, 0.0);
    for b in lo..=hi {
        if let Some(m) = mean(b) {
            let w = (m - ambient).max(0.0);
            wsum += w;
            wr += w * r_of(b);
        }
    }
    let r_in = if wsum > 0.0 { wr / wsum } else { r_of(peak) };
    let half = 0.5 * (peak_rho + ambient);
    let mut r_out = r_of(peak);
    let mut prev = (r_of(peak), peak_rho);
    for b in peak + 1..NBINS {
        let Some(m) = mean(b) else { continue };
        if m <= half {
            let (r0, m0) = prev;
            let t = if (m0 - m).abs() > 0.0 { (m0 - half) / (m0 - m) } else { 0.0 };
            r_out = r0 + t * (r_of(b) - r0);
            break;
        }
        prev = (r_of(b), m);
        r_out = prev.0;
    }
    Some(0.5 * (r_in + r_out))
}

/// Build the Sedov initial conditions.
pub fn sedov_blast(cfg: &SedovConfig) -> ParticleSystem {
    assert!(cfg.nx >= 8, "Sedov needs a resolvable lattice");
    assert!(cfg.rho0 > 0.0 && cfg.blast_energy > 0.0 && cfg.u_background > 0.0);
    let n = cfg.nx * cfg.nx * cfg.nx;
    let dx = 1.0 / cfg.nx as f64;
    let m = cfg.rho0 * dx * dx * dx;
    let mut x = Vec::with_capacity(n);
    for iz in 0..cfg.nx {
        for iy in 0..cfg.nx {
            for ix in 0..cfg.nx {
                x.push(Vec3::new(
                    -0.5 + (ix as f64 + 0.5) * dx,
                    -0.5 + (iy as f64 + 0.5) * dx,
                    -0.5 + (iz as f64 + 0.5) * dx,
                ));
            }
        }
    }
    // Gaussian-weighted central energy deposition: smooth, deterministic
    // and symmetric under every lattice symmetry (the weights depend on
    // r only).
    let r_inj = cfg.injection_spacings * dx;
    let weight = |p: &Vec3| -> f64 {
        let r = p.norm();
        if r <= r_inj {
            (-(2.0 * r / r_inj) * (2.0 * r / r_inj)).exp()
        } else {
            0.0
        }
    };
    let wsum: f64 = x.iter().map(weight).sum();
    assert!(wsum > 0.0, "injection radius covers no particle");
    let u: Vec<f64> =
        x.iter().map(|p| cfg.u_background + cfg.blast_energy / m * weight(p) / wsum).collect();
    let domain = Aabb::cube(Vec3::ZERO, 0.5);
    ParticleSystem::new(
        x,
        vec![Vec3::ZERO; n],
        vec![m; n],
        u,
        1.5 * dx,
        Periodicity::fully_periodic(domain),
    )
}

/// The registered Sedov workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct SedovScenario;

impl SedovScenario {
    fn cfg(&self, res: Resolution) -> SedovConfig {
        SedovConfig { nx: res.scaled(32, 12), ..Default::default() }
    }
}

impl Scenario for SedovScenario {
    fn name(&self) -> &'static str {
        "sedov"
    }

    fn reference(&self) -> &'static str {
        "Sedov 1959 / Taylor 1950"
    }

    fn description(&self) -> &'static str {
        "Point blast in a cold uniform gas: self-similar spherical strong shock"
    }

    fn analytic_check(&self) -> &'static str {
        "shock radius vs R(t) = ξ₀(Et²/ρ₀)^{1/5} within 5 %"
    }

    fn init(&self, res: Resolution) -> ScenarioSetup {
        let cfg = self.cfg(res);
        let config = SphConfig {
            gamma: cfg.gamma,
            target_neighbors: 60,
            // Strong-shock AV: α = 1.5, β = 2α. *Weaker* settings make
            // the energy ledger worse here — a sharper captured shock
            // rings more, and the post-shock oscillations are what the
            // KDK thermal-energy update integrates inexactly.
            viscosity: ViscosityConfig { alpha: 1.5, beta: 3.0, eta2: 0.01, balsara: true },
            // The blast deposits ~10 decades of internal-energy contrast
            // into a handful of particles; a conservative CFL keeps the
            // energy ledger tight through the violent early transient.
            cfl: 0.2,
            ..Default::default()
        };
        ScenarioSetup { sys: sedov_blast(&cfg), config, gravity: None }
    }

    fn end_time(&self) -> f64 {
        0.05
    }

    fn l1_tolerance(&self) -> f64 {
        0.05
    }

    fn analytic_reference(&self, t: f64) -> Option<AnalyticReference> {
        // Same config source as `init` (Resolution scales the lattice
        // only, so the physics parameters match any resolution's run).
        let cfg = self.cfg(Resolution::default());
        (t > 0.0).then(|| {
            AnalyticReference::ShockRadius(sedov_shock_radius(
                cfg.blast_energy,
                cfg.rho0,
                t,
                cfg.gamma,
            ))
        })
    }

    fn track(&self, sys: &ParticleSystem) -> Option<f64> {
        shock_radius_estimate(sys)
    }

    fn validate(&self, run: &ScenarioRun) -> ValidationReport {
        let cfg = self.cfg(Resolution::default());
        let analytic = sedov_shock_radius(cfg.blast_energy, cfg.rho0, run.sys.time, cfg.gamma);
        let measured = shock_radius_estimate(&run.sys).unwrap_or(0.0);
        let rel_err = (measured - analytic).abs() / analytic;
        // The "norm" of a shock-position test is the relative front
        // error: one number, so L1 ≡ L∞.
        let norms = Some(ErrorNorms { l1: rel_err, linf: rel_err });
        let momentum_scale = momentum_scale(&run.sys);
        let checks = vec![
            Check::upper("shock_radius_rel_err", rel_err, self.l1_tolerance()),
            // The pairwise energy identity Σm(v·a + u̇) = 0 is exact (see
            // the sph-core force tests); what drifts is the KDK
            // *time integration* of the stiff shock heating, linearly in
            // CFL (measured 5.7 % @ 0.3, 3.2 % @ 0.2 at 32³). 5 % is the
            // registered bound for the δ-start blast at CFL 0.2.
            Check::upper("energy_drift", run.energy_drift(), 0.05),
            // |P_final| itself (the blast starts at rest, so the final
            // magnitude — not just the drift — must vanish); named
            // distinctly from the report-level `momentum_drift` delta.
            Check::upper(
                "momentum_magnitude",
                run.final_conservation.momentum.norm() / momentum_scale,
                1e-6,
            ),
        ];
        let metrics = vec![
            ("shock_radius_measured", measured),
            ("shock_radius_analytic", analytic),
            ("peak_density", run.sys.rho.iter().cloned().fold(0.0, f64::max)),
        ];
        ValidationReport::new(
            self.name(),
            run,
            run.sys.time,
            norms,
            self.l1_tolerance(),
            momentum_scale,
            checks,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shock_radius_follows_two_fifths_law() {
        let r1 = sedov_shock_radius(1.0, 1.0, 0.01, 5.0 / 3.0);
        let r2 = sedov_shock_radius(1.0, 1.0, 0.04, 5.0 / 3.0);
        // t × 4 ⇒ R × 4^{2/5}.
        assert!((r2 / r1 - 4.0f64.powf(0.4)).abs() < 1e-12);
        // Energy × 32 ⇒ R × 2.
        let r3 = sedov_shock_radius(32.0, 1.0, 0.01, 5.0 / 3.0);
        assert!((r3 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn unsupported_gamma_is_loud() {
        let _ = sedov_xi0(2.2);
    }

    #[test]
    fn lattice_is_symmetric_and_total_energy_matches() {
        let cfg = SedovConfig { nx: 16, ..Default::default() };
        let sys = sedov_blast(&cfg);
        assert_eq!(sys.len(), 16 * 16 * 16);
        assert!(sys.sanity_check().is_ok());
        // Total thermal energy = E + background.
        let e: f64 = (0..sys.len()).map(|i| sys.m[i] * sys.u[i]).sum();
        let e_bg = cfg.u_background * sys.total_mass();
        assert!(((e - e_bg) / cfg.blast_energy - 1.0).abs() < 1e-10, "E = {e}");
        // Lattice symmetry: the blast centre is surrounded by 8 equal
        // nearest particles with equal energy shares.
        let mut hot: Vec<usize> =
            (0..sys.len()).filter(|&i| sys.u[i] > 100.0 * cfg.u_background).collect();
        hot.sort_by(|&a, &b| sys.u[b].partial_cmp(&sys.u[a]).unwrap());
        assert!(hot.len() >= 8, "expected a deposition kernel, got {} hot", hot.len());
        let top = sys.u[hot[0]];
        for &i in &hot[..8] {
            assert!((sys.u[i] - top).abs() < 1e-9 * top, "asymmetric deposition");
        }
    }

    #[test]
    fn fresh_lattice_has_no_measurable_shock() {
        let sys = sedov_blast(&SedovConfig { nx: 12, ..Default::default() });
        // Densities are all zero before the first evaluation.
        assert_eq!(shock_radius_estimate(&sys), None);
    }
}
