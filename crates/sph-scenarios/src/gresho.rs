//! Gresho–Chan vortex (Gresho & Chan 1990; Liska & Wendroff 2003).
//!
//! A stationary triangular vortex in exact pressure equilibrium: the
//! centrifugal force of the azimuthal velocity profile is balanced
//! pointwise by the radial pressure gradient, so the *analytic solution
//! is the initial condition at every time*. Any evolution is numerical
//! error — which makes the test a sensitive meter for angular-momentum
//! diffusion and artificial-viscosity noise in shear flows (exactly
//! what the Balsara switch exists to suppress).
//!
//! Profile (ρ = 1 everywhere):
//!
//! ```text
//! v_φ(r) = 5r            p(r) = 5 + 12.5 r²                     r < 0.2
//! v_φ(r) = 2 − 5r        p(r) = 9 + 12.5 r² − 20r + 4 ln(5r)    0.2 ≤ r < 0.4
//! v_φ(r) = 0             p(r) = 3 + 4 ln 2                      r ≥ 0.4
//! ```
//!
//! Realised as a 3-D slab: the 2-D vortex extruded along z, fully
//! periodic (the outer fluid is at rest, so the periodic images are
//! inert).

use crate::engine::momentum_scale;
use crate::engine::{
    AnalyticReference, Check, PrimitiveState, Resolution, Scenario, ScenarioRun, ScenarioSetup,
    ValidationReport,
};
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::eos::IdealGas;
use sph_core::particles::ParticleSystem;
use sph_kernels::KernelKind;
use sph_math::{Aabb, Periodicity, Vec3};

/// Azimuthal velocity of the Gresho vortex.
pub fn gresho_v_phi(r: f64) -> f64 {
    if r < 0.2 {
        5.0 * r
    } else if r < 0.4 {
        2.0 - 5.0 * r
    } else {
        0.0
    }
}

/// Equilibrium pressure of the *unit-density* Gresho vortex; a vortex
/// of density ρ₀ is in equilibrium with `ρ₀ · gresho_pressure(r)`
/// (the balance `dp/dr = ρ v_φ²/r` is linear in ρ).
pub fn gresho_pressure(r: f64) -> f64 {
    if r < 0.2 {
        5.0 + 12.5 * r * r
    } else if r < 0.4 {
        9.0 + 12.5 * r * r - 20.0 * r + 4.0 * (5.0 * r).ln()
    } else {
        3.0 + 4.0 * 2.0f64.ln()
    }
}

/// Gresho-vortex configuration.
#[derive(Debug, Clone, Copy)]
pub struct GreshoConfig {
    /// Lattice cells per unit length in the vortex plane.
    pub nx: usize,
    /// Slab thickness in cells.
    pub nz: usize,
    pub rho0: f64,
    pub gamma: f64,
}

impl Default for GreshoConfig {
    fn default() -> Self {
        GreshoConfig { nx: 32, nz: 8, rho0: 1.0, gamma: 5.0 / 3.0 }
    }
}

/// Build the Gresho-vortex initial conditions on `[0,1]² × [0, nz/nx]`,
/// fully periodic, vortex centred at (½, ½).
pub fn gresho_vortex(cfg: &GreshoConfig) -> ParticleSystem {
    assert!(cfg.nx >= 8 && cfg.nz >= 4);
    assert!(cfg.rho0 > 0.0 && cfg.gamma > 1.0);
    let dx = 1.0 / cfg.nx as f64;
    let lz = cfg.nz as f64 * dx;
    let n = cfg.nx * cfg.nx * cfg.nz;
    let m = cfg.rho0 * dx * dx * dx;
    let eos = IdealGas::new(cfg.gamma);

    let mut x = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut u = Vec::with_capacity(n);
    for iz in 0..cfg.nz {
        for iy in 0..cfg.nx {
            for ix in 0..cfg.nx {
                let p = Vec3::new(
                    (ix as f64 + 0.5) * dx,
                    (iy as f64 + 0.5) * dx,
                    (iz as f64 + 0.5) * dx,
                );
                let (rx, ry) = (p.x - 0.5, p.y - 0.5);
                let r = (rx * rx + ry * ry).sqrt();
                let vphi = gresho_v_phi(r);
                // v̂_φ = (−sin φ, cos φ): counter-clockwise rotation.
                let vel = if r > 0.0 {
                    Vec3::new(-ry / r * vphi, rx / r * vphi, 0.0)
                } else {
                    Vec3::ZERO
                };
                x.push(p);
                v.push(vel);
                u.push(eos.energy_from_pressure(cfg.rho0, cfg.rho0 * gresho_pressure(r)));
            }
        }
    }
    let domain = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, lz));
    ParticleSystem::new(x, v, vec![m; n], u, 1.5 * dx, Periodicity::fully_periodic(domain))
}

/// Mean azimuthal velocity over the peak band `r ∈ [0.15, 0.25]` — the
/// retention diagnostic (the analytic area-weighted band mean is 0.875).
pub fn peak_band_v_phi(sys: &ParticleSystem) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..sys.len() {
        let (rx, ry) = (sys.x[i].x - 0.5, sys.x[i].y - 0.5);
        let r = (rx * rx + ry * ry).sqrt();
        if (0.15..=0.25).contains(&r) && r > 0.0 {
            // v_φ = v · φ̂ with φ̂ = (−ry, rx)/r.
            sum += (-ry * sys.v[i].x + rx * sys.v[i].y) / r;
            n += 1;
        }
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

/// The registered Gresho–Chan workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreshoScenario;

impl GreshoScenario {
    fn cfg(&self, res: Resolution) -> GreshoConfig {
        GreshoConfig { nx: res.scaled(32, 12), nz: res.scaled(8, 4), ..Default::default() }
    }
}

impl Scenario for GreshoScenario {
    fn name(&self) -> &'static str {
        "gresho"
    }

    fn reference(&self) -> &'static str {
        "Gresho & Chan 1990"
    }

    fn description(&self) -> &'static str {
        "Stationary pressure-equilibrium vortex: angular-momentum and AV-noise meter"
    }

    fn analytic_check(&self) -> &'static str {
        "stationary profile; peak v_φ retention ≥ 80 %, density L1 vs ρ₀ < 0.05"
    }

    fn init(&self, res: Resolution) -> ScenarioSetup {
        let cfg = self.cfg(res);
        let config = SphConfig {
            gamma: cfg.gamma,
            // The vortex is killed by sampling noise, not by pair
            // viscosity (halving α barely moves the retention): smooth
            // harder instead — Wendland C2 with ~100 neighbours, the
            // standard anti-noise recipe for subsonic shear.
            kernel: KernelKind::WendlandC2,
            target_neighbors: 100,
            viscosity: ViscosityConfig { alpha: 0.5, beta: 1.0, eta2: 0.01, balsara: true },
            ..Default::default()
        };
        ScenarioSetup { sys: gresho_vortex(&cfg), config, gravity: None }
    }

    fn end_time(&self) -> f64 {
        0.4
    }

    fn l1_tolerance(&self) -> f64 {
        0.05
    }

    fn analytic_reference(&self, _t: f64) -> Option<AnalyticReference> {
        // Steady state: the IC is the solution at every t. Same config
        // source as `init` (Resolution scales the lattice only).
        let rho0 = self.cfg(Resolution::default()).rho0;
        Some(AnalyticReference::Profile(Box::new(move |p: Vec3| {
            let (rx, ry) = (p.x - 0.5, p.y - 0.5);
            let r = (rx * rx + ry * ry).sqrt();
            let vphi = gresho_v_phi(r);
            let v =
                if r > 0.0 { Vec3::new(-ry / r * vphi, rx / r * vphi, 0.0) } else { Vec3::ZERO };
            PrimitiveState { rho: rho0, p: rho0 * gresho_pressure(r), v }
        })))
    }

    fn track(&self, sys: &ParticleSystem) -> Option<f64> {
        Some(peak_band_v_phi(sys))
    }

    fn validate(&self, run: &ScenarioRun) -> ValidationReport {
        let reference = match self.analytic_reference(run.sys.time) {
            Some(AnalyticReference::Profile(f)) => f,
            _ => unreachable!("gresho always has a profile"),
        };
        let norms = crate::engine::density_error_norms(&run.sys, &reference, |_| true);
        let initial_band = run.samples.first().map(|s| s.value).unwrap_or(0.0);
        let final_band = run.samples.last().map(|s| s.value).unwrap_or(0.0);
        let retention = if initial_band > 0.0 { final_band / initial_band } else { 0.0 };
        let momentum_scale = momentum_scale(&run.sys);
        let checks = vec![
            Check::lower("peak_v_phi_retention", retention, 0.8),
            Check::upper("l1_density_error", norms.l1, self.l1_tolerance()),
            Check::upper("energy_drift", run.energy_drift(), 0.02),
        ];
        let metrics =
            vec![("peak_band_v_phi_initial", initial_band), ("peak_band_v_phi_final", final_band)];
        ValidationReport::new(
            self.name(),
            run,
            run.sys.time,
            Some(norms),
            self.l1_tolerance(),
            momentum_scale,
            checks,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_continuous_at_the_joints() {
        for r0 in [0.2, 0.4] {
            let below = gresho_v_phi(r0 - 1e-12);
            let above = gresho_v_phi(r0 + 1e-12);
            assert!((below - above).abs() < 1e-9, "v_φ jumps at {r0}");
            let pb = gresho_pressure(r0 - 1e-12);
            let pa = gresho_pressure(r0 + 1e-12);
            assert!((pb - pa).abs() < 1e-9, "p jumps at {r0}");
        }
    }

    #[test]
    fn pressure_gradient_balances_centrifugal_force() {
        // dp/dr = ρ v_φ²/r at interior radii (finite differences).
        let h = 1e-7;
        for &r in &[0.1, 0.15, 0.25, 0.3, 0.35] {
            let dpdr = (gresho_pressure(r + h) - gresho_pressure(r - h)) / (2.0 * h);
            let want = gresho_v_phi(r).powi(2) / r;
            assert!((dpdr - want).abs() < 1e-5, "dp/dr = {dpdr} vs {want} at r = {r}");
        }
    }

    #[test]
    fn vortex_ic_is_sane_and_rotates() {
        let cfg = GreshoConfig { nx: 16, nz: 4, ..Default::default() };
        let sys = gresho_vortex(&cfg);
        assert_eq!(sys.len(), 16 * 16 * 4);
        assert!(sys.sanity_check().is_ok());
        // Peak-band mean azimuthal velocity ≈ analytic area-weighted
        // band mean ∫v_φ r dr / ∫r dr = 0.875 (lattice-discretised).
        let band = peak_band_v_phi(&sys);
        assert!((band - 0.875).abs() < 0.05, "band v_φ = {band}");
        // The far field is at rest.
        for i in 0..sys.len() {
            let (rx, ry) = (sys.x[i].x - 0.5, sys.x[i].y - 0.5);
            if (rx * rx + ry * ry).sqrt() >= 0.4 {
                assert_eq!(sys.v[i], Vec3::ZERO);
            }
        }
    }

    #[test]
    fn outer_pressure_is_uniform() {
        assert_eq!(gresho_pressure(0.45), gresho_pressure(5.0));
    }
}
