//! The rotating square patch (Colagrossi 2005), set up exactly as §5.1 of
//! the paper describes:
//!
//! * "the square patch was set to [100 × 100] particles in 2D and this
//!   layer was copied 100 times in the direction of the Z-axis",
//! * periodic boundary conditions in Z,
//! * rigid initial rotation `vx = ω y`, `vy = −ω x` with ω = 5 rad/s,
//! * initial pressure from the incompressible Poisson equation expressed
//!   as the rapidly converging double sine series.
//!
//! The series solves `∇²P = 2ρω²` with `P = 0` on the lateral faces; its
//! negative-pressure lobes are what triggers the tensile instability the
//! test is designed to stress. Because the SPH gas here is an ideal gas
//! (u ≥ 0), a uniform background pressure is added — the standard
//! weakly-compressible treatment; it adds no force (`∇P_back = 0`) and is
//! configurable.

use crate::engine::{
    AnalyticReference, Check, PrimitiveState, Resolution, Scenario, ScenarioRun, ScenarioSetup,
    ValidationReport,
};
use crate::registry::ScenarioInfo;
use sph_core::config::{SphConfig, ViscosityConfig};
use sph_core::{IdealGas, ParticleSystem};
use sph_math::{Aabb, Periodicity, Vec3};
use std::f64::consts::PI;

/// Square-patch configuration; paper values are the defaults except the
/// lateral resolution, which callers scale for CI-sized runs.
#[derive(Debug, Clone, Copy)]
pub struct SquarePatchConfig {
    /// Particles per side in the XY plane (paper: 100).
    pub nx: usize,
    /// Layers along Z (paper: 100).
    pub nz: usize,
    /// Side length L of the square.
    pub side: f64,
    /// Angular velocity ω (paper: 5 rad/s).
    pub omega: f64,
    /// Fluid density ρ.
    pub rho0: f64,
    /// Adiabatic index.
    pub gamma: f64,
    /// Background pressure as a multiple of ρω²L² (keeps u > 0).
    pub background_pressure: f64,
    /// Odd series terms per direction (m, n = 1, 3, …, 2k−1).
    pub series_terms: usize,
}

impl Default for SquarePatchConfig {
    fn default() -> Self {
        SquarePatchConfig {
            nx: 100,
            nz: 100,
            side: 1.0,
            omega: 5.0,
            rho0: 1.0,
            gamma: 7.0, // stiff gas ≈ weakly compressible water analogue
            background_pressure: 0.25,
            series_terms: 20,
        }
    }
}

/// The Poisson-series pressure of §5.1 at a point `(x, y)` of the square
/// `[0, L]²` (coordinates measured from the square's corner):
///
/// `P(x,y) = ρ Σ_{m,n odd} −32ω² / (mnπ²[(mπ/L)² + (nπ/L)²])
///            · sin(mπx/L) sin(nπy/L)`
pub fn square_patch_pressure(
    x: f64,
    y: f64,
    side: f64,
    rho: f64,
    omega: f64,
    series_terms: usize,
) -> f64 {
    let mut p = 0.0;
    for km in 0..series_terms {
        let m = (2 * km + 1) as f64;
        for kn in 0..series_terms {
            let n = (2 * kn + 1) as f64;
            let k2 = (m * PI / side).powi(2) + (n * PI / side).powi(2);
            let coeff = -32.0 * omega * omega / (m * n * PI * PI * k2);
            p += coeff * (m * PI * x / side).sin() * (n * PI * y / side).sin();
        }
    }
    rho * p
}

/// Build the square-patch initial conditions.
///
/// The returned system lives in `[0,L]×[0,L]×[0,Lz]` with `Lz` chosen so
/// the particle spacing is isotropic, is periodic along Z only, and
/// rotates rigidly about the square's axis.
pub fn square_patch(cfg: &SquarePatchConfig) -> ParticleSystem {
    assert!(cfg.nx >= 4 && cfg.nz >= 1);
    assert!(cfg.side > 0.0 && cfg.omega >= 0.0 && cfg.rho0 > 0.0);
    let spacing = cfg.side / cfg.nx as f64;
    let lz = spacing * cfg.nz as f64;
    let n = cfg.nx * cfg.nx * cfg.nz;

    let eos = IdealGas::new(cfg.gamma);
    // Background pressure keeps u positive where the series is negative.
    let p_back = cfg.background_pressure * cfg.rho0 * cfg.omega * cfg.omega * cfg.side * cfg.side;
    // The most negative series value is bounded by |P(centre)|; assert the
    // chosen background actually keeps pressure positive at the centre.
    let p_min = square_patch_pressure(
        cfg.side / 2.0,
        cfg.side / 2.0,
        cfg.side,
        cfg.rho0,
        cfg.omega,
        cfg.series_terms,
    );
    assert!(
        p_back + p_min > 0.0,
        "background pressure {p_back} does not cover the series minimum {p_min}"
    );

    let mut x = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut u = Vec::with_capacity(n);
    let half = cfg.side / 2.0;
    for iz in 0..cfg.nz {
        for iy in 0..cfg.nx {
            for ix in 0..cfg.nx {
                let px = (ix as f64 + 0.5) * spacing;
                let py = (iy as f64 + 0.5) * spacing;
                let pz = (iz as f64 + 0.5) * spacing;
                x.push(Vec3::new(px, py, pz));
                // Rigid rotation about the square axis (centre of the XY
                // plane): vx = ω(y−c), vy = −ω(x−c) — §5.1 eq. (1).
                v.push(Vec3::new(cfg.omega * (py - half), -cfg.omega * (px - half), 0.0));
                let p0 =
                    square_patch_pressure(px, py, cfg.side, cfg.rho0, cfg.omega, cfg.series_terms);
                u.push(eos.energy_from_pressure(cfg.rho0, p0 + p_back));
            }
        }
    }
    let mass = cfg.rho0 * cfg.side * cfg.side * lz / n as f64;
    let domain = Aabb::new(Vec3::ZERO, Vec3::new(cfg.side, cfg.side, lz));
    let per = Periodicity::periodic_z(domain);
    ParticleSystem::new(x, v, vec![mass; n], u, 1.6 * spacing, per)
}

/// Angular momentum about the patch axis (the conserved quantity the
/// Colagrossi test is scored on).
pub fn patch_angular_momentum(sys: &ParticleSystem, side: f64) -> f64 {
    let c = side / 2.0;
    (0..sys.len())
        .map(|i| {
            let (dx, dy) = (sys.x[i].x - c, sys.x[i].y - c);
            sys.m[i] * (dx * sys.v[i].y - dy * sys.v[i].x)
        })
        .sum()
}

/// The registered rotating-square-patch workload (paper Table 5, row 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SquarePatchScenario;

impl SquarePatchScenario {
    fn cfg(&self, res: Resolution) -> SquarePatchConfig {
        SquarePatchConfig { nx: res.scaled(20, 10), nz: res.scaled(8, 4), ..Default::default() }
    }
}

impl Scenario for SquarePatchScenario {
    fn name(&self) -> &'static str {
        "square-patch"
    }

    fn reference(&self) -> &'static str {
        "Colagrossi 2005"
    }

    fn description(&self) -> &'static str {
        "Rotation of a free-surface square fluid patch (pure shear, tensile instability)"
    }

    fn analytic_check(&self) -> &'static str {
        "Poisson-series pressure at t = 0; L_z and density retention over the run"
    }

    fn table5_row(&self) -> Option<ScenarioInfo> {
        Some(crate::registry::square_patch_table5_row())
    }

    fn init(&self, res: Resolution) -> ScenarioSetup {
        let cfg = self.cfg(res);
        let config = SphConfig {
            gamma: cfg.gamma,
            target_neighbors: 60,
            viscosity: ViscosityConfig { alpha: 1.0, beta: 2.0, eta2: 0.01, balsara: true },
            ..Default::default()
        };
        ScenarioSetup { sys: square_patch(&cfg), config, gravity: None }
    }

    fn end_time(&self) -> f64 {
        0.03
    }

    fn l1_tolerance(&self) -> f64 {
        0.05
    }

    fn analytic_reference(&self, t: f64) -> Option<AnalyticReference> {
        // The Poisson-series pressure is the *initial* solution of the
        // incompressible problem; the patch deforms afterwards.
        if t != 0.0 {
            return None;
        }
        // Same config source as `init` (Resolution scales nx/nz only).
        let cfg = self.cfg(Resolution::default());
        let p_back =
            cfg.background_pressure * cfg.rho0 * cfg.omega * cfg.omega * cfg.side * cfg.side;
        Some(AnalyticReference::Profile(Box::new(move |p: Vec3| {
            let half = cfg.side / 2.0;
            PrimitiveState {
                rho: cfg.rho0,
                p: square_patch_pressure(p.x, p.y, cfg.side, cfg.rho0, cfg.omega, cfg.series_terms)
                    + p_back,
                v: Vec3::new(cfg.omega * (p.y - half), -cfg.omega * (p.x - half), 0.0),
            }
        })))
    }

    fn track(&self, sys: &ParticleSystem) -> Option<f64> {
        Some(patch_angular_momentum(sys, self.cfg(Resolution::default()).side))
    }

    fn validate(&self, run: &ScenarioRun) -> ValidationReport {
        let cfg = self.cfg(Resolution::default());
        // Weakly compressible: the density must stay near ρ₀ in the
        // patch *interior*. The lateral faces are free surfaces, where
        // the truncated kernel support under-reads the density by
        // construction — those shells are excluded (inner 60 % × 60 %
        // of the cross-section, which stays inside the material for the
        // ωt ≲ 0.15 rad the validation run rotates).
        let rho0 = cfg.rho0;
        let c = cfg.side / 2.0;
        let interior = |i: usize| {
            (run.sys.x[i].x - c).abs() < 0.3 * cfg.side
                && (run.sys.x[i].y - c).abs() < 0.3 * cfg.side
        };
        let norms = crate::engine::density_error_norms(
            &run.sys,
            &|_| PrimitiveState { rho: rho0, p: 0.0, v: Vec3::ZERO },
            interior,
        );
        let lz0 = run.samples.first().map(|s| s.value).unwrap_or(0.0);
        let lz1 = run.samples.last().map(|s| s.value).unwrap_or(0.0);
        let lz_drift = if lz0 != 0.0 { ((lz1 - lz0) / lz0).abs() } else { f64::INFINITY };
        let momentum_scale = crate::engine::momentum_scale(&run.sys);
        let checks = vec![
            Check::upper("l1_density_error", norms.l1, self.l1_tolerance()),
            Check::upper("angular_momentum_drift", lz_drift, 1e-3),
            Check::upper("energy_drift", run.energy_drift(), 0.02),
        ];
        let metrics = vec![("l_z_initial", lz0), ("l_z_final", lz1)];
        ValidationReport::new(
            self.name(),
            run,
            run.sys.time,
            Some(norms),
            self.l1_tolerance(),
            momentum_scale,
            checks,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SquarePatchConfig {
        SquarePatchConfig { nx: 20, nz: 4, ..Default::default() }
    }

    #[test]
    fn particle_count_and_mass() {
        let cfg = small();
        let sys = square_patch(&cfg);
        assert_eq!(sys.len(), 20 * 20 * 4);
        // Total mass = ρ·V.
        let lz = cfg.side / 20.0 * 4.0;
        let expected = cfg.rho0 * cfg.side * cfg.side * lz;
        assert!((sys.total_mass() - expected).abs() < 1e-12);
    }

    #[test]
    fn velocity_is_rigid_rotation() {
        let cfg = small();
        let sys = square_patch(&cfg);
        let c = cfg.side / 2.0;
        for i in 0..sys.len() {
            let d = Vec3::new(sys.x[i].x - c, sys.x[i].y - c, 0.0);
            // |v| = ω·r and v ⟂ r.
            assert!((sys.v[i].norm() - cfg.omega * d.norm()).abs() < 1e-12);
            assert!(sys.v[i].dot(d).abs() < 1e-12);
            assert_eq!(sys.v[i].z, 0.0);
        }
    }

    #[test]
    fn pressure_series_solves_poisson_equation() {
        // ∇²P = 2ρω² in the interior (checked by finite differences) and
        // P = 0 on the lateral boundary.
        let (side, rho, omega, terms) = (1.0, 1.0, 5.0, 200);
        let p = |x: f64, y: f64| square_patch_pressure(x, y, side, rho, omega, terms);
        let h = 1e-4;
        for &(x, y) in &[(0.3, 0.4), (0.5, 0.5), (0.7, 0.2), (0.25, 0.75)] {
            let lap =
                (p(x + h, y) + p(x - h, y) + p(x, y + h) + p(x, y - h) - 4.0 * p(x, y)) / (h * h);
            let expected = 2.0 * rho * omega * omega;
            assert!(
                (lap - expected).abs() < 0.02 * expected,
                "∇²P = {lap} at ({x},{y}), expected {expected}"
            );
        }
        // Boundary values vanish.
        assert!(p(0.0, 0.5).abs() < 1e-12);
        assert!(p(1.0, 0.3).abs() < 1e-12);
        assert!(p(0.4, 0.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_series_is_negative_at_centre() {
        // The negative-pressure region driving the tensile instability.
        let p = square_patch_pressure(0.5, 0.5, 1.0, 1.0, 5.0, 30);
        assert!(p < 0.0, "centre pressure {p} should be negative");
        // Known scale: |P(centre)| ≈ 0.589·ρω²L²/(2π²)·… — just pin the
        // magnitude window to catch regressions.
        assert!(p > -2.0 * 25.0 && p < -0.1, "centre pressure {p} out of window");
    }

    #[test]
    fn internal_energy_is_positive_everywhere() {
        let sys = square_patch(&small());
        assert!(sys.u.iter().all(|&u| u > 0.0));
        assert!(sys.sanity_check().is_ok());
    }

    #[test]
    fn periodic_in_z_only() {
        let sys = square_patch(&small());
        assert_eq!(sys.periodicity.periodic, [false, false, true]);
        // Domain height matches the extruded layers.
        let lz = sys.periodicity.domain.extent().z;
        assert!((lz - 1.0 / 20.0 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn layers_are_identical() {
        // IC depends only on x, y (§5.1: "the initial conditions are the
        // same for all layers").
        let cfg = small();
        let sys = square_patch(&cfg);
        let per_layer = cfg.nx * cfg.nx;
        for i in 0..per_layer {
            for layer in 1..cfg.nz {
                let j = layer * per_layer + i;
                assert_eq!(sys.v[i], sys.v[j]);
                assert_eq!(sys.u[i], sys.u[j]);
                assert_eq!(sys.x[i].x, sys.x[j].x);
                assert_eq!(sys.x[i].y, sys.x[j].y);
            }
        }
    }

    #[test]
    #[should_panic]
    fn insufficient_background_pressure_is_rejected() {
        let cfg = SquarePatchConfig { background_pressure: 0.0, ..small() };
        let _ = square_patch(&cfg);
    }

    #[test]
    fn angular_momentum_matches_rigid_body() {
        // L_z of a rigidly rotating square patch: I·ω with
        // I = ∫ρ r² dV = ρ Lz ∫∫ (x²+y²) dx dy = ρ Lz L⁴/6 about the axis.
        let cfg = SquarePatchConfig { nx: 40, nz: 4, ..Default::default() };
        let sys = square_patch(&cfg);
        let c = Vec3::new(cfg.side / 2.0, cfg.side / 2.0, 0.0);
        let mut lz = 0.0;
        for i in 0..sys.len() {
            let d = sys.x[i] - c;
            lz += sys.m[i] * (d.x * sys.v[i].y - d.y * sys.v[i].x);
        }
        let height = cfg.side / cfg.nx as f64 * cfg.nz as f64;
        let inertia = cfg.rho0 * height * cfg.side.powi(4) / 6.0;
        let expected = -inertia * cfg.omega; // vx=ωy, vy=−ωx spins clockwise
        assert!((lz - expected).abs() < 0.01 * expected.abs(), "L_z = {lz}, rigid body {expected}");
    }
}
