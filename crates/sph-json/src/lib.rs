//! Minimal hand-rolled JSON: a [`Value`] tree, a deterministic writer and
//! a recursive-descent parser.
//!
//! The workspace is offline (no serde), and three crates used to carry
//! their own copy of this logic: sph-lint's report/baseline code,
//! sph-scenarios' validation reports, and sph-serve's request/response
//! bodies. This crate is the single shared implementation. It stays
//! dependency-free on purpose — sph-lint must keep working even when the
//! workspace it checks is broken, so its JSON layer cannot pull in the
//! physics crates.
//!
//! Determinism contract: [`Value::render`] is a pure function of the
//! value — object keys keep insertion order (`Obj` is a `Vec`, not a
//! map), numbers use Rust's shortest round-trip `{}` formatting, and
//! non-finite floats map to `null`. Byte-identical values render to
//! byte-identical text, which is what lets sph-serve compare cached and
//! fresh result documents with `==`.

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor: an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor: a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as `u64` (exact non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Render to compact JSON text (no whitespace). Deterministic: see
    /// the crate docs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_f64(*n)),
            Value::Str(s) => out.push_str(&quoted(s)),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quoted(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// JSON-escape a string, surrounding quotes included.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as JSON: shortest round-trip form for finite values
/// (Rust's `{}` on f64), `null` for NaN/±inf, which JSON cannot express.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parse a complete JSON document. Errors carry a character offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("json: trailing content at char {}", p.pos));
    }
    Ok(v)
}

/// Nesting guard: deeper documents are rejected rather than risking a
/// stack overflow on hostile input (sph-serve parses network bytes).
const MAX_DEPTH: usize = 64;

struct Parser {
    chars: Vec<char>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("json: expected '{c}' at char {}", self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect_char(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("json: unexpected input at char {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("json: nesting deeper than {MAX_DEPTH}"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_char('{')?;
        self.enter()?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => {
                    self.depth -= 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("json: expected ',' or '}}' at char {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_char('[')?;
        self.enter()?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => {
                    self.depth -= 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("json: expected ',' or ']' at char {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("json: unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("json: bad \\u escape")?;
                            v = v * 16 + d;
                        }
                        // Surrogate pairs degrade to the replacement
                        // char; none of our writers emit them.
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("json: bad escape".to_string()),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("json: bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let v = Value::obj(vec![
            ("name", Value::str("sedov \"blast\"\n")),
            ("n", Value::Num(42.0)),
            ("pi", Value::Num(3.25)),
            ("nan", Value::Num(f64::NAN)),
            ("ok", Value::Bool(true)),
            ("list", Value::Arr(vec![Value::Null, Value::Num(-1.5e-3)])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str().unwrap(), "sedov \"blast\"\n");
        assert_eq!(back.get("n").unwrap().as_u64(), Some(42));
        // Non-finite renders as null and stays null.
        assert_eq!(back.get("nan"), Some(&Value::Null));
        assert_eq!(back.render(), parse(&back.render()).unwrap().render());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("01abc").is_err());
    }

    #[test]
    fn depth_guard_fires() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(quoted("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(parse("\"a\\u0001b\"").unwrap().as_str(), Some("a\u{1}b"));
    }

    #[test]
    fn fmt_f64_forms() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(-0.25), "-0.25");
    }
}
