//! Property tests: escaping and whole-document round trips.

use proptest::prelude::*;
use sph_json::{fmt_f64, parse, quoted, Value};

/// Arbitrary unicode strings, including controls, quotes and backslashes
/// (the shim has no `any::<String>()`, so build one from code points).
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..40).prop_map(|points| {
        points
            .into_iter()
            .map(|p| {
                // Bias toward the troublesome ASCII range half the time.
                let p = if p & 1 == 0 { p % 0x80 } else { p % 0x11_0000 };
                char::from_u32(p).unwrap_or('\u{fffd}')
            })
            .collect()
    })
}

proptest! {
    /// `parse(quoted(s))` recovers `s` exactly, for any unicode string.
    #[test]
    fn escape_roundtrip(s in arb_string()) {
        let parsed = parse(&quoted(&s)).map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// Finite numbers survive a render/parse cycle bit-exactly (shortest
    /// round-trip formatting), and re-rendering is a fixed point.
    #[test]
    fn number_roundtrip(x in any::<f64>()) {
        let text = fmt_f64(x);
        let parsed = parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed.as_f64().map(f64::to_bits), Some(x.to_bits()));
        prop_assert_eq!(parsed.render(), text);
    }

    /// Whole documents: render → parse → render is a fixed point, and the
    /// parsed tree equals the original.
    #[test]
    fn document_roundtrip(
        s in arb_string(),
        x in any::<f64>(),
        n in any::<u32>(),
        b in any::<bool>(),
    ) {
        let doc = Value::obj(vec![
            ("label", Value::Str(s)),
            ("x", Value::Num(x)),
            ("n", Value::Num(f64::from(n))),
            ("flag", Value::Bool(b)),
            ("nested", Value::Arr(vec![Value::Null, Value::obj(vec![("k", Value::Num(x))])])),
        ]);
        let text = doc.render();
        let back = parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &doc);
        prop_assert_eq!(back.render(), text);
    }
}
