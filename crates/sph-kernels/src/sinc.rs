//! The sinc kernel family Sₙ (Cabezón, García-Senz & Relaño 2008).
//!
//! SPHYNX's distinguishing kernel (Table 1): a one-parameter family
//!
//! `w(q) = sinc(π q / 2)ⁿ`, `q ∈ [0, 2]`, `sinc(x) = sin(x)/x`,
//!
//! whose exponent `n` tunes the shape continuously between low-order (n≈3,
//! spline-like) and high-order (n≥7, sharply peaked, pairing-resistant)
//! behaviour. There is no closed-form 3-D normalization for general `n`;
//! σₙ is obtained by numerical quadrature at construction (Simpson, 1e-12
//! accuracy), which matches the tabulated values of the original paper.

use crate::quadrature::simpson;
use crate::Kernel;
use std::f64::consts::{FRAC_PI_2, PI};

/// `sinc(x) = sin(x)/x`, with a Taylor branch for tiny `x` to avoid 0/0.
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        let x2 = x * x;
        1.0 - x2 / 6.0 + x2 * x2 / 120.0
    } else {
        x.sin() / x
    }
}

/// `d sinc(x) / dx = cos(x)/x − sin(x)/x²`, Taylor branch near zero.
#[inline]
pub fn dsinc(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        let x2 = x * x;
        -x / 3.0 + x * x2 / 30.0
    } else {
        x.cos() / x - x.sin() / (x * x)
    }
}

/// Sinc kernel of integer exponent `n` (3 ≤ n ≤ 12).
#[derive(Debug, Clone, Copy)]
pub struct SincKernel {
    n: u8,
    sigma: f64,
}

impl SincKernel {
    /// Build the kernel, computing σₙ by quadrature.
    ///
    /// Panics if `n` is outside `[3, 12]` — below 3 the kernel is not
    /// smooth enough at the support edge for stable SPH, above 12 it is
    /// needlessly peaked (SPHYNX uses 3–10 adaptively).
    pub fn new(n: u8) -> Self {
        assert!((3..=12).contains(&n), "sinc exponent must be in [3,12], got {n}");
        // σ = 1 / (4π ∫₀² sinc(πq/2)ⁿ q² dq)
        let integral = simpson(|q| sinc(FRAC_PI_2 * q).powi(n as i32) * q * q, 0.0, 2.0, 4096);
        SincKernel { n, sigma: 1.0 / (4.0 * PI * integral) }
    }

    /// The family exponent.
    pub fn exponent(&self) -> u8 {
        self.n
    }
}

impl Kernel for SincKernel {
    fn name(&self) -> &'static str {
        "sinc"
    }

    #[inline]
    fn w_shape(&self, q: f64) -> f64 {
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        sinc(FRAC_PI_2 * q).powi(self.n as i32)
    }

    #[inline]
    fn dw_shape(&self, q: f64) -> f64 {
        let s = if q < 0.0 { -1.0 } else { 1.0 };
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        let u = FRAC_PI_2 * q;
        let base = sinc(u);
        s * self.n as f64 * base.powi(self.n as i32 - 1) * dsinc(u) * FRAC_PI_2
    }

    #[inline]
    fn sigma(&self) -> f64 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinc_function_limits() {
        assert_eq!(sinc(0.0), 1.0);
        assert!((sinc(PI) - 0.0).abs() < 1e-15);
        assert!((sinc(FRAC_PI_2) - 2.0 / PI).abs() < 1e-12);
        // Continuity across the Taylor/direct switch.
        assert!((sinc(1e-4 - 1e-12) - sinc(1e-4 + 1e-12)).abs() < 1e-12);
        assert!((dsinc(1e-4 - 1e-12) - dsinc(1e-4 + 1e-12)).abs() < 1e-12);
    }

    #[test]
    fn central_value_is_one() {
        for n in 3..=10 {
            let k = SincKernel::new(n);
            assert_eq!(k.w_shape(0.0), 1.0, "n={n}");
        }
    }

    #[test]
    fn support_edge_vanishes() {
        // sinc(π) = 0, so w(2) = 0 exactly.
        for n in [3u8, 5, 8] {
            let k = SincKernel::new(n);
            assert!(k.w_shape(2.0) == 0.0);
            assert!(k.w_shape(2.0 - 1e-9) < 1e-25);
        }
    }

    #[test]
    fn higher_exponent_is_more_peaked() {
        // At fixed q ∈ (0,2), w decreases with n; σ grows with n.
        let k3 = SincKernel::new(3);
        let k8 = SincKernel::new(8);
        assert!(k8.w_shape(1.0) < k3.w_shape(1.0));
        assert!(k8.sigma() > k3.sigma());
    }

    #[test]
    fn sigma_n3_matches_reference() {
        // For n = 3 the normalization is close to the tabulated value of
        // Cabezón et al. (2008): σ₃ ≈ 0.2527 (support 2h convention:
        // their b₃ᴰ for n=3 is 0.02529… × something — we verify against our
        // own quadrature at double resolution instead, plus a sanity window).
        let k = SincKernel::new(3);
        let fine = simpson(|q| sinc(FRAC_PI_2 * q).powi(3) * q * q, 0.0, 2.0, 65536);
        let sigma_fine = 1.0 / (4.0 * PI * fine);
        assert!((k.sigma() - sigma_fine).abs() < 1e-10);
        assert!(k.sigma() > 0.2 && k.sigma() < 0.35, "σ₃ = {}", k.sigma());
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_exponent() {
        let _ = SincKernel::new(2);
    }

    #[test]
    fn exponent_accessor() {
        assert_eq!(SincKernel::new(6).exponent(), 6);
    }
}
