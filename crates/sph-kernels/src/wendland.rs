//! Wendland kernels C2, C4 and C6 (Wendland 1995; Dehnen & Aly 2012).
//!
//! Wendland kernels are the preferred choice of SPH-flow and an option in
//! ChaNGa (Table 1): positive-definite Fourier transform, hence free of the
//! pairing instability, and well-behaved with the large neighbour counts
//! (~10²) the paper quotes. Forms below are the 3-D variants with support
//! `2h`, taken from Dehnen & Aly (2012), Table 1:
//!
//! ```text
//! C2: w(q) = (1 − q/2)⁴ (1 + 2q)                        σ = 21/(16π)
//! C4: w(q) = (1 − q/2)⁶ (1 + 3q + 35/12 q²)             σ = 495/(256π)
//! C6: w(q) = (1 − q/2)⁸ (1 + 4q + 25/4 q² + 4q³)        σ = 1365/(512π)
//! ```

use crate::Kernel;
use std::f64::consts::PI;

/// Wendland C2 kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct WendlandC2;

impl WendlandC2 {
    pub fn new() -> Self {
        WendlandC2
    }
}

impl Kernel for WendlandC2 {
    fn name(&self) -> &'static str {
        "Wendland C2"
    }

    #[inline]
    fn w_shape(&self, q: f64) -> f64 {
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        let t = 1.0 - 0.5 * q;
        let t2 = t * t;
        t2 * t2 * (1.0 + 2.0 * q)
    }

    #[inline]
    fn dw_shape(&self, q: f64) -> f64 {
        let s = if q < 0.0 { -1.0 } else { 1.0 };
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        // d/dq [(1−q/2)⁴(1+2q)] = (1−q/2)³ [−2(1+2q) + 2(1−q/2)·... ]
        // computed directly: = −5q (1−q/2)³.
        let t = 1.0 - 0.5 * q;
        s * (-5.0 * q * t * t * t)
    }

    #[inline]
    fn sigma(&self) -> f64 {
        21.0 / (16.0 * PI)
    }
}

/// Wendland C4 kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct WendlandC4;

impl WendlandC4 {
    pub fn new() -> Self {
        WendlandC4
    }
}

impl Kernel for WendlandC4 {
    fn name(&self) -> &'static str {
        "Wendland C4"
    }

    #[inline]
    fn w_shape(&self, q: f64) -> f64 {
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        let t = 1.0 - 0.5 * q;
        let t2 = t * t;
        let t6 = t2 * t2 * t2;
        t6 * (1.0 + 3.0 * q + 35.0 / 12.0 * q * q)
    }

    #[inline]
    fn dw_shape(&self, q: f64) -> f64 {
        let s = if q < 0.0 { -1.0 } else { 1.0 };
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        // d/dq = (1−q/2)⁵ · (−(35/12)q·(1 + ... )) — worked out:
        // w' = (1−q/2)⁵ [ −3(1+3q+35/12 q²) + (1−q/2)(3 + 35/6 q) ]
        let t = 1.0 - 0.5 * q;
        let t2 = t * t;
        let t5 = t2 * t2 * t;
        let poly = 1.0 + 3.0 * q + 35.0 / 12.0 * q * q;
        let dpoly = 3.0 + 35.0 / 6.0 * q;
        s * t5 * (-3.0 * poly + t * dpoly)
    }

    #[inline]
    fn sigma(&self) -> f64 {
        495.0 / (256.0 * PI)
    }
}

/// Wendland C6 kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct WendlandC6;

impl WendlandC6 {
    pub fn new() -> Self {
        WendlandC6
    }
}

impl Kernel for WendlandC6 {
    fn name(&self) -> &'static str {
        "Wendland C6"
    }

    #[inline]
    fn w_shape(&self, q: f64) -> f64 {
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        let t = 1.0 - 0.5 * q;
        let t2 = t * t;
        let t4 = t2 * t2;
        let t8 = t4 * t4;
        t8 * (1.0 + 4.0 * q + 6.25 * q * q + 4.0 * q * q * q)
    }

    #[inline]
    fn dw_shape(&self, q: f64) -> f64 {
        let s = if q < 0.0 { -1.0 } else { 1.0 };
        let q = q.abs();
        if q >= 2.0 {
            return 0.0;
        }
        let t = 1.0 - 0.5 * q;
        let t2 = t * t;
        let t4 = t2 * t2;
        let t7 = t4 * t2 * t;
        let poly = 1.0 + 4.0 * q + 6.25 * q * q + 4.0 * q * q * q;
        let dpoly = 4.0 + 12.5 * q + 12.0 * q * q;
        s * t7 * (-4.0 * poly + t * dpoly)
    }

    #[inline]
    fn sigma(&self) -> f64 {
        1365.0 / (512.0 * PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_values() {
        assert_eq!(WendlandC2::new().w_shape(0.0), 1.0);
        assert_eq!(WendlandC4::new().w_shape(0.0), 1.0);
        assert_eq!(WendlandC6::new().w_shape(0.0), 1.0);
    }

    #[test]
    fn smooth_at_support_edge() {
        // Wendland kernels go to zero with several continuous derivatives
        // at q = 2; value and slope must both vanish.
        for k in [
            Box::new(WendlandC2::new()) as Box<dyn Kernel>,
            Box::new(WendlandC4::new()),
            Box::new(WendlandC6::new()),
        ] {
            assert!(k.w_shape(2.0 - 1e-9) < 1e-20, "{}", k.name());
            assert!(k.dw_shape(2.0 - 1e-9).abs() < 1e-15, "{}", k.name());
        }
    }

    #[test]
    fn zero_slope_at_origin() {
        // Unlike the cubic spline (whose w' → 0 linearly), Wendland kernels
        // have exactly zero derivative at q = 0.
        assert_eq!(WendlandC2::new().dw_shape(0.0), 0.0);
        assert_eq!(WendlandC4::new().dw_shape(0.0), 0.0);
        assert_eq!(WendlandC6::new().dw_shape(0.0), 0.0);
    }

    #[test]
    fn smoothness_ordering_near_origin() {
        // Higher-order Wendland kernels are more centrally concentrated:
        // σ_C2 < σ_C4 < σ_C6.
        let c2 = WendlandC2::new().sigma();
        let c4 = WendlandC4::new().sigma();
        let c6 = WendlandC6::new().sigma();
        assert!(c2 < c4 && c4 < c6);
    }

    #[test]
    fn c2_known_value() {
        // w(1) = (1/2)⁴ · 3 = 3/16.
        assert!((WendlandC2::new().w_shape(1.0) - 3.0 / 16.0).abs() < 1e-15);
    }
}
