//! The M4 cubic spline kernel (Monaghan & Lattanzio 1985).
//!
//! The workhorse kernel of classical SPH and one of ChaNGa's options
//! (Table 1). With support `2h` in 3-D:
//!
//! ```text
//! w(q) = 1 − (3/2) q² + (3/4) q³        0 ≤ q ≤ 1
//!      = (1/4) (2 − q)³                 1 <  q ≤ 2
//!      = 0                              q > 2
//! σ    = 1/π
//! ```

use crate::Kernel;

/// M4 (cubic) B-spline kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CubicSpline;

impl CubicSpline {
    pub fn new() -> Self {
        CubicSpline
    }
}

impl Kernel for CubicSpline {
    fn name(&self) -> &'static str {
        "M4 cubic spline"
    }

    #[inline]
    fn w_shape(&self, q: f64) -> f64 {
        if q < 0.0 {
            return self.w_shape(-q);
        }
        if q <= 1.0 {
            1.0 - 1.5 * q * q + 0.75 * q * q * q
        } else if q <= 2.0 {
            let t = 2.0 - q;
            0.25 * t * t * t
        } else {
            0.0
        }
    }

    #[inline]
    fn dw_shape(&self, q: f64) -> f64 {
        if q < 0.0 {
            return -self.dw_shape(-q);
        }
        if q <= 1.0 {
            -3.0 * q + 2.25 * q * q
        } else if q <= 2.0 {
            let t = 2.0 - q;
            -0.75 * t * t
        } else {
            0.0
        }
    }

    #[inline]
    fn sigma(&self) -> f64 {
        std::f64::consts::FRAC_1_PI
    }

    fn typical_neighbor_count(&self) -> usize {
        // The cubic spline becomes pairing-unstable with very large
        // neighbour counts; ~64 is the conventional 3-D choice.
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_value() {
        let k = CubicSpline::new();
        assert_eq!(k.w_shape(0.0), 1.0);
        // W(0, h=1) = σ = 1/π.
        assert!((k.w(0.0, 1.0) - std::f64::consts::FRAC_1_PI).abs() < 1e-15);
    }

    #[test]
    fn continuity_at_knots() {
        let k = CubicSpline::new();
        let eps = 1e-10;
        // Value and first derivative continuous at q = 1 and q = 2.
        assert!((k.w_shape(1.0 - eps) - k.w_shape(1.0 + eps)).abs() < 1e-8);
        assert!((k.dw_shape(1.0 - eps) - k.dw_shape(1.0 + eps)).abs() < 1e-8);
        assert!(k.w_shape(2.0) < 1e-14);
        assert!(k.dw_shape(2.0).abs() < 1e-14);
    }

    #[test]
    fn known_inner_values() {
        let k = CubicSpline::new();
        // w(1) = 1 − 1.5 + 0.75 = 0.25; the outer branch also gives 0.25.
        assert!((k.w_shape(1.0) - 0.25).abs() < 1e-15);
        // w(0.5) = 1 − 0.375 + 0.09375 = 0.71875.
        assert!((k.w_shape(0.5) - 0.71875).abs() < 1e-15);
    }

    #[test]
    fn even_symmetry() {
        let k = CubicSpline::new();
        assert_eq!(k.w_shape(0.5), k.w_shape(-0.5));
        assert_eq!(k.dw_shape(0.5), -k.dw_shape(-0.5));
    }
}
