//! Numerical quadrature used to normalize kernels and to verify `∫W dV = 1`.
//!
//! The sinc kernels have no closed-form normalization for general exponent
//! `n`, so σₙ is computed once at construction time with composite Simpson
//! integration — fast, deterministic and accurate to ~1e-12 for these smooth
//! integrands.

/// Composite Simpson's rule for `∫₀^b f(x) dx` with `n` (even) intervals.
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 2 && n.is_multiple_of(2), "Simpson needs an even interval count");
    let h = (b - a) / n as f64;
    let mut s = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        s += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    s * h / 3.0
}

/// Radial 3-D volume integral `4π ∫₀^R f(r) r² dr`.
pub fn integrate_radial_3d<F: Fn(f64) -> f64>(f: F, r_max: f64, n: usize) -> f64 {
    4.0 * std::f64::consts::PI * simpson(|r| f(r) * r * r, 0.0, r_max, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn simpson_exact_for_cubics() {
        // Simpson integrates polynomials of degree ≤ 3 exactly.
        let val = simpson(|x| 3.0 * x * x * x - x + 2.0, 0.0, 2.0, 2);
        let exact = 3.0 / 4.0 * 16.0 - 2.0 + 4.0;
        assert!((val - exact).abs() < 1e-12);
    }

    #[test]
    fn simpson_converges_on_sine() {
        let val = simpson(f64::sin, 0.0, PI, 256);
        assert!((val - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn simpson_rejects_odd_n() {
        let _ = simpson(|x| x, 0.0, 1.0, 3);
    }

    #[test]
    fn radial_integral_of_uniform_density() {
        // f = 1 over a sphere of radius R gives the sphere volume.
        let vol = integrate_radial_3d(|_| 1.0, 2.0, 128);
        let exact = 4.0 / 3.0 * PI * 8.0;
        assert!((vol - exact).abs() < 1e-9);
    }
}
