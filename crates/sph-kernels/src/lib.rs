//! SPH interpolation kernels.
//!
//! Table 2 of the paper lists the kernels the SPH-EXA mini-app must provide:
//! the **sinc family** (SPHYNX; Cabezón, García-Senz & Relaño 2008), the
//! **M4 cubic spline** and **Wendland** kernels (ChaNGa and SPH-flow). All
//! kernels here use the astrophysics convention of a compact support of
//! radius `2h`:
//!
//! `W(r, h) = σ / h³ · w(q)`, with `q = r/h ∈ [0, 2]`,
//!
//! where `w` is the dimensionless shape and `σ` the normalization constant
//! such that `∫ W dV = 1` in 3-D. The trait exposes `w`, `dW/dr` and `dW/dh`
//! (the latter feeds grad-h correction terms).
//!
//! Kernels are interchangeable modules, exactly as §4 of the paper requires
//! ("some of them, such as the SPH interpolation kernels, can be implemented
//! as separate interchangeable modules").

pub mod cubic_spline;
pub mod quadrature;
pub mod sinc;
pub mod wendland;

pub use cubic_spline::CubicSpline;
pub use sinc::SincKernel;
pub use wendland::{WendlandC2, WendlandC4, WendlandC6};

use sph_math::Vec3;

/// Dimensionless support radius (in units of `h`) shared by all kernels in
/// this crate.
pub const SUPPORT_RADIUS: f64 = 2.0;

/// A smoothing kernel in 3-D.
///
/// Implementations must be pure and thread-safe; the per-neighbour loops
/// evaluate them from many rayon workers simultaneously.
pub trait Kernel: Send + Sync {
    /// Human-readable name used by the feature tables.
    fn name(&self) -> &'static str;

    /// Dimensionless shape `w(q)` for `q = r/h ∈ [0, 2]`; 0 outside.
    fn w_shape(&self, q: f64) -> f64;

    /// Derivative `dw/dq` of the shape; 0 outside the support.
    fn dw_shape(&self, q: f64) -> f64;

    /// Normalization constant `σ` with `W = σ/h³ · w(q)`.
    fn sigma(&self) -> f64;

    /// Kernel value `W(r, h)`.
    #[inline]
    fn w(&self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        self.sigma() / (h * h * h) * self.w_shape(r / h)
    }

    /// Radial derivative `∂W/∂r`.
    #[inline]
    fn dw_dr(&self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        self.sigma() / (h * h * h * h) * self.dw_shape(r / h)
    }

    /// Smoothing-length derivative `∂W/∂h` at fixed `r`:
    /// `∂W/∂h = −σ/h⁴ · (3 w(q) + q w′(q))`.
    #[inline]
    fn dw_dh(&self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        let q = r / h;
        -self.sigma() / (h * h * h * h) * (3.0 * self.w_shape(q) + q * self.dw_shape(q))
    }

    /// Fused `(W, ∂W/∂h)` evaluation for the density hot loop: one
    /// `w_shape` call and one virtual dispatch instead of the two shape
    /// evaluations and two dispatches separate [`Kernel::w`] +
    /// [`Kernel::dw_dh`] calls pay per neighbour. The expressions are the
    /// exact ones from those defaults (sharing the pure `w_shape(q)`
    /// value), so the results are bit-identical to calling them apart.
    #[inline]
    fn w_and_dw_dh(&self, r: f64, h: f64) -> (f64, f64) {
        debug_assert!(h > 0.0);
        let q = r / h;
        let ws = self.w_shape(q);
        let w = self.sigma() / (h * h * h) * ws;
        let dw_dh = -self.sigma() / (h * h * h * h) * (3.0 * ws + q * self.dw_shape(q));
        (w, dw_dh)
    }

    /// Gradient `∇_i W(|r_ij|, h)` for the displacement `r_ij = r_i − r_j`.
    /// Zero at the origin (the kernel is smooth and even there).
    #[inline]
    fn grad_w(&self, rij: Vec3, h: f64) -> Vec3 {
        let r = rij.norm();
        if r <= 0.0 {
            return Vec3::ZERO;
        }
        rij * (self.dw_dr(r, h) / r)
    }

    /// The "standard" number of neighbours this kernel is typically run with
    /// in 3-D; used as the default target for the smoothing-length
    /// iteration (the paper quotes ~10² neighbours per particle).
    fn typical_neighbor_count(&self) -> usize {
        100
    }
}

/// Enumeration of all kernels the mini-app offers (Table 2, "Kernel"
/// column), convertible into a boxed [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// M4 cubic spline (ChaNGa option).
    CubicSplineM4,
    /// Wendland C2 (ChaNGa & SPH-flow option).
    WendlandC2,
    /// Wendland C4.
    WendlandC4,
    /// Wendland C6.
    WendlandC6,
    /// Sinc kernel with exponent `n` (SPHYNX family; n = 3…10 supported).
    Sinc(u8),
}

impl KernelKind {
    /// Instantiate the kernel.
    pub fn build(self) -> Box<dyn Kernel> {
        match self {
            KernelKind::CubicSplineM4 => Box::new(CubicSpline::new()),
            KernelKind::WendlandC2 => Box::new(WendlandC2::new()),
            KernelKind::WendlandC4 => Box::new(WendlandC4::new()),
            KernelKind::WendlandC6 => Box::new(WendlandC6::new()),
            KernelKind::Sinc(n) => Box::new(SincKernel::new(n)),
        }
    }

    /// All kinds the feature tables enumerate.
    pub fn all() -> Vec<KernelKind> {
        // sph-lint: allow(hot-alloc) — kernel catalogue built once for
        // feature tables; `Iterator::all(…)` on the hot path aliases this
        // name in the conservative call graph, it is never called there.
        vec![
            KernelKind::CubicSplineM4,
            KernelKind::WendlandC2,
            KernelKind::WendlandC4,
            KernelKind::WendlandC6,
            KernelKind::Sinc(5),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadrature::integrate_radial_3d;

    fn all_kernels() -> Vec<Box<dyn Kernel>> {
        let mut v: Vec<Box<dyn Kernel>> =
            KernelKind::all().into_iter().map(|k| k.build()).collect();
        v.push(Box::new(SincKernel::new(3)));
        v.push(Box::new(SincKernel::new(7)));
        v
    }

    #[test]
    fn kernels_normalize_to_unity() {
        // ∫ W(r, h) dV = 4π ∫₀^{2h} W r² dr must equal 1 for any h.
        for k in all_kernels() {
            for &h in &[0.5, 1.0, 2.3] {
                let integral = integrate_radial_3d(|r| k.w(r, h), SUPPORT_RADIUS * h, 4096);
                assert!((integral - 1.0).abs() < 1e-6, "{} h={h}: ∫W dV = {integral}", k.name());
            }
        }
    }

    #[test]
    fn kernels_are_nonnegative_and_compact() {
        for k in all_kernels() {
            for i in 0..=200 {
                let q = i as f64 * 0.015; // up to q = 3
                let w = k.w_shape(q);
                assert!(w >= -1e-14, "{} w({q}) = {w} < 0", k.name());
                if q > SUPPORT_RADIUS {
                    assert_eq!(w, 0.0, "{} not compact at q={q}", k.name());
                    assert_eq!(k.dw_shape(q), 0.0);
                }
            }
        }
    }

    #[test]
    fn kernels_decrease_monotonically() {
        for k in all_kernels() {
            let mut prev = k.w_shape(0.0);
            for i in 1..=100 {
                let q = i as f64 * 0.02;
                let w = k.w_shape(q);
                assert!(w <= prev + 1e-12, "{} increases at q={q}: {w} > {prev}", k.name());
                prev = w;
            }
        }
    }

    #[test]
    fn shape_derivative_matches_finite_difference() {
        for k in all_kernels() {
            for i in 1..40 {
                let q = i as f64 * 0.05; // avoid the exact endpoints
                if (q - 1.0).abs() < 1e-9 || (q - 2.0).abs() < 1e-9 {
                    continue;
                }
                let eps = 1e-6;
                let fd = (k.w_shape(q + eps) - k.w_shape(q - eps)) / (2.0 * eps);
                let an = k.dw_shape(q);
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "{} at q={q}: fd={fd} analytic={an}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn dw_dh_matches_finite_difference() {
        for k in all_kernels() {
            let r = 0.7;
            let h = 0.9;
            let eps = 1e-6;
            let fd = (k.w(r, h + eps) - k.w(r, h - eps)) / (2.0 * eps);
            let an = k.dw_dh(r, h);
            assert!(
                (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                "{}: fd={fd} analytic={an}",
                k.name()
            );
        }
    }

    #[test]
    fn fused_w_and_dw_dh_is_bit_identical_to_separate_calls() {
        // The density pass swaps two virtual calls for the fused one; the
        // backend-exactness story requires the swap to change nothing.
        for k in all_kernels() {
            for i in 0..=80 {
                let r = i as f64 * 0.03;
                for &h in &[0.4, 1.0, 1.7] {
                    let (w, dw_dh) = k.w_and_dw_dh(r, h);
                    assert_eq!(w.to_bits(), k.w(r, h).to_bits(), "{} r={r} h={h}", k.name());
                    assert_eq!(
                        dw_dh.to_bits(),
                        k.dw_dh(r, h).to_bits(),
                        "{} r={r} h={h}",
                        k.name()
                    );
                }
            }
        }
    }

    #[test]
    fn grad_w_points_inward() {
        // ∇_i W must point from j toward i scaled by a negative radial
        // derivative — i.e. along −r̂_ij (kernels decrease outward).
        for k in all_kernels() {
            let rij = Vec3::new(0.3, 0.4, 0.0);
            let g = k.grad_w(rij, 1.0);
            let radial = g.dot(rij);
            assert!(radial < 0.0, "{}: grad not inward", k.name());
            // And is exactly radial: cross product vanishes.
            assert!(g.cross(rij).norm() < 1e-12);
        }
    }

    #[test]
    fn grad_w_zero_at_origin() {
        for k in all_kernels() {
            assert_eq!(k.grad_w(Vec3::ZERO, 1.0), Vec3::ZERO);
        }
    }

    #[test]
    fn kernel_kind_builds_expected_names() {
        assert_eq!(KernelKind::CubicSplineM4.build().name(), "M4 cubic spline");
        assert_eq!(KernelKind::WendlandC2.build().name(), "Wendland C2");
        assert_eq!(KernelKind::Sinc(5).build().name(), "sinc");
    }

    #[test]
    fn scaling_with_h_is_cubic() {
        // W(0, h) must scale as h⁻³.
        for k in all_kernels() {
            let w1 = k.w(0.0, 1.0);
            let w2 = k.w(0.0, 2.0);
            assert!((w1 / w2 - 8.0).abs() < 1e-10, "{}: W(0,1)/W(0,2) = {}", k.name(), w1 / w2);
        }
    }
}
