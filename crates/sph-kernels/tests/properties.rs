//! Property-based tests of the kernel invariants every SPH formulation
//! relies on.

use proptest::prelude::*;
use sph_kernels::{KernelKind, SUPPORT_RADIUS};
use sph_math::Vec3;

fn any_kernel() -> impl Strategy<Value = KernelKind> {
    prop_oneof![
        Just(KernelKind::CubicSplineM4),
        Just(KernelKind::WendlandC2),
        Just(KernelKind::WendlandC4),
        Just(KernelKind::WendlandC6),
        (3u8..=10).prop_map(KernelKind::Sinc),
    ]
}

proptest! {
    #[test]
    fn kernel_nonnegative_and_compact(kind in any_kernel(), q in 0.0..4.0_f64) {
        let k = kind.build();
        let w = k.w_shape(q);
        prop_assert!(w >= 0.0, "{}: w({q}) = {w}", k.name());
        if q > SUPPORT_RADIUS {
            prop_assert_eq!(w, 0.0);
            prop_assert_eq!(k.dw_shape(q), 0.0);
        }
    }

    #[test]
    fn kernel_monotone_decreasing(kind in any_kernel(), q in 0.0..1.9_f64, dq in 0.001..0.1_f64) {
        let k = kind.build();
        prop_assert!(
            k.w_shape(q + dq) <= k.w_shape(q) + 1e-12,
            "{} increases between {q} and {}",
            k.name(),
            q + dq
        );
    }

    #[test]
    fn kernel_derivative_nonpositive(kind in any_kernel(), q in 0.0..2.0_f64) {
        let k = kind.build();
        prop_assert!(k.dw_shape(q) <= 1e-12, "{}: dw({q}) = {}", k.name(), k.dw_shape(q));
    }

    #[test]
    fn kernel_even_symmetry(kind in any_kernel(), q in 0.0..2.0_f64) {
        let k = kind.build();
        prop_assert_eq!(k.w_shape(q), k.w_shape(-q));
        prop_assert_eq!(k.dw_shape(q), -k.dw_shape(-q));
    }

    #[test]
    fn w_scales_as_h_cubed(kind in any_kernel(), r in 0.0..0.5_f64, h in (0.1..2.0_f64, 1.5..4.0_f64)) {
        // W(λr, λh) = λ⁻³ W(r, h).
        let k = kind.build();
        let (h0, lambda) = h;
        let w1 = k.w(r, h0);
        let w2 = k.w(r * lambda, h0 * lambda);
        if w1 > 1e-300 {
            prop_assert!((w2 * lambda.powi(3) / w1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn grad_antisymmetric_under_pair_exchange(
        kind in any_kernel(),
        d in (-0.15..0.15_f64, -0.15..0.15_f64, -0.15..0.15_f64),
        h in 0.05..0.5_f64
    ) {
        // ∇_i W(r_ij) = −∇_i W(r_ji): the property pairwise momentum
        // conservation rests on.
        let k = kind.build();
        let d = Vec3::new(d.0, d.1, d.2);
        let g1 = k.grad_w(d, h);
        let g2 = k.grad_w(-d, h);
        prop_assert!((g1 + g2).norm() <= 1e-9 * (1.0 + g1.norm()));
    }

    #[test]
    fn dw_dh_consistent_with_finite_difference(
        kind in any_kernel(),
        r in 0.01..0.9_f64,
        h in 0.3..1.5_f64
    ) {
        let k = kind.build();
        let eps = 1e-6;
        let fd = (k.w(r, h + eps) - k.w(r, h - eps)) / (2.0 * eps);
        let an = k.dw_dh(r, h);
        prop_assert!(
            (fd - an).abs() < 1e-3 * (1.0 + an.abs()),
            "{}: r={r} h={h} fd={fd} an={an}",
            k.name()
        );
    }

    #[test]
    fn central_value_dominates(kind in any_kernel(), q in 0.01..2.0_f64) {
        let k = kind.build();
        prop_assert!(k.w_shape(0.0) >= k.w_shape(q));
    }
}
