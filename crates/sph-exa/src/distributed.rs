//! The multi-rank distributed step driver.
//!
//! [`DistributedSimulation`] runs Algorithm 1 *per rank* over a domain
//! decomposition with halo exchange — the structure the paper's mini-app
//! prescribes for distributed memory — as N in-process ranks. Each rank
//! owns a subset of the particles; every macro-step executes the
//! bulk-synchronous supersteps documented in `sph_domain`'s module docs:
//! halo negotiation, collective h-iteration + density over (owned ∪
//! ghost), ghost-field refresh between kernels, symmetric forces, a global
//! dt reduction, kick/drift, and particle migration with periodic
//! rebalancing.
//!
//! # Determinism contract
//!
//! The driver is **bit-identical** to the single-rank [`Simulation`] for
//! any rank count and any `SPH_THREADS`. Three properties make that hold:
//!
//! 1. every SPH sum iterates neighbours in ascending *global-index* order
//!    (the density pass sorts its gather lists; each rank keeps its local
//!    particles sorted by global id, so local order ≡ global order);
//! 2. the halo import is *verified*, not assumed: if the measured
//!    `StepStats::max_search_radius` of the h-iteration exceeds the
//!    negotiated radius, the exchange is renegotiated and the density
//!    superstep re-runs from the pre-step smoothing lengths — once every
//!    search stayed inside the halo radius, each local ball query returned
//!    exactly the global neighbour set;
//! 3. the dt reduction is an exact `min` (order-independent) and the
//!    integrator is per-particle.
//!
//! Ownership therefore never affects values — migration and rebalancing
//! change *where* a particle is computed, never *what* is computed.
//!
//! Self-gravity is long-range: each rank evaluates its owned particles on
//! a replicated global tree (the in-process analogue of the locally
//! essential tree every distributed gravity code assembles), which keeps
//! the traversal — and its rounding — identical to the single-rank run.

use crate::simulation::StepReport;
use sph_core::config::{GradientScheme, SphConfig, TimeStepping};
use sph_core::density::{compute_density, h_growth_bound, NeighborLists};
use sph_core::diagnostics::Conservation;
use sph_core::eos::IdealGas;
use sph_core::forces::compute_forces;
use sph_core::gradients::{compute_iad_matrices, compute_velocity_gradients};
use sph_core::integrator::{drift, kick};
use sph_core::particles::ParticleSystem;
use sph_core::timestep::{
    finalize_adaptive_dt, finalize_global_dt, per_particle_dt, validate_dts, TimeStepError,
};
use sph_core::volume::compute_volume_elements;
use sph_core::StepStats;
use sph_domain::exchange::{Exchange, ExchangeError, ExchangePath, InProcessExchange};
use sph_domain::{
    halo_sets, orb_partition, sfc_partition, Decomposition, HaloExchange, HaloRadiusPolicy, SfcKind,
};
use sph_ft::checkpoint::CheckpointStore;
use sph_ft::codec::fnv1a;
use sph_ft::error::FtError;
use sph_kernels::{Kernel, SUPPORT_RADIUS};
use sph_math::Aabb;
use sph_math::Vec3;
use sph_profiler::timers::PhaseTimers;
use sph_profiler::Phase;
use sph_tree::{
    CellGrid, GravityConfig, GravitySolver, NeighborQuery, Octree, OctreeConfig, TraversalStats,
};

/// Why a [`DistributedSimulation`] could not be constructed.
///
/// Typed so callers can distinguish "this configuration is wrong" from
/// "this configuration is valid but the distributed driver does not
/// support it yet" — the latter is a capability gap, not a user error,
/// and a scheduler may fall back to the single-rank [`crate::Simulation`]
/// on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributedBuildError {
    /// The configured time-stepping policy is valid but not supported by
    /// the distributed driver.
    UnsupportedTimeStepping {
        /// Human name of the requested policy.
        requested: &'static str,
        /// The policies the driver does support.
        supported: &'static [&'static str],
    },
    /// Rank count is zero or exceeds the particle count.
    BadRankCount { nranks: usize, particles: usize },
    /// SPH configuration, particle state, or driver wiring failed
    /// validation (message from the underlying check).
    Invalid(String),
}

/// The time-stepping policies the distributed driver supports.
pub const SUPPORTED_TIME_STEPPING: &[&str] = &["Global", "Adaptive"];

impl std::fmt::Display for DistributedBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedBuildError::UnsupportedTimeStepping { requested, supported } => write!(
                f,
                "{requested} time-stepping is not supported by the distributed driver; \
                 supported modes: {}",
                supported.join(", ")
            ),
            DistributedBuildError::BadRankCount { nranks, particles } => {
                write!(f, "{nranks} ranks cannot each own a particle of {particles}")
            }
            DistributedBuildError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DistributedBuildError {}

impl From<DistributedBuildError> for String {
    fn from(e: DistributedBuildError) -> String {
        e.to_string()
    }
}

/// Why a distributed step, checkpoint, or restore failed.
///
/// Every failure mode of the running driver folds into this one enum so
/// a recovery layer can branch on the *kind* of fault: time-step errors
/// and exchange corruption call for rollback, storage errors for a
/// checkpoint fallback, build/restore errors for operator attention.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributedError {
    /// A per-particle time-step bound was NaN or non-positive.
    TimeStep(TimeStepError),
    /// An exchange failed beyond the transient-retry budget.
    Exchange(ExchangeError),
    /// Checkpoint storage failed (missing, corrupt, or I/O).
    Storage(FtError),
    /// The restored configuration failed the builder's validation.
    Build(DistributedBuildError),
    /// The checkpoint set is internally inconsistent (manifest/snapshot
    /// shape mismatches).
    Restore { detail: String },
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::TimeStep(e) => write!(f, "{e}"),
            DistributedError::Exchange(e) => write!(f, "{e}"),
            DistributedError::Storage(e) => write!(f, "{e}"),
            DistributedError::Build(e) => write!(f, "{e}"),
            DistributedError::Restore { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for DistributedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistributedError::TimeStep(e) => Some(e),
            DistributedError::Exchange(e) => Some(e),
            DistributedError::Storage(e) => Some(e),
            DistributedError::Build(e) => Some(e),
            DistributedError::Restore { .. } => None,
        }
    }
}

impl From<TimeStepError> for DistributedError {
    fn from(e: TimeStepError) -> Self {
        DistributedError::TimeStep(e)
    }
}

impl From<ExchangeError> for DistributedError {
    fn from(e: ExchangeError) -> Self {
        DistributedError::Exchange(e)
    }
}

impl From<FtError> for DistributedError {
    fn from(e: FtError) -> Self {
        DistributedError::Storage(e)
    }
}

impl From<DistributedBuildError> for DistributedError {
    fn from(e: DistributedBuildError) -> Self {
        DistributedError::Build(e)
    }
}

impl From<DistributedError> for String {
    fn from(e: DistributedError) -> String {
        e.to_string()
    }
}

/// Which decomposition algorithm the driver uses (Table 3 rows; slab is
/// deliberately absent — it is the strawman the paper's parents moved
/// away from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankPartitioner {
    /// Orthogonal recursive bisection (SPH-flow).
    Orb,
    /// Space-filling curve (ChaNGa).
    Sfc(SfcKind),
}

/// Configuration of the distributed driver itself (the SPH physics lives
/// in [`SphConfig`], exactly as for the single-rank driver).
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    /// Number of in-process ranks.
    pub nranks: usize,
    /// Decomposition algorithm for the initial split and for rebalances.
    pub partitioner: RankPartitioner,
    /// Rebuild the decomposition from scratch every this many macro-steps,
    /// using the measured per-particle work as weights (0 = never; the
    /// migration protocol alone then tracks drifting particles).
    pub rebalance_every: u64,
    /// Smoothing-length-iteration headroom budgeted into the *initial*
    /// halo radius, in iterations of the analytic growth bound. Small
    /// values keep halos tight; the coverage verification renegotiates on
    /// a miss, so correctness never depends on this guess.
    pub halo_growth_steps: u32,
    /// How many times a *transient* exchange failure is retried before it
    /// escalates as [`DistributedError::Exchange`]. The in-process
    /// carrier reissues immediately (a real transport would back off
    /// exponentially between attempts); non-transient failures never
    /// retry.
    pub exchange_retries: u32,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            nranks: 1,
            partitioner: RankPartitioner::Orb,
            rebalance_every: 10,
            halo_growth_steps: 1,
            exchange_retries: 3,
        }
    }
}

/// Exchange/migration counters accumulated over a run — the measured
/// communication record the cluster model consumes instead of estimates.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeLog {
    /// Ghost particles imported across all ranks and density attempts.
    pub ghosts_imported: u64,
    /// Halo renegotiations forced by a measured-radius miss.
    pub renegotiations: u64,
    /// Density supersteps executed (≥ one per derivative evaluation).
    pub density_attempts: u64,
    /// Particles that changed owner through migration.
    pub migrations: u64,
    /// Full decomposition rebuilds.
    pub rebalances: u64,
    /// Transient exchange failures absorbed by the bounded retry loop.
    pub transient_retries: u64,
}

/// Builder for [`DistributedSimulation`].
pub struct DistributedBuilder {
    sys: ParticleSystem,
    config: SphConfig,
    gravity: Option<GravityConfig>,
    dist: DistributedConfig,
    num_threads: Option<usize>,
    exchange: Option<Box<dyn Exchange>>,
}

impl DistributedBuilder {
    pub fn new(sys: ParticleSystem) -> Self {
        DistributedBuilder {
            sys,
            config: SphConfig::default(),
            gravity: None,
            dist: DistributedConfig::default(),
            num_threads: None,
            exchange: None,
        }
    }

    pub fn config(mut self, config: SphConfig) -> Self {
        self.config = config;
        self
    }

    pub fn gravity(mut self, gravity: GravityConfig) -> Self {
        self.gravity = Some(gravity);
        self
    }

    pub fn distributed(mut self, dist: DistributedConfig) -> Self {
        self.dist = dist;
        self
    }

    /// Shorthand: `nranks` ranks with the remaining distributed defaults.
    pub fn nranks(mut self, nranks: usize) -> Self {
        self.dist.nranks = nranks;
        self
    }

    /// Worker threads per parallel loop (see
    /// [`crate::SimulationBuilder::num_threads`]); the pool is process
    /// global and results are bit-identical for any setting.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// The exchange carrier behind the driver's five communication paths
    /// (defaults to [`InProcessExchange`], the determinism reference).
    pub fn exchange(mut self, exchange: Box<dyn Exchange>) -> Self {
        self.exchange = Some(exchange);
        self
    }

    pub fn build(self) -> Result<DistributedSimulation, DistributedBuildError> {
        if self.dist.nranks == 0 || self.sys.is_empty() || self.dist.nranks > self.sys.len() {
            return Err(DistributedBuildError::BadRankCount {
                nranks: self.dist.nranks,
                particles: self.sys.len(),
            });
        }
        // Full config validation happens in `assemble`, shared with the
        // checkpoint-restore path; positions must be sane *before* the
        // partitioners sort them.
        self.sys.sanity_check().map_err(DistributedBuildError::Invalid)?;
        if let Some(n) = self.num_threads {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .map_err(|e| DistributedBuildError::Invalid(format!("thread pool: {e}")))?;
        }
        let decomp = partition(&self.sys, self.dist.partitioner, self.dist.nranks, &[]);
        let mut sim = DistributedSimulation::assemble(
            self.sys,
            self.config,
            self.gravity,
            self.dist,
            decomp,
            0.0,
            false,
        )?;
        if let Some(exchange) = self.exchange {
            sim.exchange = exchange;
        }
        Ok(sim)
    }
}

/// A running multi-rank simulation (see the module docs for the
/// superstep protocol and the determinism contract).
pub struct DistributedSimulation {
    /// Global particle state: the union of every rank's owned particles,
    /// indexed by global id. In-process this doubles as the "wire": a
    /// rank publishes owned results here and imports ghost fields from it.
    pub sys: ParticleSystem,
    /// SPH configuration (shared by all ranks).
    pub config: SphConfig,
    /// Self-gravity configuration, if enabled.
    pub gravity: Option<GravityConfig>,
    dist: DistributedConfig,
    kernel: Box<dyn Kernel>,
    eos: IdealGas,
    decomp: Decomposition,
    /// Per-rank owned global ids, ascending — kept in lockstep with
    /// `decomp` (rebuilt on migration and rebalance).
    owned: Vec<Vec<u32>>,
    /// Rank bounding boxes captured at decomposition time — the migration
    /// criterion (a particle drifting out of its owner's box moves to the
    /// nearest box, ties to the lowest rank).
    boxes: Vec<Option<Aabb>>,
    /// Per-particle gravitational potentials (zero with gravity off).
    pub phi: Vec<f64>,
    per_particle_work: Vec<f64>,
    dt_prev: f64,
    /// Per-rank wall-clock phase timers (rank-local kernel work).
    timers: Vec<PhaseTimers>,
    /// Driver-level collective work: halo identification/packing
    /// (phase D), dt reduction + integration (phase J).
    driver_timers: PhaseTimers,
    derivatives_fresh: bool,
    last_exchange: Option<HaloExchange>,
    log: ExchangeLog,
    /// The carrier behind the five exchange paths (see
    /// [`sph_domain::exchange`]); in-process by default.
    exchange: Box<dyn Exchange>,
}

/// Per-rank working set of one derivative evaluation.
struct RankWorkspace {
    /// Global ids of the rank's local particles (owned ∪ ghost),
    /// ascending — so local index order ≡ global id order.
    locals: Vec<u32>,
    /// Local indices of the owned particles, ascending.
    owned_k: Vec<u32>,
    /// `(local index, global id)` of every ghost.
    ghosts: Vec<(u32, u32)>,
    /// The rank's local particle system (extracted owned+ghost state).
    sys_l: ParticleSystem,
    /// Cell grid over the local positions (owned ∪ ghost) — the spatial
    /// structure every SPH pass of the attempt queries.
    grid: Option<CellGrid>,
    /// Gather lists of the owned particles (from the density pass),
    /// indexed like `owned_k`.
    lists: NeighborLists,
}

fn partition(
    sys: &ParticleSystem,
    partitioner: RankPartitioner,
    nranks: usize,
    weights: &[f64],
) -> Decomposition {
    match partitioner {
        RankPartitioner::Orb => orb_partition(&sys.x, nranks, weights),
        RankPartitioner::Sfc(kind) => sfc_partition(&sys.x, &sys.bounds(), nranks, kind, weights),
    }
}

/// Bucket the assignment into per-rank owned-id lists (ascending, since
/// the pass walks global ids in order) — one O(n) sweep replacing the
/// O(n·ranks) of repeated `Decomposition::indices_of` scans.
fn bucket_owned(decomp: &Decomposition) -> Vec<Vec<u32>> {
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); decomp.nparts];
    for (i, &r) in decomp.assignment.iter().enumerate() {
        owned[r as usize].push(i as u32);
    }
    owned
}

/// Merge two ascending id lists into one ascending list.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Bounded retry around one exchange operation: transient failures are
/// reissued up to `retries` times (counted in the log), anything else —
/// and the final transient miss — escalates to the caller. The
/// in-process carrier reissues immediately; a real transport would sleep
/// an exponential backoff between attempts, which changes wall-clock but
/// never the delivered bits.
fn with_retry<T>(
    exchange: &mut dyn Exchange,
    log: &mut ExchangeLog,
    retries: u32,
    mut op: impl FnMut(&mut dyn Exchange) -> Result<T, ExchangeError>,
) -> Result<T, ExchangeError> {
    let mut attempt = 0u32;
    loop {
        match op(exchange) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < retries => {
                attempt += 1;
                log.transient_retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Which owner-computed fields a ghost refresh ships (one variant per
/// inter-kernel exchange of the superstep protocol).
#[derive(Debug, Clone, Copy)]
enum GhostFields {
    /// Adapted smoothing length, density, grad-h term (post-density).
    HRhoOmega,
    /// Volume elements + the generalized-VE rewritten density.
    VolRho,
    /// IAD correction matrices.
    CIad,
    /// Velocity divergence and curl.
    DivCurl,
}

impl GhostFields {
    fn words(self) -> usize {
        match self {
            GhostFields::HRhoOmega => 3,
            GhostFields::VolRho => 2,
            GhostFields::CIad => 9,
            GhostFields::DivCurl => 2,
        }
    }

    /// Append particle `g`'s fields (from the owners' published state).
    fn pack(self, sys: &ParticleSystem, g: usize, out: &mut Vec<f64>) {
        match self {
            GhostFields::HRhoOmega => out.extend_from_slice(&[sys.h[g], sys.rho[g], sys.omega[g]]),
            GhostFields::VolRho => out.extend_from_slice(&[sys.vol[g], sys.rho[g]]),
            GhostFields::CIad => {
                for row in sys.c_iad[g].m {
                    out.extend_from_slice(&row);
                }
            }
            GhostFields::DivCurl => out.extend_from_slice(&[sys.div_v[g], sys.curl_v[g]]),
        }
    }

    /// Scatter one particle's delivered words into local index `k`.
    fn unpack(self, sys_l: &mut ParticleSystem, k: usize, words: &[f64]) {
        match self {
            GhostFields::HRhoOmega => {
                sys_l.h[k] = words[0];
                sys_l.rho[k] = words[1];
                sys_l.omega[k] = words[2];
            }
            GhostFields::VolRho => {
                sys_l.vol[k] = words[0];
                sys_l.rho[k] = words[1];
            }
            GhostFields::CIad => {
                for (r, row) in sys_l.c_iad[k].m.iter_mut().enumerate() {
                    row.copy_from_slice(&words[3 * r..3 * r + 3]);
                }
            }
            GhostFields::DivCurl => {
                sys_l.div_v[k] = words[0];
                sys_l.curl_v[k] = words[1];
            }
        }
    }
}

/// One ghost-refresh superstep: for every rank, pack the requested fields
/// of its ghosts (ascending global-id order), move them through the
/// exchange carrier, and scatter the *delivered* words into the rank's
/// local system. In-process the delivery is the identity, so this is
/// bit-identical to copying straight from the global store; a faulty or
/// real carrier interposes here.
fn refresh_ghosts(
    exchange: &mut dyn Exchange,
    log: &mut ExchangeLog,
    retries: u32,
    sys: &ParticleSystem,
    wss: &mut [RankWorkspace],
    fields: GhostFields,
) -> Result<(), ExchangeError> {
    let words = fields.words();
    for (r, ws) in wss.iter_mut().enumerate() {
        if ws.ghosts.is_empty() {
            continue;
        }
        let mut payload = Vec::with_capacity(ws.ghosts.len() * words);
        for &(_, g) in &ws.ghosts {
            fields.pack(sys, g as usize, &mut payload);
        }
        with_retry(exchange, log, retries, |ex| {
            ex.deliver_f64(ExchangePath::GhostRefresh, r as u32, &mut payload)
        })?;
        for (j, &(k, _)) in ws.ghosts.iter().enumerate() {
            fields.unpack(&mut ws.sys_l, k as usize, &payload[j * words..(j + 1) * words]);
        }
    }
    Ok(())
}

impl DistributedSimulation {
    fn assemble(
        sys: ParticleSystem,
        config: SphConfig,
        gravity: Option<GravityConfig>,
        dist: DistributedConfig,
        decomp: Decomposition,
        dt_prev: f64,
        derivatives_fresh: bool,
    ) -> Result<Self, DistributedBuildError> {
        // Every construction path (builder *and* checkpoint restore) must
        // reject what the driver cannot run — a restore with an invalid or
        // Individual-stepping config would otherwise silently integrate
        // with Global semantics.
        config.validate().map_err(DistributedBuildError::Invalid)?;
        sys.sanity_check().map_err(DistributedBuildError::Invalid)?;
        if matches!(config.time_stepping, TimeStepping::Individual { .. }) {
            return Err(DistributedBuildError::UnsupportedTimeStepping {
                requested: "individual (block)",
                supported: SUPPORTED_TIME_STEPPING,
            });
        }
        if decomp.nparts != dist.nranks {
            return Err(DistributedBuildError::Invalid(format!(
                "decomposition has {} parts for {} ranks",
                decomp.nparts, dist.nranks
            )));
        }
        let boxes = sph_domain::orb::rank_boxes(&sys.x, &decomp);
        let owned = bucket_owned(&decomp);
        let kernel = config.kernel.build();
        let eos = IdealGas::new(config.gamma);
        let n = sys.len();
        Ok(DistributedSimulation {
            sys,
            config,
            gravity,
            kernel,
            eos,
            boxes,
            decomp,
            owned,
            phi: vec![0.0; n],
            per_particle_work: vec![1.0; n],
            dt_prev,
            timers: (0..dist.nranks).map(|_| PhaseTimers::new()).collect(),
            driver_timers: PhaseTimers::new(),
            derivatives_fresh,
            last_exchange: None,
            log: ExchangeLog::default(),
            exchange: Box::new(InProcessExchange::new()),
            dist,
        })
    }

    /// Convenience constructor with distributed defaults.
    pub fn new(
        sys: ParticleSystem,
        config: SphConfig,
        nranks: usize,
    ) -> Result<Self, DistributedBuildError> {
        DistributedBuilder::new(sys).config(config).nranks(nranks).build()
    }

    /// The current ownership assignment.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// The distributed-driver configuration this run was built with
    /// (recovery layers need it to re-`restore` with identical wiring).
    pub fn distributed_config(&self) -> DistributedConfig {
        self.dist
    }

    /// Per-rank wall-clock phase timers (rank-local kernel work only;
    /// collective driver work is in [`DistributedSimulation::driver_timers`]).
    pub fn timers(&self) -> &[PhaseTimers] {
        &self.timers
    }

    /// Driver-level collective timers (halo identification, dt reduce,
    /// integration, migration).
    pub fn driver_timers(&self) -> &PhaseTimers {
        &self.driver_timers
    }

    /// All per-rank timers folded into one aggregate view.
    pub fn aggregate_timers(&self) -> PhaseTimers {
        let agg = PhaseTimers::new();
        for t in &self.timers {
            agg.merge_from(t);
        }
        agg.merge_from(&self.driver_timers);
        agg
    }

    /// The halo exchange pattern of the most recent density superstep —
    /// measured communication volumes for the cluster step model.
    pub fn last_exchange(&self) -> Option<&HaloExchange> {
        self.last_exchange.as_ref()
    }

    /// Exchange / migration counters accumulated since construction.
    pub fn exchange_log(&self) -> ExchangeLog {
        self.log
    }

    /// Name of the active exchange carrier.
    pub fn exchange_name(&self) -> &'static str {
        self.exchange.name()
    }

    /// Swap the exchange carrier, returning the previous one. Recovery
    /// layers use this to transplant a (stateful, fault-injecting or
    /// connected) carrier into a simulation restored from checkpoint.
    pub fn replace_exchange(&mut self, exchange: Box<dyn Exchange>) -> Box<dyn Exchange> {
        std::mem::replace(&mut self.exchange, exchange)
    }

    /// Overwrite the exchange counters. A driver restored from checkpoint
    /// starts at zero; recovery layers carry the live log over so the
    /// telemetry records everything that actually happened, replays
    /// included.
    pub fn carry_exchange_log(&mut self, log: ExchangeLog) {
        self.log = log;
    }

    /// Ask the carrier to bring a failed rank back (respawn/reconnect).
    pub fn recover_rank(&mut self, rank: u32) -> Result<(), ExchangeError> {
        self.exchange.recover_rank(rank)
    }

    /// Per-particle work units of the last derivative evaluation (the
    /// load measure rebalancing and the cluster model consume).
    pub fn per_particle_work(&self) -> &[f64] {
        &self.per_particle_work
    }

    /// Conservation snapshot over the global state (includes gravity when
    /// enabled). Bit-identical to the single-rank diagnostics.
    pub fn conservation(&self) -> Conservation {
        let phi = self.gravity.is_some().then_some(self.phi.as_slice());
        Conservation::measure(&self.sys, phi)
    }

    // ---------------------------------------------------------------
    // Halo exchange plumbing (the in-process analogue of MPI packing)
    // ---------------------------------------------------------------

    /// Build each rank's workspace for one density attempt: local id set,
    /// extracted local system, and the octree over local positions.
    fn build_workspaces(&self, halos: &HaloExchange) -> Vec<RankWorkspace> {
        (0..self.dist.nranks)
            .map(|r| {
                let owned = &self.owned[r];
                // halo_sets emits imports in ascending global id already.
                let locals = merge_sorted(owned, &halos.imports[r]);
                let owned_k: Vec<u32> = {
                    let mut out = Vec::with_capacity(owned.len());
                    let mut oi = 0;
                    for (k, &g) in locals.iter().enumerate() {
                        if oi < owned.len() && owned[oi] == g {
                            out.push(k as u32);
                            oi += 1;
                        }
                    }
                    out
                };
                let ghosts: Vec<(u32, u32)> = {
                    let mut oi = 0;
                    locals
                        .iter()
                        .enumerate()
                        .filter_map(|(k, &g)| {
                            if oi < owned.len() && owned[oi] == g {
                                oi += 1;
                                None
                            } else {
                                Some((k as u32, g))
                            }
                        })
                        .collect()
                };
                let sys_l = self.sys.subset(&locals);
                let grid = (!locals.is_empty()).then(|| {
                    self.timers[r].time(Phase::TreeBuild, || {
                        CellGrid::for_radius(
                            &sys_l.x,
                            sys_l.periodicity,
                            SUPPORT_RADIUS * sys_l.max_h(),
                        )
                    })
                });
                RankWorkspace {
                    locals,
                    owned_k,
                    ghosts,
                    sys_l,
                    grid,
                    lists: NeighborLists::default(),
                }
            })
            .collect()
    }

    // ---------------------------------------------------------------
    // The distributed derivative evaluation (Algorithm 1, steps 1–4)
    // ---------------------------------------------------------------

    /// Evaluate all derivatives for every owned particle on its owner.
    /// Exchange failures surface as `Err` with the state as of the failed
    /// superstep — the recovery layer rolls back; the driver itself never
    /// retries a non-transient fault.
    fn evaluate_derivatives(&mut self) -> Result<StepStats, ExchangeError> {
        let nranks = self.dist.nranks;
        let retries = self.dist.exchange_retries;
        let mut stats = StepStats::default();

        // --- Superstep 1+2: halo negotiation, collective h-iteration ---
        //
        // Negotiate a radius from the pre-step per-rank max h with a small
        // iteration headroom, then *verify* it against the largest search
        // radius any rank actually requested. On a miss, restore the
        // pre-step smoothing lengths and re-run at the escalated radius.
        let growth = h_growth_bound(&self.config);
        let headroom_cap = self.config.max_h_iterations.saturating_sub(1) as u32;
        let per_rank_max_h: Vec<f64> = (0..nranks)
            .map(|r| self.owned[r].iter().map(|&i| self.sys.h[i as usize]).fold(0.0, f64::max))
            .collect();
        let initial = HaloRadiusPolicy::with_headroom(
            SUPPORT_RADIUS,
            growth,
            self.dist.halo_growth_steps.min(headroom_cap),
        );
        // The max-h reduction is the first collective of the protocol;
        // `radius_for` over the reduced max reproduces `negotiate`'s
        // sequential fold bit-for-bit (max is order-independent).
        let global_max_h = with_retry(self.exchange.as_mut(), &mut self.log, retries, |ex| {
            ex.reduce_max(ExchangePath::HaloNegotiation, &per_rank_max_h)
        })?;
        let mut radius = initial.radius_for(global_max_h);
        let mut attempts = 0u32;
        let h_before = self.sys.h.clone();

        loop {
            let halos = self.driver_timers.time(Phase::NeighborLists, || {
                halo_sets(&self.sys.x, &self.decomp, radius, &self.sys.periodicity)
            });
            self.log.ghosts_imported += halos.total_volume() as u64;
            self.log.density_attempts += 1;
            let mut wss = self.build_workspaces(&halos);
            let mut attempt = StepStats::default();
            let mut per_rank_measured = vec![0.0f64; nranks];
            for (r, ws) in wss.iter_mut().enumerate() {
                let Some(grid) = &ws.grid else { continue };
                if ws.owned_k.is_empty() {
                    continue;
                }
                let (lists, dstats) = self.timers[r].time(Phase::Density, || {
                    compute_density(
                        &mut ws.sys_l,
                        grid,
                        self.kernel.as_ref(),
                        &self.config,
                        &ws.owned_k,
                    )
                });
                ws.lists = lists;
                per_rank_measured[r] = dstats.max_search_radius;
                attempt.merge(&dstats);
            }
            // Owners publish the adapted h, ρ, Ω.
            for ws in &wss {
                for &k in &ws.owned_k {
                    let g = ws.locals[k as usize] as usize;
                    self.sys.h[g] = ws.sys_l.h[k as usize];
                    self.sys.rho[g] = ws.sys_l.rho[k as usize];
                    self.sys.omega[g] = ws.sys_l.omega[k as usize];
                }
            }

            // Collective max-reduce of the measured search radius: inside
            // the negotiated radius, every local ball query saw the exact
            // global neighbour set, so the attempt is the global answer.
            // Acceptance is *only* by measured coverage — never by an
            // analytic cap, whose different rounding path could sit a few
            // ulps under the measured radius and admit a missed ghost.
            // The reduce goes through the exchange carrier (max over
            // per-rank maxima ≡ the merged fold, exactly).
            let measured = with_retry(self.exchange.as_mut(), &mut self.log, retries, |ex| {
                ex.reduce_max(ExchangePath::HaloNegotiation, &per_rank_measured)
            })?;
            if measured <= radius {
                self.last_exchange = Some(halos);
                stats.merge(&attempt);
                return self.finish_evaluation(wss, stats);
            }
            self.log.renegotiations += 1;
            attempts += 1;
            // Escalation grows the radius geometrically (growth ≥ 1.5), so
            // it passes the fully-covered trajectory's finite maximum in a
            // handful of rounds — once covered, measured ≤ radius and the
            // loop accepts. The counter turns any violation of that
            // argument into a loud failure instead of a hang.
            assert!(
                attempts < 64,
                "halo negotiation failed to converge: radius {radius}, measured {measured}"
            );
            // Escalate: at least the observed radius (which the failed
            // attempt understates, since it was computed on short halos),
            // at least one more growth factor.
            radius = measured.max(radius * growth);
            // The failed attempt mutated owned h — restore the pre-step
            // values so the retry reproduces the global trajectory.
            self.sys.h.copy_from_slice(&h_before);
        }
    }

    /// Supersteps 3–5 of the evaluation: ghost refreshes between kernels,
    /// symmetric forces, gravity. `workspaces` arrive with density done
    /// and published.
    fn finish_evaluation(
        &mut self,
        mut wss: Vec<RankWorkspace>,
        mut stats: StepStats,
    ) -> Result<StepStats, ExchangeError> {
        let retries = self.dist.exchange_retries;
        // --- Superstep 3: volume elements / IAD / EOS / velocity grads ---
        // Each kernel reads neighbour fields the owners computed in the
        // previous superstep, so ghost copies are refreshed first — the
        // exchange a real MPI code would post.
        refresh_ghosts(
            self.exchange.as_mut(),
            &mut self.log,
            retries,
            &self.sys,
            &mut wss,
            GhostFields::HRhoOmega,
        )?;
        let iad = self.config.gradients == GradientScheme::Iad;
        for (r, ws) in wss.iter_mut().enumerate() {
            if ws.owned_k.is_empty() {
                continue;
            }
            self.timers[r].time(Phase::Gradients, || {
                compute_volume_elements(
                    &mut ws.sys_l,
                    &ws.lists,
                    self.kernel.as_ref(),
                    &self.config,
                    &ws.owned_k,
                );
            });
        }
        for ws in &wss {
            for &k in &ws.owned_k {
                let g = ws.locals[k as usize] as usize;
                self.sys.vol[g] = ws.sys_l.vol[k as usize];
                self.sys.rho[g] = ws.sys_l.rho[k as usize]; // generalized VE rewrites ρ
            }
        }
        refresh_ghosts(
            self.exchange.as_mut(),
            &mut self.log,
            retries,
            &self.sys,
            &mut wss,
            GhostFields::VolRho,
        )?;
        if iad {
            for (r, ws) in wss.iter_mut().enumerate() {
                if ws.owned_k.is_empty() {
                    continue;
                }
                self.timers[r].time(Phase::Gradients, || {
                    compute_iad_matrices(
                        &mut ws.sys_l,
                        &ws.lists,
                        self.kernel.as_ref(),
                        &ws.owned_k,
                    );
                });
            }
            for ws in &wss {
                for &k in &ws.owned_k {
                    let g = ws.locals[k as usize] as usize;
                    self.sys.c_iad[g] = ws.sys_l.c_iad[k as usize];
                }
            }
            refresh_ghosts(
                self.exchange.as_mut(),
                &mut self.log,
                retries,
                &self.sys,
                &mut wss,
                GhostFields::CIad,
            )?;
        }
        // EOS is a pure per-particle function of (ρ, u): each rank applies
        // it to its whole local set, which reproduces the owner's p and cs
        // for every ghost bit-for-bit — an exchange with zero payload.
        for (r, ws) in wss.iter_mut().enumerate() {
            if ws.locals.is_empty() {
                continue;
            }
            self.timers[r].time(Phase::Gradients, || {
                let sys_l = &mut ws.sys_l;
                self.eos.apply(&sys_l.rho, &sys_l.u, &mut sys_l.p, &mut sys_l.cs);
            });
        }
        for ws in &wss {
            for &k in &ws.owned_k {
                let g = ws.locals[k as usize] as usize;
                self.sys.p[g] = ws.sys_l.p[k as usize];
                self.sys.cs[g] = ws.sys_l.cs[k as usize];
            }
        }
        for (r, ws) in wss.iter_mut().enumerate() {
            if ws.owned_k.is_empty() {
                continue;
            }
            self.timers[r].time(Phase::Gradients, || {
                compute_velocity_gradients(
                    &mut ws.sys_l,
                    &ws.lists,
                    self.kernel.as_ref(),
                    self.config.gradients,
                    &ws.owned_k,
                );
            });
        }
        for ws in &wss {
            for &k in &ws.owned_k {
                let g = ws.locals[k as usize] as usize;
                self.sys.div_v[g] = ws.sys_l.div_v[k as usize];
                self.sys.curl_v[g] = ws.sys_l.curl_v[k as usize];
            }
        }
        refresh_ghosts(
            self.exchange.as_mut(),
            &mut self.log,
            retries,
            &self.sys,
            &mut wss,
            GhostFields::DivCurl,
        )?;

        // --- Superstep 4: symmetric forces ---
        // The pairwise closure must see every pair from both sides. A
        // ghost's gather set is recovered with one frozen ball query at
        // its exchanged h (exact, by the h-iteration's exit invariant and
        // because the final search radius is within the verified halo
        // radius), then the closure is built locally in ascending
        // global-id order — identical membership and summation order to
        // the single-rank `NeighborLists::symmetrized()`.
        for (r, ws) in wss.iter_mut().enumerate() {
            if ws.owned_k.is_empty() {
                continue;
            }
            let (force_lists, pairs) = self.timers[r].time(Phase::Momentum, || {
                let n_local = ws.locals.len();
                let mut gather: Vec<Vec<u32>> = vec![Vec::new(); n_local];
                for (q, &k) in ws.owned_k.iter().enumerate() {
                    gather[k as usize] = ws.lists.neighbors(q).to_vec();
                }
                // sph-lint: allow(panic-path) — superstep 2 builds a grid for
                // every rank with owned particles, and this loop skips empty
                // ranks above; a missing grid is a driver bug, not an input.
                let grid = ws.grid.as_ref().expect("non-empty rank has a grid");
                let mut ts = TraversalStats::default();
                for &(k, _) in &ws.ghosts {
                    let k = k as usize;
                    let mut out = Vec::new();
                    grid.neighbors_within(
                        ws.sys_l.x[k],
                        SUPPORT_RADIUS * ws.sys_l.h[k],
                        &mut out,
                        &mut ts,
                    );
                    out.sort_unstable();
                    gather[k] = out;
                }
                // Symmetric closure over the local set (sorted, deduped —
                // the `symmetrized()` contract). Only the *owned* rows are
                // ever consumed, so ghost rows are neither cloned nor given
                // reverse edges.
                let mut is_owned = vec![false; n_local];
                let mut sym: Vec<Vec<u32>> = vec![Vec::new(); n_local];
                for &k in &ws.owned_k {
                    is_owned[k as usize] = true;
                    sym[k as usize] = gather[k as usize].clone();
                }
                for (k, list) in gather.iter().enumerate() {
                    for &j in list {
                        if j as usize != k && is_owned[j as usize] {
                            sym[j as usize].push(k as u32);
                        }
                    }
                }
                let rows: Vec<Vec<u32>> = ws
                    .owned_k
                    .iter()
                    .map(|&k| {
                        let s = &mut sym[k as usize];
                        s.sort_unstable();
                        s.dedup();
                        std::mem::take(s)
                    })
                    .collect();
                let force_lists = NeighborLists::from_lists(rows);
                let pairs = compute_forces(
                    &mut ws.sys_l,
                    &force_lists,
                    self.kernel.as_ref(),
                    &self.config,
                    &ws.owned_k,
                );
                (force_lists, pairs)
            });
            stats.sph_interactions += pairs;
            for &k in &ws.owned_k {
                let g = ws.locals[k as usize] as usize;
                self.sys.a[g] = ws.sys_l.a[k as usize];
                self.sys.du_dt[g] = ws.sys_l.du_dt[k as usize];
            }
            // Per-particle SPH work, exactly as the single-rank driver
            // accounts it (gravity work is overwritten below when on).
            for (q, &k) in ws.owned_k.iter().enumerate() {
                let g = ws.locals[k as usize] as usize;
                let sph = 2.0 * force_lists.neighbors(q).len() as f64;
                self.per_particle_work[g] = sph.max(2.0);
            }
        }

        // --- Superstep 5: self-gravity on the replicated global tree ---
        if let Some(gcfg) = self.gravity {
            let bounds = self.sys.bounds();
            #[allow(clippy::disallowed_methods)]
            // sph-lint: allow(wall-clock) — feeds the measured cluster model
            // (MeasuredStep) only; timings never influence the trajectory.
            let t0 = std::time::Instant::now();
            let gtree = Octree::build(&self.sys.x, &bounds, OctreeConfig::default());
            let replicated_build = t0.elapsed().as_secs_f64();
            // The multipole moments are rank-independent; build them once
            // and charge the (replicated-in-a-real-code) setup to every
            // rank's Gravity timer, exactly like the tree build above.
            #[allow(clippy::disallowed_methods)]
            // sph-lint: allow(wall-clock) — same measured-model-only timing.
            let t0 = std::time::Instant::now();
            let solver = GravitySolver::new(&gtree, &self.sys.m, gcfg);
            let replicated_moments = t0.elapsed().as_secs_f64();
            let mut merged = TraversalStats::default();
            for r in 0..self.dist.nranks {
                // Every rank replicates the tree build in a real code.
                self.timers[r].add(Phase::TreeBuild, replicated_build);
                self.timers[r].add(Phase::Gravity, replicated_moments);
                let owned = &self.owned[r];
                if owned.is_empty() {
                    continue;
                }
                // Chunked map over fixed REDUCE_CHUNK boundaries, mirroring
                // the single-rank gravity phase, so the rank's threads all
                // participate and the per-rank Gravity seconds fed to
                // `calibrate_machine` reflect the same threaded execution
                // the model assumes. `field_at` is a pure per-particle
                // function, so parallelism cannot change a bit.
                type GravityRow = (usize, sph_tree::gravity::GravitySample, u64);
                let chunks: Vec<(Vec<GravityRow>, TraversalStats)> = {
                    let solver = &solver;
                    let sys = &self.sys;
                    self.timers[r].time(Phase::Gravity, || {
                        use rayon::prelude::*;
                        use sph_math::REDUCE_CHUNK;
                        owned
                            .par_chunks(REDUCE_CHUNK)
                            .map(|chunk| {
                                let mut chunk_stats = TraversalStats::default();
                                let rows = chunk
                                    .iter()
                                    .map(|&gi| {
                                        let i = gi as usize;
                                        let mut ts = TraversalStats::default();
                                        let s = solver.field_at(sys.x[i], Some(gi), &mut ts);
                                        let work = ts.total_interactions();
                                        chunk_stats.merge(&ts);
                                        (i, s, work)
                                    })
                                    .collect();
                                (rows, chunk_stats)
                            })
                            .collect()
                    })
                };
                // Ordered reduce: scatter the rows back in owned order.
                for (rows, chunk_stats) in chunks {
                    merged.merge(&chunk_stats);
                    for (i, s, work) in rows {
                        self.sys.a[i] += s.accel;
                        self.phi[i] = s.potential;
                        // Same two addends as the single-rank accounting
                        // (gravity + SPH); addition of two f64s commutes
                        // exactly, so the order difference is bit-free.
                        self.per_particle_work[i] += work as f64;
                    }
                }
            }
            stats.gravity = merged;
        }

        self.derivatives_fresh = true;
        Ok(stats)
    }

    // ---------------------------------------------------------------
    // The macro-step driver (Algorithm 1, steps 5–6 + migration)
    // ---------------------------------------------------------------

    /// Execute one macro time-step. Pathological time-step states surface
    /// as [`TimeStepError`] (naming the offending *global* particle id)
    /// instead of aborting every rank; the state is left as of the failed
    /// criterion evaluation.
    pub fn step(&mut self) -> Result<StepReport, DistributedError> {
        self.exchange.begin_step(self.sys.step_count);
        let mut stats = StepStats::default();
        if !self.derivatives_fresh {
            stats.merge(&self.evaluate_derivatives()?);
        }

        // Step 5: per-particle bounds on the owner, reduced by an exact,
        // order-independent min. Validation happens rank-side (first
        // offending *global* particle id), then each rank folds its owned
        // minimum and the exchange min-reduces the per-rank values — the
        // min of per-rank minima over a partition is bitwise the global
        // min, and empty ranks contribute the +∞ identity.
        let dts =
            self.driver_timers.time(Phase::Update, || per_particle_dt(&self.sys, &self.config));
        validate_dts(&dts)?;
        let nranks = self.dist.nranks;
        let per_rank_min: Vec<f64> = (0..nranks)
            .map(|r| self.owned[r].iter().map(|&i| dts[i as usize]).fold(f64::INFINITY, f64::min))
            .collect();
        let retries = self.dist.exchange_retries;
        let reduced = with_retry(self.exchange.as_mut(), &mut self.log, retries, |ex| {
            ex.reduce_min(ExchangePath::DtReduce, &per_rank_min)
        })?;
        let dt = match self.config.time_stepping {
            TimeStepping::Adaptive { growth_limit } => {
                finalize_adaptive_dt(reduced, self.dt_prev, growth_limit)
            }
            _ => finalize_global_dt(reduced),
        };

        // Step 6: KDK leapfrog — each rank kicks its owned particles,
        // the drift is per-particle.
        for r in 0..self.dist.nranks {
            self.timers[r].time(Phase::Update, || {
                kick(&mut self.sys, dt / 2.0, &self.owned[r]);
            });
        }
        self.driver_timers.time(Phase::Update, || {
            drift(&mut self.sys, dt);
        });

        // Positions moved: migrate strays and, on schedule, rebalance.
        // Ownership never affects values, so this may happen at any
        // barrier; doing it before the mid-step evaluation keeps the halo
        // pattern aligned with the boxes that will be computed next.
        #[allow(clippy::disallowed_methods)]
        // sph-lint: allow(wall-clock) — PhaseTimers bookkeeping for the
        // measured cluster model; the timing never feeds the trajectory.
        let t0 = std::time::Instant::now();
        self.migrate()?;
        let step_index = self.sys.step_count + 1;
        if self.dist.rebalance_every > 0 && step_index.is_multiple_of(self.dist.rebalance_every) {
            self.rebalance();
        }
        self.driver_timers.add(Phase::Update, t0.elapsed().as_secs_f64());

        stats.merge(&self.evaluate_derivatives()?);
        for r in 0..self.dist.nranks {
            self.timers[r].time(Phase::Update, || {
                kick(&mut self.sys, dt / 2.0, &self.owned[r]);
            });
        }
        self.dt_prev = dt;
        self.sys.time += dt;
        self.sys.step_count += 1;
        Ok(StepReport {
            step: self.sys.step_count,
            dt,
            time: self.sys.time,
            stats,
            substeps: 1,
            active_fraction: 1.0,
        })
    }

    /// Run `n_steps` macro steps; stops at the first step error.
    pub fn run(&mut self, n_steps: usize) -> Result<Vec<StepReport>, DistributedError> {
        (0..n_steps).map(|_| self.step()).collect()
    }

    /// Reassign particles that drifted out of their owner's decomposition
    /// box to the rank with the nearest box (ties to the lowest rank —
    /// deterministic), shipping each mover's owner state to its new rank
    /// through the exchange carrier. Returns the number of migrated
    /// particles.
    ///
    /// Only `[x, v, m, h, u]` travel (9 f64 words per particle): the step
    /// order is half-kick → drift → **migrate** → re-evaluate → half-kick,
    /// and the re-evaluation recomputes every other field (ρ, ω, vol,
    /// C-IAD, ∇·v, ∇×v, p, cs, a, du/dt) before anything reads it — the
    /// same minimal payload a real MPI migration would post.
    fn migrate(&mut self) -> Result<usize, ExchangeError> {
        // Pass 1: decide every move (pure function of positions + boxes).
        let mut moves: Vec<(usize, u32)> = Vec::new();
        for i in 0..self.sys.len() {
            let r = self.decomp.assignment[i] as usize;
            let p = self.sys.x[i];
            let inside = self.boxes[r].is_some_and(|b| b.contains(p));
            if inside {
                continue;
            }
            // Scan in rank order with strict improvement, so the *lowest*
            // rank wins exact-distance ties — including ties against the
            // current owner (the documented deterministic rule).
            let mut best = r as u32;
            let mut best_d = f64::INFINITY;
            for (s, bx) in self.boxes.iter().enumerate() {
                let Some(bx) = bx else { continue };
                let d = bx.dist_sq_to_point(p);
                if d < best_d {
                    best_d = d;
                    best = s as u32;
                }
            }
            if best != r as u32 {
                moves.push((i, best));
            }
        }
        // Pass 2: ship the movers' owner state to each destination rank,
        // in ascending global-id order (moves are discovered in id order,
        // so per-destination order is already ascending). In-process the
        // delivery is the identity; a faulty carrier interposes here.
        const WORDS: usize = 9;
        let retries = self.dist.exchange_retries;
        for dest in 0..self.dist.nranks as u32 {
            let incoming: Vec<usize> =
                moves.iter().filter(|&&(_, to)| to == dest).map(|&(i, _)| i).collect();
            if incoming.is_empty() {
                continue;
            }
            let mut payload = Vec::with_capacity(incoming.len() * WORDS);
            for &i in &incoming {
                let (x, v) = (self.sys.x[i], self.sys.v[i]);
                payload.extend_from_slice(&[
                    x.x,
                    x.y,
                    x.z,
                    v.x,
                    v.y,
                    v.z,
                    self.sys.m[i],
                    self.sys.h[i],
                    self.sys.u[i],
                ]);
            }
            with_retry(self.exchange.as_mut(), &mut self.log, retries, |ex| {
                ex.deliver_f64(ExchangePath::Migration, dest, &mut payload)
            })?;
            for (j, &i) in incoming.iter().enumerate() {
                let w = &payload[j * WORDS..(j + 1) * WORDS];
                self.sys.x[i] = Vec3::new(w[0], w[1], w[2]);
                self.sys.v[i] = Vec3::new(w[3], w[4], w[5]);
                self.sys.m[i] = w[6];
                self.sys.h[i] = w[7];
                self.sys.u[i] = w[8];
            }
        }
        let moved = moves.len();
        for (i, best) in moves {
            self.decomp.assignment[i] = best;
        }
        if moved > 0 {
            self.owned = bucket_owned(&self.decomp);
        }
        self.log.migrations += moved as u64;
        Ok(moved)
    }

    /// Rebuild the decomposition from scratch with the measured
    /// per-particle work as weights, and refresh the migration boxes.
    fn rebalance(&mut self) {
        self.decomp =
            partition(&self.sys, self.dist.partitioner, self.dist.nranks, &self.per_particle_work);
        self.owned = bucket_owned(&self.decomp);
        self.boxes = sph_domain::orb::rank_boxes(&self.sys.x, &self.decomp);
        self.log.rebalances += 1;
    }

    // ---------------------------------------------------------------
    // Per-rank checkpoint / restart (sph-ft)
    // ---------------------------------------------------------------

    /// Checkpoint the run as per-rank snapshots plus a manifest blob.
    /// Each rank saves only its owned particles (`<label>.rank<r>`), as a
    /// real distributed code writes N files; the manifest records the
    /// rank count, the ownership assignment and the adaptive-step memory,
    /// so a restore reassembles the exact global state.
    ///
    /// Every byte bound for the store first crosses the exchange carrier's
    /// [`ExchangePath::CheckpointBlob`] path (rank → I/O aggregator in a
    /// real code). On `Ok` the carrier contract guarantees the delivered
    /// bytes are unchanged, so the original encoding is saved; a carrier
    /// error gates the save entirely — no torn checkpoints.
    pub fn checkpoint(
        &mut self,
        store: &mut dyn CheckpointStore,
        label: &str,
    ) -> Result<usize, DistributedError> {
        let retries = self.dist.exchange_retries;
        let mut bytes = 0;
        for (r, owned) in self.owned.iter().enumerate() {
            let snap = self.sys.subset(owned);
            let mut encoded = sph_ft::codec::encode(&snap);
            with_retry(self.exchange.as_mut(), &mut self.log, retries, |ex| {
                ex.deliver_bytes(ExchangePath::CheckpointBlob, r as u32, &mut encoded)
            })?;
            bytes += store.save(&format!("{label}.rank{r}"), &snap)?;
        }
        let mut manifest = self.encode_manifest();
        with_retry(self.exchange.as_mut(), &mut self.log, retries, |ex| {
            ex.deliver_bytes(ExchangePath::CheckpointBlob, 0, &mut manifest)
        })?;
        bytes += store.save_blob(label, &manifest)?;
        Ok(bytes)
    }

    /// Restore a distributed run from [`DistributedSimulation::checkpoint`]
    /// output. The restored run reproduces the uninterrupted run's state
    /// bit-for-bit: snapshots carry the accelerations and energy
    /// derivatives, so the first half-kick after the restore reuses them
    /// exactly as the original run did.
    pub fn restore(
        store: &dyn CheckpointStore,
        label: &str,
        config: SphConfig,
        gravity: Option<GravityConfig>,
        dist: DistributedConfig,
    ) -> Result<Self, DistributedError> {
        let restore_err = |detail: String| DistributedError::Restore { detail };
        let manifest = Manifest::decode(&store.restore_blob(label)?).map_err(restore_err)?;
        if manifest.nranks != dist.nranks {
            return Err(restore_err(format!(
                "manifest has {} ranks, caller requested {}",
                manifest.nranks, dist.nranks
            )));
        }
        let decomp = Decomposition::new(manifest.assignment, manifest.nranks);
        let n = decomp.assignment.len();

        // Reassemble the global state by scattering each rank's snapshot
        // back to its owned global ids.
        let mut global: Option<ParticleSystem> = None;
        for r in 0..manifest.nranks as u32 {
            let owned = decomp.indices_of(r);
            let snap = store.restore(&format!("{label}.rank{r}"))?;
            if snap.len() != owned.len() {
                return Err(restore_err(format!(
                    "rank {r} snapshot has {} particles, manifest assigns {}",
                    snap.len(),
                    owned.len()
                )));
            }
            let g = global.get_or_insert_with(|| {
                let mut g = snap.clone();
                let resize3 = |v: &mut Vec<sph_math::Vec3>| v.resize(n, sph_math::Vec3::ZERO);
                let resize1 = |v: &mut Vec<f64>| v.resize(n, 0.0);
                resize3(&mut g.x);
                resize3(&mut g.v);
                resize3(&mut g.a);
                resize1(&mut g.m);
                resize1(&mut g.h);
                resize1(&mut g.rho);
                resize1(&mut g.u);
                resize1(&mut g.p);
                resize1(&mut g.cs);
                resize1(&mut g.du_dt);
                resize1(&mut g.omega);
                resize1(&mut g.vol);
                resize1(&mut g.div_v);
                resize1(&mut g.curl_v);
                g.c_iad.resize(n, sph_math::Mat3::ZERO);
                g.rung.resize(n, 0);
                g
            });
            if snap.time != g.time || snap.step_count != g.step_count {
                return Err(restore_err(format!("rank {r} snapshot is from a different step")));
            }
            for (k, &gi) in owned.iter().enumerate() {
                let gi = gi as usize;
                g.x[gi] = snap.x[k];
                g.v[gi] = snap.v[k];
                g.a[gi] = snap.a[k];
                g.m[gi] = snap.m[k];
                g.h[gi] = snap.h[k];
                g.rho[gi] = snap.rho[k];
                g.u[gi] = snap.u[k];
                g.p[gi] = snap.p[k];
                g.cs[gi] = snap.cs[k];
                g.du_dt[gi] = snap.du_dt[k];
                g.omega[gi] = snap.omega[k];
                g.vol[gi] = snap.vol[k];
                g.div_v[gi] = snap.div_v[k];
                g.curl_v[gi] = snap.curl_v[k];
                g.c_iad[gi] = snap.c_iad[k];
                g.rung[gi] = snap.rung[k];
            }
        }
        let sys = global.ok_or_else(|| restore_err("checkpoint has zero ranks".to_string()))?;
        // Derivatives are fresh in every checkpoint taken *between* steps
        // (a completed step leaves them fresh, and that is the only state
        // a running driver exposes) — but a checkpoint written before the
        // first step carries the constructor's zeroed accelerations, and
        // the replay must re-evaluate them exactly as the original run did.
        let fresh = sys.step_count > 0;
        let mut sim = Self::assemble(sys, config, gravity, dist, decomp, manifest.dt_prev, fresh)?;
        if !manifest.phi.is_empty() {
            // Restore the gravitational-energy baseline; without it the
            // first post-restore conservation() would read Φ = 0.
            sim.phi.copy_from_slice(&manifest.phi);
        }
        Ok(sim)
    }

    fn encode_manifest(&self) -> Vec<u8> {
        let n = self.decomp.assignment.len();
        let mut buf = Vec::with_capacity(40 + 4 * n + 8 * n);
        buf.extend_from_slice(&Manifest::MAGIC.to_le_bytes());
        buf.extend_from_slice(&Manifest::VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.dist.nranks as u32).to_le_bytes());
        buf.extend_from_slice(&self.dt_prev.to_le_bytes());
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for &r in &self.decomp.assignment {
            buf.extend_from_slice(&r.to_le_bytes());
        }
        // Potentials travel in the manifest (they are driver state, not
        // ParticleSystem state) so conservation baselines survive restore.
        if self.gravity.is_some() {
            buf.extend_from_slice(&(n as u64).to_le_bytes());
            for &p in &self.phi {
                buf.extend_from_slice(&p.to_le_bytes());
            }
        } else {
            buf.extend_from_slice(&0u64.to_le_bytes());
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }
}

/// Decoded distributed-checkpoint manifest.
struct Manifest {
    nranks: usize,
    dt_prev: f64,
    assignment: Vec<u32>,
    /// Gravitational potentials by global id (empty when gravity is off).
    /// They live outside [`ParticleSystem`], so the per-rank snapshots do
    /// not carry them — without this a restored run would report a zero
    /// gravitational-energy baseline until its next evaluation.
    phi: Vec<f64>,
}

impl Manifest {
    /// "SPHEXADM" — distributed manifest.
    const MAGIC: u64 = 0x5350_4845_5841_444d;
    const VERSION: u32 = 1;

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0;
        let magic = u64::from_le_bytes(take_array(bytes, &mut pos)?);
        if magic != Self::MAGIC {
            return Err("not a distributed-checkpoint manifest (bad magic)".to_string());
        }
        let version = u32::from_le_bytes(take_array(bytes, &mut pos)?);
        if version != Self::VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let nranks = u32::from_le_bytes(take_array(bytes, &mut pos)?) as usize;
        let dt_prev = f64::from_le_bytes(take_array(bytes, &mut pos)?);
        let n = u64::from_le_bytes(take_array::<8>(bytes, &mut pos)?) as usize;
        // Validate the untrusted count against the bytes actually present
        // *before* allocating — a corrupted length field must produce an
        // Err, not an abort-on-allocation-failure.
        if bytes.len().saturating_sub(pos) < 4 * n {
            return Err("manifest truncated".to_string());
        }
        let mut assignment = Vec::with_capacity(n);
        for _ in 0..n {
            assignment.push(u32::from_le_bytes(take_array(bytes, &mut pos)?));
        }
        let phi_n = u64::from_le_bytes(take_array::<8>(bytes, &mut pos)?) as usize;
        if phi_n != 0 && phi_n != n {
            return Err("manifest potential block has the wrong length".to_string());
        }
        if bytes.len().saturating_sub(pos) < 8 * phi_n {
            return Err("manifest truncated".to_string());
        }
        let mut phi = Vec::with_capacity(phi_n);
        for _ in 0..phi_n {
            phi.push(f64::from_le_bytes(take_array(bytes, &mut pos)?));
        }
        let payload_end = pos;
        let stored = u64::from_le_bytes(take_array::<8>(bytes, &mut pos)?);
        if fnv1a(&bytes[..payload_end]) != stored {
            return Err("manifest checksum mismatch".to_string());
        }
        if nranks == 0 || assignment.iter().any(|&r| r as usize >= nranks) {
            return Err("manifest assignment references an out-of-range rank".to_string());
        }
        Ok(Manifest { nranks, dt_prev, assignment, phi })
    }
}

/// Slice exactly `N` bytes at `*pos` or report truncation. Returning a
/// fixed-size array makes the `from_le_bytes` conversions in
/// [`Manifest::decode`] infallible — no `unwrap` on the decode path, so a
/// corrupted checkpoint can only ever surface as a typed `Err`.
fn take_array<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N], String> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| "manifest truncated".to_string())?;
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(out)
}

impl DistributedSimulation {
    /// Largest owned-particle count over ranks divided by the mean — the
    /// instantaneous particle imbalance.
    pub fn imbalance(&self) -> f64 {
        self.decomp.imbalance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimulationBuilder;
    use sph_ft::checkpoint::MemoryStore;
    use sph_math::{Periodicity, SplitMix64, Vec3};

    fn gas_ball(n_target: usize, seed: u64) -> ParticleSystem {
        let mut rng = SplitMix64::new(seed);
        let mut x = Vec::new();
        while x.len() < n_target {
            let p =
                Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
            if p.norm() <= 1.0 {
                x.push(p);
            }
        }
        let n = x.len();
        let mut v = vec![Vec3::ZERO; n];
        for (i, vel) in v.iter_mut().enumerate() {
            // A gentle shear so particles actually cross rank boxes.
            *vel = Vec3::new(0.2 * x[i].y, -0.2 * x[i].x, 0.0);
        }
        ParticleSystem::new(
            x,
            v,
            vec![1.0 / n as f64; n],
            vec![0.5; n],
            0.3,
            Periodicity::open(Aabb::cube(Vec3::ZERO, 2.0)),
        )
    }

    fn quick_config() -> SphConfig {
        SphConfig { target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
    }

    use sph_core::diagnostics::state_fingerprint as state_hash;

    #[test]
    fn matches_single_rank_bit_for_bit() {
        let steps = 4;
        let mut reference =
            SimulationBuilder::new(gas_ball(350, 3)).config(quick_config()).build().unwrap();
        reference.run(steps).unwrap();
        let want = state_hash(&reference.sys);

        for nranks in [1usize, 2, 3, 4] {
            let mut dist = DistributedBuilder::new(gas_ball(350, 3))
                .config(quick_config())
                .nranks(nranks)
                .build()
                .unwrap();
            dist.run(steps).unwrap();
            assert_eq!(
                state_hash(&dist.sys),
                want,
                "{nranks}-rank run diverged from the single-rank reference"
            );
            assert_eq!(dist.conservation().kinetic_energy, reference.conservation().kinetic_energy);
        }
    }

    #[test]
    fn sfc_partitioner_also_matches() {
        let steps = 3;
        let mut reference =
            SimulationBuilder::new(gas_ball(300, 9)).config(quick_config()).build().unwrap();
        reference.run(steps).unwrap();
        let mut dist = DistributedBuilder::new(gas_ball(300, 9))
            .config(quick_config())
            .distributed(DistributedConfig {
                nranks: 3,
                partitioner: RankPartitioner::Sfc(SfcKind::Hilbert),
                rebalance_every: 2,
                halo_growth_steps: 1,
                ..Default::default()
            })
            .build()
            .unwrap();
        dist.run(steps).unwrap();
        assert_eq!(state_hash(&dist.sys), state_hash(&reference.sys));
        assert!(dist.exchange_log().rebalances >= 1);
    }

    #[test]
    fn halo_renegotiation_still_matches_when_budget_is_zero() {
        // Start far from the converged smoothing length so the h iteration
        // must grow past the frozen halo radius and force a renegotiation.
        let make = || {
            let mut sys = gas_ball(300, 5);
            for h in sys.h.iter_mut() {
                *h = 0.08;
            }
            sys
        };
        let mut reference = SimulationBuilder::new(make()).config(quick_config()).build().unwrap();
        reference.step().unwrap();
        let mut dist = DistributedBuilder::new(make())
            .config(quick_config())
            .distributed(DistributedConfig {
                nranks: 4,
                halo_growth_steps: 0,
                ..Default::default()
            })
            .build()
            .unwrap();
        dist.step().unwrap();
        assert_eq!(state_hash(&dist.sys), state_hash(&reference.sys));
        assert!(
            dist.exchange_log().renegotiations > 0,
            "zero headroom on a far-from-converged state should force a renegotiation"
        );
    }

    #[test]
    fn migration_moves_owners_without_moving_values() {
        let mut dist = DistributedBuilder::new(gas_ball(400, 7))
            .config(quick_config())
            .distributed(DistributedConfig {
                nranks: 4,
                rebalance_every: 0, // migration only
                ..Default::default()
            })
            .build()
            .unwrap();
        let before = dist.decomposition().assignment.clone();
        dist.run(6).unwrap();
        let after = &dist.decomposition().assignment;
        assert!(dist.exchange_log().migrations > 0, "shear flow must migrate some particles");
        assert_ne!(&before, after);

        let mut reference =
            SimulationBuilder::new(gas_ball(400, 7)).config(quick_config()).build().unwrap();
        reference.run(6).unwrap();
        assert_eq!(state_hash(&dist.sys), state_hash(&reference.sys));
    }

    #[test]
    fn checkpoint_restore_reproduces_the_uninterrupted_run() {
        let dcfg = DistributedConfig { nranks: 3, ..Default::default() };
        let mut run = DistributedBuilder::new(gas_ball(300, 11))
            .config(quick_config())
            .distributed(dcfg)
            .build()
            .unwrap();
        run.run(2).unwrap();
        let mut store = MemoryStore::new();
        run.checkpoint(&mut store, "mid").unwrap();
        run.run(3).unwrap();
        let want = state_hash(&run.sys);

        let mut replay =
            DistributedSimulation::restore(&store, "mid", quick_config(), None, dcfg).unwrap();
        replay.run(3).unwrap();
        assert_eq!(state_hash(&replay.sys), want, "restore must replay the original run");
    }

    #[test]
    fn gravity_restore_keeps_the_conservation_baseline() {
        use sph_tree::MultipoleOrder;
        let gravity =
            GravityConfig { g: 1.0, theta: 0.6, softening: 0.05, order: MultipoleOrder::Monopole };
        let dcfg = DistributedConfig { nranks: 3, ..Default::default() };
        let mut run = DistributedBuilder::new(gas_ball(250, 37))
            .config(quick_config())
            .gravity(gravity)
            .distributed(dcfg)
            .build()
            .unwrap();
        run.run(2).unwrap();
        let baseline = run.conservation();
        assert!(baseline.gravitational_energy < 0.0);
        let mut store = MemoryStore::new();
        run.checkpoint(&mut store, "g").unwrap();

        let restored =
            DistributedSimulation::restore(&store, "g", quick_config(), Some(gravity), dcfg)
                .unwrap();
        // The restored potentials must reproduce the baseline exactly —
        // a drift detector armed right after the restore must not fire.
        let c = restored.conservation();
        assert_eq!(c.gravitational_energy.to_bits(), baseline.gravitational_energy.to_bits());

        // And the replay still matches the uninterrupted run.
        run.run(2).unwrap();
        let mut replay =
            DistributedSimulation::restore(&store, "g", quick_config(), Some(gravity), dcfg)
                .unwrap();
        replay.run(2).unwrap();
        assert_eq!(state_hash(&replay.sys), state_hash(&run.sys));
    }

    #[test]
    fn restore_with_different_rank_count_is_rejected() {
        let dcfg = DistributedConfig { nranks: 2, ..Default::default() };
        let mut run = DistributedBuilder::new(gas_ball(150, 13))
            .config(quick_config())
            .distributed(dcfg)
            .build()
            .unwrap();
        let mut store = MemoryStore::new();
        run.checkpoint(&mut store, "cp").unwrap();
        let err = DistributedSimulation::restore(
            &store,
            "cp",
            quick_config(),
            None,
            DistributedConfig { nranks: 4, ..Default::default() },
        )
        .err()
        .expect("rank-count mismatch must be rejected");
        assert!(err.to_string().contains("ranks"), "{err}");
    }

    #[test]
    fn restore_rejects_unsupported_or_invalid_configs() {
        // The restore path must enforce the same constraints as the
        // builder — an Individual-stepping config would otherwise silently
        // integrate with Global semantics.
        let dcfg = DistributedConfig { nranks: 2, ..Default::default() };
        let mut run = DistributedBuilder::new(gas_ball(150, 31))
            .config(quick_config())
            .distributed(dcfg)
            .build()
            .unwrap();
        let mut store = MemoryStore::new();
        run.checkpoint(&mut store, "cp").unwrap();

        let individual = SphConfig {
            time_stepping: TimeStepping::Individual { max_rungs: 4 },
            ..quick_config()
        };
        let err = DistributedSimulation::restore(&store, "cp", individual, None, dcfg)
            .err()
            .expect("Individual stepping must be rejected on restore");
        assert!(err.to_string().contains("time-stepping"), "{err}");

        let invalid = SphConfig { gamma: 0.1, ..quick_config() };
        assert!(DistributedSimulation::restore(&store, "cp", invalid, None, dcfg).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_corruption_detection() {
        let dist = DistributedBuilder::new(gas_ball(120, 17))
            .config(quick_config())
            .nranks(2)
            .build()
            .unwrap();
        let bytes = dist.encode_manifest();
        let m = Manifest::decode(&bytes).unwrap();
        assert_eq!(m.nranks, 2);
        assert_eq!(m.assignment, dist.decomp.assignment);
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(Manifest::decode(&bad).is_err());
        assert!(Manifest::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn poisoned_state_surfaces_error_with_global_index() {
        let mut dist = DistributedBuilder::new(gas_ball(250, 19))
            .config(quick_config())
            .nranks(3)
            .build()
            .unwrap();
        dist.step().unwrap();
        let time_before = dist.sys.time;
        dist.sys.a[41] = Vec3::new(f64::NAN, 0.0, 0.0);
        let err = dist.step().unwrap_err();
        assert!(
            matches!(err, DistributedError::TimeStep(TimeStepError::NonFinite { particle: 41 })),
            "{err}"
        );
        assert_eq!(dist.sys.time, time_before, "failed step must not advance time");
    }

    #[test]
    fn builder_rejects_individual_stepping_with_typed_error() {
        let bad = SphConfig {
            time_stepping: TimeStepping::Individual { max_rungs: 4 },
            ..quick_config()
        };
        let err = DistributedBuilder::new(gas_ball(100, 23))
            .config(bad)
            .nranks(2)
            .build()
            .err()
            .expect("individual stepping must be rejected");
        // The rejection is a typed capability gap, not a stringly error…
        assert!(
            matches!(err, DistributedBuildError::UnsupportedTimeStepping { .. }),
            "expected UnsupportedTimeStepping, got {err:?}"
        );
        // …and its message names every mode the driver does support, so
        // the caller can correct the configuration without reading source.
        let msg = err.to_string();
        for mode in SUPPORTED_TIME_STEPPING {
            assert!(msg.contains(mode), "error message must name {mode}: {msg}");
        }
    }

    #[test]
    fn builder_rejects_zero_ranks_with_typed_error() {
        let err = DistributedBuilder::new(gas_ball(100, 23))
            .config(quick_config())
            .nranks(0)
            .build()
            .err()
            .expect("zero ranks must be rejected");
        assert!(matches!(err, DistributedBuildError::BadRankCount { nranks: 0, .. }), "{err:?}");
    }

    #[test]
    fn timers_and_exchange_are_populated() {
        let mut dist = DistributedBuilder::new(gas_ball(250, 29))
            .config(quick_config())
            .nranks(2)
            .build()
            .unwrap();
        dist.run(2).unwrap();
        for (r, t) in dist.timers().iter().enumerate() {
            assert!(t.get(Phase::Density) > 0.0, "rank {r} never summed density");
            assert!(t.get(Phase::Momentum) > 0.0, "rank {r} never ran forces");
        }
        assert!(dist.driver_timers().get(Phase::NeighborLists) > 0.0);
        let halos = dist.last_exchange().expect("two ranks must exchange");
        assert!(halos.total_volume() > 0);
        assert!(dist.exchange_log().ghosts_imported > 0);
        let agg = dist.aggregate_timers();
        assert!(agg.total() >= dist.timers()[0].total());
    }
}
