//! The SPH-EXA mini-app driver.
//!
//! [`Simulation`] executes Algorithm 1 of the paper:
//!
//! ```text
//! Initialization
//! while target simulated time is not reached do
//!   1. Build tree                      (phase A)
//!   2. Find neighbors and h            (phases B–D)
//!   3. Execute SPH kernels             (phases E–H)
//!   4. (Optional) Compute self-gravity (phase I)
//!   5. Compute new time-step           (phase J)
//!   6. Update velocity and position    (phase J)
//! end while
//! ```
//!
//! over any [`sph_core::SphConfig`] (i.e. any cell of Tables 1–2), with
//! global, adaptive or individual block time-stepping, optional
//! self-gravity, per-phase wall-clock timing and per-particle work
//! accounting (the input of the cluster performance model).

pub mod distributed;
pub mod resilient;
pub mod simulation;

pub use distributed::{
    DistributedBuildError, DistributedBuilder, DistributedConfig, DistributedError,
    DistributedSimulation, ExchangeLog, RankPartitioner, SUPPORTED_TIME_STEPPING,
};
pub use resilient::{
    Detection, RecoveryError, RecoveryStats, ResilientConfig, ResilientSimulation, RollbackRecord,
    SchedulerMode,
};
pub use simulation::{Simulation, SimulationBuilder, StepReport};
