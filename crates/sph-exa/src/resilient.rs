//! Self-healing distributed stepping: detect, roll back, recompute.
//!
//! [`ResilientSimulation`] wraps a [`DistributedSimulation`] with the
//! fault-tolerance loop Table 4 prescribes for the mini-app: silent-data-
//! corruption detectors armed around every macro-step, checkpoints written
//! on a Daly-optimal (or fixed) cadence, and rollback-and-recompute
//! recovery from the newest checkpoint that still passes verification.
//! Faults are supplied by a seeded [`FaultPlan`] — the wrapper transplants
//! a [`FaultyExchange`] around the simulation's carrier and executes the
//! plan's driver-side events (in-memory bit flips, stored-checkpoint rot)
//! at step boundaries.
//!
//! # Recovery contract
//!
//! For any *survivable* fault schedule — every killed rank respawnable,
//! at least one checkpoint generation intact, rollback budget sufficient —
//! the run completes with a final state **bit-identical** to the same
//! simulation stepped with no faults at all. The argument:
//!
//! * exchange faults either gate an operation *before* state changed
//!   (reductions, deliveries return `Err`, the step aborts) or are
//!   absorbed by the bounded retry loop without touching the payload;
//! * in-memory corruption is injected only at step boundaries, after the
//!   detectors were armed on the known-good post-step state, so the
//!   checksum detector catches every single-bit flip before the state can
//!   feed a checkpoint or another step;
//! * rollback restores a checkpoint whose integrity was verified end to
//!   end (codec framing per rank, sealed manifest, rank-count and shape
//!   checks), and the replay recomputes the discarded steps through the
//!   deterministic driver — every fault event is one-shot, so the replay
//!   runs clean;
//! * checkpoints are only written from states the detectors passed.
//!
//! Unsurvivable schedules (a non-respawnable rank kill, every generation
//! corrupted, rollback budget exhausted) surface as a typed
//! [`RecoveryError`] naming the fault — never a panic, never silent
//! divergence.

use crate::distributed::{DistributedConfig, DistributedError, DistributedSimulation};
use sph_core::config::SphConfig;
use sph_core::particles::ParticleSystem;
use sph_domain::exchange::{ExchangeErrorKind, InProcessExchange};
use sph_ft::chaos::{CorruptionMode, FaultEvent, FaultKind, FaultPlan, FaultyExchange};
use sph_ft::checkpoint::{CheckpointStore, StoredKind};
use sph_ft::scheduler::CheckpointScheduler;
use sph_ft::sdc::{
    ChecksumDetector, ConservationDetector, PhysicsBoundsDetector, SdcDetector, SdcInjector,
    Verdict,
};
use sph_tree::GravityConfig;
use std::collections::VecDeque;

/// Why a resilient run could not complete. Every variant names the fault
/// that ended it — the contract is typed failure, not a panic and not a
/// silently wrong trajectory.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// A killed rank was not respawnable: its owned state is gone and the
    /// carrier cannot bring it back.
    RankLost { rank: u32 },
    /// Every retained checkpoint generation failed verification on
    /// restore (`tried` of them); `last_error` is the newest failure.
    NoValidCheckpoint { tried: usize, last_error: String },
    /// The rollback budget was exhausted before the run reached its
    /// target step — the schedule keeps knocking the run down faster
    /// than replay can make progress.
    NoProgress { at_step: u64, rollbacks: u32 },
    /// A failure outside the recovery loop's competence (storage I/O on
    /// write, configuration rejected on restore, …).
    Unrecoverable { fault: String },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RankLost { rank } => {
                write!(f, "rank {rank} failed and is not respawnable")
            }
            RecoveryError::NoValidCheckpoint { tried, last_error } => {
                write!(f, "all {tried} retained checkpoint generations failed verification; newest failure: {last_error}")
            }
            RecoveryError::NoProgress { at_step, rollbacks } => {
                write!(f, "rollback budget exhausted after {rollbacks} rollbacks at step {at_step}")
            }
            RecoveryError::Unrecoverable { fault } => write!(f, "unrecoverable fault: {fault}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// When to write checkpoints.
#[derive(Debug, Clone, Copy)]
pub enum SchedulerMode {
    /// Re-derive the Young/Daly-optimal interval continuously from the
    /// measured step and write costs ([`CheckpointScheduler`]). The
    /// cadence follows wall-clock, so *which* steps checkpoint varies
    /// run to run — the trajectory values never do.
    Daly {
        /// Assumed mean time between failures, seconds.
        mtbf: f64,
        /// Seed estimate of one checkpoint write, seconds (replaced by
        /// the measured mean after the first write).
        write_cost_guess: f64,
    },
    /// Checkpoint every `k` completed macro-steps — fully deterministic,
    /// the mode the chaos suite pins its bit-identity assertions on.
    FixedSteps(u64),
}

/// Configuration of the recovery loop.
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    pub scheduler: SchedulerMode,
    /// Checkpoint generations retained (older ones are invalidated);
    /// also the fallback depth when the newest generation is corrupt.
    pub retention: usize,
    /// Total rollbacks allowed before the run gives up with
    /// [`RecoveryError::NoProgress`].
    pub max_rollbacks: u32,
    /// Relative tolerance of the conservation-drift detector (armed on
    /// the post-step state, checked after fault injection — legitimate
    /// physics drift never crosses it because nothing legitimate happens
    /// between arm and check).
    pub conservation_tolerance: f64,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            scheduler: SchedulerMode::FixedSteps(2),
            retention: 2,
            max_rollbacks: 8,
            conservation_tolerance: 1e-9,
        }
    }
}

/// One detector firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Completed-step count at which the corruption was caught.
    pub step: u64,
    /// Which detector fired (`checksum`, `physics-bounds`,
    /// `conservation-drift`, or `exchange` for carrier-reported faults).
    pub detector: &'static str,
    pub detail: String,
}

/// One rollback-and-recompute episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackRecord {
    /// Completed-step count when the fault surfaced.
    pub from_step: u64,
    /// Step count of the checkpoint the run restored to.
    pub to_step: u64,
    /// How many retained generations failed verification before one
    /// restored (0 = the newest was good).
    pub generations_skipped: usize,
    pub reason: String,
}

/// Counters and records of one resilient run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Macro-steps that completed (including replayed ones).
    pub steps_executed: u64,
    /// Of those, steps re-executed after a rollback — the recompute cost.
    pub steps_replayed: u64,
    pub rollbacks: u32,
    pub checkpoints_written: u64,
    pub checkpoint_bytes: u64,
    /// Checkpoint writes gated by a carrier fault (no generation
    /// recorded; the partial labels are scrubbed).
    pub checkpoint_write_failures: u64,
    /// In-memory SDC events injected by the plan.
    pub sdc_injected: u64,
    /// Stored-checkpoint corruption events executed by the plan.
    pub checkpoints_corrupted: u64,
    /// Ranks brought back through the carrier after a kill.
    pub ranks_respawned: u64,
    pub detections: Vec<Detection>,
    pub rollback_records: Vec<RollbackRecord>,
}

/// Checkpoint cadence state (wall-clock Daly or deterministic fixed).
enum Cadence {
    Daly(CheckpointScheduler),
    Fixed { every: u64, since: u64 },
}

impl Cadence {
    fn new(mode: SchedulerMode) -> Self {
        match mode {
            SchedulerMode::Daly { mtbf, write_cost_guess } => {
                Cadence::Daly(CheckpointScheduler::new(mtbf, write_cost_guess))
            }
            SchedulerMode::FixedSteps(k) => Cadence::Fixed { every: k.max(1), since: 0 },
        }
    }

    fn after_step(&mut self, step_seconds: f64) -> bool {
        match self {
            Cadence::Daly(s) => s.after_step(step_seconds),
            Cadence::Fixed { every, since } => {
                *since += 1;
                if *since >= *every {
                    *since = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn after_checkpoint(&mut self, write_seconds: f64) {
        match self {
            Cadence::Daly(s) => s.after_checkpoint(write_seconds),
            Cadence::Fixed { since, .. } => *since = 0,
        }
    }

    /// Current work interval (seconds) under the Daly model, if active.
    fn daly_interval(&self) -> Option<f64> {
        match self {
            Cadence::Daly(s) => Some(s.current_interval()),
            Cadence::Fixed { .. } => None,
        }
    }
}

/// A driver-side fault event plus its one-shot firing state.
struct ArmedDriverEvent {
    event: FaultEvent,
    spent: bool,
}

/// A retained, verified checkpoint generation.
struct Generation {
    label: String,
    step: u64,
    nranks: usize,
}

/// The self-healing wrapper (module docs for the protocol and contract).
pub struct ResilientSimulation {
    sim: DistributedSimulation,
    store: Box<dyn CheckpointStore>,
    // Construction parameters, kept for `DistributedSimulation::restore`.
    config: SphConfig,
    gravity: Option<GravityConfig>,
    dist: DistributedConfig,
    rcfg: ResilientConfig,
    cadence: Cadence,
    driver_events: Vec<ArmedDriverEvent>,
    injector: SdcInjector,
    generations: VecDeque<Generation>,
    next_gen: u64,
    /// Highest completed-step count reached so far; steps at or below it
    /// are replays.
    high_watermark: u64,
    stats: RecoveryStats,
}

impl ResilientSimulation {
    /// Wrap `sim`, arming the exchange-side events of `plan` around its
    /// carrier and taking over `store` for checkpointing. Writes the
    /// generation-0 checkpoint immediately (before the fault layer is
    /// transplanted — construction happens before the chaos starts), so
    /// rollback always has a target.
    pub fn new(
        mut sim: DistributedSimulation,
        mut store: Box<dyn CheckpointStore>,
        plan: &FaultPlan,
        rcfg: ResilientConfig,
    ) -> Result<Self, RecoveryError> {
        assert!(rcfg.retention >= 1, "retention must keep at least one generation");
        let config = sim.config;
        let gravity = sim.gravity;
        let dist = sim.distributed_config();
        let gen0_label = Self::label_of(0);
        let bytes = sim
            .checkpoint(store.as_mut(), &gen0_label)
            .map_err(|e| RecoveryError::Unrecoverable { fault: e.to_string() })?;
        let inner = sim.replace_exchange(Box::new(InProcessExchange::new()));
        sim.replace_exchange(Box::new(FaultyExchange::new(inner, plan)));
        let (_, driver_side) = plan.split();
        let driver_events =
            driver_side.into_iter().map(|event| ArmedDriverEvent { event, spent: false }).collect();
        let high_watermark = sim.sys.step_count;
        let mut generations = VecDeque::with_capacity(rcfg.retention + 1);
        generations.push_back(Generation {
            label: gen0_label,
            step: sim.sys.step_count,
            nranks: dist.nranks,
        });
        let mut stats = RecoveryStats { checkpoints_written: 1, ..Default::default() };
        stats.checkpoint_bytes += bytes as u64;
        Ok(ResilientSimulation {
            sim,
            store,
            config,
            gravity,
            dist,
            rcfg,
            cadence: Cadence::new(rcfg.scheduler),
            driver_events,
            injector: plan.injector(),
            generations,
            next_gen: 1,
            high_watermark,
            stats,
        })
    }

    fn label_of(gen: u64) -> String {
        format!("resilient-gen{gen}")
    }

    /// The wrapped simulation's global state.
    pub fn sys(&self) -> &ParticleSystem {
        &self.sim.sys
    }

    /// Counters and records so far.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// The Daly work interval currently in effect (None in fixed mode).
    pub fn daly_interval(&self) -> Option<f64> {
        self.cadence.daly_interval()
    }

    /// Borrow the inner simulation (timers, decomposition, conservation —
    /// read-only observers; stepping must go through [`Self::run`]).
    pub fn inner(&self) -> &DistributedSimulation {
        &self.sim
    }

    /// Unwrap the inner simulation (the fault layer stays transplanted).
    pub fn into_inner(self) -> DistributedSimulation {
        self.sim
    }

    /// Advance `n_steps` *net* macro-steps, healing every survivable
    /// fault on the way. On success the state is bit-identical to the
    /// fault-free run of the same length (module docs for the argument).
    pub fn run(&mut self, n_steps: u64) -> Result<RecoveryStats, RecoveryError> {
        let target = self.sim.sys.step_count + n_steps;
        while self.sim.sys.step_count < target {
            #[allow(clippy::disallowed_methods)]
            // sph-lint: allow(wall-clock) — feeds the Daly cadence only;
            // checkpoint timing never influences trajectory values.
            let t0 = std::time::Instant::now();
            match self.sim.step() {
                Ok(_) => {
                    let step_seconds = t0.elapsed().as_secs_f64();
                    self.stats.steps_executed += 1;
                    let at = self.sim.sys.step_count;
                    if at <= self.high_watermark {
                        self.stats.steps_replayed += 1;
                    } else {
                        self.high_watermark = at;
                    }
                    // Arm on the known-good post-step state, *then* let
                    // the plan corrupt; the check below sees every flip.
                    let mut checksum = ChecksumDetector::new();
                    let mut conservation =
                        ConservationDetector::new(self.rcfg.conservation_tolerance);
                    checksum.arm(&self.sim.sys);
                    conservation.arm(&self.sim.sys);
                    self.fire_driver_events()?;
                    if let Some(detection) = self.detect(checksum, conservation) {
                        self.stats.detections.push(detection.clone());
                        self.rollback(format!("{}: {}", detection.detector, detection.detail))?;
                        continue;
                    }
                    if self.cadence.after_step(step_seconds) {
                        self.write_checkpoint()?;
                    }
                }
                Err(e) => self.handle_step_error(e)?,
            }
        }
        Ok(self.stats.clone())
    }

    /// Execute due driver-side plan events (one-shot) at this boundary.
    fn fire_driver_events(&mut self) -> Result<(), RecoveryError> {
        let step = self.sim.sys.step_count;
        for armed in &mut self.driver_events {
            if armed.spent || armed.event.step > step {
                continue;
            }
            armed.spent = true;
            match armed.event.kind {
                FaultKind::CorruptField => {
                    self.injector.inject(&mut self.sim.sys);
                    self.stats.sdc_injected += 1;
                }
                FaultKind::CorruptNewestCheckpoint { mode } => {
                    // Damage the newest generation's sealed manifest —
                    // rollback must detect it and fall back a generation.
                    let Some(newest) = self.generations.back() else { continue };
                    let mut mutate = |bytes: &mut Vec<u8>| match mode {
                        CorruptionMode::BitFlip { byte, bit } => {
                            if !bytes.is_empty() {
                                let at = byte % bytes.len();
                                bytes[at] ^= 1u8 << (bit % 8);
                            }
                        }
                        CorruptionMode::Truncate { keep } => bytes.truncate(keep),
                    };
                    self.store
                        .corrupt_stored(&newest.label, StoredKind::Blob, &mut mutate)
                        .map_err(|e| RecoveryError::Unrecoverable {
                            fault: format!("fault plan could not corrupt stored checkpoint: {e}"),
                        })?;
                    self.stats.checkpoints_corrupted += 1;
                }
                // Exchange-side kinds live in the FaultyExchange.
                _ => {}
            }
        }
        Ok(())
    }

    /// Run the armed detector battery; first verdict wins.
    fn detect(
        &mut self,
        mut checksum: ChecksumDetector,
        mut conservation: ConservationDetector,
    ) -> Option<Detection> {
        let step = self.sim.sys.step_count;
        let mut bounds = PhysicsBoundsDetector;
        let battery: [&mut dyn SdcDetector; 3] = [&mut bounds, &mut checksum, &mut conservation];
        for det in battery {
            if let Verdict::Corrupted(detail) = det.check(&self.sim.sys) {
                return Some(Detection { step, detector: det.name(), detail });
            }
        }
        None
    }

    /// Classify a failed step: recoverable faults roll back, the rest
    /// surface typed.
    fn handle_step_error(&mut self, e: DistributedError) -> Result<(), RecoveryError> {
        let step = self.sim.sys.step_count;
        match &e {
            DistributedError::Exchange(ex) => {
                let detail = ex.to_string();
                if let ExchangeErrorKind::RankFailed { rank } = ex.kind {
                    // Respawn through the carrier; a non-respawnable rank
                    // is the unsurvivable case.
                    self.sim.recover_rank(rank).map_err(|_| RecoveryError::RankLost { rank })?;
                    self.stats.ranks_respawned += 1;
                }
                self.stats.detections.push(Detection {
                    step,
                    detector: "exchange",
                    detail: detail.clone(),
                });
                self.rollback(detail)
            }
            // A poisoned dt bound mid-chaos means corrupted state slipped
            // into the step (e.g. a carrier fault surfaced as physics);
            // the checkpoint predates it, so replay heals it.
            DistributedError::TimeStep(ts) => {
                let detail = ts.to_string();
                self.stats.detections.push(Detection {
                    step,
                    detector: "time-step",
                    detail: detail.clone(),
                });
                self.rollback(detail)
            }
            DistributedError::Storage(_)
            | DistributedError::Build(_)
            | DistributedError::Restore { .. } => {
                Err(RecoveryError::Unrecoverable { fault: e.to_string() })
            }
        }
    }

    /// Restore the newest generation that passes verification, falling
    /// back through retained generations; transplant the carrier (its
    /// spent-event and dead-rank state must survive the rollback).
    fn rollback(&mut self, reason: String) -> Result<(), RecoveryError> {
        let from_step = self.sim.sys.step_count;
        self.stats.rollbacks += 1;
        if self.stats.rollbacks > self.rcfg.max_rollbacks {
            return Err(RecoveryError::NoProgress {
                at_step: from_step,
                rollbacks: self.stats.rollbacks,
            });
        }
        let mut last_error = String::new();
        let mut tried = 0usize;
        for (skipped, gen) in self.generations.iter().rev().enumerate() {
            tried += 1;
            match DistributedSimulation::restore(
                self.store.as_ref(),
                &gen.label,
                self.config,
                self.gravity,
                self.dist,
            ) {
                Ok(mut restored) => {
                    let carrier = self.sim.replace_exchange(Box::new(InProcessExchange::new()));
                    restored.replace_exchange(carrier);
                    restored.carry_exchange_log(self.sim.exchange_log());
                    self.sim = restored;
                    self.stats.rollback_records.push(RollbackRecord {
                        from_step,
                        to_step: gen.step,
                        generations_skipped: skipped,
                        reason: reason.clone(),
                    });
                    return Ok(());
                }
                Err(e) => last_error = e.to_string(),
            }
        }
        Err(RecoveryError::NoValidCheckpoint { tried, last_error })
    }

    /// Write the next generation; carrier-gated writes scrub their
    /// partial labels and count as a failure, storage errors escalate.
    fn write_checkpoint(&mut self) -> Result<(), RecoveryError> {
        let gen = self.next_gen;
        self.next_gen += 1;
        let label = Self::label_of(gen);
        #[allow(clippy::disallowed_methods)]
        // sph-lint: allow(wall-clock) — measured write cost feeds the Daly
        // cadence only; never the trajectory.
        let t0 = std::time::Instant::now();
        match self.sim.checkpoint(self.store.as_mut(), &label) {
            Ok(bytes) => {
                self.cadence.after_checkpoint(t0.elapsed().as_secs_f64());
                self.stats.checkpoints_written += 1;
                self.stats.checkpoint_bytes += bytes as u64;
                self.generations.push_back(Generation {
                    label,
                    step: self.sim.sys.step_count,
                    nranks: self.dist.nranks,
                });
                while self.generations.len() > self.rcfg.retention {
                    if let Some(old) = self.generations.pop_front() {
                        self.scrub(&old.label, old.nranks);
                    }
                }
                Ok(())
            }
            Err(DistributedError::Exchange(_)) => {
                // The carrier refused/damaged the blob in flight: the
                // write is gated (fault is one-shot), the state itself is
                // healthy — scrub the partial generation and move on.
                self.stats.checkpoint_write_failures += 1;
                self.scrub(&label, self.dist.nranks);
                Ok(())
            }
            Err(e) => Err(RecoveryError::Unrecoverable { fault: e.to_string() }),
        }
    }

    /// Remove every stored artifact of one generation label.
    fn scrub(&mut self, label: &str, nranks: usize) {
        for r in 0..nranks {
            self.store.invalidate(&format!("{label}.rank{r}"));
        }
        self.store.invalidate(label);
    }
}
