//! The Algorithm-1 step driver.

use sph_core::config::{GradientScheme, SphConfig, TimeStepping};
use sph_core::density::{compute_density, NeighborLists};
use sph_core::diagnostics::Conservation;
use sph_core::eos::IdealGas;
use sph_core::forces::compute_forces;
use sph_core::gradients::{compute_iad_matrices, compute_velocity_gradients};
use sph_core::integrator::{drift, kick, kick_drift, PingPongBuffers};
use sph_core::particles::ParticleSystem;
use sph_core::timestep::{
    active_at_substep, adaptive_dt, assign_rungs, global_dt, per_particle_dt, TimeStepError,
};
use sph_core::volume::compute_volume_elements;
use sph_core::StepStats;
use sph_kernels::{Kernel, SUPPORT_RADIUS};
use sph_profiler::timers::PhaseTimers;
use sph_profiler::Phase;
use sph_tree::{CellGrid, GravityConfig, GravitySolver, Octree, OctreeConfig, TraversalStats};

/// Result of one completed macro time-step.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Step index (1-based after the first step).
    pub step: u64,
    /// Macro time-step actually taken.
    pub dt: f64,
    /// Simulation time after the step.
    pub time: f64,
    /// Work statistics accumulated over the step (all substeps).
    pub stats: StepStats,
    /// Number of substeps (1 for global/adaptive stepping).
    pub substeps: u32,
    /// Mean fraction of particles active per derivative evaluation
    /// (1.0 for global stepping; < 1 shows the block-time-step saving).
    pub active_fraction: f64,
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    sys: ParticleSystem,
    config: SphConfig,
    gravity: Option<GravityConfig>,
    num_threads: Option<usize>,
}

impl SimulationBuilder {
    pub fn new(sys: ParticleSystem) -> Self {
        SimulationBuilder { sys, config: SphConfig::default(), gravity: None, num_threads: None }
    }

    pub fn config(mut self, config: SphConfig) -> Self {
        self.config = config;
        self
    }

    /// Enable self-gravity (Algorithm 1, step 4).
    pub fn gravity(mut self, gravity: GravityConfig) -> Self {
        self.gravity = Some(gravity);
        self
    }

    /// Worker threads for every parallel loop (0 = the `SPH_THREADS` /
    /// hardware default). The pool is process-global, so this configures
    /// *all* simulations, not just the one being built; results are
    /// bit-identical for any setting thanks to the fixed-chunk reductions.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<Simulation, String> {
        self.config.validate()?;
        self.sys.sanity_check()?;
        if let Some(n) = self.num_threads {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .map_err(|e| format!("thread pool: {e}"))?;
        }
        let kernel = self.config.kernel.build();
        let eos = IdealGas::new(self.config.gamma);
        let n = self.sys.len();
        Ok(Simulation {
            sys: self.sys,
            config: self.config,
            gravity: self.gravity,
            kernel,
            eos,
            phi: vec![0.0; n],
            per_particle_work: vec![1.0; n],
            dt_prev: 0.0,
            timers: PhaseTimers::new(),
            buffers: PingPongBuffers::new(n),
            derivatives_fresh: false,
        })
    }
}

/// A running SPH-EXA simulation.
pub struct Simulation {
    /// Particle state.
    pub sys: ParticleSystem,
    /// SPH configuration (a cell of Tables 1–2).
    pub config: SphConfig,
    /// Self-gravity configuration, if enabled.
    pub gravity: Option<GravityConfig>,
    kernel: Box<dyn Kernel>,
    eos: IdealGas,
    /// Per-particle gravitational potentials (zero with gravity off).
    pub phi: Vec<f64>,
    /// Per-particle work units from the most recent derivative
    /// evaluation — the load measure the cluster model and the dynamic
    /// load balancer consume.
    per_particle_work: Vec<f64>,
    dt_prev: f64,
    timers: PhaseTimers,
    buffers: PingPongBuffers,
    derivatives_fresh: bool,
}

impl Simulation {
    /// Convenience constructor with defaults.
    pub fn new(sys: ParticleSystem, config: SphConfig) -> Result<Self, String> {
        SimulationBuilder::new(sys).config(config).build()
    }

    /// Resume from a checkpointed state whose accelerations and energy
    /// derivatives are valid (the `sph-ft` codec persists them). The next
    /// step reuses them for its first half-kick, exactly as the original
    /// run would have — restarts are therefore bit-exact.
    pub fn resume(sys: ParticleSystem, config: SphConfig) -> Result<Self, String> {
        let mut sim = Self::new(sys, config)?;
        sim.derivatives_fresh = true;
        Ok(sim)
    }

    /// Resume with self-gravity enabled (see [`Simulation::resume`]).
    pub fn resume_with_gravity(
        sys: ParticleSystem,
        config: SphConfig,
        gravity: GravityConfig,
    ) -> Result<Self, String> {
        let mut sim = SimulationBuilder::new(sys).config(config).gravity(gravity).build()?;
        sim.derivatives_fresh = true;
        Ok(sim)
    }

    /// Wall-clock phase timers (real measured time of this process).
    pub fn timers(&self) -> &PhaseTimers {
        &self.timers
    }

    /// Per-particle work units of the last derivative evaluation.
    pub fn per_particle_work(&self) -> &[f64] {
        &self.per_particle_work
    }

    /// Conservation snapshot (includes gravity when enabled).
    pub fn conservation(&self) -> Conservation {
        let phi = self.gravity.is_some().then_some(self.phi.as_slice());
        Conservation::measure(&self.sys, phi)
    }

    /// Evaluate all derivatives (Algorithm 1 steps 1–4) for `active`
    /// particles. Returns the accumulated statistics.
    pub fn evaluate_derivatives(&mut self, active: &[u32]) -> StepStats {
        let mut stats = StepStats::default();
        let sys = &mut self.sys;

        // Phase A: sort particles into the uniform cell grid — the only
        // spatial structure the SPH passes need. The octree is built later,
        // and only when self-gravity asks for multipoles.
        let grid = self.timers.time(Phase::TreeBuild, || {
            CellGrid::for_radius(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h())
        });

        // Phases B–E: neighbours, smoothing lengths, density.
        let kernel = self.kernel.as_ref();
        let config = &self.config;
        let (lists, dstats) = self
            .timers
            .time(Phase::Density, || compute_density(sys, &grid, kernel, config, active));
        stats.merge(&dstats);

        // Phase F: volume elements, IAD matrices, EOS, velocity gradients.
        self.timers.time(Phase::Gradients, || {
            compute_volume_elements(sys, &lists, kernel, config, active);
            if config.gradients == GradientScheme::Iad {
                compute_iad_matrices(sys, &lists, kernel, active);
            }
            self.eos.apply(&sys.rho, &sys.u, &mut sys.p, &mut sys.cs);
            compute_velocity_gradients(sys, &lists, kernel, config.gradients, active);
        });

        // Phases G–H: momentum and energy. Use the symmetric closure when
        // evaluating the whole system (exact pairwise conservation); an
        // active subset keeps its gather lists, as block-stepping codes do.
        let full_system = active.len() == sys.len();
        let force_lists: NeighborLists = if full_system { lists.symmetrized() } else { lists };
        let pair_count = self
            .timers
            .time(Phase::Momentum, || compute_forces(sys, &force_lists, kernel, config, active));
        stats.sph_interactions += pair_count;

        // Phase I: self-gravity. Chunked map over fixed REDUCE_CHUNK
        // boundaries + ordered reduce of the chunk traversal counters; the
        // per-particle interaction count is kept alongside each sample
        // because it is the load measure the cluster model consumes.
        if let Some(gcfg) = self.gravity {
            let gstats = self.timers.time(Phase::Gravity, || {
                let bounds = sys.bounds();
                let tree = Octree::build(&sys.x, &bounds, OctreeConfig::default());
                let solver = GravitySolver::new(&tree, &sys.m, gcfg);
                type GravityRow = (usize, sph_tree::gravity::GravitySample, u64);
                let chunks: Vec<(Vec<GravityRow>, TraversalStats)> = {
                    use rayon::prelude::*;
                    use sph_math::REDUCE_CHUNK;
                    active
                        .par_chunks(REDUCE_CHUNK)
                        .map(|chunk| {
                            let mut stats = TraversalStats::default();
                            let rows = chunk
                                .iter()
                                .map(|&ai| {
                                    let i = ai as usize;
                                    let mut ts = TraversalStats::default();
                                    let s = solver.field_at(sys.x[i], Some(ai), &mut ts);
                                    let work = ts.total_interactions();
                                    stats.merge(&ts);
                                    (i, s, work)
                                })
                                .collect();
                            (rows, stats)
                        })
                        .collect()
                };
                let mut merged = TraversalStats::default();
                for (rows, stats) in chunks {
                    merged.merge(&stats);
                    for (i, s, work) in rows {
                        sys.a[i] += s.accel;
                        self.phi[i] = s.potential;
                        // Gravity work is attributed per particle below.
                        self.per_particle_work[i] = work as f64;
                    }
                }
                merged
            });
            stats.gravity = gstats;
        } else {
            for &ai in active {
                self.per_particle_work[ai as usize] = 0.0;
            }
        }

        // Per-particle work: SPH pair interactions (density + force ≈ 2×
        // the neighbour count) plus gravity interactions (already stored).
        for (k, &ai) in active.iter().enumerate() {
            let i = ai as usize;
            let sph = 2.0 * force_lists.neighbors(k).len() as f64;
            self.per_particle_work[i] += sph.max(2.0);
        }

        self.derivatives_fresh = true;
        stats
    }

    /// Execute one macro time-step (Algorithm 1 steps 1–6).
    ///
    /// A pathological time-step state (NaN-poisoned acceleration, infinite
    /// sound speed, …) is surfaced as a [`TimeStepError`] instead of
    /// aborting the process — the caller can checkpoint-restore or shrink
    /// the step. The simulation state is left as of the failed criterion
    /// evaluation (no kick/drift has happened).
    pub fn step(&mut self) -> Result<StepReport, TimeStepError> {
        let n = self.sys.len();
        let all: Vec<u32> = (0..n as u32).collect();
        let mut stats = StepStats::default();
        if !self.derivatives_fresh {
            stats.merge(&self.evaluate_derivatives(&all));
        }

        match self.config.time_stepping {
            TimeStepping::Global | TimeStepping::Adaptive { .. } => {
                let dts =
                    self.timers.time(Phase::Update, || per_particle_dt(&self.sys, &self.config));
                let dt = match self.config.time_stepping {
                    TimeStepping::Adaptive { growth_limit } => {
                        adaptive_dt(&dts, self.dt_prev, growth_limit)?
                    }
                    _ => global_dt(&dts)?,
                };
                // KDK leapfrog: the first half-kick and the drift are fused
                // into one gather → scatter pass over the ping-pong buffers
                // (bit-identical to kick-then-drift).
                self.timers.time(Phase::Update, || {
                    kick_drift(&mut self.sys, &mut self.buffers, dt / 2.0, dt);
                });
                stats.merge(&self.evaluate_derivatives(&all));
                self.timers.time(Phase::Update, || {
                    kick(&mut self.sys, dt / 2.0, &all);
                });
                self.dt_prev = dt;
                self.sys.time += dt;
                self.sys.step_count += 1;
                Ok(StepReport {
                    step: self.sys.step_count,
                    dt,
                    time: self.sys.time,
                    stats,
                    substeps: 1,
                    active_fraction: 1.0,
                })
            }
            TimeStepping::Individual { max_rungs } => {
                // Block time-steps (ChaNGa): assign power-of-two rungs from
                // the per-particle criteria, advance one macro step of
                // dt_max in 2^deepest substeps, evaluating derivatives only
                // for the particles active at each substep.
                let dts = per_particle_dt(&self.sys, &self.config);
                let dt_min = global_dt(&dts)?;
                let finite_max =
                    dts.iter().cloned().filter(|d| d.is_finite()).fold(dt_min, f64::max);
                // Macro step: largest power-of-two multiple of dt_min that
                // covers the slowest particle, capped by max_rungs.
                let levels = ((finite_max / dt_min).log2().floor().max(0.0) as u32)
                    .min(max_rungs as u32) as u8;
                let dt_max = dt_min * (1u64 << levels) as f64;
                let rungs = assign_rungs(&dts, dt_max, levels);
                for (i, &r) in rungs.iter().enumerate() {
                    self.sys.rung[i] = r;
                }
                let substeps = 1u64 << levels;
                let dt_sub = dt_max / substeps as f64;
                let mut active_total = 0u64;
                for s in 0..substeps {
                    let active = active_at_substep(&rungs, s, levels);
                    // sph-lint: allow(reduce-taint) — u64 census of active
                    // particles: exact integer arithmetic, order-free.
                    active_total += active.len() as u64;
                    // Kick each active particle by half its own rung step,
                    // drift everyone, re-evaluate, kick the other half —
                    // a synchronised block-KDK.
                    let rung_dt: Vec<f64> = active
                        .iter()
                        .map(|&i| dt_max / (1u64 << rungs[i as usize]) as f64)
                        .collect();
                    self.timers.time(Phase::Update, || {
                        for (&i, &rdt) in active.iter().zip(&rung_dt) {
                            kick(&mut self.sys, rdt / 2.0, &[i]);
                        }
                        drift(&mut self.sys, dt_sub);
                    });
                    stats.merge(&self.evaluate_derivatives(&active));
                    self.timers.time(Phase::Update, || {
                        for (&i, &rdt) in active.iter().zip(&rung_dt) {
                            kick(&mut self.sys, rdt / 2.0, &[i]);
                        }
                    });
                }
                self.dt_prev = dt_max;
                self.sys.time += dt_max;
                self.sys.step_count += 1;
                Ok(StepReport {
                    step: self.sys.step_count,
                    dt: dt_max,
                    time: self.sys.time,
                    stats,
                    substeps: substeps as u32,
                    active_fraction: active_total as f64 / (substeps * n as u64) as f64,
                })
            }
        }
    }

    /// Run `n_steps` macro steps, collecting reports; stops at the first
    /// time-step error.
    pub fn run(&mut self, n_steps: usize) -> Result<Vec<StepReport>, TimeStepError> {
        (0..n_steps).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};
    use sph_tree::MultipoleOrder;

    /// A small warm uniform gas ball, open boundaries.
    fn gas_ball(n_target: usize, seed: u64) -> ParticleSystem {
        let mut rng = SplitMix64::new(seed);
        let mut x = Vec::new();
        while x.len() < n_target {
            let p =
                Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
            if p.norm() <= 1.0 {
                x.push(p);
            }
        }
        let n = x.len();
        ParticleSystem::new(
            x,
            vec![Vec3::ZERO; n],
            vec![1.0 / n as f64; n],
            vec![0.5; n],
            0.3,
            Periodicity::open(Aabb::cube(Vec3::ZERO, 2.0)),
        )
    }

    fn quick_config() -> SphConfig {
        SphConfig { target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
    }

    #[test]
    fn builder_validates() {
        let sys = gas_ball(300, 1);
        let bad = SphConfig { gamma: 0.1, ..Default::default() };
        assert!(SimulationBuilder::new(sys).config(bad).build().is_err());
    }

    #[test]
    fn single_step_advances_time() {
        let mut sim = Simulation::new(gas_ball(400, 2), quick_config()).unwrap();
        let r = sim.step().unwrap();
        assert!(r.dt > 0.0);
        assert_eq!(r.step, 1);
        assert!((sim.sys.time - r.dt).abs() < 1e-15);
        assert_eq!(r.substeps, 1);
        assert!(r.stats.sph_interactions > 0);
        assert!(sim.sys.sanity_check().is_ok());
    }

    #[test]
    fn hot_ball_expands_and_cools() {
        // Free expansion: kinetic energy grows, internal energy falls,
        // total (no gravity) approximately conserved.
        let mut sim = Simulation::new(gas_ball(500, 3), quick_config()).unwrap();
        let e0 = sim.conservation();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        let e1 = sim.conservation();
        assert!(e1.kinetic_energy > e0.kinetic_energy, "ball must accelerate outward");
        assert!(e1.internal_energy < e0.internal_energy, "expansion must cool the gas");
        let drift = e1.energy_drift(&e0);
        assert!(drift < 0.02, "energy drift {drift}");
    }

    #[test]
    fn momentum_stays_zero() {
        let mut sim = Simulation::new(gas_ball(400, 4), quick_config()).unwrap();
        let scale = {
            // After a few steps there is real momentum flow to compare to.
            for _ in 0..3 {
                sim.step().unwrap();
            }
            sph_core::diagnostics::momentum_scale(&sim.sys)
        };
        let c = sim.conservation();
        assert!(
            c.momentum.norm() < 1e-8 * scale.max(1e-12),
            "net momentum {:?} vs scale {scale}",
            c.momentum
        );
    }

    #[test]
    fn gravity_binds_the_ball() {
        // With strong gravity and little pressure the ball contracts:
        // kinetic energy rises while the potential deepens.
        let mut sys = gas_ball(400, 5);
        for u in sys.u.iter_mut() {
            *u = 0.001; // nearly cold
        }
        let gravity =
            GravityConfig { g: 1.0, theta: 0.6, softening: 0.05, order: MultipoleOrder::Monopole };
        let mut sim =
            SimulationBuilder::new(sys).config(quick_config()).gravity(gravity).build().unwrap();
        sim.step().unwrap(); // populates potentials
        let c0 = sim.conservation();
        assert!(c0.gravitational_energy < 0.0);
        for _ in 0..5 {
            sim.step().unwrap();
        }
        let c1 = sim.conservation();
        assert!(c1.kinetic_energy > c0.kinetic_energy, "collapse must gain KE");
        assert!(
            c1.gravitational_energy < c0.gravitational_energy,
            "potential must deepen during collapse"
        );
    }

    #[test]
    fn adaptive_stepping_limits_growth() {
        let mut cfg = quick_config();
        cfg.time_stepping = TimeStepping::Adaptive { growth_limit: 1.05 };
        let mut sim = Simulation::new(gas_ball(300, 6), cfg).unwrap();
        let r1 = sim.step().unwrap();
        let r2 = sim.step().unwrap();
        assert!(r2.dt <= r1.dt * 1.05 + 1e-12, "dt grew too fast: {} → {}", r1.dt, r2.dt);
    }

    #[test]
    fn individual_stepping_reduces_active_fraction() {
        // A ball with a hot dense core forces rung spread; the active
        // fraction per substep must drop below 1.
        let mut sys = gas_ball(600, 7);
        for i in 0..sys.len() {
            // Hot core: sound speed ∝ √u is 10× higher inside r < 0.3.
            if sys.x[i].norm() < 0.3 {
                sys.u[i] = 50.0;
            }
        }
        let mut cfg = quick_config();
        cfg.time_stepping = TimeStepping::Individual { max_rungs: 4 };
        let mut sim = Simulation::new(sys, cfg).unwrap();
        let r = sim.step().unwrap();
        assert!(r.substeps > 1, "expected rung spread, got {} substeps", r.substeps);
        assert!(
            r.active_fraction < 0.9,
            "active fraction {} shows no block-stepping saving",
            r.active_fraction
        );
        assert!(sim.sys.sanity_check().is_ok());
    }

    #[test]
    fn per_particle_work_is_positive_after_step() {
        let mut sim = Simulation::new(gas_ball(300, 8), quick_config()).unwrap();
        sim.step().unwrap();
        assert!(sim.per_particle_work().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn timers_accumulate_phases() {
        let mut sim = Simulation::new(gas_ball(300, 9), quick_config()).unwrap();
        sim.step().unwrap();
        assert!(sim.timers().get(Phase::TreeBuild) > 0.0);
        assert!(sim.timers().get(Phase::Density) > 0.0);
        assert!(sim.timers().get(Phase::Momentum) > 0.0);
        assert_eq!(sim.timers().get(Phase::Gravity), 0.0); // gravity off
    }

    #[test]
    fn poisoned_state_surfaces_error_instead_of_abort() {
        let mut sim = Simulation::new(gas_ball(300, 11), quick_config()).unwrap();
        sim.step().unwrap();
        let time_before = sim.sys.time;
        // NaN-poison one acceleration (a stand-in for silent memory
        // corruption); the next step must fail loudly — the pre-fix
        // assert! aborted the process — and must not advance the clock.
        sim.sys.a[7] = Vec3::new(f64::NAN, 0.0, 0.0);
        let err = sim.step().unwrap_err();
        assert!(matches!(err, TimeStepError::NonFinite { particle: 7 }), "{err}");
        assert_eq!(sim.sys.time, time_before, "failed step must not advance time");
    }

    #[test]
    fn run_produces_reports() {
        let mut sim = Simulation::new(gas_ball(300, 10), quick_config()).unwrap();
        let reports = sim.run(3).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.windows(2).all(|w| w[1].time > w[0].time));
    }
}
