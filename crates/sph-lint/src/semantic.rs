//! The call-graph-aware rules R6–R8. Where R1–R5 match token patterns
//! under crate-name whitelists, these rules ask *reachability* questions
//! of the workspace [`CallGraph`]: is the function this token sits in
//! reachable from the kernel-pass seed set (R6) or from a
//! trajectory-feeding `step` (R7)? The crate a file happens to live in no
//! longer decides whether the hot-path contracts apply to it.
//!
//! Seed sets:
//!
//! - **Kernel passes** ([`HOT_PATH_SEEDS`]): the five `compute_*` passes
//!   (density / volume elements / IAD / velocity gradients / forces, with
//!   the smoothing-length iteration living inside the density pass), the
//!   [`NeighborQuery`] ball-query methods, the `CellGrid` cell scan, and
//!   the CSR batch builder.
//! - **Trajectory feeders**: the kernel passes plus every `step` method
//!   on the drivers ([`TRAJECTORY_STEP_TYPES`]).
//!
//! [`NeighborQuery`]: ../sph_tree/trait.NeighborQuery.html

use crate::graph::{CallGraph, ParsedFile, Reach};
use crate::lexer::TokenKind;
use crate::rules::{Diagnostic, Rule};

/// Functions whose bodies (and transitive callees) are the per-particle /
/// per-query hot path: one invocation per particle per step, or the scan
/// kernels those invocations stream through.
pub const HOT_PATH_SEEDS: &[&str] = &[
    "compute_density",
    "compute_volume_elements",
    "compute_iad_matrices",
    "compute_velocity_gradients",
    "compute_forces",
    "neighbors_within",
    "count_within",
    "neighbors_with_dist",
    "clamp_radius",
    "scan_one_image",
    "build_csr_lists",
];

/// Driver types whose `step` methods feed trajectories (R7 seeds,
/// together with the kernel passes).
pub const TRAJECTORY_STEP_TYPES: &[&str] =
    &["Simulation", "DistributedSimulation", "ResilientSimulation"];

/// Iterator adapters that dispatch fixed-`REDUCE_CHUNK` parallel work in
/// the rayon shim. A closure handed to one of these runs once per
/// *chunk*, so chunk-scratch allocation inside it is the sanctioned
/// pattern (PR 6's per-chunk scratch buffers).
const CHUNK_DISPATCH: &[&str] =
    &["par_chunks", "par_chunks_mut", "par_iter", "par_iter_mut", "run_tasks"];

/// Integer element types whose `.sum::<T>()` is exact (no FP order).
const INT_TYPES: &[&str] =
    &["usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128"];

/// Run R6–R8 over every file. Returns one diagnostic list per file
/// (parallel to `files`), pre-filtered for test items but *not* yet run
/// through suppression matching — the per-file finalizer does that.
pub(crate) fn check(files: &[ParsedFile], graph: &CallGraph) -> Vec<Vec<Diagnostic>> {
    let hot_seeds = graph.select(|f| HOT_PATH_SEEDS.contains(&f.name.as_str()));
    let traj_seeds = graph.select(|f| {
        HOT_PATH_SEEDS.contains(&f.name.as_str())
            || (f.name == "step"
                && f.impl_target.as_deref().is_some_and(|t| TRAJECTORY_STEP_TYPES.contains(&t)))
    });
    let hot_reach = graph.reachable(&hot_seeds);
    let traj_reach = graph.reachable(&traj_seeds);

    let mut out: Vec<Vec<Diagnostic>> = files.iter().map(|_| Vec::new()).collect();
    for (fi, pf) in files.iter().enumerate() {
        if pf.ctx.is_shim {
            continue;
        }
        let mut pass = FilePass {
            pf,
            fi,
            graph,
            hot_reach: &hot_reach,
            traj_reach: &traj_reach,
            r6: pf.ctx.applies(Rule::HotAlloc),
            r7: pf.ctx.applies(Rule::ReduceTaint),
            r8: pf.ctx.applies(Rule::EnvDeterminism),
            out: &mut out[fi],
        };
        pass.run();
    }
    out
}

/// Scope kinds the pass tracks; plain `{}` blocks are transparent.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Loop,
    Closure { chunk: bool },
}

/// How a tracked scope ends: at the `}` matching its opening brace depth,
/// or (expression-bodied closures) when its entry paren depth unwinds.
#[derive(Clone, Copy)]
enum End {
    Brace(usize),
    Expr(usize),
}

struct Scope {
    kind: Kind,
    end: End,
}

struct FilePass<'a> {
    pf: &'a ParsedFile,
    fi: usize,
    graph: &'a CallGraph,
    hot_reach: &'a [Option<Reach>],
    traj_reach: &'a [Option<Reach>],
    r6: bool,
    r7: bool,
    r8: bool,
    out: &'a mut Vec<Diagnostic>,
}

impl<'a> FilePass<'a> {
    fn text(&self, k: usize) -> &'a str {
        self.pf.code.get(k).map(|t| t.text(&self.pf.src)).unwrap_or("")
    }

    fn is_ident(&self, k: usize) -> bool {
        self.pf.code.get(k).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// Owner fn of code token `k` when it is hot-reachable (and neither
    /// the token nor the fn is test code).
    fn hot_owner(&self, k: usize) -> Option<usize> {
        self.reachable_owner(k, self.hot_reach)
    }

    fn traj_owner(&self, k: usize) -> Option<usize> {
        self.reachable_owner(k, self.traj_reach)
    }

    fn reachable_owner(&self, k: usize, reach: &[Option<Reach>]) -> Option<usize> {
        let tok = self.pf.code.get(k)?;
        if self.pf.in_test(tok.start) {
            return None;
        }
        let owner = self.graph.owner_of(self.fi, k)?;
        if self.graph.fns[owner].in_test || reach.get(owner).copied().flatten().is_none() {
            return None;
        }
        Some(owner)
    }

    fn emit(&mut self, rule: Rule, k: usize, message: String) {
        if let Some(tok) = self.pf.code.get(k) {
            self.out.push(Diagnostic { rule, line: tok.line, col: tok.col, message });
        }
    }

    fn run(&mut self) {
        let code = self.pf.code.clone();
        let mut scopes: Vec<Scope> = Vec::new();
        let mut brace_depth = 0usize;
        let mut paren_depth = 0usize;
        let mut pending_loop = false;
        let mut pending_closure: Option<bool> = None;

        for i in 0..code.len() {
            let tt = self.text(i);
            let is_id = self.is_ident(i);

            // --- scope machinery -------------------------------------
            match tt {
                "for" | "while" | "loop" if is_id => pending_loop = true,
                "|" | "||" if self.closure_starts_at(i) => {
                    let chunk = self.chain_has_chunk_dispatch(i);
                    let after = if tt == "||" { i + 1 } else { self.closing_pipe(i + 1) };
                    match self.text(after) {
                        "{" | "->" => pending_closure = Some(chunk),
                        _ => scopes.push(Scope {
                            kind: Kind::Closure { chunk },
                            end: End::Expr(paren_depth),
                        }),
                    }
                }
                "{" => {
                    brace_depth += 1;
                    if let Some(chunk) = pending_closure.take() {
                        scopes.push(Scope {
                            kind: Kind::Closure { chunk },
                            end: End::Brace(brace_depth),
                        });
                        pending_loop = false;
                    } else if pending_loop {
                        scopes.push(Scope { kind: Kind::Loop, end: End::Brace(brace_depth) });
                        pending_loop = false;
                    }
                }
                "}" => {
                    while matches!(scopes.last(), Some(Scope { end: End::Expr(p), .. }) if *p >= paren_depth)
                    {
                        scopes.pop();
                    }
                    if matches!(scopes.last(), Some(Scope { end: End::Brace(b), .. }) if *b == brace_depth)
                    {
                        scopes.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                "(" | "[" => paren_depth += 1,
                ")" | "]" => {
                    while matches!(scopes.last(), Some(Scope { end: End::Expr(p), .. }) if *p == paren_depth)
                    {
                        scopes.pop();
                    }
                    paren_depth = paren_depth.saturating_sub(1);
                }
                "," => {
                    while matches!(scopes.last(), Some(Scope { end: End::Expr(p), .. }) if *p == paren_depth)
                    {
                        scopes.pop();
                    }
                }
                ";" => {
                    while matches!(scopes.last(), Some(Scope { end: End::Expr(p), .. }) if *p >= paren_depth)
                    {
                        scopes.pop();
                    }
                }
                _ => {}
            }

            let in_loop = scopes.iter().any(|s| s.kind == Kind::Loop);
            let chunk_top =
                matches!(scopes.last(), Some(Scope { kind: Kind::Closure { chunk: true }, .. }));

            // --- R6: hot-path allocation -----------------------------
            if self.r6 {
                if let Some((what, at)) = self.alloc_at(i) {
                    if !chunk_top {
                        if let Some(owner) = self.hot_owner(at) {
                            let chain = self.graph.chain(self.hot_reach, owner);
                            self.emit(
                                Rule::HotAlloc,
                                at,
                                format!(
                                    "`{what}` allocates on the kernel-pass hot path \
                                     (reachable: {chain}); hoist it into per-chunk scratch, \
                                     pre-size it with `Vec::with_capacity`, or allocate once \
                                     outside the pass"
                                ),
                            );
                        }
                    }
                }
            }

            // --- R7: interprocedural reduction taint ------------------
            if self.r7 {
                // Bare `acc += expr;` in a loop (R2a, reachability-scoped).
                if is_id
                    && self.text(i + 1) == "+="
                    && in_loop
                    && (i == 0 || matches!(self.text(i.wrapping_sub(1)), ";" | "{" | "}"))
                    && !(code.get(i + 2).is_some_and(|t| t.kind == TokenKind::NumLit)
                        && self.text(i + 2) == "1"
                        && self.text(i + 3) == ";")
                {
                    if let Some(owner) = self.traj_owner(i) {
                        let chain = self.graph.chain(self.traj_reach, owner);
                        self.emit(
                            Rule::ReduceTaint,
                            i,
                            format!(
                                "bare `{tt} += …` in a loop feeding trajectories \
                                 (reachable: {chain}); use KahanAccumulator, the ordered-reduce \
                                 helpers, or an explicit integer type"
                            ),
                        );
                    }
                }
                // `.sum()` — exact integer turbofish is exempt.
                if tt == "."
                    && self.text(i + 1) == "sum"
                    && self.is_ident(i + 1)
                    && matches!(self.text(i + 2), "(" | "::")
                    && !self.integer_turbofish(i + 2)
                {
                    if let Some(owner) = self.traj_owner(i + 1) {
                        let chain = self.graph.chain(self.traj_reach, owner);
                        self.emit(
                            Rule::ReduceTaint,
                            i + 1,
                            format!(
                                "`.sum()` hides the reduction order on a trajectory-feeding \
                                 path (reachable: {chain}); use KahanAccumulator or spell the \
                                 integer type (`.sum::<usize>()`) if it is exact"
                            ),
                        );
                    }
                }
                // `.fold(…)` whose body accumulates with `+` — min/max
                // folds carry no FP addition and stay exempt.
                if tt == "."
                    && self.text(i + 1) == "fold"
                    && self.is_ident(i + 1)
                    && self.text(i + 2) == "("
                    && crate::rules::balanced_args_contain_add(&self.pf.src, &self.pf.code, i + 2)
                {
                    if let Some(owner) = self.traj_owner(i + 1) {
                        let chain = self.graph.chain(self.traj_reach, owner);
                        self.emit(
                            Rule::ReduceTaint,
                            i + 1,
                            format!(
                                "additive `.fold(…)` on a trajectory-feeding path \
                                 (reachable: {chain}); use KahanAccumulator or the \
                                 ordered-reduce helpers"
                            ),
                        );
                    }
                }
            }

            // --- R8: environment determinism --------------------------
            if self.r8 {
                let hit = if is_id
                    && tt == "env"
                    && self.text(i + 1) == "::"
                    && matches!(self.text(i + 2), "var" | "var_os" | "vars")
                {
                    Some(format!("env::{}", self.text(i + 2)))
                } else if is_id && matches!(tt, "available_parallelism" | "current_num_threads") {
                    Some(tt.to_string())
                } else {
                    None
                };
                if let Some(what) = hit {
                    let tok = &code[i];
                    if !self.pf.in_test(tok.start) {
                        let flavor = match self.traj_owner(i) {
                            Some(owner) => format!(
                                " — and it is trajectory-reachable \
                                 ({}), so the value can flow into physics state",
                                self.graph.chain(self.traj_reach, owner)
                            ),
                            None => String::new(),
                        };
                        self.emit(
                            Rule::EnvDeterminism,
                            i,
                            format!(
                                "`{what}` reads the process environment in library code{flavor}; \
                                 thread-count and env lookups belong in the rayon shim or the \
                                 binary's CLI surface"
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Does the `|`/`||` at `i` start a closure (vs a binary/pattern or)?
    fn closure_starts_at(&self, i: usize) -> bool {
        if i == 0 {
            return true;
        }
        matches!(self.text(i - 1), "(" | "," | "=" | "move" | "{" | ";" | "=>" | "return" | "[")
    }

    /// Index just past the parameter list's closing `|` (depth-aware for
    /// `|(a, b)|` patterns). Falls back to `i` when unterminated.
    fn closing_pipe(&self, mut k: usize) -> usize {
        let mut depth = 0isize;
        let start = k;
        while k < self.pf.code.len() && k < start + 128 {
            match self.text(k) {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "|" if depth <= 0 => return k + 1,
                ";" | "{" | "}" => break,
                _ => {}
            }
            k += 1;
        }
        start
    }

    /// Backward receiver-chain scan from the closure/adapter at `i`: does
    /// the chain (`x.par_chunks(n).map(` …) contain a chunk-dispatch
    /// adapter? Balanced groups (earlier call arguments) are skipped.
    fn chain_has_chunk_dispatch(&self, i: usize) -> bool {
        // Step from `|…|` back over `move` and the opening `(` of the
        // adapter call the closure is an argument of.
        let mut k = i;
        if k == 0 {
            return false;
        }
        k -= 1;
        if self.text(k) == "move" {
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if self.text(k) != "(" {
            return false;
        }
        if k == 0 {
            return false;
        }
        self.chain_back_from(k - 1)
    }

    /// Walk a method/receiver chain backward from token `k`, skipping
    /// balanced `(…)`/`[…]` groups, until the statement boundary.
    fn chain_back_from(&self, mut k: usize) -> bool {
        loop {
            let tt = self.text(k);
            match tt {
                ")" | "]" => match self.back_matching(k) {
                    Some(open) if open > 0 => k = open - 1,
                    _ => return false,
                },
                "." | "::" | "?" => {
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                _ if self.is_ident(k) && CHUNK_DISPATCH.contains(&tt) => return true,
                _ if self.is_ident(k) => {
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                _ => return false,
            }
        }
    }

    /// Opening index of the `(`/`[` matching the closer at `k`.
    fn back_matching(&self, close: usize) -> Option<usize> {
        let mut depth = 0isize;
        let mut k = close;
        loop {
            match self.text(k) {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
    }

    /// Allocation candidate at token `i`: `(description, anchor token)`.
    /// Pre-sized allocations (`Vec::with_capacity`, `vec![x; n]`) and
    /// `.collect()` calls terminating a chunk-dispatch chain are already
    /// filtered out here.
    fn alloc_at(&self, i: usize) -> Option<(String, usize)> {
        let tt = self.text(i);
        let is_id = self.is_ident(i);
        if is_id && tt == "vec" && self.text(i + 1) == "!" {
            if self.text(i + 2) == "[" && self.repeat_form(i + 2) {
                return None; // `vec![x; n]`: sized upfront, like with_capacity
            }
            return Some(("vec![…]".to_string(), i));
        }
        if is_id && tt == "format" && self.text(i + 1) == "!" {
            return Some(("format!".to_string(), i));
        }
        if is_id && matches!(tt, "Vec" | "VecDeque" | "Box" | "String") && self.text(i + 1) == "::"
        {
            let method = self.text(i + 2);
            let flagged = match tt {
                "Vec" | "VecDeque" | "Box" => matches!(method, "new" | "from"),
                "String" => matches!(method, "new" | "from" | "with_capacity"),
                _ => false,
            };
            if flagged && self.is_ident(i + 2) {
                return Some((format!("{tt}::{method}"), i));
            }
        }
        if tt == "."
            && matches!(self.text(i + 1), "to_vec" | "to_string" | "to_owned" | "collect")
            && self.is_ident(i + 1)
            && matches!(self.text(i + 2), "(" | "::")
        {
            if self.text(i + 1) == "collect" && i > 0 && self.chain_back_from(i - 1) {
                return None; // the ordered-reduce collect over par chunks
            }
            return Some((format!(".{}()", self.text(i + 1)), i + 1));
        }
        None
    }

    /// Is the `vec![…]` bracket group at `open` the repeat form
    /// (`vec![elem; len]` — a `;` at depth 1)?
    fn repeat_form(&self, open: usize) -> bool {
        let mut depth = 0isize;
        let mut k = open;
        while k < self.pf.code.len() {
            match self.text(k) {
                "[" | "(" | "{" => depth += 1,
                "]" | ")" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return false;
                    }
                }
                ";" if depth == 1 => return true,
                _ => {}
            }
            k += 1;
        }
        false
    }

    /// `.sum::<T>()` with an exact integer `T`.
    fn integer_turbofish(&self, at: usize) -> bool {
        self.text(at) == "::"
            && self.text(at + 1) == "<"
            && INT_TYPES.contains(&self.text(at + 2))
            && self.text(at + 3) == ">"
    }
}
